#include "nn/layers.h"

#include <gtest/gtest.h>

#include "grad_check.h"

namespace dv {
namespace {

using dv::testing::check_input_gradient;
using dv::testing::check_param_gradients;

TEST(Relu, ForwardClampsNegatives) {
  relu l;
  tensor x = tensor::from_data({1, 4}, {-1.0f, 0.0f, 2.0f, -0.5f});
  const tensor y = l.forward(x, true);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
}

TEST(Relu, BackwardMasksGradient) {
  relu l;
  tensor x = tensor::from_data({1, 3}, {-1.0f, 1.0f, 3.0f});
  (void)l.forward(x, true);
  const tensor g = l.backward(tensor::from_data({1, 3}, {5.0f, 5.0f, 5.0f}));
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 5.0f);
  EXPECT_EQ(g[2], 5.0f);
}

TEST(Relu, GradCheck) {
  relu l;
  rng gen{1};
  tensor x = tensor::randn({2, 3, 4, 4}, gen);
  tensor w = tensor::randn({2, 3, 4, 4}, gen);
  check_input_gradient(l, x, w);
}

TEST(Dropout, InferenceIsIdentity) {
  dropout l{0.5, 7};
  rng gen{2};
  tensor x = tensor::randn({4, 10}, gen);
  const tensor y = l.forward(x, false);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainKeepsMeanAndZeroesFraction) {
  dropout l{0.3, 7};
  tensor x = tensor::full({1, 20000}, 1.0f);
  const tensor y = l.forward(x, true);
  std::int64_t zeros = 0;
  double sum = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) ++zeros;
    sum += y[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.3, 0.02);
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.03);  // inverted scaling preserves mean
}

TEST(Dropout, BackwardUsesSameMask) {
  dropout l{0.5, 7};
  tensor x = tensor::full({1, 100}, 1.0f);
  const tensor y = l.forward(x, true);
  const tensor g = l.backward(tensor::full({1, 100}, 1.0f));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_EQ(g[i], y[i]);  // identical mask and scale
  }
}

TEST(Dropout, InvalidProbabilityThrows) {
  EXPECT_THROW(dropout(1.0, 1), std::invalid_argument);
  EXPECT_THROW(dropout(-0.1, 1), std::invalid_argument);
}

TEST(Flatten, RoundTrip) {
  flatten l;
  rng gen{3};
  tensor x = tensor::randn({2, 3, 4, 5}, gen);
  const tensor y = l.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 60}));
  const tensor g = l.backward(y);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(Conv2d, ForwardShape) {
  rng gen{4};
  conv2d l{3, 8, 3, 1, 1, gen};
  tensor x = tensor::randn({2, 3, 8, 8}, gen);
  const tensor y = l.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 8, 8, 8}));
}

TEST(Conv2d, StrideShrinksOutput) {
  rng gen{4};
  conv2d l{1, 2, 3, 2, 1, gen};
  tensor x = tensor::randn({1, 1, 9, 9}, gen);
  const tensor y = l.forward(x, true);
  EXPECT_EQ(y.extent(2), 5);
}

TEST(Conv2d, KnownValueIdentityKernel) {
  rng gen{4};
  conv2d l{1, 1, 1, 1, 0, gen};
  // Overwrite weights: 1x1 kernel of value 2, bias 1.
  auto params = l.params();
  (*params[0].value)[0] = 2.0f;
  (*params[1].value)[0] = 1.0f;
  tensor x = tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 4});
  const tensor y = l.forward(x, true);
  EXPECT_EQ(y[0], 3.0f);
  EXPECT_EQ(y[3], 9.0f);
}

TEST(Conv2d, GradCheckInputAndParams) {
  rng gen{5};
  conv2d l{2, 3, 3, 1, 1, gen};
  tensor x = tensor::randn({2, 2, 5, 5}, gen);
  tensor w = tensor::randn({2, 3, 5, 5}, gen);
  check_input_gradient(l, x, w);
  check_param_gradients(l, x, w);
}

TEST(Conv2d, GradCheckStridedNoBias) {
  rng gen{6};
  conv2d l{1, 2, 3, 2, 0, gen, /*bias=*/false};
  tensor x = tensor::randn({1, 1, 7, 7}, gen);
  tensor w = tensor::randn({1, 2, 3, 3}, gen);
  check_input_gradient(l, x, w);
  check_param_gradients(l, x, w);
  EXPECT_EQ(l.params().size(), 1u);
}

TEST(Conv2d, RejectsWrongChannelCount) {
  rng gen{7};
  conv2d l{3, 4, 3, 1, 1, gen};
  tensor x = tensor::randn({1, 2, 8, 8}, gen);
  EXPECT_THROW(l.forward(x, true), std::invalid_argument);
}

TEST(Dense, ForwardMatchesManual) {
  rng gen{8};
  dense l{2, 2, gen};
  auto params = l.params();
  *params[0].value = tensor::from_data({2, 2}, {1, 2, 3, 4});
  *params[1].value = tensor::from_data({2}, {10, 20});
  tensor x = tensor::from_data({1, 2}, {1, 1});
  const tensor y = l.forward(x, true);
  EXPECT_EQ(y[0], 13.0f);  // 1*1 + 2*1 + 10
  EXPECT_EQ(y[1], 27.0f);  // 3*1 + 4*1 + 20
}

TEST(Dense, GradCheck) {
  rng gen{9};
  dense l{6, 4, gen};
  tensor x = tensor::randn({3, 6}, gen);
  tensor w = tensor::randn({3, 4}, gen);
  check_input_gradient(l, x, w);
  check_param_gradients(l, x, w);
}

TEST(MaxPool, ForwardSelectsMaxima) {
  max_pool2d l{2};
  tensor x = tensor::from_data({1, 1, 2, 2}, {1, 4, 3, 2});
  const tensor y = l.forward(x, true);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_EQ(y[0], 4.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  max_pool2d l{2};
  tensor x = tensor::from_data({1, 1, 2, 2}, {1, 4, 3, 2});
  (void)l.forward(x, true);
  const tensor g = l.backward(tensor::from_data({1, 1, 1, 1}, {7.0f}));
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 7.0f);
  EXPECT_EQ(g[2], 0.0f);
}

TEST(MaxPool, GradCheck) {
  max_pool2d l{2};
  rng gen{10};
  tensor x = tensor::randn({2, 3, 6, 6}, gen);
  tensor w = tensor::randn({2, 3, 3, 3}, gen);
  check_input_gradient(l, x, w, true, 1e-4, 3e-2);
}

TEST(GlobalAvgPool, ForwardAveragesPlanes) {
  global_avg_pool l;
  tensor x = tensor::from_data({1, 2, 1, 2}, {1, 3, 10, 20});
  const tensor y = l.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 15.0f);
}

TEST(GlobalAvgPool, GradCheck) {
  global_avg_pool l;
  rng gen{11};
  tensor x = tensor::randn({2, 4, 3, 3}, gen);
  tensor w = tensor::randn({2, 4}, gen);
  check_input_gradient(l, x, w);
}

TEST(AvgPool, ForwardAndGradCheck) {
  avg_pool2d l{2};
  tensor x = tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 4});
  const tensor y = l.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  rng gen{12};
  tensor xr = tensor::randn({2, 2, 4, 4}, gen);
  tensor w = tensor::randn({2, 2, 2, 2}, gen);
  check_input_gradient(l, xr, w);
}

TEST(BatchNorm, TrainingNormalizesBatch) {
  batch_norm l{3};
  rng gen{13};
  tensor x = tensor::randn({16, 3, 4, 4}, gen, 5.0f);
  const tensor y = l.forward(x, true);
  // Per-channel mean ~0, variance ~1 after normalization (gamma=1, beta=0).
  for (std::int64_t c = 0; c < 3; ++c) {
    double sum = 0.0, sum2 = 0.0;
    std::int64_t count = 0;
    for (std::int64_t n = 0; n < 16; ++n) {
      for (std::int64_t i = 0; i < 16; ++i) {
        const float v = y.at4(n, c, i / 4, i % 4);
        sum += v;
        sum2 += static_cast<double>(v) * v;
        ++count;
      }
    }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sum2 / count, 1.0, 1e-3);
  }
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  batch_norm l{2};
  rng gen{14};
  // Train forward several times to accumulate running statistics.
  for (int i = 0; i < 50; ++i) {
    tensor x = tensor::randn({8, 2, 2, 2}, gen, 2.0f);
    (void)l.forward(x, true);
  }
  tensor x = tensor::full({1, 2, 2, 2}, 0.0f);
  const tensor y = l.forward(x, false);
  // Running mean ~0, var ~4 -> output ~0 for zero input.
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y[i], 0.0f, 0.3f);
  }
}

TEST(BatchNorm, GradCheckSpatial) {
  batch_norm l{2};
  rng gen{15};
  tensor x = tensor::randn({4, 2, 3, 3}, gen);
  tensor w = tensor::randn({4, 2, 3, 3}, gen);
  check_input_gradient(l, x, w, true, 1e-3, 3e-2);
  check_param_gradients(l, x, w, true, 1e-3, 3e-2);
}

TEST(BatchNorm, GradCheckDense2d) {
  batch_norm l{5};
  rng gen{16};
  tensor x = tensor::randn({6, 5}, gen);
  tensor w = tensor::randn({6, 5}, gen);
  check_input_gradient(l, x, w, true, 1e-3, 3e-2);
}

TEST(BatchNorm, ChannelMismatchThrows) {
  batch_norm l{3};
  rng gen{17};
  tensor x = tensor::randn({1, 4, 2, 2}, gen);
  EXPECT_THROW(l.forward(x, true), std::invalid_argument);
}

TEST(ProbeFlag, CachesOutputOnlyWhenProbed) {
  relu l;
  rng gen{18};
  tensor x = tensor::randn({1, 4}, gen);
  std::vector<const tensor*> probes;
  (void)l.forward(x, true);
  l.collect_probes(probes);
  EXPECT_TRUE(probes.empty());
  l.set_probe(true);
  (void)l.forward(x, true);
  l.collect_probes(probes);
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_EQ(probes[0]->numel(), 4);
  EXPECT_EQ(l.probe_count(), 1);
}

}  // namespace
}  // namespace dv
