#include "tensor/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace dv {
namespace {

TEST(Linalg, ColumnMeans) {
  const tensor x = tensor::from_data({3, 2}, {1, 10, 2, 20, 3, 30});
  const auto m = column_means(x);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 20.0);
}

TEST(Linalg, CovarianceOfKnownData) {
  // Two perfectly anti-correlated columns.
  const tensor x = tensor::from_data({4, 2}, {1, -1, -1, 1, 2, -2, -2, 2});
  const auto m = column_means(x);
  const auto cov = covariance(x, m, 0.0);
  EXPECT_NEAR(cov[0], 2.5, 1e-9);   // var of col 0
  EXPECT_NEAR(cov[3], 2.5, 1e-9);   // var of col 1
  EXPECT_NEAR(cov[1], -2.5, 1e-9);  // covariance
  EXPECT_NEAR(cov[2], -2.5, 1e-9);
}

TEST(Linalg, CovarianceRidgeOnDiagonal) {
  const tensor x = tensor::from_data({2, 2}, {0, 0, 0, 0});
  const auto cov = covariance(x, {0.0, 0.0}, 0.5);
  EXPECT_DOUBLE_EQ(cov[0], 0.5);
  EXPECT_DOUBLE_EQ(cov[3], 0.5);
  EXPECT_DOUBLE_EQ(cov[1], 0.0);
}

TEST(Linalg, CholeskyOfKnownMatrix) {
  // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
  std::vector<double> a{4, 2, 2, 3};
  cholesky_decompose(a, 2);
  EXPECT_NEAR(a[0], 2.0, 1e-12);
  EXPECT_NEAR(a[2], 1.0, 1e-12);
  EXPECT_NEAR(a[3], std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(a[1], 0.0);  // upper triangle cleared
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  std::vector<double> a{1, 2, 2, 1};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky_decompose(a, 2), std::domain_error);
}

TEST(Linalg, SolveRecoversKnownSolution) {
  // A = [[4, 2], [2, 3]], x = [1, 2] => b = A x = [8, 8].
  std::vector<double> a{4, 2, 2, 3};
  cholesky_decompose(a, 2);
  const auto x = cholesky_solve(a, 2, {8.0, 8.0});
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(Linalg, SolveRandomSpdRoundTrip) {
  rng gen{3};
  constexpr std::int64_t d = 8;
  // Build SPD A = B B^T + I.
  std::vector<double> b(d * d);
  for (auto& v : b) v = gen.normal();
  std::vector<double> a(d * d, 0.0);
  for (std::int64_t i = 0; i < d; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      double acc = i == j ? 1.0 : 0.0;
      for (std::int64_t k = 0; k < d; ++k) {
        acc += b[static_cast<std::size_t>(i * d + k)] *
               b[static_cast<std::size_t>(j * d + k)];
      }
      a[static_cast<std::size_t>(i * d + j)] = acc;
    }
  }
  std::vector<double> x_true(d);
  for (auto& v : x_true) v = gen.normal();
  std::vector<double> rhs(d, 0.0);
  for (std::int64_t i = 0; i < d; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      rhs[static_cast<std::size_t>(i)] +=
          a[static_cast<std::size_t>(i * d + j)] *
          x_true[static_cast<std::size_t>(j)];
    }
  }
  std::vector<double> l = a;
  cholesky_decompose(l, d);
  const auto x = cholesky_solve(l, d, rhs);
  for (std::int64_t i = 0; i < d; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST(Linalg, MahalanobisIdentityIsEuclidean) {
  std::vector<double> l{1, 0, 0, 1};  // identity factor
  const float x[2] = {3.0f, 4.0f};
  const double d2 = mahalanobis_squared(l, 2, {x, 2}, {0.0, 0.0});
  EXPECT_NEAR(d2, 25.0, 1e-9);
}

TEST(Linalg, MahalanobisScalesWithVariance) {
  // Sigma = diag(4, 1): distance along the first axis is damped.
  std::vector<double> sigma{4, 0, 0, 1};
  cholesky_decompose(sigma, 2);
  const float along_wide[2] = {2.0f, 0.0f};
  const float along_narrow[2] = {0.0f, 2.0f};
  const double d_wide = mahalanobis_squared(sigma, 2, {along_wide, 2}, {0, 0});
  const double d_narrow =
      mahalanobis_squared(sigma, 2, {along_narrow, 2}, {0, 0});
  EXPECT_NEAR(d_wide, 1.0, 1e-9);
  EXPECT_NEAR(d_narrow, 4.0, 1e-9);
}

TEST(Linalg, DimensionChecks) {
  std::vector<double> l{1};
  const float x[2] = {0, 0};
  EXPECT_THROW(mahalanobis_squared(l, 1, {x, 2}, {0.0}),
               std::invalid_argument);
  EXPECT_THROW(cholesky_solve(l, 1, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(cholesky_decompose(l, 2), std::invalid_argument);
}

}  // namespace
}  // namespace dv
