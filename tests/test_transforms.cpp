#include "augment/transforms.h"

#include <gtest/gtest.h>

#include "data/synth_digits.h"

namespace dv {
namespace {

tensor make_ramp_image() {
  tensor img{{1, 4, 4}};
  for (std::int64_t i = 0; i < 16; ++i) {
    img[i] = static_cast<float>(i) / 15.0f;
  }
  return img;
}

TEST(Transforms, BrightnessAddsBiasAndClamps) {
  const tensor img = make_ramp_image();
  const tensor out = apply_step(img, {transform_kind::brightness, 0.5f, 0.0f});
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_FLOAT_EQ(out[15], 1.0f);  // clamped
}

TEST(Transforms, NegativeBrightnessDarkens) {
  const tensor img = make_ramp_image();
  const tensor out =
      apply_step(img, {transform_kind::brightness, -0.5f, 0.0f});
  EXPECT_FLOAT_EQ(out[0], 0.0f);  // clamped at zero
  EXPECT_NEAR(out[15], 0.5f, 1e-6f);
}

TEST(Transforms, ContrastMultipliesAndClamps) {
  const tensor img = make_ramp_image();
  const tensor out = apply_step(img, {transform_kind::contrast, 3.0f, 0.0f});
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_NEAR(out[5], 1.0f, 1e-6f);  // 5/15*3 = 1.0
  EXPECT_FLOAT_EQ(out[15], 1.0f);
}

TEST(Transforms, ComplementIsInvolution) {
  const tensor img = make_ramp_image();
  const transform_step comp{transform_kind::complement, 0.0f, 0.0f};
  const tensor once = apply_step(img, comp);
  EXPECT_NEAR(once[0], 1.0f, 1e-6f);
  const tensor twice = apply_step(once, comp);
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_NEAR(twice[i], img[i], 1e-6f);
  }
}

TEST(Transforms, ScaleRejectsNonPositive) {
  const tensor img = make_ramp_image();
  EXPECT_THROW(apply_step(img, {transform_kind::scale, 0.0f, 1.0f}),
               std::invalid_argument);
}

TEST(Transforms, RotationPreservesCenterMass) {
  tensor img{{1, 9, 9}};
  img.at3(0, 4, 4) = 1.0f;
  const tensor out = apply_step(img, {transform_kind::rotation, 45.0f, 0.0f});
  EXPECT_NEAR(out.at3(0, 4, 4), 1.0f, 1e-3f);
}

TEST(Transforms, ChainAppliesInOrder) {
  const tensor img = make_ramp_image();
  // complement then brightness +0.2 != brightness then complement.
  const transform_chain a{{transform_kind::complement, 0, 0},
                          {transform_kind::brightness, 0.2f, 0}};
  const transform_chain b{{transform_kind::brightness, 0.2f, 0},
                          {transform_kind::complement, 0, 0}};
  const tensor ra = apply_chain(img, a);
  const tensor rb = apply_chain(img, b);
  EXPECT_NEAR(ra[15], 0.2f, 1e-6f);
  EXPECT_NEAR(rb[15], 0.0f, 1e-6f);
}

TEST(Transforms, EmptyChainIsIdentity) {
  const tensor img = make_ramp_image();
  const tensor out = apply_chain(img, {});
  for (std::int64_t i = 0; i < img.numel(); ++i) EXPECT_EQ(out[i], img[i]);
}

TEST(Transforms, DescribeStrings) {
  EXPECT_EQ(transform_step({transform_kind::rotation, 30.0f, 0}).describe(),
            "rotation(theta=30 deg)");
  EXPECT_EQ(transform_step({transform_kind::shear, 0.5f, 0.25f}).describe(),
            "shear(sh=0.5, sv=0.25)");
  EXPECT_EQ(transform_step({transform_kind::complement, 0, 0}).describe(),
            "complement");
  const transform_chain chain{{transform_kind::complement, 0, 0},
                              {transform_kind::scale, 0.8f, 0.8f}};
  EXPECT_EQ(describe_chain(chain), "complement + scale(sx=0.8, sy=0.8)");
}

TEST(Transforms, KindNamesExhaustive) {
  EXPECT_STREQ(transform_kind_name(transform_kind::brightness), "brightness");
  EXPECT_STREQ(transform_kind_name(transform_kind::translation), "translation");
}

class AllTransformSteps : public ::testing::TestWithParam<transform_step> {};

TEST_P(AllTransformSteps, OutputStaysInRangeAndShape) {
  synth_digits_config cfg;
  cfg.count = 5;
  const dataset d = make_synth_digits(cfg);
  const tensor img = d.images.sample(0);
  const tensor out = apply_step(img, GetParam());
  EXPECT_EQ(out.shape(), img.shape());
  EXPECT_GE(out.min(), 0.0f);
  EXPECT_LE(out.max(), 1.0f);
}

TEST_P(AllTransformSteps, NontrivialStepsChangeTheImage) {
  synth_digits_config cfg;
  cfg.count = 5;
  const dataset d = make_synth_digits(cfg);
  const tensor img = d.images.sample(1);
  const tensor out = apply_step(img, GetParam());
  double diff = 0.0;
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    diff += std::abs(static_cast<double>(out[i]) - img[i]);
  }
  EXPECT_GT(diff, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Steps, AllTransformSteps,
    ::testing::Values(transform_step{transform_kind::brightness, 0.4f, 0},
                      transform_step{transform_kind::contrast, 3.0f, 0},
                      transform_step{transform_kind::rotation, 40.0f, 0},
                      transform_step{transform_kind::shear, 0.4f, 0.3f},
                      transform_step{transform_kind::scale, 0.6f, 0.6f},
                      transform_step{transform_kind::translation, 5.0f, 4.0f},
                      transform_step{transform_kind::complement, 0, 0}));

TEST(TransformDataset, PreservesLabelsAndCount) {
  synth_digits_config cfg;
  cfg.count = 12;
  const dataset d = make_synth_digits(cfg);
  const dataset t =
      transform_dataset(d, {{transform_kind::rotation, 30.0f, 0.0f}});
  EXPECT_EQ(t.size(), d.size());
  EXPECT_EQ(t.labels, d.labels);
  EXPECT_NE(t.name, d.name);
}

}  // namespace
}  // namespace dv
