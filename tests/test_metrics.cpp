#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace dv {
namespace {

TEST(RocAuc, PerfectSeparation) {
  const std::vector<double> pos{3.0, 4.0, 5.0};
  const std::vector<double> neg{0.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 1.0);
}

TEST(RocAuc, PerfectlyInverted) {
  const std::vector<double> pos{0.0, 1.0};
  const std::vector<double> neg{2.0, 3.0};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.0);
}

TEST(RocAuc, ChanceForIdenticalDistributions) {
  const std::vector<double> pos{1.0, 2.0, 3.0};
  const std::vector<double> neg{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.5);
}

TEST(RocAuc, HandComputedMixedCase) {
  // pos {2, 0}, neg {1}: pairs (2>1)=1, (0<1)=0 -> AUC = 0.5.
  const std::vector<double> pos{2.0, 0.0};
  const std::vector<double> neg{1.0};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.5);
}

TEST(RocAuc, TiesCountHalf) {
  const std::vector<double> pos{1.0};
  const std::vector<double> neg{1.0};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.5);
  const std::vector<double> pos2{1.0, 2.0};
  const std::vector<double> neg2{1.0};
  // Pairs: (1 vs 1) = 0.5, (2 vs 1) = 1 -> AUC = 0.75.
  EXPECT_DOUBLE_EQ(roc_auc(pos2, neg2), 0.75);
}

TEST(RocAuc, UnbalancedSets) {
  const std::vector<double> pos{10.0};
  const std::vector<double> neg{1.0, 2.0, 3.0, 4.0, 11.0};
  // 4 of 5 pairs won -> 0.8.
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.8);
}

TEST(RocAuc, EmptyThrows) {
  const std::vector<double> some{1.0};
  const std::vector<double> none{};
  EXPECT_THROW(roc_auc(none, some), std::invalid_argument);
  EXPECT_THROW(roc_auc(some, none), std::invalid_argument);
}

TEST(Rates, TprFprAtThreshold) {
  const std::vector<double> pos{0.1, 0.6, 0.9};
  const std::vector<double> neg{0.0, 0.2, 0.7};
  EXPECT_DOUBLE_EQ(tpr_at_threshold(pos, 0.5), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(fpr_at_threshold(neg, 0.5), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(tpr_at_threshold(pos, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(fpr_at_threshold(neg, -1.0), 1.0);
}

TEST(Thresholds, CentroidMidpoint) {
  const std::vector<double> pos{2.0, 4.0};  // mean 3
  const std::vector<double> neg{0.0, -2.0}; // mean -1
  EXPECT_DOUBLE_EQ(centroid_threshold(pos, neg), 1.0);
}

TEST(Thresholds, ForFprHitsTarget) {
  std::vector<double> neg;
  for (int i = 0; i < 100; ++i) neg.push_back(static_cast<double>(i));
  const double thr = threshold_for_fpr(neg, 0.05);
  EXPECT_LE(fpr_at_threshold(neg, thr), 0.05 + 1e-12);
  // And it is not absurdly conservative: at most one extra step.
  EXPECT_GE(fpr_at_threshold(neg, thr), 0.03);
}

TEST(Thresholds, ForFprZeroFlagsNothing) {
  const std::vector<double> neg{1.0, 2.0, 3.0};
  const double thr = threshold_for_fpr(neg, 0.0);
  EXPECT_DOUBLE_EQ(fpr_at_threshold(neg, thr), 0.0);
}

TEST(Thresholds, BadFprThrows) {
  const std::vector<double> neg{1.0};
  EXPECT_THROW(threshold_for_fpr(neg, -0.1), std::invalid_argument);
  EXPECT_THROW(threshold_for_fpr(neg, 1.1), std::invalid_argument);
}

TEST(RocCurve, EndpointsAndMonotonicity) {
  const std::vector<double> pos{0.8, 0.9, 0.7};
  const std::vector<double> neg{0.1, 0.5, 0.3};
  const auto curve = roc_curve(pos, neg);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_LT(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(RocCurve, AreaMatchesRankAuc) {
  const std::vector<double> pos{3.0, 1.5, 2.2, 0.4, 2.9};
  const std::vector<double> neg{0.1, 1.9, 0.8, 2.5};
  const auto curve = roc_curve(pos, neg);
  EXPECT_NEAR(auc_from_curve(curve), roc_auc(pos, neg), 1e-12);
}

TEST(RocCurve, TiesShareOnePoint) {
  const std::vector<double> pos{1.0, 1.0};
  const std::vector<double> neg{1.0};
  const auto curve = roc_curve(pos, neg);
  // (0,0) start plus a single combined step to (1,1).
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_NEAR(auc_from_curve(curve), 0.5, 1e-12);
}

TEST(RocCurve, EmptyThrows) {
  const std::vector<double> some{1.0};
  const std::vector<double> none{};
  EXPECT_THROW(roc_curve(none, some), std::invalid_argument);
}

TEST(Mean, Basic) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.0);
  const std::vector<double> none{};
  EXPECT_THROW(mean(none), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// util/metrics.h registry + util/trace.h span tests. The registry and the
// trace tree are process-wide, so every test runs enabled with a frozen
// clock and restores the disabled default afterwards.

class MetricsRegistry : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::set_enabled(true);
    metrics::set_clock_frozen(true);
    metrics::reset();
    trace_reset();
  }
  void TearDown() override {
    metrics::reset();
    trace_reset();
    metrics::set_clock_frozen(false);
    metrics::set_enabled(false);
  }
};

TEST_F(MetricsRegistry, CounterAccumulatesAndIsIdempotentByName) {
  metrics::counter* c = metrics::get_counter("dv_test_events_total");
  ASSERT_NE(c, nullptr);
  c->add();
  c->add(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name -> same instance; one series registered.
  EXPECT_EQ(metrics::get_counter("dv_test_events_total"), c);
  EXPECT_EQ(metrics::series_count(), 1u);
  metrics::count("dv_test_events_total", 8);
  EXPECT_EQ(c->value(), 50u);
}

TEST_F(MetricsRegistry, GaugeIsLastWriteWins) {
  metrics::gauge* g = metrics::get_gauge("dv_test_level");
  ASSERT_NE(g, nullptr);
  g->set(1.5);
  g->set(-0.25);
  EXPECT_DOUBLE_EQ(g->value(), -0.25);
}

TEST_F(MetricsRegistry, HistogramBucketsCountAndFixedPointSum) {
  const auto opts = metrics::histogram_options::linear(0.0, 1.0, 2,
                                                       /*scale=*/1000.0);
  ASSERT_EQ(opts.bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(opts.bounds[0], 0.5);
  EXPECT_DOUBLE_EQ(opts.bounds[1], 1.0);

  metrics::histogram* h = metrics::get_histogram("dv_test_seconds", opts);
  ASSERT_NE(h, nullptr);
  h->observe(0.25);  // first bucket
  h->observe(0.5);   // bounds are inclusive upper bounds -> still first
  h->observe(0.75);  // second bucket
  h->observe(2.0);   // overflow
  EXPECT_EQ(h->count(), 4u);
  const auto buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  // Sum is exact at 1/1000 resolution: 250 + 500 + 750 + 2000 ticks.
  EXPECT_DOUBLE_EQ(h->sum(), 3.5);
}

TEST_F(MetricsRegistry, KindMismatchThrows) {
  ASSERT_NE(metrics::get_counter("dv_test_series"), nullptr);
  EXPECT_THROW(metrics::get_gauge("dv_test_series"), std::logic_error);
  EXPECT_THROW(metrics::get_histogram("dv_test_series",
                                      metrics::histogram_options::latency()),
               std::logic_error);
}

TEST_F(MetricsRegistry, DisabledModeLeavesRegistryEmpty) {
  metrics::set_enabled(false);
  EXPECT_EQ(metrics::get_counter("dv_test_off_total"), nullptr);
  EXPECT_EQ(metrics::get_gauge("dv_test_off"), nullptr);
  EXPECT_EQ(metrics::get_histogram("dv_test_off_seconds",
                                   metrics::histogram_options::latency()),
            nullptr);
  metrics::count("dv_test_off_total");
  metrics::set("dv_test_off", 1.0);
  metrics::observe("dv_test_off_seconds",
                   metrics::histogram_options::latency(), 0.1);
  { trace_span span{"off.span"}; }
  EXPECT_EQ(metrics::series_count(), 0u);
  EXPECT_TRUE(trace_snapshot().empty());
  EXPECT_FALSE(metrics::write_artifacts("artifacts"));
}

TEST_F(MetricsRegistry, SnapshotMatchesPrometheusGolden) {
  metrics::count("dv_demo_frames_total", 3);
  metrics::set("dv_demo_level", 1.5);
  const auto opts =
      metrics::histogram_options::linear(0.0, 1.0, 2, /*scale=*/1000.0);
  metrics::observe("dv_demo_latency_seconds{op=\"fit\"}", opts, 0.25);
  metrics::observe("dv_demo_latency_seconds{op=\"fit\"}", opts, 0.75);
  metrics::observe("dv_demo_latency_seconds{op=\"fit\"}", opts, 2.0);

  const std::string prom = metrics::collect().to_prometheus();
  const std::string expected =
      "# TYPE dv_demo_frames_total counter\n"
      "dv_demo_frames_total 3\n"
      "# TYPE dv_demo_latency_seconds histogram\n"
      "dv_demo_latency_seconds_bucket{op=\"fit\",le=\"0.5\"} 1\n"
      "dv_demo_latency_seconds_bucket{op=\"fit\",le=\"1\"} 2\n"
      "dv_demo_latency_seconds_bucket{op=\"fit\",le=\"+Inf\"} 3\n"
      "dv_demo_latency_seconds_sum{op=\"fit\"} 3\n"
      "dv_demo_latency_seconds_count{op=\"fit\"} 3\n"
      "# TYPE dv_demo_level gauge\n"
      "dv_demo_level 1.5\n";
  EXPECT_EQ(prom, expected);
}

TEST_F(MetricsRegistry, SnapshotMatchesJsonGolden) {
  metrics::count("dv_demo_frames_total", 3);
  metrics::set("dv_demo_level", 1.5);
  const std::string json = metrics::collect().to_json();
  const std::string expected =
      "{\"version\":1,\"metrics\":[\n"
      "  {\"name\":\"dv_demo_frames_total\",\"kind\":\"counter\","
      "\"value\":3},\n"
      "  {\"name\":\"dv_demo_level\",\"kind\":\"gauge\",\"value\":1.5}\n"
      "]}\n";
  EXPECT_EQ(json, expected);
}

TEST_F(MetricsRegistry, SnapshotsBitwiseIdenticalAcrossThreadCounts) {
  const auto opts =
      metrics::histogram_options::linear(-0.5, 2.0, 10, /*scale=*/1048576.0);
  std::vector<std::string> exports;
  for (const int threads : {1, 8}) {
    set_thread_count(threads);
    metrics::reset();
    metrics::counter* images = metrics::get_counter("dv_test_images_total");
    metrics::histogram* disc =
        metrics::get_histogram("dv_test_discrepancy", opts);
    ASSERT_NE(images, nullptr);
    ASSERT_NE(disc, nullptr);
    // dv:parallel-safe(counters and histograms shard per thread)
    parallel_for(0, 10000, 1, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        images->add();
        disc->observe(static_cast<double>(i % 23) * 0.1 - 0.4);
      }
    });
    metrics::set("dv_test_last_loss", 0.125);
    exports.push_back(metrics::collect().to_json() +
                      metrics::collect().to_prometheus());
  }
  set_thread_count(0);
  ASSERT_EQ(exports.size(), 2u);
  EXPECT_EQ(exports[0], exports[1]);
}

TEST_F(MetricsRegistry, TraceTreeNestsAndAggregates) {
  {
    trace_span outer{"unit.outer"};
    for (int i = 0; i < 3; ++i) {
      trace_span inner{"unit.inner"};
    }
  }
  { trace_span outer{"unit.outer"}; }

  const auto tree = trace_snapshot();
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree[0].name, "unit.outer");
  EXPECT_EQ(tree[0].calls, 2u);
  ASSERT_EQ(tree[0].children.size(), 1u);
  EXPECT_EQ(tree[0].children[0].name, "unit.inner");
  EXPECT_EQ(tree[0].children[0].calls, 3u);
  // Frozen clock -> durations are exactly zero.
  EXPECT_DOUBLE_EQ(tree[0].total_seconds, 0.0);

  const std::string report = trace_report();
  EXPECT_NE(report.find("unit.outer"), std::string::npos);
  EXPECT_NE(report.find("unit.inner"), std::string::npos);

  trace_reset();
  EXPECT_TRUE(trace_snapshot().empty());
  EXPECT_EQ(trace_report(), "");
}

}  // namespace
}  // namespace dv
