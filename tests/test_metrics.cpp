#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace dv {
namespace {

TEST(RocAuc, PerfectSeparation) {
  const std::vector<double> pos{3.0, 4.0, 5.0};
  const std::vector<double> neg{0.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 1.0);
}

TEST(RocAuc, PerfectlyInverted) {
  const std::vector<double> pos{0.0, 1.0};
  const std::vector<double> neg{2.0, 3.0};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.0);
}

TEST(RocAuc, ChanceForIdenticalDistributions) {
  const std::vector<double> pos{1.0, 2.0, 3.0};
  const std::vector<double> neg{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.5);
}

TEST(RocAuc, HandComputedMixedCase) {
  // pos {2, 0}, neg {1}: pairs (2>1)=1, (0<1)=0 -> AUC = 0.5.
  const std::vector<double> pos{2.0, 0.0};
  const std::vector<double> neg{1.0};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.5);
}

TEST(RocAuc, TiesCountHalf) {
  const std::vector<double> pos{1.0};
  const std::vector<double> neg{1.0};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.5);
  const std::vector<double> pos2{1.0, 2.0};
  const std::vector<double> neg2{1.0};
  // Pairs: (1 vs 1) = 0.5, (2 vs 1) = 1 -> AUC = 0.75.
  EXPECT_DOUBLE_EQ(roc_auc(pos2, neg2), 0.75);
}

TEST(RocAuc, UnbalancedSets) {
  const std::vector<double> pos{10.0};
  const std::vector<double> neg{1.0, 2.0, 3.0, 4.0, 11.0};
  // 4 of 5 pairs won -> 0.8.
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.8);
}

TEST(RocAuc, EmptyThrows) {
  const std::vector<double> some{1.0};
  const std::vector<double> none{};
  EXPECT_THROW(roc_auc(none, some), std::invalid_argument);
  EXPECT_THROW(roc_auc(some, none), std::invalid_argument);
}

TEST(Rates, TprFprAtThreshold) {
  const std::vector<double> pos{0.1, 0.6, 0.9};
  const std::vector<double> neg{0.0, 0.2, 0.7};
  EXPECT_DOUBLE_EQ(tpr_at_threshold(pos, 0.5), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(fpr_at_threshold(neg, 0.5), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(tpr_at_threshold(pos, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(fpr_at_threshold(neg, -1.0), 1.0);
}

TEST(Thresholds, CentroidMidpoint) {
  const std::vector<double> pos{2.0, 4.0};  // mean 3
  const std::vector<double> neg{0.0, -2.0}; // mean -1
  EXPECT_DOUBLE_EQ(centroid_threshold(pos, neg), 1.0);
}

TEST(Thresholds, ForFprHitsTarget) {
  std::vector<double> neg;
  for (int i = 0; i < 100; ++i) neg.push_back(static_cast<double>(i));
  const double thr = threshold_for_fpr(neg, 0.05);
  EXPECT_LE(fpr_at_threshold(neg, thr), 0.05 + 1e-12);
  // And it is not absurdly conservative: at most one extra step.
  EXPECT_GE(fpr_at_threshold(neg, thr), 0.03);
}

TEST(Thresholds, ForFprZeroFlagsNothing) {
  const std::vector<double> neg{1.0, 2.0, 3.0};
  const double thr = threshold_for_fpr(neg, 0.0);
  EXPECT_DOUBLE_EQ(fpr_at_threshold(neg, thr), 0.0);
}

TEST(Thresholds, BadFprThrows) {
  const std::vector<double> neg{1.0};
  EXPECT_THROW(threshold_for_fpr(neg, -0.1), std::invalid_argument);
  EXPECT_THROW(threshold_for_fpr(neg, 1.1), std::invalid_argument);
}

TEST(RocCurve, EndpointsAndMonotonicity) {
  const std::vector<double> pos{0.8, 0.9, 0.7};
  const std::vector<double> neg{0.1, 0.5, 0.3};
  const auto curve = roc_curve(pos, neg);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_LT(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(RocCurve, AreaMatchesRankAuc) {
  const std::vector<double> pos{3.0, 1.5, 2.2, 0.4, 2.9};
  const std::vector<double> neg{0.1, 1.9, 0.8, 2.5};
  const auto curve = roc_curve(pos, neg);
  EXPECT_NEAR(auc_from_curve(curve), roc_auc(pos, neg), 1e-12);
}

TEST(RocCurve, TiesShareOnePoint) {
  const std::vector<double> pos{1.0, 1.0};
  const std::vector<double> neg{1.0};
  const auto curve = roc_curve(pos, neg);
  // (0,0) start plus a single combined step to (1,1).
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_NEAR(auc_from_curve(curve), 0.5, 1e-12);
}

TEST(RocCurve, EmptyThrows) {
  const std::vector<double> some{1.0};
  const std::vector<double> none{};
  EXPECT_THROW(roc_curve(none, some), std::invalid_argument);
}

TEST(Mean, Basic) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.0);
  const std::vector<double> none{};
  EXPECT_THROW(mean(none), std::invalid_argument);
}

}  // namespace
}  // namespace dv
