// Tests for the flat snapshot format (docs/SNAPSHOTS.md): writer/view
// round-trips per section kind, the 64-byte payload alignment promise,
// the corruption contract (EVERY flipped byte and EVERY truncation length
// raises serialize_error — never UB), and the bitwise-identity matrix — a
// snapshot-backed validator_bank_view scores byte-identically to the
// fitted in-memory bank across DV_THREADS x DV_SIMD x DV_CACHE.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/deep_validator.h"
#include "core/validator_bank.h"
#include "core/weighted_joint.h"
#include "eval/metrics.h"
#include "tensor/simd/simd.h"
#include "test_util.h"
#include "util/flat_snapshot.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

/// Restores the process-wide cache/thread/simd/snapshot knobs on exit.
struct knob_guard {
  bool cache = cache_enabled();
  std::size_t capacity = cache_capacity();
  bool mmap = snapshot_mmap_enabled();
  ~knob_guard() {
    set_cache_enabled(cache);
    set_cache_capacity(capacity);
    set_snapshot_mmap(mmap);
    set_thread_count(0);
    reset_simd_level();
  }
};

std::vector<simd_level> supported_levels() {
  std::vector<simd_level> out;
  for (simd_level lvl :
       {simd_level::scalar, simd_level::sse2, simd_level::avx2}) {
    if (simd_level_supported(lvl)) out.push_back(lvl);
  }
  return out;
}

/// A fitted validator with a threshold, shared across this binary.
const deep_validator& fitted_validator() {
  static const deep_validator dv = [] {
    const auto& world = shared_tiny_world();
    deep_validator out;
    deep_validator_config cfg;
    cfg.max_train_per_class = 40;
    out.fit(*world.model, world.train, cfg);
    const auto clean = out.evaluate(*world.model, world.test.images).joint;
    out.set_threshold(threshold_for_fpr(clean, 0.05));
    return out;
  }();
  return dv;
}

/// The shared snapshot artifact of fitted_validator(), written once.
const std::string& fitted_snapshot_path() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "dv-fitted-bank.dvsnap";
    fitted_validator().save_snapshot(p);
    return p;
  }();
  return path;
}

/// First `n` test images stacked as one [n,1,28,28] batch.
tensor subset_frames(std::int64_t n) {
  const auto& world = shared_tiny_world();
  tensor frames{{n, 1, 28, 28}};
  for (std::int64_t i = 0; i < n; ++i) {
    frames.set_sample(i, world.test.images.sample(i));
  }
  return frames;
}

bool same_doubles(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(double)) == 0);
}

void expect_identical_scores(const validation_scores& a,
                             const validation_scores& b) {
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_TRUE(same_doubles(a.joint, b.joint));
  ASSERT_EQ(a.per_layer.size(), b.per_layer.size());
  for (std::size_t l = 0; l < a.per_layer.size(); ++l) {
    EXPECT_TRUE(same_doubles(a.per_layer[l], b.per_layer[l]))
        << "layer " << l;
  }
}

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

// -- writer / view units ------------------------------------------------------

TEST(SnapshotFormat, RoundTripAllKinds) {
  snapshot_writer w;
  const std::vector<float> f32v{1.0f, -2.5f, 3.25f};
  const std::vector<double> f64v{0.125, -7.5};
  const std::vector<std::int32_t> i32v{-1, 0, 7, 42};
  const std::vector<std::int64_t> i64v{1LL << 40, -9};
  const char raw[] = "opaque";
  w.add_f32("a/f32", f32v);
  w.add_f64("a/f64", f64v);
  w.add_i32("b/i32", i32v);
  w.add_i64("b/i64", i64v);
  w.add_bytes("b/raw", raw, sizeof(raw));
  w.add_f64_scalar("s/f", 2.75);
  w.add_i64_scalar("s/i", -13);
  EXPECT_EQ(w.section_count(), 7u);

  const auto view = snapshot_view::from_image(w.serialize());
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->section_count(), 7u);
  EXPECT_FALSE(view->mapped());

  const auto f32s = view->f32("a/f32");
  ASSERT_EQ(f32s.size(), f32v.size());
  EXPECT_EQ(std::memcmp(f32s.data(), f32v.data(), f32v.size() * 4), 0);
  EXPECT_TRUE(aligned64(f32s.data()));

  const auto f64s = view->f64("a/f64");
  ASSERT_EQ(f64s.size(), f64v.size());
  EXPECT_EQ(std::memcmp(f64s.data(), f64v.data(), f64v.size() * 8), 0);
  EXPECT_TRUE(aligned64(f64s.data()));

  const auto i32s = view->i32("b/i32");
  ASSERT_EQ(i32s.size(), i32v.size());
  EXPECT_EQ(std::memcmp(i32s.data(), i32v.data(), i32v.size() * 4), 0);
  EXPECT_TRUE(aligned64(i32s.data()));

  const auto i64s = view->i64("b/i64");
  ASSERT_EQ(i64s.size(), i64v.size());
  EXPECT_TRUE(aligned64(i64s.data()));

  const auto rawb = view->bytes("b/raw");
  ASSERT_EQ(rawb.size(), sizeof(raw));
  EXPECT_EQ(std::memcmp(rawb.data(), raw, sizeof(raw)), 0);
  EXPECT_TRUE(aligned64(rawb.data()));

  EXPECT_EQ(view->f64_scalar("s/f"), 2.75);
  EXPECT_EQ(view->i64_scalar("s/i"), -13);
  EXPECT_TRUE(view->has("a/f32"));
  EXPECT_FALSE(view->has("a/F32"));
}

TEST(SnapshotFormat, EmptySnapshotRoundTrips) {
  const auto view = snapshot_view::from_image(snapshot_writer{}.serialize());
  EXPECT_EQ(view->section_count(), 0u);
  EXPECT_FALSE(view->has("anything"));
}

TEST(SnapshotFormat, WriterRejectsDuplicateAndEmptyNames) {
  snapshot_writer w;
  w.add_f64_scalar("x", 1.0);
  EXPECT_THROW(w.add_f64_scalar("x", 2.0), std::invalid_argument);
  EXPECT_THROW(w.add_i64_scalar("", 0), std::invalid_argument);
}

TEST(SnapshotFormat, TypedAccessChecksKindAndSize) {
  snapshot_writer w;
  w.add_f32("f", std::vector<float>{1.0f, 2.0f});
  w.add_f64("two", std::vector<double>{1.0, 2.0});
  const auto view = snapshot_view::from_image(w.serialize());
  EXPECT_THROW((void)view->f64("f"), serialize_error);        // wrong kind
  EXPECT_THROW((void)view->i32("f"), serialize_error);        // wrong kind
  EXPECT_THROW((void)view->f32("missing"), serialize_error);  // absent
  EXPECT_THROW((void)view->f64_scalar("two"), serialize_error);  // not scalar
  EXPECT_NO_THROW((void)view->bytes("f"));  // bytes view of anything is fine
}

// -- file round trip ----------------------------------------------------------

TEST(SnapshotFile, FinishOpenRoundTripBothIoPaths) {
  knob_guard guard;
  snapshot_writer w;
  const std::vector<double> payload{3.5, -1.25, 0.0};
  w.add_f64("p", payload);
  const std::string path = ::testing::TempDir() + "dv-roundtrip.dvsnap";
  w.finish(path);

  const auto image = w.serialize();
  for (bool use_mmap : {true, false}) {
    set_snapshot_mmap(use_mmap);
    const auto view = snapshot_view::open(path);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->mapped(), use_mmap);
    EXPECT_EQ(view->path(), path);
    EXPECT_EQ(view->byte_size(), image.size());
    const auto p = view->f64("p");
    ASSERT_EQ(p.size(), payload.size());
    EXPECT_EQ(std::memcmp(p.data(), payload.data(), payload.size() * 8), 0);
    EXPECT_TRUE(aligned64(p.data()));
    // Both I/O paths validate the same digest.
    EXPECT_EQ(view->digest(),
              snapshot_view::from_image(image)->digest());
  }
}

TEST(SnapshotFile, OpenMissingFileThrows) {
  EXPECT_THROW(
      (void)snapshot_view::open(::testing::TempDir() + "dv-no-such.dvsnap"),
      serialize_error);
}

// -- corruption drill ---------------------------------------------------------

TEST(SnapshotCorruption, EveryFlippedByteFails) {
  snapshot_writer w;
  w.add_f32("bank/x", std::vector<float>{1.0f, 2.0f, 3.0f});
  w.add_i64_scalar("bank/n", 3);
  const auto image = w.serialize();
  ASSERT_NO_THROW((void)snapshot_view::from_image(image));
  for (std::size_t i = 0; i < image.size(); ++i) {
    auto mutated = image;
    mutated[i] ^= 0x01;
    EXPECT_THROW((void)snapshot_view::from_image(mutated), serialize_error)
        << "flipped byte " << i << " of " << image.size();
  }
}

TEST(SnapshotCorruption, EveryTruncationLengthFails) {
  snapshot_writer w;
  w.add_f64("bank/y", std::vector<double>{4.0, 5.0});
  const auto image = w.serialize();
  ASSERT_NO_THROW((void)snapshot_view::from_image(image));
  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_THROW((void)snapshot_view::from_image(
                     std::span<const std::uint8_t>{image.data(), len}),
                 serialize_error)
        << "truncated to " << len << " of " << image.size();
  }
  // Trailing garbage is also rejected, not silently ignored.
  auto extended = image;
  extended.push_back(0);
  EXPECT_THROW((void)snapshot_view::from_image(extended), serialize_error);
}

// -- bank snapshots -----------------------------------------------------------

TEST(SnapshotBank, BitwiseIdentityMatrix) {
  knob_guard guard;
  const auto& dv = fitted_validator();
  const auto& world = shared_tiny_world();
  const auto bank =
      validator_bank_view::from_snapshot(snapshot_view::open(
          fitted_snapshot_path()));
  ASSERT_TRUE(bank.valid());
  EXPECT_EQ(bank.validated_layers(), dv.validated_layers());
  EXPECT_EQ(bank.threshold(), dv.threshold());
  const tensor frames = subset_frames(24);
  for (int threads : {1, 8}) {
    for (simd_level lvl : supported_levels()) {
      for (bool cache : {false, true}) {
        set_thread_count(threads);
        set_simd_level(lvl);
        set_cache_enabled(cache);
        const auto fitted = dv.evaluate(*world.model, frames);
        const auto mapped = bank.evaluate(*world.model, frames);
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " simd="
                     << simd_level_name(lvl) << " cache=" << cache);
        expect_identical_scores(fitted, mapped);
      }
    }
  }
}

TEST(SnapshotBank, MaterializedValidatorMatchesOriginal) {
  const auto& dv = fitted_validator();
  const auto& world = shared_tiny_world();
  const deep_validator loaded =
      deep_validator::load_snapshot(fitted_snapshot_path());
  EXPECT_EQ(loaded.validated_layers(), dv.validated_layers());
  EXPECT_EQ(loaded.threshold(), dv.threshold());
  const tensor frames = subset_frames(16);
  expect_identical_scores(dv.evaluate(*world.model, frames),
                          loaded.evaluate(*world.model, frames));
}

TEST(SnapshotBank, LegacyArtifactUpgradesLosslessly) {
  const auto& dv = fitted_validator();
  const auto& world = shared_tiny_world();
  const std::string legacy = ::testing::TempDir() + "dv-legacy-bank.bin";
  const std::string snap = ::testing::TempDir() + "dv-upgraded-bank.dvsnap";
  dv.save(legacy);
  deep_validator::load(legacy).save_snapshot(snap);
  const auto bank =
      validator_bank_view::from_snapshot(snapshot_view::open(snap));
  const tensor frames = subset_frames(16);
  expect_identical_scores(dv.evaluate(*world.model, frames),
                          bank.evaluate(*world.model, frames));
}

TEST(SnapshotBank, EmbeddedWeightedCombinerMatchesFitted) {
  const auto& dv = fitted_validator();
  const auto& world = shared_tiny_world();
  weighted_joint_validator weighted;
  const tensor outliers =
      weighted_joint_validator::make_noise_outliers({32, 1, 28, 28}, 99);
  weighted.fit(*world.model, dv, world.test.images, outliers);
  ASSERT_TRUE(weighted.fitted());

  const std::string path = ::testing::TempDir() + "dv-weighted-bank.dvsnap";
  dv.save_snapshot(path, &weighted);
  const auto bank =
      validator_bank_view::from_snapshot(snapshot_view::open(path));
  ASSERT_TRUE(bank.weighted().valid());
  EXPECT_EQ(bank.weighted().bias(), weighted.bias());

  const tensor frames = subset_frames(16);
  const auto expected = weighted.score_batch(*world.model, dv, frames);
  const auto scores = bank.evaluate(*world.model, frames);
  const std::size_t layers = scores.per_layer.size();
  ASSERT_EQ(bank.weighted().weights().size(), layers);
  std::vector<double> row(layers);
  for (std::size_t j = 0; j < expected.size(); ++j) {
    for (std::size_t l = 0; l < layers; ++l) row[l] = scores.per_layer[l][j];
    const double got = bank.weighted().decision(row);
    EXPECT_EQ(std::memcmp(&got, &expected[j], sizeof(double)), 0)
        << "image " << j;
  }
}

TEST(SnapshotBank, FromSnapshotRejectsNonBankFile) {
  snapshot_writer w;
  w.add_f64_scalar("not/a/bank", 1.0);
  const auto view = snapshot_view::from_image(w.serialize());
  EXPECT_THROW((void)validator_bank_view::from_snapshot(view),
               serialize_error);
}

// -- metrics ------------------------------------------------------------------

TEST(SnapshotMetrics, LoadFamilyRecorded) {
  const bool was_enabled = metrics::enabled();
  metrics::set_enabled(true);
  const auto view = snapshot_view::open(fitted_snapshot_path());
  const auto snap = metrics::collect();
  metrics::set_enabled(was_enabled);

  const auto find = [&](std::string_view name) -> const metrics::sample* {
    for (const auto& s : snap.samples) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const auto* loads = find("dv_snapshot_loads_total");
  ASSERT_NE(loads, nullptr);
  EXPECT_GE(loads->value, 1.0);
  const auto* seconds = find("dv_snapshot_load_seconds");
  ASSERT_NE(seconds, nullptr);
  EXPECT_EQ(seconds->kind, metrics::kind::histogram);
  EXPECT_GE(seconds->count, 1u);
  const auto* bytes = find("dv_snapshot_bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_GE(bytes->value, static_cast<double>(view->byte_size()));
}

}  // namespace
}  // namespace dv
