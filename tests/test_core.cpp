#include <gtest/gtest.h>

#include <cstdio>

#include "core/deep_validator.h"
#include "core/feature_scaler.h"
#include "core/probe_reducer.h"
#include "test_util.h"
#include "util/serialize.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

// -- Probe reducer --------------------------------------------------------------

TEST(ProbeReducer, GapAveragesPlanes) {
  tensor probe = tensor::from_data({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  const tensor out = reduce_probe(probe, 1);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[1], 25.0f);
}

TEST(ProbeReducer, Spatial2PreservesQuadrants) {
  // 4x4 plane with distinct quadrant values.
  tensor probe{{1, 1, 4, 4}};
  for (std::int64_t y = 0; y < 4; ++y) {
    for (std::int64_t x = 0; x < 4; ++x) {
      probe.at4(0, 0, y, x) =
          static_cast<float>((y / 2) * 2 + (x / 2));  // 0,1,2,3 by quadrant
    }
  }
  const tensor out = reduce_probe(probe, 2);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{1, 4}));
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 1.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 3.0f);
}

TEST(ProbeReducer, DensePassThrough) {
  rng gen{1};
  const tensor probe = tensor::randn({3, 7}, gen);
  const tensor out = reduce_probe(probe, 4);
  EXPECT_EQ(out.shape(), probe.shape());
  for (std::int64_t i = 0; i < probe.numel(); ++i) {
    EXPECT_EQ(out[i], probe[i]);
  }
}

TEST(ProbeReducer, SpatialClampsToPlaneSize) {
  rng gen{2};
  const tensor probe = tensor::randn({1, 3, 2, 2}, gen);
  const tensor out = reduce_probe(probe, 5);  // clamps to 2
  EXPECT_EQ(out.extent(1), 3 * 2 * 2);
}

TEST(ProbeReducer, ReducedDimensionMatches) {
  EXPECT_EQ(reduced_dimension({4, 8, 6, 6}, 1), 8);
  EXPECT_EQ(reduced_dimension({4, 8, 6, 6}, 2), 32);
  EXPECT_EQ(reduced_dimension({4, 100}, 3), 100);
  EXPECT_THROW(reduced_dimension({4}, 1), std::invalid_argument);
}

TEST(ProbeReducer, InvalidSpatialThrows) {
  tensor probe{{1, 1, 2, 2}};
  EXPECT_THROW(reduce_probe(probe, 0), std::invalid_argument);
}

// -- Feature scaler --------------------------------------------------------------

TEST(FeatureScaler, StandardizesColumns) {
  rng gen{3};
  tensor features{{100, 2}};
  for (std::int64_t i = 0; i < 100; ++i) {
    features.at2(i, 0) = static_cast<float>(gen.normal(5.0, 2.0));
    features.at2(i, 1) = static_cast<float>(gen.normal(-3.0, 0.5));
  }
  feature_scaler scaler;
  scaler.fit(features);
  tensor scaled = features;
  scaler.transform(scaled);
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sum2 = 0.0;
    for (std::int64_t i = 0; i < 100; ++i) {
      sum += scaled.at2(i, c);
      sum2 += static_cast<double>(scaled.at2(i, c)) * scaled.at2(i, c);
    }
    EXPECT_NEAR(sum / 100.0, 0.0, 1e-4);
    EXPECT_NEAR(sum2 / 100.0, 1.0, 1e-3);
  }
}

TEST(FeatureScaler, ConstantColumnIsSafe) {
  tensor features = tensor::from_data({3, 1}, {2.0f, 2.0f, 2.0f});
  feature_scaler scaler;
  scaler.fit(features);
  tensor scaled = features;
  scaler.transform(scaled);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(scaled[i], 0.0f);
}

TEST(FeatureScaler, RowTransformMatchesMatrix) {
  rng gen{4};
  tensor features = tensor::randn({20, 3}, gen);
  feature_scaler scaler;
  scaler.fit(features);
  tensor scaled = features;
  scaler.transform(scaled);
  std::vector<float> row{features.data(), features.data() + 3};
  scaler.transform_row(row);
  for (std::int64_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(row[static_cast<std::size_t>(j)], scaled.at2(0, j));
  }
}

TEST(FeatureScaler, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/scaler_rt.bin";
  rng gen{5};
  tensor features = tensor::randn({10, 4}, gen);
  feature_scaler scaler;
  scaler.fit(features);
  {
    binary_writer w{path, "s"};
    scaler.save(w);
    w.finish();
  }
  binary_reader r{path, "s"};
  const feature_scaler loaded = feature_scaler::load(r);
  std::vector<float> a{features.data(), features.data() + 4};
  std::vector<float> b = a;
  scaler.transform_row(a);
  loaded.transform_row(b);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(FeatureScaler, UnfittedTransformThrows) {
  feature_scaler scaler;
  tensor x{{1, 2}};
  EXPECT_THROW(scaler.transform(x), std::logic_error);
}

// -- Layer validator --------------------------------------------------------------

TEST(LayerValidator, InlierNegativeOutlierPositiveDiscrepancy) {
  // Two well-separated classes in 2-D.
  rng gen{6};
  tensor features{{200, 2}};
  std::vector<std::int64_t> labels(200);
  for (std::int64_t i = 0; i < 200; ++i) {
    const bool cls = i % 2 == 1;
    labels[static_cast<std::size_t>(i)] = cls ? 1 : 0;
    const double cx = cls ? 10.0 : -10.0;
    features.at2(i, 0) = static_cast<float>(gen.normal(cx, 1.0));
    features.at2(i, 1) = static_cast<float>(gen.normal(0.0, 1.0));
  }
  layer_validator validator;
  one_class_svm_config cfg;
  cfg.nu = 0.1;
  validator.fit(features, labels, 2, cfg);
  EXPECT_TRUE(validator.fitted());
  EXPECT_EQ(validator.num_classes(), 2);

  const float inlier0[2] = {-10.0f, 0.0f};
  EXPECT_LT(validator.discrepancy(0, {inlier0, 2}), 0.0);
  // The same point judged against class 1's reference is an outlier.
  EXPECT_GT(validator.discrepancy(1, {inlier0, 2}), 0.0);
}

TEST(LayerValidator, MissingClassThrows) {
  tensor features = tensor::from_data({2, 1}, {0.0f, 1.0f});
  const std::vector<std::int64_t> labels{0, 0};
  layer_validator validator;
  EXPECT_THROW(validator.fit(features, labels, 2, {}), std::invalid_argument);
}

TEST(LayerValidator, BadPredictedClassThrows) {
  rng gen{7};
  tensor features = tensor::randn({8, 2}, gen);
  const std::vector<std::int64_t> labels{0, 1, 0, 1, 0, 1, 0, 1};
  layer_validator validator;
  validator.fit(features, labels, 2, {});
  const float x[2] = {0, 0};
  EXPECT_THROW(validator.discrepancy(2, {x, 2}), std::out_of_range);
  EXPECT_THROW(validator.discrepancy(-1, {x, 2}), std::out_of_range);
}

// -- Deep validator (uses the shared trained tiny model) ---------------------------

deep_validator_config tiny_dv_config() {
  deep_validator_config cfg;
  cfg.max_train_per_class = 40;
  cfg.svm.nu = 0.1;
  return cfg;
}

TEST(DeepValidator, FitAndEvaluateShapes) {
  const auto& world = shared_tiny_world();
  deep_validator dv;
  dv.fit(*world.model, world.train, tiny_dv_config());
  EXPECT_TRUE(dv.fitted());
  EXPECT_EQ(dv.validated_layers(), 3);

  const tensor batch = world.test.images.slice_rows(0, 10);
  const auto scores = dv.evaluate(*world.model, batch);
  EXPECT_EQ(scores.joint.size(), 10u);
  EXPECT_EQ(scores.per_layer.size(), 3u);
  EXPECT_EQ(scores.per_layer[0].size(), 10u);
  EXPECT_EQ(scores.predictions.size(), 10u);
  // Joint is the sum of layers (Equation 3).
  for (std::size_t i = 0; i < 10; ++i) {
    double sum = 0.0;
    for (const auto& layer : scores.per_layer) sum += layer[i];
    EXPECT_NEAR(scores.joint[i], sum, 1e-9);
  }
}

TEST(DeepValidator, CleanImagesMostlyNegative) {
  const auto& world = shared_tiny_world();
  deep_validator dv;
  dv.fit(*world.model, world.train, tiny_dv_config());
  const auto scores = dv.evaluate(*world.model, world.test.images);
  std::int64_t negative = 0;
  for (const double d : scores.joint) negative += d < 0.0 ? 1 : 0;
  EXPECT_GT(static_cast<double>(negative) / scores.joint.size(), 0.6);
}

TEST(DeepValidator, NoiseImagesScoreHigherThanClean) {
  const auto& world = shared_tiny_world();
  deep_validator dv;
  dv.fit(*world.model, world.train, tiny_dv_config());
  rng gen{8};
  const tensor noise = tensor::uniform({50, 1, 28, 28}, gen, 0.0f, 1.0f);
  const auto clean = dv.evaluate(*world.model, world.test.images).joint;
  const auto anomalous = dv.evaluate(*world.model, noise).joint;
  double clean_mean = 0.0, anom_mean = 0.0;
  for (const double d : clean) clean_mean += d;
  for (const double d : anomalous) anom_mean += d;
  clean_mean /= static_cast<double>(clean.size());
  anom_mean /= static_cast<double>(anomalous.size());
  EXPECT_GT(anom_mean, clean_mean);
}

TEST(DeepValidator, LastProbesRestrictsValidators) {
  const auto& world = shared_tiny_world();
  deep_validator_config cfg = tiny_dv_config();
  cfg.last_probes = 2;
  deep_validator dv;
  dv.fit(*world.model, world.train, cfg);
  EXPECT_EQ(dv.validated_layers(), 2);
  EXPECT_EQ(dv.probe_index(0), 1);
  EXPECT_EQ(dv.probe_index(1), 2);
}

TEST(DeepValidator, ThresholdFlagging) {
  deep_validator dv;
  dv.set_threshold(0.5);
  EXPECT_TRUE(dv.flags_invalid(0.6));
  EXPECT_FALSE(dv.flags_invalid(0.4));
}

TEST(DeepValidator, SaveLoadReproducesScores) {
  const std::string path = ::testing::TempDir() + "/dv_rt.bin";
  const auto& world = shared_tiny_world();
  deep_validator dv;
  dv.fit(*world.model, world.train, tiny_dv_config());
  dv.set_threshold(1.25);
  dv.save(path);
  const deep_validator loaded = deep_validator::load(path);
  EXPECT_EQ(loaded.validated_layers(), dv.validated_layers());
  EXPECT_DOUBLE_EQ(loaded.threshold(), 1.25);
  const tensor batch = world.test.images.slice_rows(0, 5);
  const auto a = dv.evaluate(*world.model, batch).joint;
  const auto b = loaded.evaluate(*world.model, batch).joint;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9);
  }
  std::remove(path.c_str());
}

TEST(DeepValidator, JointDiscrepancySingleImageMatchesBatch) {
  const auto& world = shared_tiny_world();
  deep_validator dv;
  dv.fit(*world.model, world.train, tiny_dv_config());
  const tensor img = world.test.images.sample(3);
  const double single = dv.joint_discrepancy(*world.model, img);
  const auto batch =
      dv.evaluate(*world.model, world.test.images.slice_rows(3, 4)).joint;
  EXPECT_NEAR(single, batch.front(), 1e-9);
}

TEST(DeepValidator, UnfittedEvaluateThrows) {
  const auto& world = shared_tiny_world();
  deep_validator dv;
  EXPECT_THROW(dv.evaluate(*world.model, world.test.images.slice_rows(0, 1)),
               std::logic_error);
}

}  // namespace
}  // namespace dv
