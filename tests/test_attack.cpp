#include <gtest/gtest.h>

#include <cmath>

#include "attack/bim.h"
#include "attack/cw.h"
#include "attack/fgsm.h"
#include "attack/jsma.h"
#include "nn/loss.h"
#include "test_util.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

/// First test image the tiny model classifies correctly.
std::pair<tensor, std::int64_t> correctly_classified_seed(std::int64_t skip = 0) {
  const auto& world = shared_tiny_world();
  std::int64_t found = 0;
  for (std::int64_t i = 0; i < world.test.size(); ++i) {
    const tensor img = world.test.images.sample(i);
    const auto pred =
        world.model->predict(img.reshaped({1, 1, 28, 28})).front();
    if (pred == world.test.labels[static_cast<std::size_t>(i)]) {
      if (found++ == skip) return {img, pred};
    }
  }
  throw std::runtime_error{"no correctly classified test image"};
}

TEST(AttackTargets, NextClassWrapsAround) {
  const auto& world = shared_tiny_world();
  const auto [img, label] = correctly_classified_seed();
  const auto target = select_target(*world.model, img, label,
                                    attack_target::next_class);
  EXPECT_EQ(target, (label + 1) % 10);
  EXPECT_EQ(select_target(*world.model, img, label,
                          attack_target::untargeted),
            -1);
}

TEST(AttackTargets, LeastLikelyIsNotPrediction) {
  const auto& world = shared_tiny_world();
  const auto [img, label] = correctly_classified_seed();
  const auto ll = select_target(*world.model, img, label,
                                attack_target::least_likely);
  EXPECT_GE(ll, 0);
  EXPECT_LT(ll, 10);
  EXPECT_NE(ll, label);
}

TEST(AttackTargets, NamesStable) {
  EXPECT_STREQ(attack_target_name(attack_target::untargeted), "untargeted");
  EXPECT_STREQ(attack_target_name(attack_target::next_class), "next");
  EXPECT_STREQ(attack_target_name(attack_target::least_likely), "LL");
}

TEST(InputGradient, MatchesFiniteDifferences) {
  const auto& world = shared_tiny_world();
  const auto [img, label] = correctly_classified_seed();
  const tensor grad = input_gradient(*world.model, img, label);
  ASSERT_TRUE(grad.same_shape(img));
  // Check a few coordinates by central differences on the CE loss.
  rng gen{1};
  for (int s = 0; s < 8; ++s) {
    const auto i = static_cast<std::int64_t>(
        gen.next_u64() % static_cast<std::uint64_t>(img.numel()));
    auto loss_at = [&](float delta) {
      tensor x = img;
      x[i] += delta;
      tensor logits = world.model->forward(x.reshaped({1, 1, 28, 28}), false);
      tensor g;
      return softmax_cross_entropy_target(logits, label, g);
    };
    const double numeric =
        (loss_at(1e-2f) - loss_at(-1e-2f)) / (2.0 * 1e-2);
    EXPECT_NEAR(grad[i], numeric, 5e-2 * std::max(1.0, std::abs(numeric)));
  }
}

TEST(Fgsm, PerturbationBoundedByEpsilon) {
  const auto& world = shared_tiny_world();
  const auto [img, label] = correctly_classified_seed();
  fgsm_attack attack{0.2f};
  const attack_result res = attack.run(*world.model, img, label, -1);
  EXPECT_LE(res.distortion_linf, 0.2 + 1e-5);
  EXPECT_GE(res.adversarial.min(), 0.0f);
  EXPECT_LE(res.adversarial.max(), 1.0f);
}

TEST(Fgsm, LargeEpsilonBreaksManySeeds) {
  const auto& world = shared_tiny_world();
  fgsm_attack attack{0.4f};
  int successes = 0, tried = 0;
  for (std::int64_t skip = 0; skip < 20; ++skip) {
    const auto [img, label] = correctly_classified_seed(skip);
    const attack_result res = attack.run(*world.model, img, label, -1);
    successes += res.success ? 1 : 0;
    ++tried;
  }
  EXPECT_GT(static_cast<double>(successes) / tried, 0.3);
}

TEST(Bim, StaysInsideEpsilonBallAndBeatsFgsm) {
  const auto& world = shared_tiny_world();
  bim_attack bim{0.25f, 0.05f, 10};
  fgsm_attack fgsm{0.25f};
  int bim_wins = 0, fgsm_wins = 0;
  for (std::int64_t skip = 0; skip < 10; ++skip) {
    const auto [img, label] = correctly_classified_seed(skip);
    const attack_result rb = bim.run(*world.model, img, label, -1);
    const attack_result rf = fgsm.run(*world.model, img, label, -1);
    EXPECT_LE(rb.distortion_linf, 0.25 + 1e-5);
    bim_wins += rb.success ? 1 : 0;
    fgsm_wins += rf.success ? 1 : 0;
  }
  EXPECT_GE(bim_wins, fgsm_wins);  // iterative dominates one-shot
}

TEST(Jsma, ModifiesFewPixelsOnly) {
  const auto& world = shared_tiny_world();
  const auto [img, label] = correctly_classified_seed();
  jsma_attack attack{0.1f};
  const auto target = (label + 1) % 10;
  const attack_result res = attack.run(*world.model, img, label, target);
  // L0 budget: gamma fraction of 784 pixels.
  EXPECT_LE(res.distortion_l0, static_cast<std::int64_t>(0.1 * 784) + 2);
  // Pixels only increased (increasing-pixel variant).
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_GE(res.adversarial[i], img[i] - 1e-6f);
  }
}

TEST(Jsma, RequiresTarget) {
  const auto& world = shared_tiny_world();
  const auto [img, label] = correctly_classified_seed();
  jsma_attack attack;
  EXPECT_THROW(attack.run(*world.model, img, label, -1),
               std::invalid_argument);
}

TEST(Cw2, ReachesTargetOnEasySeeds) {
  const auto& world = shared_tiny_world();
  cw_config cfg;
  cfg.iterations = 80;
  cw2_attack attack{cfg};
  int hits = 0;
  for (std::int64_t skip = 0; skip < 3; ++skip) {
    const auto [img, label] = correctly_classified_seed(skip);
    const auto target = (label + 1) % 10;
    const attack_result res = attack.run(*world.model, img, label, target);
    hits += res.hit_target ? 1 : 0;
    if (res.hit_target) {
      EXPECT_GT(res.distortion_l2, 0.0);
      EXPECT_LT(res.distortion_l2, 28.0);  // far below max possible
    }
  }
  EXPECT_GE(hits, 2);
}

TEST(CwInf, SuccessHasModestLinf) {
  const auto& world = shared_tiny_world();
  cw_config cfg;
  cfg.iterations = 60;
  cwinf_attack attack{cfg};
  const auto [img, label] = correctly_classified_seed(1);
  const auto target = (label + 1) % 10;
  const attack_result res = attack.run(*world.model, img, label, target);
  if (res.hit_target) {
    EXPECT_LT(res.distortion_linf, 1.0);
  }
  EXPECT_GE(res.adversarial.min(), 0.0f);
  EXPECT_LE(res.adversarial.max(), 1.0f);
}

TEST(Cw0, SparserThanCw2) {
  const auto& world = shared_tiny_world();
  cw_config cfg;
  cfg.iterations = 60;
  cw2_attack cw2{cfg};
  cw0_attack cw0{cfg};
  const auto [img, label] = correctly_classified_seed(2);
  const auto target = (label + 1) % 10;
  const attack_result r2 = cw2.run(*world.model, img, label, target);
  const attack_result r0 = cw0.run(*world.model, img, label, target);
  if (r2.hit_target && r0.hit_target) {
    EXPECT_LT(r0.distortion_l0, r2.distortion_l0);
  }
}

TEST(AttackResult, FinalizeComputesDistortions) {
  const auto& world = shared_tiny_world();
  const auto [img, label] = correctly_classified_seed();
  attack_result res;
  res.adversarial = img;
  res.adversarial[0] += 0.5f;
  res.adversarial[1] -= 0.25f;
  finalize_attack_result(*world.model, img, label, -1, res);
  EXPECT_EQ(res.distortion_l0, 2);
  EXPECT_NEAR(res.distortion_linf, 0.5, 1e-6);
  EXPECT_NEAR(res.distortion_l2, std::sqrt(0.25 + 0.0625), 1e-5);
}

}  // namespace
}  // namespace dv
