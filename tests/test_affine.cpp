#include "augment/affine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace dv {
namespace {

constexpr float k_pi = std::numbers::pi_v<float>;

TEST(AffineMatrix, IdentityMapsPointsToThemselves) {
  const affine_matrix id = affine_matrix::identity();
  const auto [x, y] = id.apply(3.5f, -2.0f);
  EXPECT_FLOAT_EQ(x, 3.5f);
  EXPECT_FLOAT_EQ(y, -2.0f);
}

TEST(AffineMatrix, RotationQuarterTurn) {
  // Paper Table I convention: x' = x cos + y sin, y' = -x sin + y cos,
  // so (1, 0) maps to (0, -1) for a quarter turn.
  const affine_matrix r = affine_matrix::rotation(k_pi / 2.0f);
  const auto [x, y] = r.apply(1.0f, 0.0f);
  EXPECT_NEAR(x, 0.0f, 1e-6f);
  EXPECT_NEAR(y, -1.0f, 1e-6f);
}

TEST(AffineMatrix, ScaleAndTranslation) {
  const affine_matrix s = affine_matrix::scale(2.0f, 3.0f);
  const auto [sx, sy] = s.apply(1.0f, 1.0f);
  EXPECT_FLOAT_EQ(sx, 2.0f);
  EXPECT_FLOAT_EQ(sy, 3.0f);
  const affine_matrix t = affine_matrix::translation(5.0f, -1.0f);
  const auto [tx, ty] = t.apply(0.0f, 0.0f);
  EXPECT_FLOAT_EQ(tx, 5.0f);
  EXPECT_FLOAT_EQ(ty, -1.0f);
}

TEST(AffineMatrix, ShearMatchesPaperTableI) {
  const affine_matrix sh = affine_matrix::shear(0.5f, 0.25f);
  const auto [x, y] = sh.apply(2.0f, 4.0f);
  EXPECT_FLOAT_EQ(x, 2.0f + 0.5f * 4.0f);
  EXPECT_FLOAT_EQ(y, 0.25f * 2.0f + 4.0f);
}

TEST(AffineMatrix, ComposeAppliesRightFirst) {
  const affine_matrix t = affine_matrix::translation(1.0f, 0.0f);
  const affine_matrix s = affine_matrix::scale(2.0f, 2.0f);
  // scale-then-translate vs translate-then-scale differ.
  const auto [x1, y1] = t.compose(s).apply(1.0f, 0.0f);  // scale first
  EXPECT_FLOAT_EQ(x1, 3.0f);
  const auto [x2, y2] = s.compose(t).apply(1.0f, 0.0f);  // translate first
  EXPECT_FLOAT_EQ(x2, 4.0f);
  (void)y1;
  (void)y2;
}

TEST(AffineMatrix, InverseRoundTrip) {
  rng gen{1};
  for (int trial = 0; trial < 20; ++trial) {
    const affine_matrix m =
        affine_matrix::rotation(static_cast<float>(gen.uniform(-1.0, 1.0)))
            .compose(affine_matrix::scale(
                static_cast<float>(gen.uniform(0.5, 2.0)),
                static_cast<float>(gen.uniform(0.5, 2.0))))
            .compose(affine_matrix::translation(
                static_cast<float>(gen.uniform(-5.0, 5.0)),
                static_cast<float>(gen.uniform(-5.0, 5.0))));
    const affine_matrix inv = m.inverse();
    const float px = static_cast<float>(gen.uniform(-3.0, 3.0));
    const float py = static_cast<float>(gen.uniform(-3.0, 3.0));
    const auto [fx, fy] = m.apply(px, py);
    const auto [bx, by] = inv.apply(fx, fy);
    EXPECT_NEAR(bx, px, 1e-4f);
    EXPECT_NEAR(by, py, 1e-4f);
  }
}

TEST(AffineMatrix, SingularInverseThrows) {
  const affine_matrix z = affine_matrix::scale(1.0f, 1.0f);
  affine_matrix singular = z;
  singular.m = {1, 2, 0, 2, 4, 0, 0, 0, 1};  // rank deficient
  EXPECT_THROW(singular.inverse(), std::domain_error);
}

TEST(WarpAffine, IdentityPreservesImage) {
  rng gen{2};
  const tensor img = tensor::uniform({2, 6, 6}, gen, 0.0f, 1.0f);
  const tensor out = warp_affine(img, affine_matrix::identity());
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_NEAR(out[i], img[i], 1e-5f);
  }
}

TEST(WarpAffine, TranslationMovesImpulse) {
  tensor img{{1, 7, 7}};
  img.at3(0, 3, 3) = 1.0f;
  // Forward translation by (+2, +1): the impulse should land at (x+2, y+1).
  const tensor out = warp_affine(img, affine_matrix::translation(2.0f, 1.0f));
  EXPECT_NEAR(out.at3(0, 4, 5), 1.0f, 1e-5f);
  EXPECT_NEAR(out.at3(0, 3, 3), 0.0f, 1e-5f);
}

TEST(WarpAffine, RotationIsAboutCenter) {
  tensor img{{1, 9, 9}};
  img.at3(0, 4, 4) = 1.0f;  // center pixel
  const tensor out = warp_affine(img, affine_matrix::rotation(k_pi / 3.0f));
  EXPECT_NEAR(out.at3(0, 4, 4), 1.0f, 1e-4f);
}

TEST(WarpAffine, QuarterRotationMovesOffCenterPixel) {
  tensor img{{1, 9, 9}};
  img.at3(0, 4, 8) = 1.0f;  // (x=+4, y=0) from center
  const tensor out = warp_affine(img, affine_matrix::rotation(k_pi / 2.0f));
  // Table I convention maps (4, 0) -> (0, -4): four rows above the center.
  EXPECT_NEAR(out.at3(0, 0, 4), 1.0f, 1e-3f);
}

TEST(WarpAffine, OutOfBoundsReadsFill) {
  tensor img = tensor::full({1, 4, 4}, 1.0f);
  const tensor out =
      warp_affine(img, affine_matrix::translation(10.0f, 0.0f), 0.25f);
  // Whole image shifted out; all pixels read fill.
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_FLOAT_EQ(out[i], 0.25f);
  }
}

TEST(WarpAffine, ScaleUpMagnifies) {
  // A 2x scale about the center keeps the center pixel and spreads mass.
  tensor img{{1, 9, 9}};
  img.at3(0, 4, 4) = 1.0f;
  const tensor out = warp_affine(img, affine_matrix::scale(2.0f, 2.0f));
  EXPECT_GT(out.at3(0, 4, 4), 0.9f);
  // Total mass grows roughly by the Jacobian (4x) for an interior impulse.
  EXPECT_GT(out.sum(), 2.0f);
}

TEST(WarpAffine, RequiresChw) {
  tensor img{{4, 4}};
  EXPECT_THROW(warp_affine(img, affine_matrix::identity()),
               std::invalid_argument);
}

}  // namespace
}  // namespace dv
