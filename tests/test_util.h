// Shared test fixtures: a tiny trained classifier on a tiny synthetic digit
// dataset, trained once per process and reused by every suite that needs a
// working model.
#pragma once

#include <memory>

#include "data/synth_digits.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "nn/trainer.h"
#include "util/logging.h"

namespace dv::testing {

struct tiny_world {
  dataset train;
  dataset test;
  std::unique_ptr<sequential> model;
  double test_accuracy{0.0};
};

/// A small CNN: conv4-pool-conv8-pool-fc32-logits with three probes.
inline std::unique_ptr<sequential> make_tiny_model(std::uint64_t seed) {
  rng gen{seed};
  auto model = std::make_unique<sequential>();
  model->add(std::make_unique<conv2d>(1, 4, 3, 1, 1, gen));
  model->add(std::make_unique<relu>());
  model->add(std::make_unique<max_pool2d>(2), /*probe=*/true);
  model->add(std::make_unique<conv2d>(4, 8, 3, 1, 1, gen));
  model->add(std::make_unique<relu>());
  model->add(std::make_unique<max_pool2d>(2), /*probe=*/true);
  model->add(std::make_unique<flatten>());
  model->add(std::make_unique<dense>(8 * 7 * 7, 32, gen));
  model->add(std::make_unique<relu>(), /*probe=*/true);
  model->add(std::make_unique<dense>(32, 10, gen));
  return model;
}

/// Trains the tiny model once per process (~10 s) and caches it.
inline const tiny_world& shared_tiny_world() {
  static const tiny_world world = [] {
    set_log_level(log_level::warn);
    tiny_world w;
    synth_digits_config train_cfg;
    train_cfg.count = 600;
    train_cfg.seed = 1001;
    w.train = make_synth_digits(train_cfg);
    synth_digits_config test_cfg;
    test_cfg.count = 200;
    test_cfg.seed = 2002;
    w.test = make_synth_digits(test_cfg);
    w.model = make_tiny_model(31);
    train_config tc;
    tc.optimizer = train_config::opt_kind::adam;
    tc.lr = 2e-3f;
    tc.epochs = 5;
    tc.batch_size = 32;
    tc.verbose = false;
    (void)fit(*w.model, w.train.images, w.train.labels, tc);
    w.test_accuracy = accuracy(*w.model, w.test.images, w.test.labels);
    return w;
  }();
  return world;
}

}  // namespace dv::testing
