#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "util/rng.h"

namespace dv {
namespace {

/// Naive reference GEMM: C = alpha * op(A) * op(B) + beta * C.
void reference_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                    float alpha, const float* a, bool ta, const float* b,
                    bool tb, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

class GemmSizes : public ::testing::TestWithParam<
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(GemmSizes, NnMatchesReference) {
  const auto [m, n, k] = GetParam();
  rng gen{1};
  tensor a = tensor::randn({m, k}, gen);
  tensor b = tensor::randn({k, n}, gen);
  tensor c = tensor::randn({m, n}, gen);
  tensor ref = c;
  gemm_nn(m, n, k, 1.5f, a.data(), b.data(), 0.5f, c.data());
  reference_gemm(m, n, k, 1.5f, a.data(), false, b.data(), false, 0.5f,
                 ref.data());
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3f) << "index " << i;
  }
}

TEST_P(GemmSizes, NtMatchesReference) {
  const auto [m, n, k] = GetParam();
  rng gen{2};
  tensor a = tensor::randn({m, k}, gen);
  tensor b = tensor::randn({n, k}, gen);
  tensor c{{m, n}};
  tensor ref = c;
  gemm_nt(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  reference_gemm(m, n, k, 1.0f, a.data(), false, b.data(), true, 0.0f,
                 ref.data());
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3f);
  }
}

TEST_P(GemmSizes, TnMatchesReference) {
  const auto [m, n, k] = GetParam();
  rng gen{3};
  tensor a = tensor::randn({k, m}, gen);
  tensor b = tensor::randn({k, n}, gen);
  tensor c = tensor::randn({m, n}, gen);
  tensor ref = c;
  gemm_tn(m, n, k, 2.0f, a.data(), b.data(), 1.0f, c.data());
  reference_gemm(m, n, k, 2.0f, a.data(), true, b.data(), false, 1.0f,
                 ref.data());
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(8, 8, 8), std::make_tuple(16, 1, 32),
                      std::make_tuple(1, 17, 9), std::make_tuple(13, 29, 4)));

struct conv_case {
  std::int64_t c, h, w, k, stride, pad;
};

class Im2ColGeometry : public ::testing::TestWithParam<conv_case> {};

TEST_P(Im2ColGeometry, OutputDims) {
  const auto p = GetParam();
  const conv_geometry g{p.c, p.h, p.w, p.k, p.stride, p.pad};
  EXPECT_EQ(g.out_h(), (p.h + 2 * p.pad - p.k) / p.stride + 1);
  EXPECT_EQ(g.col_rows(), p.c * p.k * p.k);
  EXPECT_EQ(g.col_cols(), g.out_h() * g.out_w());
}

TEST_P(Im2ColGeometry, AdjointProperty) {
  // <u, im2col(x)> == <col2im(u), x> for all u, x — checks that col2im is
  // the exact adjoint of im2col (required for correct conv gradients).
  const auto p = GetParam();
  const conv_geometry g{p.c, p.h, p.w, p.k, p.stride, p.pad};
  rng gen{7};
  tensor x = tensor::randn({p.c, p.h, p.w}, gen);
  tensor u = tensor::randn({g.col_rows(), g.col_cols()}, gen);
  tensor col{{g.col_rows(), g.col_cols()}};
  im2col(x.data(), g, col.data());
  tensor back{{p.c, p.h, p.w}};
  col2im(u.data(), g, back.data());
  const double lhs = dot(u.data(), col.data(), u.numel());
  const double rhs = dot(back.data(), x.data(), x.numel());
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColGeometry,
    ::testing::Values(conv_case{1, 5, 5, 3, 1, 1}, conv_case{3, 8, 8, 3, 1, 0},
                      conv_case{2, 7, 9, 3, 2, 1}, conv_case{4, 6, 6, 1, 1, 0},
                      conv_case{2, 10, 10, 5, 1, 2},
                      conv_case{1, 4, 4, 2, 2, 0}));

TEST(Im2Col, KnownSmallCase) {
  // 1x2x2 image, 2x2 kernel, no pad: one output pixel, col = image values.
  const conv_geometry g{1, 2, 2, 2, 1, 0};
  tensor x = tensor::from_data({1, 2, 2}, {1, 2, 3, 4});
  tensor col{{4, 1}};
  im2col(x.data(), g, col.data());
  EXPECT_EQ(col[0], 1.0f);
  EXPECT_EQ(col[1], 2.0f);
  EXPECT_EQ(col[2], 3.0f);
  EXPECT_EQ(col[3], 4.0f);
}

TEST(Im2Col, PaddingReadsZero) {
  const conv_geometry g{1, 1, 1, 3, 1, 1};
  tensor x = tensor::from_data({1, 1, 1}, {5.0f});
  tensor col{{9, 1}};
  im2col(x.data(), g, col.data());
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(col[i], i == 4 ? 5.0f : 0.0f);
  }
}

TEST(SoftmaxRows, SumsToOneAndOrders) {
  tensor t = tensor::from_data({2, 3}, {1, 2, 3, -1, -1, -1});
  softmax_rows(t);
  for (std::int64_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 3; ++c) sum += t.at2(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  EXPECT_GT(t.at2(0, 2), t.at2(0, 1));
  EXPECT_NEAR(t.at2(1, 0), 1.0 / 3.0, 1e-5);
}

TEST(SoftmaxRows, StableForLargeLogits) {
  tensor t = tensor::from_data({1, 2}, {1000.0f, 999.0f});
  softmax_rows(t);
  EXPECT_NEAR(t[0] + t[1], 1.0, 1e-5);
  EXPECT_GT(t[0], t[1]);
  EXPECT_FALSE(std::isnan(t[0]));
}

TEST(ArgmaxRows, PicksFirstOnTies) {
  tensor t = tensor::from_data({2, 3}, {0, 5, 5, 7, 1, 2});
  const auto idx = argmax_rows(t);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(VectorOps, SquaredDistanceAndDot) {
  const float a[3] = {1, 2, 3};
  const float b[3] = {4, 6, 3};
  EXPECT_DOUBLE_EQ(squared_distance(a, b, 3), 25.0);
  EXPECT_DOUBLE_EQ(dot(a, b, 3), 25.0);
}

}  // namespace
}  // namespace dv
