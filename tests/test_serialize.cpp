#include "util/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace dv {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/dv_serialize_test.bin";

  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SerializeTest, RoundTripScalars) {
  {
    binary_writer w{path_, "magic"};
    w.write_u8(200);
    w.write_i32(-123456);
    w.write_i64(-9876543210LL);
    w.write_u64(0xdeadbeefcafeULL);
    w.write_f32(3.25f);
    w.write_f64(-2.5e-3);
    w.finish();
  }
  binary_reader r{path_, "magic"};
  EXPECT_EQ(r.read_u8(), 200);
  EXPECT_EQ(r.read_i32(), -123456);
  EXPECT_EQ(r.read_i64(), -9876543210LL);
  EXPECT_EQ(r.read_u64(), 0xdeadbeefcafeULL);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.5e-3);
}

TEST_F(SerializeTest, RoundTripContainers) {
  const std::vector<float> vf{1.0f, -2.0f, 3.5f};
  const std::vector<double> vd{0.25, -8.0};
  const std::vector<std::int64_t> vi{1, -2, 3};
  const std::vector<int> vi32{-7, 9};
  {
    binary_writer w{path_, "m"};
    w.write_string("hello world");
    w.write_string("");
    w.write_f32_vector(vf);
    w.write_f64_vector(vd);
    w.write_i64_vector(vi);
    w.write_i32_vector(vi32);
    w.finish();
  }
  binary_reader r{path_, "m"};
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_f32_vector(), vf);
  EXPECT_EQ(r.read_f64_vector(), vd);
  EXPECT_EQ(r.read_i64_vector(), vi);
  EXPECT_EQ(r.read_i32_vector(), vi32);
}

TEST_F(SerializeTest, MagicMismatchThrows) {
  {
    binary_writer w{path_, "right"};
    w.finish();
  }
  EXPECT_THROW(binary_reader(path_, "wrong"), serialize_error);
}

TEST_F(SerializeTest, TruncatedFileThrows) {
  {
    binary_writer w{path_, "m"};
    w.write_i32(5);
    w.finish();
  }
  binary_reader r{path_, "m"};
  EXPECT_EQ(r.read_i32(), 5);
  EXPECT_THROW(r.read_i64(), serialize_error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(binary_reader("/nonexistent/dir/file.bin", "m"),
               serialize_error);
}

TEST_F(SerializeTest, FileExists) {
  EXPECT_FALSE(file_exists(path_));
  {
    binary_writer w{path_, "m"};
    w.finish();
  }
  EXPECT_TRUE(file_exists(path_));
}

TEST(SerializeDir, EnsureDirectoryCreatesNested) {
  const std::string dir = ::testing::TempDir() + "/dv_ser_a/b/c";
  ensure_directory(dir);
  // Creating again is a no-op.
  ensure_directory(dir);
  const std::string probe = dir + "/x.bin";
  {
    binary_writer w{probe, "m"};
    w.finish();
  }
  EXPECT_TRUE(file_exists(probe));
  std::remove(probe.c_str());
}

TEST(SerializeDir, EnsureDirectoryOverFileThrows) {
  const std::string file = ::testing::TempDir() + "/dv_ser_file";
  {
    binary_writer w{file, "m"};
    w.finish();
  }
  EXPECT_THROW(ensure_directory(file + "/sub"), serialize_error);
  std::remove(file.c_str());
}

}  // namespace
}  // namespace dv
