// Tests for the strong-hash LRU cache layer (docs/CACHING.md): hash and
// cache unit behavior, the DV_CACHE knobs, and the bitwise-transparency
// contract — cached and uncached scoring must produce byte-identical
// results across DV_THREADS and every supported DV_SIMD level, for
// one_class_svm decisions, activation extraction, full deep_validator
// scores, serve-path scoring results, and monitor verdicts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/activation_cache.h"
#include "core/deep_validator.h"
#include "core/monitor.h"
#include "eval/metrics.h"
#include "serve/scoring.h"
#include "svm/one_class_svm.h"
#include "tensor/simd/simd.h"
#include "test_util.h"
#include "util/metrics.h"
#include "util/strong_lru.h"
#include "util/thread_pool.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

/// Restores the process-wide cache/thread/simd knobs when a test exits.
/// (cache_enabled() folds capacity in, but restoring its composite value
/// is behavior-preserving: capacity 0 reads as disabled either way.)
struct cache_state_guard {
  bool enabled = cache_enabled();
  std::size_t capacity = cache_capacity();
  ~cache_state_guard() {
    set_cache_enabled(enabled);
    set_cache_capacity(capacity);
    set_thread_count(0);
    reset_simd_level();
  }
};

bool bitwise_equal(const tensor& a, const tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

/// A fitted validator with a threshold, shared across this binary.
const deep_validator& fitted_validator() {
  static const deep_validator dv = [] {
    const auto& world = shared_tiny_world();
    deep_validator out;
    deep_validator_config cfg;
    cfg.max_train_per_class = 40;
    out.fit(*world.model, world.train, cfg);
    const auto clean = out.evaluate(*world.model, world.test.images).joint;
    out.set_threshold(threshold_for_fpr(clean, 0.05));
    return out;
  }();
  return dv;
}

/// A duplicate-heavy [n,1,28,28] stream: every frame repeats `repeat`
/// times before the next distinct one.
tensor duplicate_stream(std::int64_t n, std::int64_t repeat) {
  const auto& world = shared_tiny_world();
  tensor frames{{n, 1, 28, 28}};
  for (std::int64_t i = 0; i < n; ++i) {
    frames.set_sample(i, world.test.images.sample((i / repeat) % 16));
  }
  return frames;
}

// -- strong_hash ---------------------------------------------------------------

TEST(StrongHash, DeterministicAndLengthSensitive) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  const auto a = strong_hash::of_bytes(data, sizeof(data));
  const auto b = strong_hash::of_bytes(data, sizeof(data));
  EXPECT_EQ(a, b);
  // A one-byte change anywhere flips the hash.
  char mutated[sizeof(data)];
  std::memcpy(mutated, data, sizeof(data));
  mutated[7] ^= 1;
  EXPECT_FALSE(a == strong_hash::of_bytes(mutated, sizeof(data)));
  // Prefixes and zero-padded extensions do not collide.
  EXPECT_FALSE(a == strong_hash::of_bytes(data, sizeof(data) - 1));
  const char padded[] = "abc";
  const char padded_longer[] = "abc\0";
  EXPECT_FALSE(strong_hash::of_bytes(padded, 3) ==
               strong_hash::of_bytes(padded_longer, 4));
}

TEST(StrongHash, EmptyAndShortInputs) {
  const auto empty = strong_hash::of_bytes(nullptr, 0);
  const char byte = 'x';
  EXPECT_FALSE(empty == strong_hash::of_bytes(&byte, 1));
  EXPECT_EQ(empty, strong_hash::of_bytes(nullptr, 0));
}

// -- strong_lru_cache ----------------------------------------------------------

strong_hash key_of(std::uint64_t hi, std::uint64_t lo) {
  strong_hash k;
  k.hi = hi;
  k.lo = lo;
  return k;
}

TEST(StrongLru, InsertFindUpdate) {
  strong_lru_cache<int> cache{4};
  EXPECT_EQ(cache.find(key_of(0, 1)), nullptr);
  cache.insert(key_of(0, 1), 10);
  ASSERT_NE(cache.find(key_of(0, 1)), nullptr);
  EXPECT_EQ(*cache.find(key_of(0, 1)), 10);
  cache.insert(key_of(0, 1), 11);  // update in place, no growth
  EXPECT_EQ(*cache.find(key_of(0, 1)), 11);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_GE(cache.hits(), 2u);
}

TEST(StrongLru, EvictsLeastRecentlyUsedInOrder) {
  strong_lru_cache<int> cache{3};
  cache.insert(key_of(0, 1), 1);
  cache.insert(key_of(0, 2), 2);
  cache.insert(key_of(0, 3), 3);
  // Refresh key 1 so key 2 becomes the LRU victim.
  ASSERT_NE(cache.find(key_of(0, 1)), nullptr);
  cache.insert(key_of(0, 4), 4);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.contains(key_of(0, 1)));
  EXPECT_FALSE(cache.contains(key_of(0, 2)));
  EXPECT_TRUE(cache.contains(key_of(0, 3)));
  EXPECT_TRUE(cache.contains(key_of(0, 4)));
  // Next eviction follows recency order again: victim is key 3.
  cache.insert(key_of(0, 5), 5);
  EXPECT_FALSE(cache.contains(key_of(0, 3)));
  EXPECT_TRUE(cache.contains(key_of(0, 1)));
}

TEST(StrongLru, CollidingKeysShareOneProbeCluster) {
  // capacity 4 => 8 buckets; keys with equal lo share a home bucket and
  // chain by linear probing; full-key compares keep them distinct.
  strong_lru_cache<int> cache{4};
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(key_of(i, 5), static_cast<int>(i));
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_NE(cache.find(key_of(i, 5)), nullptr) << i;
    EXPECT_EQ(*cache.find(key_of(i, 5)), static_cast<int>(i));
  }
  EXPECT_EQ(cache.size(), 4u);
}

TEST(StrongLru, BackwardShiftKeepsClusterReachableAfterEviction) {
  strong_lru_cache<int> cache{4};
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(key_of(i, 5), static_cast<int>(i));
  }
  // Evicts key 0 — the head of the probe cluster — which forces the
  // backward-shift compaction; every survivor must stay findable.
  cache.insert(key_of(4, 5), 4);
  EXPECT_FALSE(cache.contains(key_of(0, 5)));
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_NE(cache.find(key_of(i, 5)), nullptr) << i;
    EXPECT_EQ(*cache.find(key_of(i, 5)), static_cast<int>(i));
  }
}

TEST(StrongLru, ZeroCapacityIsInert) {
  strong_lru_cache<int> cache;
  cache.insert(key_of(0, 1), 1);
  EXPECT_EQ(cache.find(key_of(0, 1)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), 0u);
}

TEST(StrongLru, TracksPayloadBytes) {
  strong_lru_cache<int> cache{2};
  cache.insert(key_of(0, 1), 1, 100);
  cache.insert(key_of(0, 2), 2, 40);
  EXPECT_EQ(cache.bytes(), 140u);
  cache.insert(key_of(0, 1), 1, 60);  // update shrinks the first entry
  EXPECT_EQ(cache.bytes(), 100u);
  cache.insert(key_of(0, 3), 3, 7);  // evicts key 2
  EXPECT_EQ(cache.bytes(), 67u);
  cache.clear();
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

// -- configuration knobs -------------------------------------------------------

TEST(CacheConfig, SettingsMatchEnvironment) {
  // Self-validating under the env reruns: whatever DV_CACHE /
  // DV_CACHE_CAPACITY the harness set must be what the process parsed.
  const char* raw_enabled = std::getenv("DV_CACHE");
  const char* raw_capacity = std::getenv("DV_CACHE_CAPACITY");
  std::size_t expect_capacity = 1024;
  if (raw_capacity != nullptr) {
    expect_capacity =
        static_cast<std::size_t>(std::strtoull(raw_capacity, nullptr, 10));
  }
  bool expect_enabled = expect_capacity > 0;
  if (raw_enabled != nullptr &&
      (std::strcmp(raw_enabled, "off") == 0 ||
       std::strcmp(raw_enabled, "0") == 0 ||
       std::strcmp(raw_enabled, "false") == 0)) {
    expect_enabled = false;
  }
  EXPECT_EQ(cache_capacity(), expect_capacity);
  EXPECT_EQ(cache_enabled(), expect_enabled);
}

TEST(CacheConfig, SettersOverrideInProcess) {
  cache_state_guard guard;
  set_cache_enabled(false);
  EXPECT_FALSE(cache_enabled());
  set_cache_enabled(true);
  set_cache_capacity(7);
  EXPECT_TRUE(cache_enabled());
  EXPECT_EQ(cache_capacity(), 7u);
  set_cache_capacity(0);  // capacity 0 behaves like DV_CACHE=off
  EXPECT_FALSE(cache_enabled());
}

// -- one_class_svm decision cache ---------------------------------------------

one_class_svm fitted_svm() {
  rng gen{99};
  const tensor samples = tensor::randn({64, 8}, gen);
  one_class_svm svm;
  svm.fit(samples, one_class_svm_config{});
  return svm;
}

/// [n,8] queries cycling through `unique` distinct rows.
tensor repeated_queries(std::int64_t n, std::int64_t unique) {
  rng gen{123};
  const tensor base = tensor::randn({unique, 8}, gen);
  tensor out{{n, 8}};
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * 8, base.data() + (i % unique) * 8,
                8 * sizeof(float));
  }
  return out;
}

TEST(DecisionCache, BitwiseIdenticalOnVsOffAndWarm) {
  cache_state_guard guard;
  const one_class_svm svm = fitted_svm();
  const tensor queries = repeated_queries(40, 10);

  set_cache_enabled(false);
  const auto off = svm.decision_batch(queries);
  set_cache_enabled(true);
  set_cache_capacity(64);
  const auto cold = svm.decision_batch(queries);
  const auto warm = svm.decision_batch(queries);
  ASSERT_EQ(off.size(), cold.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i], cold[i]) << i;  // exact, not approximate
    EXPECT_EQ(off[i], warm[i]) << i;
  }
  // The warm pass was answered entirely from the cache.
  EXPECT_EQ(svm.decision_cache().misses(), 40u);  // cold pass only
  EXPECT_EQ(svm.decision_cache().hits(), 40u);    // warm pass
  EXPECT_EQ(svm.decision_cache().size(), 10u);
}

TEST(DecisionCache, EvictionDeterministicAcrossThreadCounts) {
  cache_state_guard guard;
  const one_class_svm fitted = fitted_svm();
  const tensor queries = repeated_queries(48, 12);
  set_cache_enabled(true);
  set_cache_capacity(4);  // far below the 12 unique rows: constant churn

  auto run = [&](int threads) {
    one_class_svm svm = fitted;  // fresh (empty) cache per run
    set_thread_count(threads);
    std::vector<double> out = svm.decision_batch(queries);
    const auto more = svm.decision_batch(queries);
    out.insert(out.end(), more.begin(), more.end());
    struct result {
      std::vector<double> values;
      std::uint64_t hits, misses, evictions;
    };
    return result{std::move(out), svm.decision_cache().hits(),
                  svm.decision_cache().misses(),
                  svm.decision_cache().evictions()};
  };
  const auto serial = run(1);
  const auto threaded = run(8);
  ASSERT_EQ(serial.values.size(), threaded.values.size());
  for (std::size_t i = 0; i < serial.values.size(); ++i) {
    EXPECT_EQ(serial.values[i], threaded.values[i]) << i;
  }
  // Cache decisions happen at sequential program points, so the stats —
  // including which rows were evicted when — cannot depend on threads.
  EXPECT_EQ(serial.hits, threaded.hits);
  EXPECT_EQ(serial.misses, threaded.misses);
  EXPECT_EQ(serial.evictions, threaded.evictions);
  EXPECT_GT(serial.evictions, 0u);
}

// -- activation cache ----------------------------------------------------------

TEST(ActivationCache, ExtractBitwiseIdenticalColdAndWarm) {
  cache_state_guard guard;
  auto& world = shared_tiny_world();
  const tensor frames = duplicate_stream(24, 4);

  set_cache_enabled(false);
  const activation_batch plain = extract_activations(*world.model, frames);
  set_cache_enabled(true);
  set_cache_capacity(256);
  activation_cache cache{256};
  const activation_batch cold =
      extract_activations_cached(*world.model, frames, &cache);
  const activation_batch warm =
      extract_activations_cached(*world.model, frames, &cache);

  for (const activation_batch* got : {&cold, &warm}) {
    EXPECT_TRUE(bitwise_equal(plain.logits, got->logits));
    EXPECT_TRUE(bitwise_equal(plain.images, got->images));
    EXPECT_EQ(plain.predictions, got->predictions);
    ASSERT_EQ(plain.probes.size(), got->probes.size());
    for (std::size_t p = 0; p < plain.probes.size(); ++p) {
      EXPECT_TRUE(bitwise_equal(plain.probes[p], got->probes[p])) << p;
    }
  }
  // 6 unique frames: the cold pass misses all 24 rows (in-batch
  // duplicates are not visible until the insert pass); the warm pass
  // hits all 24.
  EXPECT_EQ(cache.lru().size(), 6u);
  EXPECT_EQ(cache.lru().misses(), 24u);
  EXPECT_EQ(cache.lru().hits(), 24u);
}

// -- full scoring path ---------------------------------------------------------

TEST(FullPipeline, ScoresAndVerdictsBitwiseAcrossThreadsSimdAndCache) {
  cache_state_guard guard;
  auto& world = shared_tiny_world();
  const deep_validator& validator = fitted_validator();
  const tensor frames = duplicate_stream(48, 4);

  struct run_result {
    std::vector<double> joint;
    std::vector<std::vector<double>> per_layer;
    std::vector<std::int64_t> predictions;
    std::vector<monitor_verdict> verdicts;
  };
  auto run = [&]() {
    run_result r;
    auto s = validator.evaluate(*world.model, frames);
    r.joint = std::move(s.joint);
    r.per_layer = std::move(s.per_layer);
    r.predictions = std::move(s.predictions);
    runtime_monitor monitor{*world.model, validator};
    r.verdicts = monitor.observe_batch(frames);
    return r;
  };

  // Baseline: caching off, one thread, startup SIMD level.
  set_cache_enabled(false);
  set_thread_count(1);
  const run_result base = run();

  for (const auto level :
       {simd_level::scalar, simd_level::sse2, simd_level::avx2}) {
    if (!simd_level_supported(level)) continue;
    for (const int threads : {1, 8}) {
      for (const bool cached : {false, true}) {
        set_simd_level(level);
        set_thread_count(threads);
        set_cache_enabled(cached);
        set_cache_capacity(1024);
        // Two passes when cached: cold (filling) and warm (all hits) —
        // both must match the uncached baseline exactly.
        const int passes = cached ? 2 : 1;
        for (int pass = 0; pass < passes; ++pass) {
          const run_result got = run();
          const std::string ctx =
              std::string{simd_level_name(level)} + " threads=" +
              std::to_string(threads) + " cached=" + std::to_string(cached) +
              " pass=" + std::to_string(pass);
          ASSERT_EQ(base.joint.size(), got.joint.size()) << ctx;
          for (std::size_t i = 0; i < base.joint.size(); ++i) {
            ASSERT_EQ(base.joint[i], got.joint[i]) << ctx << " frame " << i;
          }
          ASSERT_EQ(base.per_layer, got.per_layer) << ctx;
          ASSERT_EQ(base.predictions, got.predictions) << ctx;
          ASSERT_EQ(base.verdicts.size(), got.verdicts.size()) << ctx;
          for (std::size_t i = 0; i < base.verdicts.size(); ++i) {
            ASSERT_EQ(base.verdicts[i].discrepancy,
                      got.verdicts[i].discrepancy)
                << ctx << " frame " << i;
            ASSERT_EQ(base.verdicts[i].prediction, got.verdicts[i].prediction)
                << ctx << " frame " << i;
            ASSERT_EQ(base.verdicts[i].frame_invalid,
                      got.verdicts[i].frame_invalid)
                << ctx << " frame " << i;
            ASSERT_EQ(base.verdicts[i].alarm, got.verdicts[i].alarm)
                << ctx << " frame " << i;
          }
        }
      }
    }
  }
}

TEST(FullPipeline, ServeScorerBitwiseWithActivationCache) {
  cache_state_guard guard;
  auto& world = shared_tiny_world();
  const deep_validator& validator = fitted_validator();
  const tensor frames = duplicate_stream(32, 8);

  set_cache_enabled(false);
  validator_scorer uncached{*world.model, validator};
  EXPECT_EQ(uncached.frame_cache(), nullptr);
  const auto base = uncached.score(frames);

  set_cache_enabled(true);
  set_cache_capacity(256);
  validator_scorer cached{*world.model, validator};
  ASSERT_NE(cached.frame_cache(), nullptr);
  for (int pass = 0; pass < 2; ++pass) {
    const auto got = cached.score(frames);
    ASSERT_EQ(base.size(), got.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(base[i].joint, got[i].joint) << i;
      EXPECT_EQ(base[i].prediction, got[i].prediction) << i;
      EXPECT_EQ(base[i].invalid, got[i].invalid) << i;
      EXPECT_EQ(base[i].per_layer, got[i].per_layer) << i;
    }
  }
  // Second pass: every frame came from the activation cache.
  EXPECT_EQ(cached.frame_cache()->lru().hits(), 32u);
  EXPECT_EQ(cached.frame_cache()->lru().size(), 4u);
}

// -- metrics -------------------------------------------------------------------

TEST(CacheMetrics, SnapshotGolden) {
  cache_state_guard guard;
  metrics::set_enabled(true);
  metrics::set_clock_frozen(true);
  metrics::reset();
  {
    strong_lru_cache<int> cache{2, "testgold"};
    (void)cache.find(key_of(0, 1));       // miss
    cache.insert(key_of(0, 1), 1, 8);
    (void)cache.find(key_of(0, 1));       // hit
    cache.insert(key_of(0, 2), 2, 8);
    cache.insert(key_of(0, 3), 3, 8);     // evicts key 1

    const auto snap = metrics::collect();
    auto value_of = [&](const std::string& name) -> double {
      for (const auto& s : snap.samples) {
        if (s.name == name) return s.value;
      }
      ADD_FAILURE() << "series not found: " << name;
      return -1.0;
    };
    EXPECT_EQ(value_of("dv_cache_hits_total{cache=\"testgold\"}"), 1.0);
    EXPECT_EQ(value_of("dv_cache_misses_total{cache=\"testgold\"}"), 1.0);
    EXPECT_EQ(value_of("dv_cache_evictions_total{cache=\"testgold\"}"), 1.0);
    EXPECT_EQ(value_of("dv_cache_bytes{cache=\"testgold\"}"), 16.0);
  }
  // Destruction releases the label's bytes back to zero.
  strong_lru_cache<int> probe{1, "testgold"};
  probe.insert(key_of(0, 9), 9, 4);
  probe.clear();
  const auto snap = metrics::collect();
  for (const auto& s : snap.samples) {
    if (s.name == "dv_cache_bytes{cache=\"testgold\"}") {
      EXPECT_EQ(s.value, 0.0);
    }
  }
  metrics::reset();
  metrics::set_clock_frozen(false);
  metrics::set_enabled(false);
}

TEST(CacheMetrics, UnlabeledCacheRecordsNothing) {
  cache_state_guard guard;
  metrics::set_enabled(true);
  metrics::reset();
  strong_lru_cache<int> cache{2};
  (void)cache.find(key_of(0, 1));
  cache.insert(key_of(0, 1), 1);
  EXPECT_EQ(metrics::series_count(), 0u);
  metrics::reset();
  metrics::set_enabled(false);
}

}  // namespace
}  // namespace dv
