#include "nn/trainer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dv {
namespace {

using dv::testing::make_tiny_model;
using dv::testing::shared_tiny_world;

TEST(Trainer, LossDecreasesOverEpochs) {
  const auto& world = shared_tiny_world();
  auto model = make_tiny_model(77);
  train_config tc;
  tc.optimizer = train_config::opt_kind::adam;
  tc.lr = 2e-3f;
  tc.epochs = 3;
  tc.batch_size = 32;
  tc.verbose = false;
  // Use a small slice for speed.
  const dataset sub = [&] {
    std::vector<std::int64_t> idx(200);
    for (std::int64_t i = 0; i < 200; ++i) idx[static_cast<std::size_t>(i)] = i;
    return world.train.subset(idx);
  }();
  const train_report report = fit(*model, sub.images, sub.labels, tc);
  ASSERT_EQ(report.epoch_loss.size(), 3u);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
  EXPECT_GT(report.epoch_accuracy.back(), report.epoch_accuracy.front());
}

TEST(Trainer, AccuracyMatchesManualCount) {
  const auto& world = shared_tiny_world();
  auto& model = *world.model;
  const dataset& test = world.test;
  const double acc = accuracy(model, test.images, test.labels, 64);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    const auto pred = model.predict(
        test.images.sample(i).reshaped({1, 1, 28, 28}));
    correct += pred.front() == test.labels[static_cast<std::size_t>(i)] ? 1 : 0;
  }
  EXPECT_NEAR(acc, static_cast<double>(correct) / test.size(), 1e-9);
}

TEST(Trainer, BatchedProbabilitiesShapeAndRows) {
  const auto& world = shared_tiny_world();
  const tensor probs =
      batched_probabilities(*world.model, world.test.images, 33);
  EXPECT_EQ(probs.extent(0), world.test.size());
  EXPECT_EQ(probs.extent(1), 10);
  for (std::int64_t i = 0; i < probs.extent(0); ++i) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < 10; ++j) sum += probs.at2(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(Trainer, MeanConfidenceInUnitRange) {
  const auto& world = shared_tiny_world();
  const double conf = mean_top1_confidence(*world.model, world.test.images);
  EXPECT_GT(conf, 0.1);
  EXPECT_LE(conf, 1.0);
}

TEST(Trainer, ShuffleSeedIsDeterministic) {
  const auto& world = shared_tiny_world();
  const dataset sub = [&] {
    std::vector<std::int64_t> idx(100);
    for (std::int64_t i = 0; i < 100; ++i) idx[static_cast<std::size_t>(i)] = i;
    return world.train.subset(idx);
  }();
  train_config tc;
  tc.optimizer = train_config::opt_kind::adam;
  tc.lr = 1e-3f;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.verbose = false;
  tc.shuffle_seed = 5;
  auto m1 = make_tiny_model(50);
  auto m2 = make_tiny_model(50);
  const auto r1 = fit(*m1, sub.images, sub.labels, tc);
  const auto r2 = fit(*m2, sub.images, sub.labels, tc);
  EXPECT_EQ(r1.epoch_loss, r2.epoch_loss);
}

}  // namespace
}  // namespace dv
