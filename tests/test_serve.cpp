// Tests for the batch-first serving layer: the bounded queue primitive,
// micro-batcher lifecycle (backpressure, rejection, caller-runs, shutdown
// drain, scorer failure), and the hard determinism contract — verdicts
// through the async micro-batched path are bitwise identical to the
// sequential observe path for any max_batch and any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "augment/stream.h"
#include "core/monitor.h"
#include "detect/dv_adapter.h"
#include "eval/metrics.h"
#include "serve/monitor_service.h"
#include "serve/scoring_service.h"
#include "test_util.h"
#include "util/bounded_queue.h"
#include "util/thread_pool.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;
using namespace std::chrono_literals;

const deep_validator& fitted_validator() {
  static const deep_validator dv = [] {
    const auto& world = shared_tiny_world();
    deep_validator out;
    deep_validator_config cfg;
    cfg.max_train_per_class = 50;
    out.fit(*world.model, world.train, cfg);
    const auto clean = out.evaluate(*world.model, world.test.images).joint;
    out.set_threshold(threshold_for_fpr(clean, 0.05));
    return out;
  }();
  return dv;
}

/// A [1,2,2] frame whose first pixel encodes `value`.
tensor tagged_frame(float value) {
  tensor frame{{1, 2, 2}};
  frame.data()[0] = value;
  return frame;
}

/// Stateless stub: result.joint = first pixel of the frame. Negative
/// pixels make the whole batch throw.
class pixel_scorer : public batch_scorer {
 public:
  std::vector<scoring_result> score(const tensor& frames) override {
    const std::int64_t n = frames.extent(0);
    {
      std::lock_guard lock{mutex_};
      batch_sizes_.push_back(n);
    }
    std::vector<scoring_result> out(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const float pixel = frames.data()[i * 4];
      if (pixel < 0.0f) throw std::runtime_error{"pixel_scorer: bad frame"};
      out[static_cast<std::size_t>(i)].joint = static_cast<double>(pixel);
      out[static_cast<std::size_t>(i)].prediction = static_cast<std::int64_t>(pixel);
    }
    return out;
  }

  std::vector<std::int64_t> batch_sizes() {
    std::lock_guard lock{mutex_};
    return batch_sizes_;
  }

 private:
  std::mutex mutex_;
  std::vector<std::int64_t> batch_sizes_;
};

/// pixel_scorer that parks inside score() until opened, so tests can fill
/// the queue deterministically while the worker is busy.
class gated_scorer : public pixel_scorer {
 public:
  std::vector<scoring_result> score(const tensor& frames) override {
    {
      std::unique_lock lock{mutex_};
      started_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return open_; });
    }
    return pixel_scorer::score(frames);
  }

  void wait_until_scoring() {
    std::unique_lock lock{mutex_};
    cv_.wait(lock, [this] { return started_; });
  }

  void open() {
    std::lock_guard lock{mutex_};
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool started_{false};
  bool open_{false};
};

struct thread_count_guard {
  ~thread_count_guard() { set_thread_count(0); }
};

// -- bounded_queue ----------------------------------------------------------

TEST(BoundedQueue, PopBatchCoalescesUpToMaxItems) {
  bounded_queue<int> q{8};
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_EQ(q.try_push(v), queue_push_result::ok);
  }
  std::vector<int> batch;
  ASSERT_TRUE(q.pop_batch(batch, 3, 0ns));
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  ASSERT_TRUE(q.pop_batch(batch, 3, 0ns));
  EXPECT_EQ(batch, (std::vector<int>{3, 4}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushReportsFullAndClosed) {
  bounded_queue<int> q{1};
  int v = 1;
  EXPECT_EQ(q.try_push(v), queue_push_result::ok);
  int w = 2;
  EXPECT_EQ(q.try_push(w), queue_push_result::full);
  q.close();
  EXPECT_EQ(q.try_push(w), queue_push_result::closed);
}

TEST(BoundedQueue, CloseDrainsThenSignalsDone) {
  bounded_queue<int> q{4};
  for (int i = 0; i < 3; ++i) {
    int v = i;
    ASSERT_EQ(q.try_push(v), queue_push_result::ok);
  }
  q.close();
  std::vector<int> batch;
  ASSERT_TRUE(q.pop_batch(batch, 10, 1ms));
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_FALSE(q.pop_batch(batch, 10, 1ms));  // closed and empty
}

TEST(BoundedQueue, BlockingPushUnblocksWhenConsumerDrains) {
  bounded_queue<int> q{1};
  int first = 1;
  ASSERT_TRUE(q.push(first));
  std::thread producer{[&q] {
    int second = 2;
    EXPECT_TRUE(q.push(second));  // blocks until the pop below
  }};
  std::vector<int> batch;
  ASSERT_TRUE(q.pop_batch(batch, 1, 0ns));
  EXPECT_EQ(batch, (std::vector<int>{1}));
  producer.join();
  ASSERT_TRUE(q.pop_batch(batch, 1, 0ns));
  EXPECT_EQ(batch, (std::vector<int>{2}));
}

TEST(BoundedQueue, PopBatchWaitsForFirstItem) {
  bounded_queue<int> q{4};
  std::thread producer{[&q] {
    std::this_thread::sleep_for(5ms);
    int v = 7;
    (void)q.push(v);
  }};
  std::vector<int> batch;
  ASSERT_TRUE(q.pop_batch(batch, 4, 0ns));  // blocks for the first item
  EXPECT_EQ(batch, (std::vector<int>{7}));
  producer.join();
}

// -- scoring_service lifecycle ---------------------------------------------

serve_config stub_config(int max_batch, std::size_t capacity,
                         overflow_policy policy,
                         std::chrono::microseconds delay = 1000us) {
  serve_config cfg;
  cfg.batch.max_batch = max_batch;
  cfg.queue_capacity = capacity;
  cfg.on_full = policy;
  cfg.max_delay = delay;
  return cfg;
}

TEST(ScoringService, CompletesEveryFutureWithItsOwnResult) {
  pixel_scorer scorer;
  scoring_service svc{scorer, stub_config(4, 16, overflow_policy::block)};
  std::vector<std::future<scoring_result>> futures;
  for (int i = 0; i < 20; ++i) futures.push_back(svc.submit(tagged_frame(i)));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().joint, i);
  }
  svc.shutdown();
}

TEST(ScoringService, CoalescesQueuedFramesIntoOneBatch) {
  gated_scorer scorer;
  scoring_service svc{scorer, stub_config(8, 16, overflow_policy::block, 500us)};
  std::vector<std::future<scoring_result>> futures;
  futures.push_back(svc.submit(tagged_frame(0)));
  scorer.wait_until_scoring();  // worker busy with the batch {0}
  for (int i = 1; i < 8; ++i) futures.push_back(svc.submit(tagged_frame(i)));
  scorer.open();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().joint, i);
  }
  // Deterministic composition: {0} was in flight, the other 7 coalesce.
  EXPECT_EQ(scorer.batch_sizes(), (std::vector<std::int64_t>{1, 7}));
  svc.shutdown();
}

TEST(ScoringService, RejectPolicyThrowsWhenQueueIsFull) {
  gated_scorer scorer;
  scoring_service svc{scorer, stub_config(1, 2, overflow_policy::reject, 0us)};
  auto first = svc.submit(tagged_frame(0));
  scorer.wait_until_scoring();  // worker parked; queue now empty
  auto second = svc.submit(tagged_frame(1));
  auto third = svc.submit(tagged_frame(2));  // queue at capacity 2
  EXPECT_THROW((void)svc.submit(tagged_frame(3)), serve_rejected_error);
  scorer.open();
  EXPECT_EQ(first.get().joint, 0);
  EXPECT_EQ(second.get().joint, 1);
  EXPECT_EQ(third.get().joint, 2);
  svc.shutdown();
}

TEST(ScoringService, CallerRunsOverflowStillScoresCorrectly) {
  pixel_scorer scorer;
  scoring_service svc{scorer,
                      stub_config(1, 1, overflow_policy::caller_runs, 0us)};
  std::vector<std::future<scoring_result>> futures;
  for (int i = 0; i < 30; ++i) futures.push_back(svc.submit(tagged_frame(i)));
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().joint, i);
  }
  svc.shutdown();
}

TEST(ScoringService, ShutdownDrainsAcceptedFrames) {
  pixel_scorer scorer;
  auto svc = std::make_unique<scoring_service>(
      scorer, stub_config(4, 64, overflow_policy::block, 2000us));
  std::vector<std::future<scoring_result>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(svc->submit(tagged_frame(i)));
  svc->shutdown();  // must complete every accepted future
  for (int i = 0; i < 32; ++i) {
    auto& fut = futures[static_cast<std::size_t>(i)];
    ASSERT_EQ(fut.wait_for(0s), std::future_status::ready);
    EXPECT_EQ(fut.get().joint, i);
  }
  EXPECT_FALSE(svc->running());
  EXPECT_THROW((void)svc->submit(tagged_frame(99)), std::runtime_error);
}

TEST(ScoringService, ScorerFailureReachesTheFutureAndWorkerSurvives) {
  pixel_scorer scorer;
  scoring_service svc{scorer, stub_config(1, 8, overflow_policy::block, 0us)};
  auto bad = svc.submit(tagged_frame(-1.0f));
  EXPECT_THROW((void)bad.get(), std::runtime_error);
  auto good = svc.submit(tagged_frame(5));
  EXPECT_EQ(good.get().joint, 5);  // worker still serving
  svc.shutdown();
}

TEST(ScoringService, MismatchedFrameShapeThrows) {
  pixel_scorer scorer;
  scoring_service svc{scorer, stub_config(4, 8, overflow_policy::block)};
  (void)svc.submit(tagged_frame(1));
  tensor other{{1, 3, 3}};
  EXPECT_THROW((void)svc.submit(std::move(other)), std::invalid_argument);
  svc.flush();
  svc.shutdown();
}

// -- validator_scorer against the direct batch path ------------------------

TEST(ValidatorScorer, MatchesDirectEvaluateWeightedAndDetector) {
  const auto& world = shared_tiny_world();
  const auto& validator = fitted_validator();
  const tensor images = world.test.images.slice_rows(0, 10);

  weighted_joint_validator weighted;
  const tensor outliers = weighted_joint_validator::make_noise_outliers(
      {20, 1, 28, 28}, 99);
  weighted.fit(*world.model, validator, world.test.images.slice_rows(20, 40),
               outliers);

  deep_validation_detector adapter{*world.model, validator};

  const auto direct = validator.evaluate(*world.model, images);
  const auto direct_weighted =
      weighted.score_batch(*world.model, validator, images);

  validator_scorer scorer{*world.model, validator};
  scorer.attach_weighted(weighted);
  scorer.attach_detector(adapter);
  scoring_service svc{scorer, stub_config(4, 16, overflow_policy::block, 500us)};
  std::vector<std::future<scoring_result>> futures;
  for (std::int64_t i = 0; i < 10; ++i) {
    futures.push_back(svc.submit(images.sample(i)));
  }
  for (std::size_t i = 0; i < 10; ++i) {
    const auto row = futures[i].get();
    EXPECT_EQ(row.joint, direct.joint[i]);  // bitwise
    EXPECT_EQ(row.prediction, direct.predictions[i]);
    EXPECT_EQ(row.invalid, validator.flags_invalid(direct.joint[i]));
    ASSERT_EQ(row.per_layer.size(), direct.per_layer.size());
    for (std::size_t l = 0; l < row.per_layer.size(); ++l) {
      EXPECT_EQ(row.per_layer[l], direct.per_layer[l][i]);
    }
    ASSERT_TRUE(row.has_weighted);
    EXPECT_EQ(row.weighted, direct_weighted[i]);
    ASSERT_EQ(row.detector_scores.size(), 1u);
    EXPECT_EQ(row.detector_scores[0], direct.joint[i]);
  }
  svc.shutdown();
}

// -- monitor_service --------------------------------------------------------

std::vector<tensor> mixed_frame_stream() {
  const auto& world = shared_tiny_world();
  const transform_chain invert{{transform_kind::complement, 0, 0}};
  std::vector<tensor> frames;
  for (int i = 0; i < 10; ++i) frames.push_back(world.test.images.sample(i));
  for (int i = 10; i < 17; ++i) {
    frames.push_back(apply_chain(world.test.images.sample(i), invert));
  }
  for (int i = 17; i < 24; ++i) frames.push_back(world.test.images.sample(i));
  return frames;
}

monitor_config serving_monitor_config() {
  monitor_config mc;
  mc.window = 6;
  mc.trigger_count = 3;
  mc.release_count = 2;
  return mc;
}

/// The acceptance test: sequential observe vs. submit through the
/// micro-batcher must be bitwise identical for every max_batch x threads
/// combination — batch composition and queue timing must not matter.
TEST(MonitorService, BitwiseIdenticalToSequentialObserve) {
  const auto& world = shared_tiny_world();
  const auto frames = mixed_frame_stream();
  const auto mc = serving_monitor_config();

  runtime_monitor reference{*world.model, fitted_validator(), mc};
  std::vector<monitor_verdict> expected;
  for (const auto& frame : frames) expected.push_back(reference.observe(frame));
  // The stream must actually exercise the latch for this test to mean much.
  ASSERT_TRUE(std::any_of(expected.begin(), expected.end(),
                          [](const monitor_verdict& v) { return v.alarm; }));

  thread_count_guard guard;
  for (const int threads : {1, 8}) {
    for (const int max_batch : {1, 4, 32}) {
      set_thread_count(threads);
      runtime_monitor monitor{*world.model, fitted_validator(), mc};
      serve_config cfg;
      cfg.batch.max_batch = max_batch;
      cfg.max_delay = 2000us;
      cfg.queue_capacity = 64;
      monitor_service svc{*world.model, monitor, cfg};
      std::vector<std::future<monitor_verdict>> futures;
      for (const auto& frame : frames) futures.push_back(svc.submit(frame));
      for (std::size_t i = 0; i < frames.size(); ++i) {
        const auto v = futures[i].get();
        EXPECT_EQ(v.discrepancy, expected[i].discrepancy)
            << "threads=" << threads << " max_batch=" << max_batch
            << " frame=" << i;
        EXPECT_EQ(v.prediction, expected[i].prediction);
        EXPECT_EQ(v.frame_invalid, expected[i].frame_invalid);
        EXPECT_EQ(v.alarm, expected[i].alarm);
      }
      svc.shutdown();
      EXPECT_EQ(monitor.frames_seen(),
                static_cast<std::int64_t>(frames.size()));
    }
  }
}

TEST(MonitorService, ResetWithRequestsInFlight) {
  const auto& world = shared_tiny_world();
  runtime_monitor monitor{*world.model, fitted_validator(),
                          serving_monitor_config()};
  // Stub scorer: every frame far above threshold, so the alarm latches.
  class invalid_scorer : public batch_scorer {
   public:
    std::vector<scoring_result> score(const tensor& frames) override {
      std::vector<scoring_result> out(
          static_cast<std::size_t>(frames.extent(0)));
      for (auto& row : out) row.joint = 1e9;
      return out;
    }
  };
  invalid_scorer scorer;
  monitor_service svc{scorer, monitor,
                      stub_config(4, 64, overflow_policy::block, 2000us)};
  std::vector<std::future<monitor_verdict>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(svc.submit(tagged_frame(i)));
  svc.reset();  // drains the in-flight frames, then clears the monitor
  for (auto& fut : futures) {
    ASSERT_EQ(fut.wait_for(0s), std::future_status::ready);
    EXPECT_TRUE(fut.get().frame_invalid);
  }
  EXPECT_EQ(monitor.frames_seen(), 0);
  EXPECT_FALSE(monitor.alarmed());
  // The service keeps serving after a reset.
  EXPECT_TRUE(svc.submit(tagged_frame(0)).get().frame_invalid);
  EXPECT_EQ(monitor.frames_seen(), 1);
  svc.shutdown();
}

TEST(MonitorService, CallerRunsPolicyIsRejectedAtConstruction) {
  const auto& world = shared_tiny_world();
  runtime_monitor monitor{*world.model, fitted_validator()};
  serve_config cfg;
  cfg.on_full = overflow_policy::caller_runs;
  EXPECT_THROW((monitor_service{*world.model, monitor, cfg}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dv
