// Race fixture: member definitions. worker() in driver.cpp is the
// concurrency root that makes bump()'s unguarded write reportable.
#include "rx/counter.h"

namespace rx {

void counter::bump() {
  total_ += 1;
  hits_.fetch_add(1);
}

int counter::read() {
  std::lock_guard<std::mutex> lock{mu_};
  return total_;
}

void counter::set_tag(int t) {
  tag_ = t;
  scratch_ = t;
}

void counter::accumulate(int v) {
  std::lock_guard<std::mutex> lock{mu_};
  add_locked(v);
}

void counter::add_locked(int v) { sum_ += v; }

void counter::reset() {
  epoch_ = 0;  // dv-lint: allow(race) fixture: runs only while quiescent
}

}  // namespace rx
