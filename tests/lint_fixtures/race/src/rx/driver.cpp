// Race fixture: the concurrency root. dv:thread-entry binds to the
// definition; everything worker() reaches is a concurrent path.
#include "rx/counter.h"

namespace rx {

// dv:thread-entry(fixture worker thread)
void worker(counter& c) { c.bump(); }

}  // namespace rx
