// Race fixture: one class, six fields, one outcome each — inferred race
// (total_), violated annotation (tag_), annotation satisfied through the
// entry lockset of a _locked helper (sum_), atomic exemption (hits_),
// access-line waiver (epoch_), declaration-line waiver (scratch_).
#pragma once

#include <atomic>
#include <mutex>

namespace rx {

class counter {
 public:
  void bump();
  int read();
  void set_tag(int t);
  void accumulate(int v);
  void reset();

 private:
  void add_locked(int v);

  std::mutex mu_;
  int total_{0};
  int tag_{0};  // dv:guarded-by(mu_)
  int sum_{0};  // dv:guarded-by(mu_)
  std::atomic<int> hits_{0};
  int epoch_{0};
  int scratch_{0};  // dv-lint: allow(race) fixture: debug-only slot
};

}  // namespace rx
