#pragma once
namespace dv {
struct point {
  double x{0.0};
  double y{0.0};
};
point lerp(const point& a, const point& b, double t);
}  // namespace dv
