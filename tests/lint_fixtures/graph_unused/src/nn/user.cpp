#include "util/dead.h"
// dv-lint: allow(unused-include) fixture: re-exported on purpose
#include "util/dead2.h"
#include "util/used.h"
namespace dv {
widget make() { return widget{}; }
}  // namespace dv
