#pragma once
namespace dv {
struct doohickey {};
}  // namespace dv
