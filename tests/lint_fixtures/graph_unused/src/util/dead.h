#pragma once
namespace dv {
struct gadget {};
}  // namespace dv
