#pragma once
namespace dv {
struct widget {};
}  // namespace dv
