// Effects fixture: two mutexes acquired in opposite orders — a
// lock-order cycle that deadlocks under interleaving.
namespace fx {

// dv-lint: allow(thread-safety) fixture mutex
std::mutex ma;
// dv-lint: allow(thread-safety) fixture mutex
std::mutex mb;

void ab() {
  std::lock_guard<std::mutex> g1{ma};
  std::lock_guard<std::mutex> g2{mb};
}

void ba() {
  std::lock_guard<std::mutex> g1{mb};
  std::lock_guard<std::mutex> g2{ma};
}

}  // namespace fx
