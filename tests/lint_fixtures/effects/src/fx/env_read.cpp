// Effects fixture: getenv outside vs. inside a dv:init function.
namespace fx {

int knob() { return getenv("DV_X") != nullptr ? 1 : 0; }

// dv:init(latched once at startup by the fixture harness)
int knob_init() { return getenv("DV_Y") != nullptr ? 1 : 0; }

}  // namespace fx
