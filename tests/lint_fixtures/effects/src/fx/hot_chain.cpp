// Effects fixture: the lambda's lock is three calls deep — only the
// transitive closure can see it from the parallel_for site.
namespace fx {

// dv-lint: allow(thread-safety) fixture mutex
std::mutex m;

void c() {
  std::lock_guard<std::mutex> g{m};
}

void b() { c(); }

void a() { b(); }

void run() {
  // dv:parallel-safe(fixture)
  parallel_for(0, 8, 1, [](long lo, long hi) {
    a();
  });
}

}  // namespace fx
