// Effects fixture: pure call chain and disjoint-slot writes — nothing
// may fire.
namespace fx {

double square(double x) { return x * x; }

void fill(double* out) {
  // dv:parallel-safe(disjoint slots per index)
  parallel_for(0, 8, 1, [out](long lo, long hi) {
    for (long i = lo; i < hi; ++i) out[i] = square(double(i));
  });
}

}  // namespace fx
