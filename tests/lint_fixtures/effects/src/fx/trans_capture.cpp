// Effects fixture: the by-ref capture is written one call down — the
// per-file capture pass cannot see it, the transitive one can.
namespace fx {

void bump(double& acc, double v) { acc += v; }

void run(double& total) {
  // dv:parallel-safe(fixture)
  parallel_for(0, 8, 1, [&total](long lo, long hi) {
    bump(total, double(hi - lo));
  });
}

}  // namespace fx
