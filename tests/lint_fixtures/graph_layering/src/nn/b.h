#pragma once
#include "util/a.h"
namespace dv {
struct beta {
  alpha a;
};
}  // namespace dv
