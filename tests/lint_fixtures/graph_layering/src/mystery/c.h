#pragma once
namespace dv {
struct mystery_tag {};
}  // namespace dv
