#pragma once
namespace dv {
struct alpha {};
}  // namespace dv
