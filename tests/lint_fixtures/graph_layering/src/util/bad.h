#pragma once
#include "nn/b.h"
namespace dv {
struct gamma {
  beta b;
};
}  // namespace dv
