// Fixture: header without #pragma once plus a leaking using-directive.
#include <string>
using namespace std;
inline string shout(const string& s) { return s + "!"; }
