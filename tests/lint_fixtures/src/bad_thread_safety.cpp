// Fixture: unannotated parallel site, mutable static, mutable global.
#include "util/thread_pool.h"
namespace fixture {
int g_mode = 0;
void run() {
  static int calls = 0;
  ++calls;
  dv::parallel_for(0, 8, 1, [](long lo, long hi) {
    (void)lo;
    (void)hi;
  });
  (void)g_mode;
}
}  // namespace fixture
