// Fixture: a correctly annotated parallel call site and a guarded
// metrics handle — the clean patterns the checks are steering toward.
#include "util/metrics.h"
#include "util/thread_pool.h"
namespace fixture {
void fill(float* out) {
  dv::metrics::counter* fills =
      dv::metrics::get_counter("fixture_fills_total");
  if (fills != nullptr) fills->add();
  // dv:parallel-safe(disjoint writes per index, no reduction)
  dv::parallel_for(0, 64, 8, [out](long lo, long hi) {
    for (long i = lo; i < hi; ++i) out[i] = 0.0f;
  });
}
}  // namespace fixture
