// Fixture: every determinism violation the check knows about.
namespace fixture {
int noise() {
  int x = rand();
  srand(7);
  std::random_device rd;
  auto t = std::chrono::system_clock::now();
  long w = time(nullptr);
  (void)rd; (void)t; (void)w;
  return x;
}
}  // namespace fixture
