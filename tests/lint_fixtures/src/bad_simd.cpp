// Fixture: vendor intrinsics outside src/tensor/simd/ must go through
// the dispatch table.
#include <immintrin.h>

namespace dv {
float first_lane(const float* x) {
  __m128 v = _mm_loadu_ps(x);
  return _mm_cvtss_f32(v);
}
}  // namespace dv
