// Fixture: the simd check is a path rule — the same intrinsics are fine
// under src/tensor/simd/ (this file lints under that pseudo-path) — and
// an explicit waiver silences it elsewhere.
#include "tensor/simd/simd.h"

namespace dv {
void waived(float* x) {
  // dv-lint: allow(simd) pinning one lane for a regression repro
  __m128_like_helper(x);
}
}  // namespace dv
