// Fixture: ungated dv::metrics use outside src/util.
#include "util/metrics.h"
namespace fixture {
void record(double v) {
  dv::metrics::counter* events =
      dv::metrics::get_counter("fixture_events_total");
  events->add();
  dv::metrics::set_enabled(true);
  dv::metrics::get_gauge("fixture_level")->set(v);
}
}  // namespace fixture
