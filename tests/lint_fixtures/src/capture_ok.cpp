// Fixture: the three sanctioned parallel-write shapes pass the capture
// check — disjoint slots indexed by the loop variable, per-chunk
// partials, and an explicitly waived reviewed reduction.
namespace dv {
// dv:parallel-safe(prototype, not a call site)
void parallel_for(long, long, long, void (*)(long, long));
// dv:parallel-safe(prototype, not a call site)
void parallel_for_chunks(long, long, long, void (*)(long, long, long, int));
void f(float* out, float* partial) {
  // dv:parallel-safe(disjoint slots per index)
  parallel_for(0, 8, 1, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) out[i] = 1.0f;
  });
  // dv:parallel-safe(per-chunk partials folded after the loop)
  parallel_for_chunks(0, 8, 1, [&](long chunk, long lo, long hi, int) {
    for (long i = lo; i < hi; ++i) partial[chunk] += 1.0f;
  });
  double acc = 0.0;
  // dv:parallel-safe(reviewed) dv-lint: allow(capture) single-chunk call
  parallel_for(0, 8, 8, [&](long lo, long hi) { acc += double(hi - lo); });
}
}  // namespace dv
