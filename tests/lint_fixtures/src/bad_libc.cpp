// Fixture: banned unsafe libc calls.
#include <cstdio>
#include <cstdlib>
#include <cstring>
namespace fixture {
void format(char* out, const char* in) {
  sprintf(out, "%s", in);
  strcpy(out, in);
  int n = atoi(in);
  (void)n;
}
}  // namespace fixture
