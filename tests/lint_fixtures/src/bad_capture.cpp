// Fixture: by-ref capture written by every chunk without loop-local
// indexing — the canonical parallel reduction race.
namespace dv {
// dv:parallel-safe(prototype, not a call site)
void parallel_for(long, long, long, void (*)(long, long));
void f() {
  double sum = 0.0;
  // dv:parallel-safe(fixture: the capture check must flag this anyway)
  parallel_for(0, 8, 1, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) sum += 1.0;
  });
}
}  // namespace dv
