// Fixture: real violations silenced with dv-lint: allow — same line
// and line-above placements both count.
namespace fixture {
int g_mode = 0;  // dv-lint: allow(thread-safety) set once before threads start
int jitter() {
  // dv-lint: allow(determinism) fixture exercises the suppression grammar
  return rand();
}
}  // namespace fixture
