#pragma once
#include "nn/a.h"
namespace dv {
struct cyc_b {
  cyc_a* other;
};
}  // namespace dv
