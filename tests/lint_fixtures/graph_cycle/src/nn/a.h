#pragma once
#include "nn/b.h"
namespace dv {
struct cyc_a {
  cyc_b* other;
};
}  // namespace dv
