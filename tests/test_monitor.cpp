// Tests for the runtime fail-safe monitor and the environment-drift stream.
#include <gtest/gtest.h>

#include "augment/stream.h"
#include "core/monitor.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

const deep_validator& fitted_validator() {
  static const deep_validator dv = [] {
    const auto& world = shared_tiny_world();
    deep_validator out;
    deep_validator_config cfg;
    cfg.max_train_per_class = 50;
    out.fit(*world.model, world.train, cfg);
    const auto clean =
        out.evaluate(*world.model, world.test.images).joint;
    out.set_threshold(threshold_for_fpr(clean, 0.05));
    return out;
  }();
  return dv;
}

// -- environment_stream ---------------------------------------------------------

TEST(EnvironmentStream, EmitsFramesCyclically) {
  const auto& world = shared_tiny_world();
  environment_stream stream{world.test};
  const auto f0 = stream.next();
  EXPECT_EQ(f0.index, 0);
  EXPECT_EQ(f0.label, world.test.labels[0]);
  EXPECT_EQ(f0.image.shape(), (std::vector<std::int64_t>{1, 28, 28}));
  for (int i = 1; i < 5; ++i) (void)stream.next();
  EXPECT_EQ(stream.frames_emitted(), 5);
}

TEST(EnvironmentStream, NoDriftNoWalkIsIdentity) {
  const auto& world = shared_tiny_world();
  environment_stream stream{world.test};  // all drift/walk zero by default
  const auto frame = stream.next();
  const tensor original = world.test.images.sample(0);
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    EXPECT_EQ(frame.image[i], original[i]);
  }
}

TEST(EnvironmentStream, DriftAccumulates) {
  const auto& world = shared_tiny_world();
  stream_config cfg;
  cfg.drift.brightness_bias = 0.1f;
  cfg.drift.rotation_deg = 5.0f;
  environment_stream stream{world.test, cfg};
  for (int i = 0; i < 4; ++i) (void)stream.next();
  EXPECT_NEAR(stream.state().brightness_bias, 0.4f, 1e-6f);
  EXPECT_NEAR(stream.state().rotation_deg, 20.0f, 1e-5f);
}

TEST(EnvironmentStream, BoundsAreRespected) {
  const auto& world = shared_tiny_world();
  stream_config cfg;
  cfg.drift.brightness_bias = 0.5f;
  cfg.drift.rotation_deg = 30.0f;
  cfg.drift.contrast_gain = 2.0f;
  cfg.max_brightness = 0.8f;
  cfg.max_rotation = 45.0f;
  cfg.max_contrast = 3.0f;
  environment_stream stream{world.test, cfg};
  for (int i = 0; i < 20; ++i) (void)stream.next();
  EXPECT_LE(stream.state().brightness_bias, 0.8f);
  EXPECT_LE(stream.state().rotation_deg, 45.0f);
  EXPECT_LE(stream.state().contrast_gain, 3.0f);
}

TEST(EnvironmentStream, WalkIsDeterministicPerSeed) {
  const auto& world = shared_tiny_world();
  stream_config cfg;
  cfg.walk_stddev.brightness_bias = 0.05f;
  cfg.seed = 7;
  environment_stream a{world.test, cfg};
  environment_stream b{world.test, cfg};
  for (int i = 0; i < 10; ++i) {
    (void)a.next();
    (void)b.next();
  }
  EXPECT_EQ(a.state().brightness_bias, b.state().brightness_bias);
}

TEST(EnvironmentState, ChainSkipsIdentityComponents) {
  environment_state s;
  EXPECT_TRUE(s.as_chain().empty());
  s.brightness_bias = 0.3f;
  s.rotation_deg = 10.0f;
  EXPECT_EQ(s.as_chain().size(), 2u);
}

// -- runtime_monitor --------------------------------------------------------------

TEST(Monitor, CleanStreamRaisesNoAlarm) {
  const auto& world = shared_tiny_world();
  runtime_monitor monitor{*world.model, fitted_validator()};
  environment_stream stream{world.test};
  int alarms = 0;
  for (int i = 0; i < 20; ++i) {
    alarms += monitor.observe(stream.next().image).alarm ? 1 : 0;
  }
  EXPECT_EQ(alarms, 0);
  EXPECT_EQ(monitor.frames_seen(), 20);
  EXPECT_LT(monitor.window_invalid_fraction(), 0.5);
}

TEST(Monitor, DegradingStreamLatchesAlarm) {
  const auto& world = shared_tiny_world();
  runtime_monitor monitor{*world.model, fitted_validator()};
  stream_config cfg;
  cfg.drift.brightness_bias = 0.06f;
  cfg.drift.rotation_deg = 5.0f;
  environment_stream stream{world.test, cfg};
  bool alarmed = false;
  for (int i = 0; i < 30 && !alarmed; ++i) {
    alarmed = monitor.observe(stream.next().image).alarm;
  }
  EXPECT_TRUE(alarmed);
  EXPECT_TRUE(monitor.alarmed());
}

TEST(Monitor, HysteresisReleasesAfterRecovery) {
  const auto& world = shared_tiny_world();
  monitor_config mc;
  mc.window = 4;
  mc.trigger_count = 2;
  mc.release_count = 3;
  runtime_monitor monitor{*world.model, fitted_validator(), mc};
  // Force invalid frames: complemented digits.
  const transform_chain invert{{transform_kind::complement, 0, 0}};
  for (int i = 0; i < 4; ++i) {
    (void)monitor.observe(
        apply_chain(world.test.images.sample(i), invert));
  }
  EXPECT_TRUE(monitor.alarmed());
  // Recover with clean frames; alarm must release after release_count.
  int released_at = -1;
  for (int i = 0; i < 10; ++i) {
    const auto v = monitor.observe(world.test.images.sample(i + 20));
    if (!v.alarm) {
      released_at = i;
      break;
    }
  }
  EXPECT_GE(released_at, mc.release_count - 1);
  EXPECT_NE(released_at, -1);
}

TEST(Monitor, SingleInvalidFrameDoesNotLatch) {
  const auto& world = shared_tiny_world();
  monitor_config mc;
  mc.trigger_count = 3;
  runtime_monitor monitor{*world.model, fitted_validator(), mc};
  const transform_chain invert{{transform_kind::complement, 0, 0}};
  (void)monitor.observe(world.test.images.sample(0));
  const auto v = monitor.observe(
      apply_chain(world.test.images.sample(1), invert));
  EXPECT_TRUE(v.frame_invalid);
  EXPECT_FALSE(v.alarm);  // hysteresis prevents one-frame flapping
}

TEST(Monitor, ResetClearsState) {
  const auto& world = shared_tiny_world();
  runtime_monitor monitor{*world.model, fitted_validator()};
  const transform_chain invert{{transform_kind::complement, 0, 0}};
  for (int i = 0; i < 5; ++i) {
    (void)monitor.observe(
        apply_chain(world.test.images.sample(i), invert));
  }
  monitor.reset();
  EXPECT_FALSE(monitor.alarmed());
  EXPECT_EQ(monitor.frames_seen(), 0);
  EXPECT_EQ(monitor.window_invalid_fraction(), 0.0);
}

TEST(Monitor, BadConfigurationThrows) {
  const auto& world = shared_tiny_world();
  monitor_config mc;
  mc.window = 2;
  mc.trigger_count = 3;  // trigger larger than window
  EXPECT_THROW(runtime_monitor(*world.model, fitted_validator(), mc),
               std::invalid_argument);
}

TEST(Monitor, UnfittedValidatorThrows) {
  const auto& world = shared_tiny_world();
  deep_validator unfitted;
  EXPECT_THROW(runtime_monitor(*world.model, unfitted),
               std::logic_error);
}

// -- batch path -------------------------------------------------------------

TEST(Monitor, ObserveBatchMatchesSequentialObserve) {
  const auto& world = shared_tiny_world();
  monitor_config mc;
  mc.window = 5;
  mc.trigger_count = 2;
  mc.release_count = 2;
  const transform_chain invert{{transform_kind::complement, 0, 0}};
  // Clean, invalid, clean: exercises latch and release across the stream.
  tensor frames{{12, 1, 28, 28}};
  for (std::int64_t i = 0; i < 12; ++i) {
    const tensor image = world.test.images.sample(i);
    frames.set_sample(i, (i >= 4 && i < 8) ? apply_chain(image, invert)
                                           : image);
  }
  runtime_monitor sequential{*world.model, fitted_validator(), mc};
  runtime_monitor batched{*world.model, fitted_validator(), mc};
  std::vector<monitor_verdict> expected;
  for (std::int64_t i = 0; i < 12; ++i) {
    expected.push_back(sequential.observe(frames.sample(i)));
  }
  const auto got = batched.observe_batch(frames);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].discrepancy, expected[i].discrepancy);  // bitwise
    EXPECT_EQ(got[i].prediction, expected[i].prediction);
    EXPECT_EQ(got[i].frame_invalid, expected[i].frame_invalid);
    EXPECT_EQ(got[i].alarm, expected[i].alarm);
  }
  EXPECT_EQ(batched.frames_seen(), sequential.frames_seen());
  EXPECT_EQ(batched.alarmed(), sequential.alarmed());
}

TEST(Monitor, ApplyIsAPureStateMachineStep) {
  const auto& world = shared_tiny_world();
  const auto& validator = fitted_validator();
  monitor_config mc;
  mc.window = 4;
  mc.trigger_count = 2;
  mc.release_count = 2;
  runtime_monitor monitor{*world.model, validator, mc};
  const double invalid = validator.threshold() + 1.0;
  const double valid = validator.threshold() - 1.0;
  EXPECT_FALSE(monitor.apply({valid, 3}).alarm);
  const auto first_invalid = monitor.apply({invalid, 4});
  EXPECT_TRUE(first_invalid.frame_invalid);
  EXPECT_FALSE(first_invalid.alarm);  // below trigger_count
  EXPECT_TRUE(monitor.apply({invalid, 4}).alarm);  // second invalid latches
  EXPECT_TRUE(monitor.apply({valid, 3}).alarm);    // one valid: still latched
  EXPECT_FALSE(monitor.apply({valid, 3}).alarm);   // release_count reached
  EXPECT_EQ(monitor.frames_seen(), 5);
}

TEST(Monitor, BatchSpanningTriggerBoundaryLatchesMidBatch) {
  const auto& world = shared_tiny_world();
  monitor_config mc;
  mc.window = 4;
  mc.trigger_count = 2;
  mc.release_count = 4;
  runtime_monitor monitor{*world.model, fitted_validator(), mc};
  const transform_chain invert{{transform_kind::complement, 0, 0}};
  tensor frames{{3, 1, 28, 28}};
  frames.set_sample(0, apply_chain(world.test.images.sample(0), invert));
  frames.set_sample(1, apply_chain(world.test.images.sample(1), invert));
  frames.set_sample(2, world.test.images.sample(2));
  const auto verdicts = monitor.observe_batch(frames);
  ASSERT_EQ(verdicts.size(), 3u);
  ASSERT_TRUE(verdicts[0].frame_invalid);
  ASSERT_TRUE(verdicts[1].frame_invalid);
  EXPECT_FALSE(verdicts[0].alarm);  // one invalid frame: below trigger
  EXPECT_TRUE(verdicts[1].alarm);   // latches exactly at the boundary
  EXPECT_TRUE(verdicts[2].alarm);   // a single valid frame cannot release
  EXPECT_TRUE(monitor.alarmed());
}

}  // namespace
}  // namespace dv
