// Tests for the extension baselines: Mahalanobis (Lee et al.) and LID
// (Ma et al.) detectors.
#include <gtest/gtest.h>

#include "attack/fgsm.h"
#include "detect/lid.h"
#include "detect/mahalanobis.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

mahalanobis_config tiny_maha_config() {
  mahalanobis_config cfg;
  cfg.max_train_per_class = 30;
  return cfg;
}

TEST(Mahalanobis, CleanImagesCloserThanNoise) {
  const auto& world = shared_tiny_world();
  mahalanobis_detector det{*world.model, world.train, tiny_maha_config()};
  rng gen{1};
  const tensor noise = tensor::uniform({30, 1, 28, 28}, gen, 0.0f, 1.0f);
  const auto clean = det.score_batch(world.test.images.slice_rows(0, 30));
  const auto anomalous = det.score_batch(noise);
  EXPECT_GT(mean(anomalous), mean(clean));
  EXPECT_GT(roc_auc(anomalous, clean), 0.8);
}

TEST(Mahalanobis, ScoresAreNonNegative) {
  const auto& world = shared_tiny_world();
  mahalanobis_detector det{*world.model, world.train, tiny_maha_config()};
  const auto scores = det.score_batch(world.test.images.slice_rows(0, 10));
  for (const double s : scores) EXPECT_GE(s, 0.0);
}

TEST(Mahalanobis, SingleMatchesBatch) {
  const auto& world = shared_tiny_world();
  mahalanobis_detector det{*world.model, world.train, tiny_maha_config()};
  const double single = det.score(world.test.images.sample(4));
  const auto batch = det.score_batch(world.test.images.slice_rows(4, 5));
  EXPECT_NEAR(single, batch.front(), 1e-9);
  EXPECT_EQ(det.num_classes(), 10);
  EXPECT_EQ(det.name(), "mahalanobis");
}

lid_config tiny_lid_config() {
  lid_config cfg;
  cfg.reference_size = 120;
  cfg.neighbors = 12;
  return cfg;
}

struct lid_fixture {
  tensor positives;  // FGSM adversarials
  tensor negatives;  // clean images
};

const lid_fixture& shared_lid_fixture() {
  static const lid_fixture fx = [] {
    const auto& world = shared_tiny_world();
    lid_fixture out;
    fgsm_attack attack{0.3f};
    std::vector<tensor> advs;
    for (std::int64_t i = 0; i < 40 && advs.size() < 25; ++i) {
      const tensor img = world.test.images.sample(i);
      const auto res = attack.run(*world.model, img,
                                  world.test.labels[static_cast<std::size_t>(i)],
                                  -1);
      if (res.success) advs.push_back(res.adversarial);
    }
    out.positives = tensor{{static_cast<std::int64_t>(advs.size()), 1, 28, 28}};
    for (std::size_t i = 0; i < advs.size(); ++i) {
      out.positives.set_sample(static_cast<std::int64_t>(i), advs[i]);
    }
    out.negatives = world.test.images.slice_rows(100, 130);
    return out;
  }();
  return fx;
}

TEST(Lid, FitsAndSeparatesKnownAttack) {
  const auto& world = shared_tiny_world();
  const auto& fx = shared_lid_fixture();
  if (fx.positives.extent(0) < 10) GTEST_SKIP() << "too few adversarials";
  lid_detector det{*world.model, world.train, fx.positives, fx.negatives,
                   tiny_lid_config()};
  EXPECT_EQ(det.layers(), 3);
  // In-sample separation of the known attack should be strong.
  const auto pos = det.score_batch(fx.positives);
  const auto neg = det.score_batch(world.test.images.slice_rows(130, 160));
  EXPECT_GT(roc_auc(pos, neg), 0.75);
}

TEST(Lid, FeatureRowsHaveOneEntryPerLayer) {
  const auto& world = shared_tiny_world();
  const auto& fx = shared_lid_fixture();
  if (fx.positives.extent(0) < 10) GTEST_SKIP() << "too few adversarials";
  lid_detector det{*world.model, world.train, fx.positives, fx.negatives,
                   tiny_lid_config()};
  const auto rows = det.lid_features(world.test.images.slice_rows(0, 5));
  ASSERT_EQ(rows.size(), 5u);
  for (const auto& row : rows) {
    ASSERT_EQ(row.size(), 3u);
    for (const double v : row) EXPECT_GT(v, 0.0);  // LID estimates positive
  }
}

TEST(Lid, SingleMatchesBatch) {
  const auto& world = shared_tiny_world();
  const auto& fx = shared_lid_fixture();
  if (fx.positives.extent(0) < 10) GTEST_SKIP() << "too few adversarials";
  lid_detector det{*world.model, world.train, fx.positives, fx.negatives,
                   tiny_lid_config()};
  const double single = det.score(world.test.images.sample(7));
  const auto batch = det.score_batch(world.test.images.slice_rows(7, 8));
  EXPECT_NEAR(single, batch.front(), 1e-9);
}

}  // namespace
}  // namespace dv
