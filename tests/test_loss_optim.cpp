#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace dv {
namespace {

TEST(CrossEntropy, MatchesHandComputation) {
  // Logits [0, 0]: softmax = [0.5, 0.5]; loss = -log(0.5).
  tensor logits = tensor::from_data({1, 2}, {0.0f, 0.0f});
  const std::int64_t labels[1] = {0};
  tensor grad;
  const float loss = softmax_cross_entropy(logits, {labels, 1}, grad);
  EXPECT_NEAR(loss, std::log(2.0f), 1e-5);
  EXPECT_NEAR(grad[0], -0.5f, 1e-5);  // p - 1
  EXPECT_NEAR(grad[1], 0.5f, 1e-5);   // p
}

TEST(CrossEntropy, BatchAveraging) {
  tensor logits = tensor::from_data({2, 2}, {10.0f, 0.0f, 0.0f, 10.0f});
  const std::int64_t labels[2] = {0, 1};
  tensor grad;
  const float loss = softmax_cross_entropy(logits, {labels, 2}, grad);
  EXPECT_NEAR(loss, 0.0f, 1e-3);
  // Gradients divided by batch size.
  EXPECT_NEAR(grad[0], (1.0f / (1.0f + std::exp(-10.0f)) - 1.0f) / 2.0f, 1e-4);
}

TEST(CrossEntropy, GradientIsNumericallyCorrect) {
  rng gen{1};
  tensor logits = tensor::randn({3, 5}, gen);
  const std::int64_t labels[3] = {0, 2, 4};
  tensor grad;
  (void)softmax_cross_entropy(logits, {labels, 3}, grad);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    tensor up = logits, down = logits;
    up[i] += static_cast<float>(eps);
    down[i] -= static_cast<float>(eps);
    tensor g2;
    const double numeric = (softmax_cross_entropy(up, {labels, 3}, g2) -
                            softmax_cross_entropy(down, {labels, 3}, g2)) /
                           (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-3);
  }
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
  tensor logits{{1, 3}};
  const std::int64_t labels[1] = {3};
  tensor grad;
  EXPECT_THROW(softmax_cross_entropy(logits, {labels, 1}, grad),
               std::invalid_argument);
}

TEST(CrossEntropy, TargetVariant) {
  tensor logits = tensor::from_data({1, 3}, {0.0f, 0.0f, 0.0f});
  tensor grad;
  const float loss = softmax_cross_entropy_target(logits, 1, grad);
  EXPECT_NEAR(loss, std::log(3.0f), 1e-5);
  EXPECT_LT(grad[1], 0.0f);
  EXPECT_GT(grad[0], 0.0f);
}

/// A 1-D quadratic "layer" exposing a single parameter for optimizer tests:
/// loss = 0.5 * (w - target)^2 with gradient (w - target).
struct quadratic {
  tensor w = tensor::from_data({1}, {10.0f});
  tensor g = tensor::zeros({1});
  float target = 3.0f;

  std::vector<param_ref> params() { return {{&w, &g, "w"}}; }
  void compute_grad() { g[0] = w[0] - target; }
  float loss() const { return 0.5f * (w[0] - target) * (w[0] - target); }
};

TEST(Sgd, ConvergesOnQuadratic) {
  quadratic q;
  sgd opt{q.params(), 0.1f};
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    q.compute_grad();
    opt.step();
  }
  EXPECT_NEAR(q.w[0], 3.0f, 1e-3);
}

TEST(Sgd, MomentumAccelerates) {
  quadratic plain, mom;
  sgd opt_plain{plain.params(), 0.01f, 0.0f};
  sgd opt_mom{mom.params(), 0.01f, 0.9f};
  for (int i = 0; i < 50; ++i) {
    plain.compute_grad();
    opt_plain.step();
    mom.compute_grad();
    opt_mom.step();
  }
  EXPECT_LT(std::abs(mom.w[0] - 3.0f), std::abs(plain.w[0] - 3.0f));
}

TEST(Sgd, WeightDecayShrinksWeights) {
  quadratic q;
  q.target = 0.0f;
  sgd opt{q.params(), 0.1f, 0.0f, 0.5f};
  q.g.fill(0.0f);  // no data gradient; only decay acts
  const float before = q.w[0];
  opt.step();
  EXPECT_LT(q.w[0], before);
}

TEST(Adadelta, ConvergesOnQuadratic) {
  quadratic q;
  adadelta opt{q.params(), 1.0f};
  for (int i = 0; i < 2000; ++i) {
    q.compute_grad();
    opt.step();
  }
  EXPECT_NEAR(q.w[0], 3.0f, 0.1f);
}

TEST(Adadelta, LearningRateDecay) {
  quadratic q;
  adadelta opt{q.params(), 1.0f};
  EXPECT_FLOAT_EQ(opt.learning_rate(), 1.0f);
  opt.decay_lr(0.95f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.95f);
}

TEST(Adam, ConvergesOnQuadratic) {
  quadratic q;
  adam opt{q.params(), 0.1f};
  for (int i = 0; i < 500; ++i) {
    q.compute_grad();
    opt.step();
  }
  EXPECT_NEAR(q.w[0], 3.0f, 1e-2);
}

TEST(Optimizer, ZeroGradClears) {
  quadratic q;
  sgd opt{q.params(), 0.1f};
  q.compute_grad();
  EXPECT_NE(q.g[0], 0.0f);
  opt.zero_grad();
  EXPECT_EQ(q.g[0], 0.0f);
}

}  // namespace
}  // namespace dv
