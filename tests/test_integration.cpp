// End-to-end integration tests: the full Deep Validation pipeline on the
// shared tiny world, exercising the same paths the benches use but at a
// seconds-scale budget.
#include <gtest/gtest.h>

#include "attack/fgsm.h"
#include "augment/corner_case.h"
#include "core/deep_validator.h"
#include "detect/dv_adapter.h"
#include "detect/feature_squeeze.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

struct fitted_world {
  deep_validator dv;
  dataset seeds;
};

const fitted_world& shared_fitted() {
  static const fitted_world fw = [] {
    const auto& world = shared_tiny_world();
    fitted_world out;
    deep_validator_config cfg;
    cfg.max_train_per_class = 50;
    out.dv.fit(*world.model, world.train, cfg);
    out.seeds = select_seeds(*world.model, world.test, 40, 9);
    return out;
  }();
  return fw;
}

/// ROC-AUC of a detector on (anomalous positives vs clean negatives).
double detector_auc(anomaly_detector& det, const tensor& anomalous,
                    const tensor& clean) {
  const auto pos = det.score_batch(anomalous);
  const auto neg = det.score_batch(clean);
  return roc_auc(pos, neg);
}

TEST(Integration, DeepValidationDetectsComplementSccs) {
  const auto& world = shared_tiny_world();
  const auto& fw = shared_fitted();
  const corner_search_result corner = evaluate_chain(
      *world.model, fw.seeds, {{transform_kind::complement, 0, 0}});
  ASSERT_GT(corner.success_rate, 0.3);

  // SCCs only, per the paper's positive definition.
  std::vector<std::int64_t> scc_rows;
  for (std::int64_t i = 0; i < corner.corner_cases.size(); ++i) {
    if (corner.misclassified[static_cast<std::size_t>(i)]) scc_rows.push_back(i);
  }
  const dataset sccs = corner.corner_cases.subset(scc_rows);

  deep_validation_detector det{*world.model, fw.dv};
  const double auc =
      detector_auc(det, sccs.images, world.test.images.slice_rows(0, 100));
  EXPECT_GT(auc, 0.85);
}

TEST(Integration, DeepValidationDetectsRotationSccs) {
  const auto& world = shared_tiny_world();
  const auto& fw = shared_fitted();
  const corner_search_result corner = evaluate_chain(
      *world.model, fw.seeds, {{transform_kind::rotation, 55.0f, 0}});
  if (corner.success_rate < 0.2) GTEST_SKIP() << "model too robust";
  std::vector<std::int64_t> scc_rows;
  for (std::int64_t i = 0; i < corner.corner_cases.size(); ++i) {
    if (corner.misclassified[static_cast<std::size_t>(i)]) scc_rows.push_back(i);
  }
  const dataset sccs = corner.corner_cases.subset(scc_rows);
  deep_validation_detector det{*world.model, fw.dv};
  const double auc =
      detector_auc(det, sccs.images, world.test.images.slice_rows(0, 100));
  EXPECT_GT(auc, 0.7);
}

TEST(Integration, JointBeatsWorstSingleValidator) {
  const auto& world = shared_tiny_world();
  const auto& fw = shared_fitted();
  const corner_search_result corner = evaluate_chain(
      *world.model, fw.seeds, {{transform_kind::complement, 0, 0}});
  std::vector<std::int64_t> scc_rows;
  for (std::int64_t i = 0; i < corner.corner_cases.size(); ++i) {
    if (corner.misclassified[static_cast<std::size_t>(i)]) scc_rows.push_back(i);
  }
  const dataset sccs = corner.corner_cases.subset(scc_rows);
  const tensor clean = world.test.images.slice_rows(0, 100);

  const auto pos = fw.dv.evaluate(*world.model, sccs.images);
  const auto neg = fw.dv.evaluate(*world.model, clean);
  const double joint_auc = roc_auc(pos.joint, neg.joint);
  double worst_single = 1.0;
  for (int v = 0; v < fw.dv.validated_layers(); ++v) {
    worst_single = std::min(
        worst_single,
        roc_auc(pos.per_layer[static_cast<std::size_t>(v)],
                neg.per_layer[static_cast<std::size_t>(v)]));
  }
  EXPECT_GE(joint_auc, worst_single);
}

TEST(Integration, ThresholdGivesUsableOperatingPoint) {
  const auto& world = shared_tiny_world();
  const auto& fw = shared_fitted();
  deep_validator dv = fw.dv;  // copy to set threshold locally
  const auto clean =
      dv.evaluate(*world.model, world.test.images.slice_rows(0, 150)).joint;
  dv.set_threshold(threshold_for_fpr(clean, 0.1));
  EXPECT_LE(fpr_at_threshold(clean, dv.threshold()), 0.1 + 1e-9);

  const corner_search_result corner = evaluate_chain(
      *world.model, fw.seeds, {{transform_kind::complement, 0, 0}});
  std::vector<std::int64_t> scc_rows;
  for (std::int64_t i = 0; i < corner.corner_cases.size(); ++i) {
    if (corner.misclassified[static_cast<std::size_t>(i)]) scc_rows.push_back(i);
  }
  const auto scc_scores =
      dv.evaluate(*world.model, corner.corner_cases.subset(scc_rows).images)
          .joint;
  EXPECT_GT(tpr_at_threshold(scc_scores, dv.threshold()), 0.5);
}

TEST(Integration, DeepValidationScoresFgsmAdversarialsHigh) {
  const auto& world = shared_tiny_world();
  const auto& fw = shared_fitted();
  fgsm_attack attack{0.3f};
  std::vector<double> adv_scores;
  for (std::int64_t i = 0; i < 15; ++i) {
    const tensor img = fw.seeds.images.sample(i);
    const auto label = fw.seeds.labels[static_cast<std::size_t>(i)];
    const attack_result res = attack.run(*world.model, img, label, -1);
    if (!res.success) continue;
    adv_scores.push_back(
        fw.dv.joint_discrepancy(*world.model, res.adversarial));
  }
  if (adv_scores.size() < 3) GTEST_SKIP() << "attack too weak on tiny model";
  const auto clean =
      fw.dv.evaluate(*world.model, world.test.images.slice_rows(0, 100)).joint;
  EXPECT_GT(roc_auc(adv_scores, clean), 0.7);
}

TEST(Integration, FeatureSqueezingRunsOnSameEvaluationSet) {
  const auto& world = shared_tiny_world();
  const auto& fw = shared_fitted();
  const corner_search_result corner = evaluate_chain(
      *world.model, fw.seeds, {{transform_kind::complement, 0, 0}});
  feature_squeezing_detector fs{
      *world.model, feature_squeezing_detector::standard_bank(true)};
  const auto pos = fs.score_batch(corner.corner_cases.images);
  const auto neg = fs.score_batch(world.test.images.slice_rows(0, 50));
  const double auc = roc_auc(pos, neg);
  // FS must at least run and produce a sane AUC value; its relative quality
  // vs Deep Validation is measured by the Table VII bench.
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

}  // namespace
}  // namespace dv
