// Failure injection: corrupted or mismatched artifacts must fail loudly
// (serialize_error), never silently load garbage into a deployed detector.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/deep_validator.h"
#include "pipeline/corner_suite.h"
#include "test_util.h"
#include "util/serialize.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void truncate_file(const std::string& path, std::size_t keep_bytes) {
  std::ifstream in{path, std::ios::binary};
  std::string content{std::istreambuf_iterator<char>{in},
                      std::istreambuf_iterator<char>{}};
  content.resize(std::min(keep_bytes, content.size()));
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << content;
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::fstream f{path, std::ios::binary | std::ios::in | std::ios::out};
  f.seekg(static_cast<std::streamoff>(offset));
  char c{};
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0x5a));
}

deep_validator make_fitted_validator() {
  const auto& world = shared_tiny_world();
  deep_validator dv;
  deep_validator_config cfg;
  cfg.max_train_per_class = 25;
  dv.fit(*world.model, world.train, cfg);
  return dv;
}

TEST(FailureInjection, ValidatorWrongMagicRejected) {
  const std::string path = temp_path("fi_magic.bin");
  {
    binary_writer w{path, "not-a-validator"};
    w.write_i32(42);
    w.finish();
  }
  EXPECT_THROW(deep_validator::load(path), serialize_error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TruncatedValidatorRejected) {
  const std::string path = temp_path("fi_trunc.bin");
  make_fitted_validator().save(path);
  truncate_file(path, 200);
  EXPECT_THROW(deep_validator::load(path), serialize_error);
  std::remove(path.c_str());
}

TEST(FailureInjection, MissingValidatorFileRejected) {
  EXPECT_THROW(deep_validator::load(temp_path("does_not_exist.bin")),
               serialize_error);
}

TEST(FailureInjection, TruncatedModelParamsRejected) {
  const auto& world = shared_tiny_world();
  const std::string path = temp_path("fi_model.bin");
  world.model->save_params(path);
  truncate_file(path, 100);
  auto fresh = dv::testing::make_tiny_model(1);
  EXPECT_THROW(fresh->load_params(path), serialize_error);
  std::remove(path.c_str());
}

TEST(FailureInjection, CorruptedSuiteLengthFieldRejected) {
  const std::string path = temp_path("fi_suite.bin");
  corner_suite suite;
  suite.seeds.images = tensor{{1, 1, 2, 2}};
  suite.seeds.labels = {0};
  suite.seeds.num_classes = 10;
  suite.save(path);
  // Flip a byte inside the header region (after the magic string) — either
  // the read fails structurally or downstream length checks trip.
  flip_byte(path, 30);
  EXPECT_THROW((void)corner_suite::load(path), serialize_error);
  std::remove(path.c_str());
}

TEST(FailureInjection, ValidatorSurvivesRoundTripAfterSave) {
  // Control case: an untouched artifact loads and scores identically.
  const auto& world = shared_tiny_world();
  const std::string path = temp_path("fi_ok.bin");
  deep_validator dv = make_fitted_validator();
  dv.save(path);
  const deep_validator loaded = deep_validator::load(path);
  const tensor img = world.test.images.slice_rows(0, 3);
  const auto a = dv.evaluate(*world.model, img).joint;
  const auto b = loaded.evaluate(*world.model, img).joint;
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dv
