// Golden tests for the dv_lint static checker: exact diagnostics over
// tests/lint_fixtures/ (one known-bad file per check plus suppression and
// clean-pattern cases), lexer robustness, and CLI exit codes.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace {

std::string read_fixture(const std::string& rel) {
  const std::string path = std::string{DV_LINT_FIXTURE_DIR} + "/" + rel;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lints a fixture under its repo-style pseudo-path (fixtures live in a
/// mini source tree, so path-dependent rules apply exactly as in src/).
std::string lint_fixture(const std::string& rel) {
  return dv_lint::format(dv_lint::lint_source(rel, read_fixture(rel)));
}

TEST(dv_lint, determinism_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_determinism.cpp"),
      "src/bad_determinism.cpp:4: [determinism] 'rand' is ambient "
      "randomness; draw from an explicitly seeded dv::rng (src/util/rng.h) "
      "so runs reproduce bit-for-bit\n"
      "src/bad_determinism.cpp:5: [determinism] 'srand' is ambient "
      "randomness; draw from an explicitly seeded dv::rng (src/util/rng.h) "
      "so runs reproduce bit-for-bit\n"
      "src/bad_determinism.cpp:6: [determinism] 'std::random_device' seeds "
      "are not reproducible; derive seeds from the experiment config and "
      "draw from dv::rng (src/util/rng.h)\n"
      "src/bad_determinism.cpp:7: [determinism] wall-clock read "
      "'system_clock' breaks run-to-run determinism; use "
      "dv::metrics::now_ns() (frozen under DV_METRICS_DETERMINISTIC) or "
      "dv::stopwatch\n"
      "src/bad_determinism.cpp:8: [determinism] wall-clock call 'time(' "
      "breaks run-to-run determinism; use dv::metrics::now_ns() or "
      "dv::stopwatch for timing\n");
}

TEST(dv_lint, thread_safety_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_thread_safety.cpp"),
      "src/bad_thread_safety.cpp:4: [thread-safety] non-const global "
      "'g_mode' is mutable shared state; make it const/constexpr, atomic, "
      "or thread_local, or justify it with dv-lint: allow(thread-safety)\n"
      "src/bad_thread_safety.cpp:6: [thread-safety] mutable function-local "
      "static 'calls' is shared across threads; make it const, atomic, or "
      "justify it with dv-lint: allow(thread-safety)\n"
      "src/bad_thread_safety.cpp:8: [thread-safety] 'parallel_for' call "
      "site missing a // dv:parallel-safe(<reason>) annotation stating why "
      "the body is deterministic and race-free\n");
}

TEST(dv_lint, metrics_gating_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_metrics.cpp"),
      "src/bad_metrics.cpp:7: [metrics-gating] metrics handle 'events' "
      "dereferenced without a null check; lookups return nullptr when "
      "DV_METRICS is off — guard with `if (events != nullptr)` or "
      "metrics::enabled()\n"
      "src/bad_metrics.cpp:8: [metrics-gating] 'metrics::set_enabled' "
      "mutates global registry state and is reserved for tests/tools; "
      "library code must stay gated behind DV_METRICS\n"
      "src/bad_metrics.cpp:9: [metrics-gating] dereferencing "
      "'metrics::get_gauge(...)' without a null check; the lookup returns "
      "nullptr when DV_METRICS is off\n");
}

TEST(dv_lint, hygiene_header_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_hygiene.h"),
      "src/bad_hygiene.h:2: [hygiene] header must start with #pragma once "
      "(before any other declaration or directive)\n"
      "src/bad_hygiene.h:3: [hygiene] 'using namespace' in a header leaks "
      "into every includer; qualify names instead\n");
}

TEST(dv_lint, hygiene_libc_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_libc.cpp"),
      "src/bad_libc.cpp:7: [hygiene] unsafe libc call 'sprintf': use "
      "snprintf with an explicit buffer size\n"
      "src/bad_libc.cpp:8: [hygiene] unsafe libc call 'strcpy': use "
      "std::string or std::snprintf\n"
      "src/bad_libc.cpp:9: [hygiene] unsafe libc call 'atoi': use "
      "std::strtol / std::from_chars (atoi hides errors)\n");
}

TEST(dv_lint, allow_suppressions_silence_violations) {
  EXPECT_EQ(lint_fixture("src/suppressed_ok.cpp"), "");
}

TEST(dv_lint, clean_patterns_pass) {
  EXPECT_EQ(lint_fixture("src/annotated_ok.cpp"), "");
}

TEST(dv_lint, capture_racy_reduction_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_capture.cpp"),
      "src/bad_capture.cpp:10: [capture] 'sum' is captured by reference "
      "and written by every chunk of this 'parallel_for' lambda without "
      "loop-local indexing; write disjoint slots indexed by the loop "
      "variable, reduce into per-chunk partials (DESIGN.md §8), or waive "
      "with // dv-lint: allow(capture) <reason>\n");
}

TEST(dv_lint, capture_sanctioned_shapes_pass) {
  EXPECT_EQ(lint_fixture("src/capture_ok.cpp"), "");
}

TEST(dv_lint, capture_this_and_value_handle_writes) {
  const std::string through_this =
      "namespace dv {\n"
      "struct acc {\n"
      "  double total{0.0};\n"
      "  void run() {\n"
      "    // dv:parallel-safe(fixture)\n"
      "    parallel_for(0, 8, 1, [this](long lo, long hi) {\n"
      "      total += double(hi - lo);\n"
      "    });\n"
      "  }\n"
      "};\n"
      "}\n";
  const std::string out =
      dv_lint::format(dv_lint::lint_source("src/x.cpp", through_this));
  EXPECT_NE(out.find("[capture]"), std::string::npos) << out;
  EXPECT_NE(out.find("reached through the captured 'this'"),
            std::string::npos)
      << out;

  const std::string value_handle =
      "namespace dv {\n"
      "void f(float* shared) {\n"
      "  // dv:parallel-safe(fixture)\n"
      "  parallel_for(0, 8, 1, [shared](long lo, long hi) {\n"
      "    *shared += float(hi - lo);\n"
      "  });\n"
      "}\n"
      "}\n";
  const std::string out2 =
      dv_lint::format(dv_lint::lint_source("src/x.cpp", value_handle));
  EXPECT_NE(out2.find("[capture]"), std::string::npos) << out2;
  EXPECT_NE(out2.find("value-captured handle"), std::string::npos) << out2;
}

TEST(dv_lint, capture_local_state_passes) {
  // Writes to lambda-local variables and to slots indexed by a loop
  // variable are the sanctioned shapes; neither may fire.
  const std::string src =
      "namespace dv {\n"
      "void f(float* out) {\n"
      "  // dv:parallel-safe(fixture)\n"
      "  parallel_for(0, 8, 1, [out](long lo, long hi) {\n"
      "    float local = 0.0f;\n"
      "    for (long i = lo; i < hi; ++i) {\n"
      "      local += 1.0f;\n"
      "      out[i] = local;\n"
      "    }\n"
      "  });\n"
      "}\n"
      "}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source("src/x.cpp", src)), "");
}

TEST(dv_lint, simd_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_simd.cpp"),
      "src/bad_simd.cpp:3: [simd] intrinsics header 'immintrin.h' included "
      "outside src/tensor/simd/; add an ISA variant to the dispatch table "
      "(tensor/simd/simd.h) so the DV_SIMD bitwise-identity contract "
      "holds\n"
      "src/bad_simd.cpp:7: [simd] intrinsic '__m128' used outside "
      "src/tensor/simd/; route it through the dispatch table "
      "(tensor/simd/simd.h)\n"
      "src/bad_simd.cpp:7: [simd] intrinsic '_mm_loadu_ps' used outside "
      "src/tensor/simd/; route it through the dispatch table "
      "(tensor/simd/simd.h)\n"
      "src/bad_simd.cpp:8: [simd] intrinsic '_mm_cvtss_f32' used outside "
      "src/tensor/simd/; route it through the dispatch table "
      "(tensor/simd/simd.h)\n");
}

TEST(dv_lint, simd_waiver_and_home_path_pass) {
  // The waiver fixture lints clean outside the simd home...
  EXPECT_EQ(lint_fixture("src/simd_ok.cpp"), "");
  // ...and the same intrinsics are fine under src/tensor/simd/.
  const std::string src =
      "#include <immintrin.h>\n"
      "namespace dv {\n"
      "float f(const float* x) { return _mm_cvtss_f32(_mm_loadu_ps(x)); }\n"
      "}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source(
                "src/tensor/simd/kernels_avx2.cpp", src)),
            "");
  EXPECT_NE(
      dv_lint::format(dv_lint::lint_source("src/detect/fast.cpp", src)), "");
}

// ---------------------------------------------------------------------------
// Lexer robustness: banned tokens in comments/strings never fire, and
// context decides between calls and members.

TEST(dv_lint, strings_and_comments_are_skipped) {
  const std::string src =
      "namespace f {\n"
      "const char* k = \"call rand() and time() at 'random'\";\n"
      "/* srand(1); std::random_device in prose */\n"
      "// system_clock::now() mentioned in a comment\n"
      "}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source("src/x.cpp", src)), "");
}

TEST(dv_lint, member_calls_are_not_free_calls) {
  const std::string src =
      "namespace f {\n"
      "void g(watch& w, parser* p) {\n"
      "  w.time();\n"
      "  p->clock();\n"
      "  custom::atoi(\"7\");\n"
      "}\n"
      "}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source("src/x.cpp", src)), "");
}

TEST(dv_lint, pragma_once_after_comments_is_fine) {
  const std::string src =
      "// File comment.\n"
      "#pragma once\n"
      "namespace f {}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source("src/x.h", src)), "");
}

TEST(dv_lint, allowlist_paths_skip_determinism) {
  const std::string src = "namespace f { long t() { return time(0); } }\n";
  EXPECT_EQ(dv_lint::format(
                dv_lint::lint_source("src/util/metrics.cpp", src)),
            "");
  EXPECT_EQ(
      dv_lint::format(dv_lint::lint_source("src/tensor/random.cpp", src)),
      "");
  EXPECT_NE(dv_lint::format(dv_lint::lint_source("src/nn/x.cpp", src)), "");
}

TEST(dv_lint, multi_check_allow_list) {
  const std::string src =
      "namespace f {\n"
      "// dv-lint: allow(determinism, hygiene)\n"
      "long g() { return time(0) + atoi(\"4\"); }\n"
      "}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source("src/x.cpp", src)), "");
}

TEST(dv_lint, guarded_handles_pass_unguarded_fail) {
  const std::string guarded =
      "namespace dv {\n"
      "void f() {\n"
      "  metrics::counter* c = metrics::get_counter(\"x\");\n"
      "  if (c != nullptr) c->add();\n"
      "}\n"
      "}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source("src/nn/m.cpp", guarded)),
            "");
  const std::string enabled_gate =
      "namespace dv {\n"
      "void f() {\n"
      "  if (!metrics::enabled()) return;\n"
      "  metrics::counter* c = metrics::get_counter(\"x\");\n"
      "  c->add();\n"
      "}\n"
      "}\n";
  EXPECT_EQ(
      dv_lint::format(dv_lint::lint_source("src/nn/m.cpp", enabled_gate)),
      "");
  const std::string guard_does_not_outlive_function =
      "namespace dv {\n"
      "void f() {\n"
      "  metrics::counter* c = metrics::get_counter(\"x\");\n"
      "  if (c != nullptr) c->add();\n"
      "}\n"
      "void g() {\n"
      "  metrics::counter* d = metrics::get_counter(\"y\");\n"
      "  d->add();\n"
      "}\n"
      "}\n";
  EXPECT_NE(dv_lint::format(dv_lint::lint_source(
                "src/nn/m.cpp", guard_does_not_outlive_function)),
            "");
}

// ---------------------------------------------------------------------------
// CLI: exit codes and summary line.

int cli(const std::vector<std::string>& args, std::string* stdout_text) {
  std::ostringstream out, err;
  const int code = dv_lint::run_cli(args, out, err);
  if (stdout_text != nullptr) *stdout_text = out.str();
  return code;
}

TEST(dv_lint_cli, violations_exit_1_with_summary) {
  std::string out;
  EXPECT_EQ(cli({"--root", DV_LINT_FIXTURE_DIR, "src"}, &out), 1);
  EXPECT_NE(out.find("[determinism]"), std::string::npos);
  EXPECT_NE(out.find("[thread-safety]"), std::string::npos);
  EXPECT_NE(out.find("[metrics-gating]"), std::string::npos);
  EXPECT_NE(out.find("[hygiene]"), std::string::npos);
  EXPECT_NE(out.find("violation(s)\n"), std::string::npos);
}

TEST(dv_lint_cli, clean_file_exits_0) {
  std::string out;
  EXPECT_EQ(cli({"--root", DV_LINT_FIXTURE_DIR, "src/annotated_ok.cpp"},
                &out),
            0);
  EXPECT_NE(out.find("1 file(s) scanned, 0 cached, 0 violation(s)"),
            std::string::npos);
}

TEST(dv_lint_cli, usage_errors_exit_2) {
  EXPECT_EQ(cli({"--bogus-flag"}, nullptr), 2);
  EXPECT_EQ(cli({"--root", DV_LINT_FIXTURE_DIR, "no_such_dir"}, nullptr), 2);
  EXPECT_EQ(cli({"--root"}, nullptr), 2);
  EXPECT_EQ(cli({"--root", DV_LINT_FIXTURE_DIR, "--layers",
                 "no_such_layers.txt", "src"},
                nullptr),
            2);
}

// ---------------------------------------------------------------------------
// Cross-file passes over fixture mini-roots: exact diagnostics.

std::string fixture_tree(const std::string& name) {
  return std::string{DV_LINT_FIXTURE_DIR} + "/" + name;
}

TEST(dv_lint_graph, layering_violation_and_unknown_module_golden) {
  const std::string tree = fixture_tree("graph_layering");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--layers", tree + "/layers.txt", "src"},
                &out),
            1);
  EXPECT_EQ(
      out,
      "src/mystery/c.h:1: [layering] module 'mystery' is not listed in the "
      "layer manifest; add it to tools/dv_lint/layers.txt at its layer\n"
      "src/util/bad.h:2: [layering] include of 'nn/b.h' reaches up from "
      "layer-0 module 'util' into layer-1 module 'nn'; move the shared "
      "code down a layer or invert the dependency (declared order: "
      "tools/dv_lint/layers.txt)\n"
      "dv_lint: 4 file(s) scanned, 0 cached, 2 violation(s)\n");
}

TEST(dv_lint_graph, include_cycle_golden) {
  const std::string tree = fixture_tree("graph_cycle");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--layers", tree + "/layers.txt", "src"},
                &out),
            1);
  EXPECT_EQ(
      out,
      "src/nn/a.h:2: [include-cycle] include cycle between {src/nn/a.h, "
      "src/nn/b.h}; break it with a forward declaration or by moving the "
      "shared pieces into a lower header\n"
      "dv_lint: 2 file(s) scanned, 0 cached, 1 violation(s)\n");
}

TEST(dv_lint_graph, unused_include_golden_and_waiver) {
  const std::string tree = fixture_tree("graph_unused");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--layers", tree + "/layers.txt", "src"},
                &out),
            1);
  // dead.h fires; dead2.h is waived in place; used.h is referenced.
  EXPECT_EQ(
      out,
      "src/nn/user.cpp:1: [unused-include] unused include 'util/dead.h': "
      "no symbol declared by it (or its includes) is referenced in this "
      "file; delete it or waive with dv-lint: allow(unused-include) "
      "<reason>\n"
      "dv_lint: 4 file(s) scanned, 0 cached, 1 violation(s)\n");
}

// ---------------------------------------------------------------------------
// API-surface snapshots: match, drift, missing golden, regeneration.

TEST(dv_lint_api, matching_golden_passes) {
  const std::string tree = fixture_tree("api_drift");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--check-api-surface", "--api-surface",
                 tree + "/api_surface.golden", "src"},
                &out),
            0);
}

TEST(dv_lint_api, drift_is_flagged_with_exact_delta) {
  const std::string tree = fixture_tree("api_drift");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--check-api-surface", "--api-surface",
                 tree + "/api_surface_stale.golden", "src"},
                &out),
            1);
  EXPECT_NE(out.find("[api-surface] public API surface drifted from the "
                     "golden snapshot: 1 entry(ies) added, 0 removed"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("first added: 'src/util/point.h function dv::lerp'"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("regenerate with dv_lint --update-api-surface"),
            std::string::npos)
      << out;
}

TEST(dv_lint_api, missing_golden_is_flagged) {
  const std::string tree = fixture_tree("api_drift");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--check-api-surface", "--api-surface",
                 tree + "/no_such.golden", "src"},
                &out),
            1);
  EXPECT_NE(out.find("[api-surface] golden snapshot missing"),
            std::string::npos)
      << out;
}

TEST(dv_lint_api, update_writes_canonical_snapshot) {
  const std::string tree = fixture_tree("api_drift");
  const std::string path =
      testing::TempDir() + "/dv_lint_api_update.golden";
  std::remove(path.c_str());
  EXPECT_EQ(cli({"--root", tree, "--update-api-surface", "--api-surface",
                 path, "src"},
                nullptr),
            0);
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(),
            "src/util/point.h function dv::lerp\n"
            "src/util/point.h namespace dv\n"
            "src/util/point.h struct dv::point\n");
}

// ---------------------------------------------------------------------------
// Result cache: warm runs replay summaries; only changed files re-lint.

TEST(dv_lint_cache, warm_run_relints_only_changed_files) {
  namespace fs = std::filesystem;
  const fs::path scratch =
      fs::path{testing::TempDir()} / "dv_lint_cache_test";
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  fs::copy(fixture_tree("graph_unused"), scratch / "tree",
           fs::copy_options::recursive);
  const std::string tree = (scratch / "tree").string();
  const std::string cache = (scratch / "cache").string();
  const std::vector<std::string> args = {
      "--root",   tree,  "--layers", tree + "/layers.txt",
      "--cache-dir", cache, "src"};

  std::string cold, warm, after_edit;
  EXPECT_EQ(cli(args, &cold), 1);
  EXPECT_NE(cold.find("4 file(s) scanned, 0 cached, 1 violation(s)"),
            std::string::npos)
      << cold;

  EXPECT_EQ(cli(args, &warm), 1);
  EXPECT_NE(warm.find("4 file(s) scanned, 4 cached, 1 violation(s)"),
            std::string::npos)
      << warm;
  // Cached summaries must replay byte-identical diagnostics (the
  // unused-include finding is recomputed from cached include/symbol
  // data); only the summary line's cached count may differ.
  EXPECT_EQ(cold.substr(0, cold.find("dv_lint:")),
            warm.substr(0, warm.find("dv_lint:")));

  // Touching one file invalidates exactly that file's record.
  {
    std::ofstream app{tree + "/src/util/used.h", std::ios::app};
    app << "// touched\n";
  }
  EXPECT_EQ(cli(args, &after_edit), 1);
  EXPECT_NE(after_edit.find("4 file(s) scanned, 3 cached, 1 violation(s)"),
            std::string::npos)
      << after_edit;
  fs::remove_all(scratch);
}

// ---------------------------------------------------------------------------
// Effect inference: transitive hot-path purity, lock order, config reads,
// and captures written below the lambda. Exact diagnostics over the
// `effects` fixture mini-root.

TEST(dv_lint_effects, fixture_tree_golden) {
  const std::string tree = fixture_tree("effects");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "src"}, &out), 1);
  EXPECT_EQ(
      out,
      "src/fx/env_read.cpp:4: [init-only-config] 'getenv' outside a dv:init "
      "function re-reads configuration per call; latch the knob once at "
      "startup in a function annotated // dv:init(<reason>), or waive with "
      "// dv-lint: allow(init-only-config) <reason>\n"
      "src/fx/hot_chain.cpp:18: [hot-path-purity] 'parallel_for' body "
      "transitively acquires lock 'fx::m': call chain fx::a -> fx::b -> "
      "fx::c ending in acquisition at src/fx/hot_chain.cpp:9; a lock inside "
      "a hot path serializes the pool — restructure, or waive with "
      "// dv-lint: allow(effect:acquires_lock) <reason>\n"
      "src/fx/lock_cycle.cpp:12: [lock-order] lock-order cycle between "
      "'fx::ma' -> 'fx::mb' ('fx::mb' taken while holding 'fx::ma' at "
      "src/fx/lock_cycle.cpp:12; 'fx::ma' taken while holding 'fx::mb' at "
      "src/fx/lock_cycle.cpp:17); threads interleaving these orders "
      "deadlock — pick one global acquisition order, or waive an "
      "acquisition with // dv-lint: allow(lock-order) <reason>\n"
      "src/fx/trans_capture.cpp:9: [capture] 'total' is captured by "
      "reference and written through 'fx::bump' (argument 1 of the call at "
      "src/fx/trans_capture.cpp:10); every chunk races on it — write "
      "disjoint slots, reduce into per-chunk partials, or waive with "
      "// dv-lint: allow(capture) <reason>\n"
      "dv_lint: 5 file(s) scanned, 0 cached, 4 violation(s)\n");
}

TEST(dv_lint_effects, explain_prints_full_witness_chain) {
  const std::string tree = fixture_tree("effects");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--explain", "fx::a", "src"}, &out), 0);
  EXPECT_EQ(out,
            "fx::a (src/fx/hot_chain.cpp:14)\n"
            "  acquires_lock 'fx::m': call chain fx::b -> fx::c ending in "
            "acquisition at src/fx/hot_chain.cpp:9\n"
            "race facts for fx::a (src/fx/hot_chain.cpp:14)\n"
            "  entry lockset: {}\n"
            "  reachable from concurrency root: (lambda at "
            "src/fx/hot_chain.cpp:18) -> fx::a\n"
            "  no tracked shared-state accesses\n");
}

TEST(dv_lint_effects, explain_direct_acquisition_has_no_chain) {
  const std::string tree = fixture_tree("effects");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--explain", "fx::c", "src"}, &out), 0);
  EXPECT_EQ(out,
            "fx::c (src/fx/hot_chain.cpp:8)\n"
            "  acquires_lock 'fx::m': acquisition at "
            "src/fx/hot_chain.cpp:9\n"
            "race facts for fx::c (src/fx/hot_chain.cpp:8)\n"
            "  entry lockset: {}\n"
            "  reachable from concurrency root: (lambda at "
            "src/fx/hot_chain.cpp:18) -> fx::a -> fx::b -> fx::c\n"
            "  no tracked shared-state accesses\n");
}

TEST(dv_lint_effects, explain_unknown_function_is_usage_error) {
  const std::string tree = fixture_tree("effects");
  std::ostringstream out, err;
  EXPECT_EQ(dv_lint::run_cli({"--root", tree, "--explain", "fx::nosuch",
                              "src"},
                             out, err),
            2);
  EXPECT_TRUE(out.str().empty()) << out.str();
  EXPECT_NE(err.str().find("no function named 'fx::nosuch'"),
            std::string::npos)
      << err.str();
}

TEST(dv_lint_effects, json_and_only_filter_golden) {
  const std::string tree = fixture_tree("effects");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--json", "--only",
                 "init-only-config,lock-order", "src"},
                &out),
            1);
  EXPECT_EQ(
      out,
      "{\n"
      "  \"files_scanned\": 5,\n"
      "  \"cached\": 0,\n"
      "  \"violations\": [\n"
      "    {\"file\": \"src/fx/env_read.cpp\", \"line\": 4, \"check\": "
      "\"init-only-config\", \"message\": \"'getenv' outside a dv:init "
      "function re-reads configuration per call; latch the knob once at "
      "startup in a function annotated // dv:init(<reason>), or waive with "
      "// dv-lint: allow(init-only-config) <reason>\"},\n"
      "    {\"file\": \"src/fx/lock_cycle.cpp\", \"line\": 12, \"check\": "
      "\"lock-order\", \"message\": \"lock-order cycle between 'fx::ma' -> "
      "'fx::mb' ('fx::mb' taken while holding 'fx::ma' at "
      "src/fx/lock_cycle.cpp:12; 'fx::ma' taken while holding 'fx::mb' at "
      "src/fx/lock_cycle.cpp:17); threads interleaving these orders "
      "deadlock — pick one global acquisition order, or waive an "
      "acquisition with // dv-lint: allow(lock-order) <reason>\"}\n"
      "  ]\n"
      "}\n");
}

// A callee edit must surface in its callers' diagnostics even when the
// callers replay from cache: summaries are cached per file, but the
// cross-file fixed point is recomputed each run.
TEST(dv_lint_effects, warm_rerun_propagates_callee_effects_to_callers) {
  namespace fs = std::filesystem;
  const fs::path scratch =
      fs::path{testing::TempDir()} / "dv_lint_effects_cache";
  fs::remove_all(scratch);
  fs::create_directories(scratch / "tree" / "src");
  const std::string tree = (scratch / "tree").string();
  const std::string cache = (scratch / "cache").string();
  auto put = [&](const char* rel, const std::string& text) {
    std::ofstream f{tree + "/" + rel, std::ios::binary | std::ios::trunc};
    f << text;
  };
  put("src/a.cpp",
      "namespace fx {\n"
      "void mid();\n"
      "void driver() {\n"
      "  // dv:parallel-safe(fixture)\n"
      "  parallel_for(0, 4, 1, [](long lo, long hi) {\n"
      "    mid();\n"
      "  });\n"
      "}\n"
      "}\n");
  put("src/b.cpp",
      "namespace fx {\n"
      "void leaf();\n"
      "void mid() { leaf(); }\n"
      "}\n");
  put("src/c.cpp",
      "namespace fx {\n"
      "void leaf() {}\n"
      "}\n");
  const std::vector<std::string> args = {"--root", tree, "--cache-dir",
                                         cache, "src"};

  std::string cold, warm, after_edit;
  EXPECT_EQ(cli(args, &cold), 0);
  EXPECT_EQ(cold, "dv_lint: 3 file(s) scanned, 0 cached, 0 violation(s)\n");
  EXPECT_EQ(cli(args, &warm), 0);
  EXPECT_EQ(warm, "dv_lint: 3 file(s) scanned, 3 cached, 0 violation(s)\n");

  // Give the leaf a lock. Only c.cpp re-lints, yet the diagnostic lands
  // at the parallel_for site in a.cpp two hops up the call graph.
  put("src/c.cpp",
      "namespace fx {\n"
      "// dv-lint: allow(thread-safety) fixture mutex\n"
      "std::mutex cm;\n"
      "void leaf() {\n"
      "  std::lock_guard<std::mutex> g{cm};\n"
      "}\n"
      "}\n");
  EXPECT_EQ(cli(args, &after_edit), 1);
  EXPECT_NE(
      after_edit.find("3 file(s) scanned, 2 cached, 1 violation(s)"),
      std::string::npos)
      << after_edit;
  EXPECT_NE(
      after_edit.find(
          "src/a.cpp:5: [hot-path-purity] 'parallel_for' body transitively "
          "acquires lock 'fx::cm': call chain fx::mid -> fx::leaf ending "
          "in acquisition at src/c.cpp:5"),
      std::string::npos)
      << after_edit;
  fs::remove_all(scratch);
}

// ---------------------------------------------------------------------------
// Race pass over the race fixture mini-root: one field per outcome.
// counter.h declares the fields; counter.cpp accesses them; driver.cpp
// holds the dv:thread-entry concurrency root.

TEST(dv_lint_race, fixture_tree_golden) {
  const std::string tree = fixture_tree("race");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "src"}, &out), 1);
  // tag_ violates its annotation; total_ is inferred racy with a witness
  // pair. sum_ (guard satisfied via the helper's entry lockset), hits_
  // (atomic), epoch_ (access waiver), and scratch_ (declaration waiver)
  // all stay silent.
  EXPECT_EQ(
      out,
      "src/rx/counter.cpp:18: [race] 'rx::counter::tag_' is declared "
      "guarded by 'mu_' but is written in rx::counter::set_tag holding {}; "
      "acquire 'mu_' around this access, or waive with // dv-lint: "
      "allow(race)\n"
      "src/rx/counter.h:24: [race] 'rx::counter::total_' may be accessed "
      "concurrently without a consistent lock (lockset intersection over 2 "
      "accesses is empty): written in rx::counter::bump "
      "(src/rx/counter.cpp:8) holding {}, reached from concurrency root "
      "rx::worker -> rx::counter::bump; also read in rx::counter::read "
      "(src/rx/counter.cpp:14) holding {rx::counter::mu_}; annotate the "
      "declaration with // dv:guarded-by(<lock>), make it std::atomic, or "
      "waive with // dv-lint: allow(race)\n"
      "dv_lint: 3 file(s) scanned, 0 cached, 2 violation(s)\n");
}

TEST(dv_lint_race, explain_shows_root_chain_and_accesses) {
  const std::string tree = fixture_tree("race");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--explain", "rx::counter::bump", "src"},
                &out),
            0);
  EXPECT_EQ(out,
            "rx::counter::bump (src/rx/counter.cpp:7)\n"
            "  (no inferred effects)\n"
            "race facts for rx::counter::bump (src/rx/counter.cpp:7)\n"
            "  entry lockset: {}\n"
            "  reachable from concurrency root: rx::worker -> "
            "rx::counter::bump\n"
            "  write 'rx::counter::total_' at line 8 holding {}\n");
}

TEST(dv_lint_race, explain_shows_propagated_entry_lockset) {
  const std::string tree = fixture_tree("race");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--explain", "rx::counter::add_locked",
                 "src"},
                &out),
            0);
  // accumulate()'s lock_guard reaches the helper as its entry lockset,
  // which is what satisfies sum_'s dv:guarded-by(mu_).
  EXPECT_EQ(out,
            "rx::counter::add_locked (src/rx/counter.cpp:27)\n"
            "  (no inferred effects)\n"
            "race facts for rx::counter::add_locked "
            "(src/rx/counter.cpp:27)\n"
            "  entry lockset: {rx::counter::mu_}\n"
            "  not reachable from a concurrency root\n"
            "  write 'rx::counter::sum_' at line 27 holding "
            "{rx::counter::mu_}\n");
}

TEST(dv_lint_race, json_only_race_golden) {
  const std::string tree = fixture_tree("race");
  std::string out;
  EXPECT_EQ(cli({"--root", tree, "--json", "--only", "race", "src"}, &out),
            1);
  EXPECT_EQ(
      out,
      "{\n"
      "  \"files_scanned\": 3,\n"
      "  \"cached\": 0,\n"
      "  \"violations\": [\n"
      "    {\"file\": \"src/rx/counter.cpp\", \"line\": 18, \"check\": "
      "\"race\", \"message\": \"'rx::counter::tag_' is declared guarded by "
      "'mu_' but is written in rx::counter::set_tag holding {}; acquire "
      "'mu_' around this access, or waive with // dv-lint: "
      "allow(race)\"},\n"
      "    {\"file\": \"src/rx/counter.h\", \"line\": 24, \"check\": "
      "\"race\", \"message\": \"'rx::counter::total_' may be accessed "
      "concurrently without a consistent lock (lockset intersection over 2 "
      "accesses is empty): written in rx::counter::bump "
      "(src/rx/counter.cpp:8) holding {}, reached from concurrency root "
      "rx::worker -> rx::counter::bump; also read in rx::counter::read "
      "(src/rx/counter.cpp:14) holding {rx::counter::mu_}; annotate the "
      "declaration with // dv:guarded-by(<lock>), make it std::atomic, or "
      "waive with // dv-lint: allow(race)\"}\n"
      "  ]\n"
      "}\n");
}

// A callee edit that introduces an unguarded write must surface even
// when every other file replays from cache: accesses are cached per
// file, but the lockset fixed point and root reachability are
// recomputed over all summaries each run.
TEST(dv_lint_race, warm_rerun_propagates_new_access_across_cache) {
  namespace fs = std::filesystem;
  const fs::path scratch =
      fs::path{testing::TempDir()} / "dv_lint_race_cache";
  fs::remove_all(scratch);
  fs::create_directories(scratch / "tree" / "src");
  const std::string tree = (scratch / "tree").string();
  const std::string cache = (scratch / "cache").string();
  auto put = [&](const char* rel, const std::string& text) {
    std::ofstream f{tree + "/" + rel, std::ios::binary | std::ios::trunc};
    f << text;
  };
  put("src/a.cpp",
      "namespace fx {\n"
      "void mid();\n"
      "// dv:thread-entry(fixture worker)\n"
      "void driver() { mid(); }\n"
      "}\n");
  put("src/b.cpp",
      "namespace fx {\n"
      "void leaf();\n"
      "void mid() { leaf(); }\n"
      "}\n");
  put("src/c.cpp",
      "namespace fx {\n"
      "// dv-lint: allow(thread-safety) fixture counter\n"
      "int g_hits = 0;\n"
      "void leaf() {}\n"
      "}\n");
  const std::vector<std::string> args = {"--root", tree, "--cache-dir",
                                         cache, "src"};

  std::string cold, warm, after_edit;
  EXPECT_EQ(cli(args, &cold), 0);
  EXPECT_EQ(cold, "dv_lint: 3 file(s) scanned, 0 cached, 0 violation(s)\n");
  EXPECT_EQ(cli(args, &warm), 0);
  EXPECT_EQ(warm, "dv_lint: 3 file(s) scanned, 3 cached, 0 violation(s)\n");

  // Give the leaf an unguarded write. Only c.cpp re-lints, yet the root
  // chain in the diagnostic runs through the two cached files.
  put("src/c.cpp",
      "namespace fx {\n"
      "// dv-lint: allow(thread-safety) fixture counter\n"
      "int g_hits = 0;\n"
      "void leaf() { g_hits += 1; }\n"
      "}\n");
  EXPECT_EQ(cli(args, &after_edit), 1);
  EXPECT_NE(
      after_edit.find("3 file(s) scanned, 2 cached, 1 violation(s)"),
      std::string::npos)
      << after_edit;
  EXPECT_NE(
      after_edit.find(
          "src/c.cpp:3: [race] 'g_hits' may be accessed concurrently "
          "without a consistent lock (lockset intersection over 1 access "
          "is empty): written in fx::leaf (src/c.cpp:4) holding {}, "
          "reached from concurrency root fx::driver -> fx::mid -> "
          "fx::leaf"),
      std::string::npos)
      << after_edit;
  fs::remove_all(scratch);
}

}  // namespace
