// Golden tests for the dv_lint static checker: exact diagnostics over
// tests/lint_fixtures/ (one known-bad file per check plus suppression and
// clean-pattern cases), lexer robustness, and CLI exit codes.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace {

std::string read_fixture(const std::string& rel) {
  const std::string path = std::string{DV_LINT_FIXTURE_DIR} + "/" + rel;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lints a fixture under its repo-style pseudo-path (fixtures live in a
/// mini source tree, so path-dependent rules apply exactly as in src/).
std::string lint_fixture(const std::string& rel) {
  return dv_lint::format(dv_lint::lint_source(rel, read_fixture(rel)));
}

TEST(dv_lint, determinism_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_determinism.cpp"),
      "src/bad_determinism.cpp:4: [determinism] 'rand' is ambient "
      "randomness; draw from an explicitly seeded dv::rng (src/util/rng.h) "
      "so runs reproduce bit-for-bit\n"
      "src/bad_determinism.cpp:5: [determinism] 'srand' is ambient "
      "randomness; draw from an explicitly seeded dv::rng (src/util/rng.h) "
      "so runs reproduce bit-for-bit\n"
      "src/bad_determinism.cpp:6: [determinism] 'std::random_device' seeds "
      "are not reproducible; derive seeds from the experiment config and "
      "draw from dv::rng (src/util/rng.h)\n"
      "src/bad_determinism.cpp:7: [determinism] wall-clock read "
      "'system_clock' breaks run-to-run determinism; use "
      "dv::metrics::now_ns() (frozen under DV_METRICS_DETERMINISTIC) or "
      "dv::stopwatch\n"
      "src/bad_determinism.cpp:8: [determinism] wall-clock call 'time(' "
      "breaks run-to-run determinism; use dv::metrics::now_ns() or "
      "dv::stopwatch for timing\n");
}

TEST(dv_lint, thread_safety_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_thread_safety.cpp"),
      "src/bad_thread_safety.cpp:4: [thread-safety] non-const global "
      "'g_mode' is mutable shared state; make it const/constexpr, atomic, "
      "or thread_local, or justify it with dv-lint: allow(thread-safety)\n"
      "src/bad_thread_safety.cpp:6: [thread-safety] mutable function-local "
      "static 'calls' is shared across threads; make it const, atomic, or "
      "justify it with dv-lint: allow(thread-safety)\n"
      "src/bad_thread_safety.cpp:8: [thread-safety] 'parallel_for' call "
      "site missing a // dv:parallel-safe(<reason>) annotation stating why "
      "the body is deterministic and race-free\n");
}

TEST(dv_lint, metrics_gating_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_metrics.cpp"),
      "src/bad_metrics.cpp:7: [metrics-gating] metrics handle 'events' "
      "dereferenced without a null check; lookups return nullptr when "
      "DV_METRICS is off — guard with `if (events != nullptr)` or "
      "metrics::enabled()\n"
      "src/bad_metrics.cpp:8: [metrics-gating] 'metrics::set_enabled' "
      "mutates global registry state and is reserved for tests/tools; "
      "library code must stay gated behind DV_METRICS\n"
      "src/bad_metrics.cpp:9: [metrics-gating] dereferencing "
      "'metrics::get_gauge(...)' without a null check; the lookup returns "
      "nullptr when DV_METRICS is off\n");
}

TEST(dv_lint, hygiene_header_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_hygiene.h"),
      "src/bad_hygiene.h:2: [hygiene] header must start with #pragma once "
      "(before any other declaration or directive)\n"
      "src/bad_hygiene.h:3: [hygiene] 'using namespace' in a header leaks "
      "into every includer; qualify names instead\n");
}

TEST(dv_lint, hygiene_libc_golden) {
  EXPECT_EQ(
      lint_fixture("src/bad_libc.cpp"),
      "src/bad_libc.cpp:7: [hygiene] unsafe libc call 'sprintf': use "
      "snprintf with an explicit buffer size\n"
      "src/bad_libc.cpp:8: [hygiene] unsafe libc call 'strcpy': use "
      "std::string or std::snprintf\n"
      "src/bad_libc.cpp:9: [hygiene] unsafe libc call 'atoi': use "
      "std::strtol / std::from_chars (atoi hides errors)\n");
}

TEST(dv_lint, allow_suppressions_silence_violations) {
  EXPECT_EQ(lint_fixture("src/suppressed_ok.cpp"), "");
}

TEST(dv_lint, clean_patterns_pass) {
  EXPECT_EQ(lint_fixture("src/annotated_ok.cpp"), "");
}

// ---------------------------------------------------------------------------
// Lexer robustness: banned tokens in comments/strings never fire, and
// context decides between calls and members.

TEST(dv_lint, strings_and_comments_are_skipped) {
  const std::string src =
      "namespace f {\n"
      "const char* k = \"call rand() and time() at 'random'\";\n"
      "/* srand(1); std::random_device in prose */\n"
      "// system_clock::now() mentioned in a comment\n"
      "}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source("src/x.cpp", src)), "");
}

TEST(dv_lint, member_calls_are_not_free_calls) {
  const std::string src =
      "namespace f {\n"
      "void g(watch& w, parser* p) {\n"
      "  w.time();\n"
      "  p->clock();\n"
      "  custom::atoi(\"7\");\n"
      "}\n"
      "}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source("src/x.cpp", src)), "");
}

TEST(dv_lint, pragma_once_after_comments_is_fine) {
  const std::string src =
      "// File comment.\n"
      "#pragma once\n"
      "namespace f {}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source("src/x.h", src)), "");
}

TEST(dv_lint, allowlist_paths_skip_determinism) {
  const std::string src = "namespace f { long t() { return time(0); } }\n";
  EXPECT_EQ(dv_lint::format(
                dv_lint::lint_source("src/util/metrics.cpp", src)),
            "");
  EXPECT_EQ(
      dv_lint::format(dv_lint::lint_source("src/tensor/random.cpp", src)),
      "");
  EXPECT_NE(dv_lint::format(dv_lint::lint_source("src/nn/x.cpp", src)), "");
}

TEST(dv_lint, multi_check_allow_list) {
  const std::string src =
      "namespace f {\n"
      "// dv-lint: allow(determinism, hygiene)\n"
      "long g() { return time(0) + atoi(\"4\"); }\n"
      "}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source("src/x.cpp", src)), "");
}

TEST(dv_lint, guarded_handles_pass_unguarded_fail) {
  const std::string guarded =
      "namespace dv {\n"
      "void f() {\n"
      "  metrics::counter* c = metrics::get_counter(\"x\");\n"
      "  if (c != nullptr) c->add();\n"
      "}\n"
      "}\n";
  EXPECT_EQ(dv_lint::format(dv_lint::lint_source("src/nn/m.cpp", guarded)),
            "");
  const std::string enabled_gate =
      "namespace dv {\n"
      "void f() {\n"
      "  if (!metrics::enabled()) return;\n"
      "  metrics::counter* c = metrics::get_counter(\"x\");\n"
      "  c->add();\n"
      "}\n"
      "}\n";
  EXPECT_EQ(
      dv_lint::format(dv_lint::lint_source("src/nn/m.cpp", enabled_gate)),
      "");
  const std::string guard_does_not_outlive_function =
      "namespace dv {\n"
      "void f() {\n"
      "  metrics::counter* c = metrics::get_counter(\"x\");\n"
      "  if (c != nullptr) c->add();\n"
      "}\n"
      "void g() {\n"
      "  metrics::counter* d = metrics::get_counter(\"y\");\n"
      "  d->add();\n"
      "}\n"
      "}\n";
  EXPECT_NE(dv_lint::format(dv_lint::lint_source(
                "src/nn/m.cpp", guard_does_not_outlive_function)),
            "");
}

// ---------------------------------------------------------------------------
// CLI: exit codes and summary line.

int cli(const std::vector<std::string>& args, std::string* stdout_text) {
  std::ostringstream out, err;
  const int code = dv_lint::run_cli(args, out, err);
  if (stdout_text != nullptr) *stdout_text = out.str();
  return code;
}

TEST(dv_lint_cli, violations_exit_1_with_summary) {
  std::string out;
  EXPECT_EQ(cli({"--root", DV_LINT_FIXTURE_DIR, "src"}, &out), 1);
  EXPECT_NE(out.find("[determinism]"), std::string::npos);
  EXPECT_NE(out.find("[thread-safety]"), std::string::npos);
  EXPECT_NE(out.find("[metrics-gating]"), std::string::npos);
  EXPECT_NE(out.find("[hygiene]"), std::string::npos);
  EXPECT_NE(out.find("violation(s)\n"), std::string::npos);
}

TEST(dv_lint_cli, clean_file_exits_0) {
  std::string out;
  EXPECT_EQ(cli({"--root", DV_LINT_FIXTURE_DIR, "src/annotated_ok.cpp"},
                &out),
            0);
  EXPECT_NE(out.find("1 file(s) scanned, 0 violation(s)"),
            std::string::npos);
}

TEST(dv_lint_cli, usage_errors_exit_2) {
  EXPECT_EQ(cli({"--bogus-flag"}, nullptr), 2);
  EXPECT_EQ(cli({"--root", DV_LINT_FIXTURE_DIR, "no_such_dir"}, nullptr), 2);
  EXPECT_EQ(cli({"--root"}, nullptr), 2);
}

}  // namespace
