#include "svm/one_class_svm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "util/rng.h"
#include "util/serialize.h"

namespace dv {
namespace {

/// 2-D Gaussian blob around (cx, cy).
tensor make_blob(std::int64_t n, double cx, double cy, double stddev,
                 std::uint64_t seed) {
  rng gen{seed};
  tensor out{{n, 2}};
  for (std::int64_t i = 0; i < n; ++i) {
    out.at2(i, 0) = static_cast<float>(gen.normal(cx, stddev));
    out.at2(i, 1) = static_cast<float>(gen.normal(cy, stddev));
  }
  return out;
}

TEST(Kernel, RbfProperties) {
  const float a[2] = {0.0f, 0.0f};
  const float b[2] = {1.0f, 0.0f};
  EXPECT_DOUBLE_EQ(rbf_kernel(a, a, 2, 1.0), 1.0);
  EXPECT_NEAR(rbf_kernel(a, b, 2, 1.0), std::exp(-1.0), 1e-9);
  EXPECT_NEAR(rbf_kernel(a, b, 2, 2.0), std::exp(-2.0), 1e-9);
}

TEST(Kernel, LinearIsDot) {
  const float a[3] = {1.0f, 2.0f, 3.0f};
  const float b[3] = {4.0f, 5.0f, 6.0f};
  EXPECT_DOUBLE_EQ(kernel_value(kernel_kind::linear, a, b, 3, 0.0), 32.0);
}

TEST(Kernel, MatrixIsSymmetricWithUnitDiagonal) {
  const tensor samples = make_blob(10, 0, 0, 1.0, 1);
  const tensor k = kernel_matrix(kernel_kind::rbf, samples, 0.5);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(k.at2(i, i), 1.0f);
    for (std::int64_t j = 0; j < 10; ++j) {
      EXPECT_FLOAT_EQ(k.at2(i, j), k.at2(j, i));
    }
  }
}

TEST(Kernel, GammaHeuristicScalesWithVariance) {
  const tensor tight = make_blob(100, 0, 0, 0.1, 2);
  const tensor wide = make_blob(100, 0, 0, 10.0, 3);
  EXPECT_GT(gamma_scale_heuristic(tight), gamma_scale_heuristic(wide));
}

TEST(OneClassSvm, FitRejectsBadInputs) {
  one_class_svm svm;
  one_class_svm_config cfg;
  tensor one{{1, 2}};
  EXPECT_THROW(svm.fit(one, cfg), std::invalid_argument);
  const tensor blob = make_blob(10, 0, 0, 1.0, 4);
  cfg.nu = 0.0;
  EXPECT_THROW(svm.fit(blob, cfg), std::invalid_argument);
  cfg.nu = 1.5;
  EXPECT_THROW(svm.fit(blob, cfg), std::invalid_argument);
}

TEST(OneClassSvm, DecisionBeforeFitThrows) {
  one_class_svm svm;
  const float x[2] = {0, 0};
  EXPECT_THROW(svm.decision({x, 2}), std::logic_error);
}

TEST(OneClassSvm, InliersPositiveOutliersNegative) {
  const tensor blob = make_blob(200, 0, 0, 1.0, 5);
  one_class_svm svm;
  one_class_svm_config cfg;
  cfg.nu = 0.1;
  svm.fit(blob, cfg);
  EXPECT_TRUE(svm.fitted());

  const float center[2] = {0.0f, 0.0f};
  EXPECT_GT(svm.decision({center, 2}), 0.0);
  const float far_away[2] = {25.0f, -30.0f};
  EXPECT_LT(svm.decision({far_away, 2}), 0.0);
}

TEST(OneClassSvm, OutlierFractionRespectsNuBound) {
  const tensor blob = make_blob(400, 0, 0, 1.0, 6);
  one_class_svm svm;
  one_class_svm_config cfg;
  cfg.nu = 0.2;
  svm.fit(blob, cfg);
  std::int64_t negatives = 0;
  for (std::int64_t i = 0; i < 400; ++i) {
    const float x[2] = {blob.at2(i, 0), blob.at2(i, 1)};
    negatives += svm.decision({x, 2}) < 0.0 ? 1 : 0;
  }
  // nu upper-bounds the training outlier fraction (within solver slack).
  EXPECT_LT(static_cast<double>(negatives) / 400.0, 0.2 + 0.08);
  // And with an RBF kernel the boundary is tight enough to exclude some.
  EXPECT_GT(negatives, 0);
}

TEST(OneClassSvm, DecisionDecreasesOutsideSupport) {
  // Support vectors of a one-class SVM sit on the boundary of the data, so
  // the decision value is roughly flat inside the blob; monotone decay is
  // only guaranteed once the query leaves the support region.
  const tensor blob = make_blob(200, 0, 0, 1.0, 7);
  one_class_svm svm;
  one_class_svm_config cfg;
  cfg.nu = 0.1;
  svm.fit(blob, cfg);
  const auto at = [&](double r) {
    const float x[2] = {static_cast<float>(r), 0.0f};
    return svm.decision({x, 2});
  };
  double prev = at(3.0);
  for (double r = 4.0; r <= 10.0; r += 1.0) {
    const double d = at(r);
    EXPECT_LT(d, prev) << "radius " << r;
    prev = d;
  }
  // And interior values clearly dominate far-outside values.
  EXPECT_GT(at(0.0), at(6.0));
  EXPECT_GT(at(1.0), at(6.0));
}

TEST(OneClassSvm, SupportVectorsAreSubset) {
  const tensor blob = make_blob(300, 0, 0, 1.0, 8);
  one_class_svm svm;
  one_class_svm_config cfg;
  cfg.nu = 0.05;
  svm.fit(blob, cfg);
  EXPECT_GT(svm.support_count(), 0);
  EXPECT_LT(svm.support_count(), 300);
  // At least nu * l support vectors (Schölkopf's lower bound).
  EXPECT_GE(svm.support_count(),
            static_cast<std::int64_t>(0.05 * 300) - 1);
}

TEST(OneClassSvm, ExplicitGammaIsHonored) {
  const tensor blob = make_blob(100, 0, 0, 1.0, 9);
  one_class_svm svm;
  one_class_svm_config cfg;
  cfg.gamma = 3.5;
  svm.fit(blob, cfg);
  EXPECT_DOUBLE_EQ(svm.gamma(), 3.5);
}

TEST(OneClassSvm, LinearKernelSeparatesShiftedBlob) {
  const tensor blob = make_blob(150, 5, 5, 0.5, 10);
  one_class_svm svm;
  one_class_svm_config cfg;
  cfg.kernel = kernel_kind::linear;
  cfg.nu = 0.1;
  svm.fit(blob, cfg);
  const float inlier[2] = {5.0f, 5.0f};
  const float outlier[2] = {-5.0f, -5.0f};
  EXPECT_GT(svm.decision({inlier, 2}), svm.decision({outlier, 2}));
}

TEST(OneClassSvm, DimensionMismatchThrows) {
  const tensor blob = make_blob(50, 0, 0, 1.0, 11);
  one_class_svm svm;
  svm.fit(blob, {});
  const float x[3] = {0, 0, 0};
  EXPECT_THROW(svm.decision({x, 3}), std::invalid_argument);
}

TEST(OneClassSvm, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/svm_rt.bin";
  const tensor blob = make_blob(120, 1, -1, 1.0, 12);
  one_class_svm svm;
  svm.fit(blob, {});
  {
    binary_writer w{path, "svm"};
    svm.save(w);
    w.finish();
  }
  binary_reader r{path, "svm"};
  const one_class_svm loaded = one_class_svm::load(r);
  EXPECT_EQ(loaded.support_count(), svm.support_count());
  EXPECT_DOUBLE_EQ(loaded.rho(), svm.rho());
  rng gen{13};
  for (int i = 0; i < 20; ++i) {
    const float x[2] = {static_cast<float>(gen.uniform(-5, 5)),
                        static_cast<float>(gen.uniform(-5, 5))};
    EXPECT_NEAR(loaded.decision({x, 2}), svm.decision({x, 2}), 1e-9);
  }
  std::remove(path.c_str());
}

class SvmNuSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmNuSweep, SupportFractionAtLeastNu) {
  // Property from Schölkopf et al.: nu lower-bounds the SV fraction.
  const double nu = GetParam();
  const tensor blob = make_blob(200, 0, 0, 1.0, 14);
  one_class_svm svm;
  one_class_svm_config cfg;
  cfg.nu = nu;
  svm.fit(blob, cfg);
  const double sv_fraction =
      static_cast<double>(svm.support_count()) / 200.0;
  EXPECT_GE(sv_fraction, nu - 0.02);
}

INSTANTIATE_TEST_SUITE_P(Nus, SvmNuSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.8));

}  // namespace
}  // namespace dv
