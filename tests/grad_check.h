// Numerical gradient checking utilities for layer tests.
//
// For a layer y = f(x; theta) and a fixed random weighting w, define the
// scalar loss L = <w, f(x)>. The analytic input gradient is backward(w); the
// analytic parameter gradients are accumulated in the layer. Both are
// compared against central finite differences.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace dv::testing {

inline double layer_loss(layer& l, const tensor& x, const tensor& w,
                         bool training) {
  tensor y = l.forward(x, training);
  EXPECT_TRUE(y.same_shape(w)) << "loss weighting shape mismatch";
  return dot(y.data(), w.data(), y.numel());
}

/// Checks d<w, f(x)>/dx against central differences at `samples` random
/// coordinates. Returns the maximum relative error observed.
inline void check_input_gradient(layer& l, tensor x, const tensor& w,
                                 bool training = true, double eps = 1e-3,
                                 double tol = 2e-2, int samples = 24,
                                 std::uint64_t seed = 99) {
  (void)layer_loss(l, x, w, training);  // populate forward caches
  for (auto& p : l.params()) p.grad->fill(0.0f);
  const tensor analytic = l.backward(w);
  ASSERT_TRUE(analytic.same_shape(x));

  rng gen{seed};
  for (int s = 0; s < samples; ++s) {
    const auto i = static_cast<std::int64_t>(
        gen.next_u64() % static_cast<std::uint64_t>(x.numel()));
    const float original = x[i];
    x[i] = original + static_cast<float>(eps);
    const double up = layer_loss(l, x, w, training);
    x[i] = original - static_cast<float>(eps);
    const double down = layer_loss(l, x, w, training);
    x[i] = original;
    const double numeric = (up - down) / (2.0 * eps);
    const double denom = std::max({1.0, std::abs(numeric),
                                   std::abs(static_cast<double>(analytic[i]))});
    EXPECT_NEAR(analytic[i], numeric, tol * denom)
        << "input coordinate " << i;
  }
  // Restore caches for any follow-up use.
  (void)layer_loss(l, x, w, training);
}

/// Checks every parameter gradient against central differences at `samples`
/// random coordinates per parameter tensor.
inline void check_param_gradients(layer& l, const tensor& x, const tensor& w,
                                  bool training = true, double eps = 1e-3,
                                  double tol = 2e-2, int samples = 16,
                                  std::uint64_t seed = 123) {
  (void)layer_loss(l, x, w, training);
  for (auto& p : l.params()) p.grad->fill(0.0f);
  (void)l.backward(w);

  rng gen{seed};
  for (auto& p : l.params()) {
    for (int s = 0; s < samples; ++s) {
      const auto i = static_cast<std::int64_t>(
          gen.next_u64() % static_cast<std::uint64_t>(p.value->numel()));
      const float analytic = (*p.grad)[i];
      const float original = (*p.value)[i];
      (*p.value)[i] = original + static_cast<float>(eps);
      const double up = layer_loss(l, x, w, training);
      (*p.value)[i] = original - static_cast<float>(eps);
      const double down = layer_loss(l, x, w, training);
      (*p.value)[i] = original;
      const double numeric = (up - down) / (2.0 * eps);
      const double denom =
          std::max({1.0, std::abs(numeric), std::abs(static_cast<double>(analytic))});
      EXPECT_NEAR(analytic, numeric, tol * denom)
          << p.name << " coordinate " << i;
    }
  }
}

}  // namespace dv::testing
