#include "eval/table.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dv {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  text_table t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  text_table t{{"a", "b"}};
  t.add_row({"long-cell-content", "x"});
  const std::string out = t.render();
  // Every rendered line has the same length.
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TextTable, SeparatorRows) {
  text_table t{{"x"}};
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Expect at least 4 separator lines (top, post-header, middle, bottom).
  std::size_t count = 0, pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++count;
    pos += 3;
  }
  EXPECT_GE(count, 4u);
}

TEST(TextTable, ArityMismatchThrows) {
  text_table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(text_table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(TextTable, FmtFormatsAndHandlesNan) {
  EXPECT_EQ(text_table::fmt(0.98765, 4), "0.9877");
  EXPECT_EQ(text_table::fmt(1.0, 2), "1.00");
  EXPECT_EQ(text_table::fmt(std::nan(""), 4), "-");
  EXPECT_EQ(text_table::dash(), "-");
}

}  // namespace
}  // namespace dv
