#include "eval/histogram.h"

#include <gtest/gtest.h>

#include <vector>

namespace dv {
namespace {

TEST(Histogram, MassSumsToOne) {
  const std::vector<double> values{0.1, 0.2, 0.3, 0.9};
  const histogram h = build_histogram(values, 0.0, 1.0, 10);
  double total = 0.0;
  for (const double d : h.density) total += d;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, BinPlacement) {
  const std::vector<double> values{0.05, 0.15, 0.15};
  const histogram h = build_histogram(values, 0.0, 1.0, 10);
  EXPECT_NEAR(h.density[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.density[1], 2.0 / 3.0, 1e-12);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  const std::vector<double> values{-5.0, 5.0};
  const histogram h = build_histogram(values, 0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.density.front(), 0.5);
  EXPECT_DOUBLE_EQ(h.density.back(), 0.5);
}

TEST(Histogram, EmptyInputYieldsZeroDensity) {
  const std::vector<double> values{};
  const histogram h = build_histogram(values, 0.0, 1.0, 4);
  for (const double d : h.density) EXPECT_EQ(d, 0.0);
}

TEST(Histogram, BadParamsThrow) {
  const std::vector<double> values{0.5};
  EXPECT_THROW(build_histogram(values, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(build_histogram(values, 1.0, 0.0, 4), std::invalid_argument);
}

TEST(Histogram, BinWidth) {
  const std::vector<double> values{0.5};
  const histogram h = build_histogram(values, -1.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
}

TEST(NormalizeJointly, MapsToMinusOneOne) {
  std::vector<double> a{0.0, 10.0};
  std::vector<double> b{5.0};
  normalize_jointly(a, b);
  EXPECT_DOUBLE_EQ(a[0], -1.0);
  EXPECT_DOUBLE_EQ(a[1], 1.0);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
}

TEST(NormalizeJointly, DegenerateAndEmptyAreSafe) {
  std::vector<double> a{3.0, 3.0};
  std::vector<double> b{3.0};
  normalize_jointly(a, b);  // span 0: unchanged
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  std::vector<double> e1, e2;
  normalize_jointly(e1, e2);  // no crash
}

TEST(AsciiOverlay, ShapeAndMarkers) {
  const std::vector<double> left{0.1, 0.1};
  const std::vector<double> right{0.9, 0.9};
  const histogram a = build_histogram(left, 0.0, 1.0, 10);
  const histogram b = build_histogram(right, 0.0, 1.0, 10);
  const std::string art = ascii_overlay(a, b, "legit", "scc", 5);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('o'), std::string::npos);
  EXPECT_NE(art.find("legit"), std::string::npos);
  EXPECT_NE(art.find("scc"), std::string::npos);
}

TEST(AsciiOverlay, OverlapUsesAtSign) {
  const std::vector<double> same{0.5};
  const histogram a = build_histogram(same, 0.0, 1.0, 4);
  const histogram b = build_histogram(same, 0.0, 1.0, 4);
  const std::string art = ascii_overlay(a, b, "a", "b", 3);
  EXPECT_NE(art.find('@'), std::string::npos);
}

TEST(AsciiOverlay, MismatchedBinsThrow) {
  const std::vector<double> v{0.5};
  const histogram a = build_histogram(v, 0.0, 1.0, 4);
  const histogram b = build_histogram(v, 0.0, 1.0, 8);
  EXPECT_THROW(ascii_overlay(a, b, "a", "b"), std::invalid_argument);
}

TEST(HistogramCsv, HeaderAndRows) {
  const std::vector<double> v{0.5};
  const histogram a = build_histogram(v, 0.0, 1.0, 2);
  const histogram b = build_histogram(v, 0.0, 1.0, 2);
  const std::string csv = histogram_csv(a, b);
  EXPECT_EQ(csv.substr(0, 31), "bin_center,density_a,density_b\n");
  // Two data rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

}  // namespace
}  // namespace dv
