#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "util/serialize.h"

namespace dv {
namespace {

TEST(Tensor, ConstructionZeroFills) {
  tensor t{{2, 3}};
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(), 2);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, InvalidShapeThrows) {
  EXPECT_THROW(tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(tensor({-1, 3}), std::invalid_argument);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(tensor::from_data({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(tensor::from_data({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, FullAndFill) {
  tensor t = tensor::full({3}, 2.5f);
  EXPECT_EQ(t[0], 2.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[2], -1.0f);
}

TEST(Tensor, ReshapeInfersExtent) {
  tensor t{{4, 6}};
  t.reshape({2, -1});
  EXPECT_EQ(t.extent(0), 2);
  EXPECT_EQ(t.extent(1), 12);
}

TEST(Tensor, ReshapeErrors) {
  tensor t{{4, 6}};
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshape({7, -1}), std::invalid_argument);
}

TEST(Tensor, ReshapedLeavesSourceIntact) {
  tensor t{{2, 6}};
  const tensor r = t.reshaped({3, 4});
  EXPECT_EQ(t.extent(0), 2);
  EXPECT_EQ(r.extent(0), 3);
}

TEST(Tensor, IndexAccessors) {
  tensor t{{2, 3, 4, 5}};
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[t.numel() - 1], 9.0f);
  tensor m{{3, 4}};
  m.at2(2, 3) = 7.0f;
  EXPECT_EQ(m[11], 7.0f);
  tensor c{{2, 3, 4}};
  c.at3(1, 2, 3) = 5.0f;
  EXPECT_EQ(c[23], 5.0f);
}

TEST(Tensor, SampleRoundTrip) {
  rng gen{3};
  tensor batch = tensor::randn({4, 2, 3, 3}, gen);
  const tensor s = batch.sample(2);
  EXPECT_EQ(s.shape(), (std::vector<std::int64_t>{2, 3, 3}));
  tensor other{{4, 2, 3, 3}};
  other.set_sample(2, s);
  for (std::int64_t i = 0; i < s.numel(); ++i) {
    EXPECT_EQ(other.sample(2)[i], s[i]);
  }
  EXPECT_THROW(batch.sample(4), std::out_of_range);
  EXPECT_THROW(batch.sample(-1), std::out_of_range);
}

TEST(Tensor, SliceRows) {
  tensor t = tensor::from_data({4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  const tensor s = t.slice_rows(1, 3);
  EXPECT_EQ(s.extent(0), 2);
  EXPECT_EQ(s[0], 2.0f);
  EXPECT_EQ(s[3], 5.0f);
  EXPECT_THROW(t.slice_rows(3, 3), std::out_of_range);
  EXPECT_THROW(t.slice_rows(0, 5), std::out_of_range);
}

TEST(Tensor, ElementwiseArithmetic) {
  tensor a = tensor::from_data({3}, {1, 2, 3});
  tensor b = tensor::from_data({3}, {4, 5, 6});
  a += b;
  EXPECT_EQ(a[0], 5.0f);
  a -= b;
  EXPECT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a[1], 4.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_EQ(a[0], 4.0f);
  a.mul_elem(b);
  EXPECT_EQ(a[0], 16.0f);
}

TEST(Tensor, Clamp) {
  tensor t = tensor::from_data({4}, {-1.0f, 0.2f, 0.8f, 2.0f});
  t.clamp(0.0f, 1.0f);
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_EQ(t[1], 0.2f);
  EXPECT_EQ(t[3], 1.0f);
}

TEST(Tensor, Reductions) {
  tensor t = tensor::from_data({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.min(), -4.0f);
  EXPECT_FLOAT_EQ(t.mean(), -0.5f);
  EXPECT_EQ(t.argmax(), 2);
  EXPECT_FLOAT_EQ(t.norm1(), 10.0f);
  EXPECT_FLOAT_EQ(t.norm2(), std::sqrt(30.0f));
}

TEST(Tensor, EmptyReductionsThrow) {
  tensor t;
  EXPECT_THROW(t.max(), std::logic_error);
  EXPECT_THROW(t.mean(), std::logic_error);
  EXPECT_THROW(t.argmax(), std::logic_error);
}

TEST(Tensor, OutOfPlaceOperators) {
  const tensor a = tensor::from_data({2}, {1, 2});
  const tensor b = tensor::from_data({2}, {3, 4});
  const tensor c = a + b;
  EXPECT_EQ(c[0], 4.0f);
  const tensor d = a - b;
  EXPECT_EQ(d[1], -2.0f);
  const tensor e = a * 3.0f;
  EXPECT_EQ(e[0], 3.0f);
}

TEST(Tensor, RandnStatistics) {
  rng gen{5};
  const tensor t = tensor::randn({10000}, gen, 2.0f);
  EXPECT_NEAR(t.mean(), 0.0f, 0.1f);
  double var = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) var += t[i] * t[i];
  EXPECT_NEAR(var / static_cast<double>(t.numel()), 4.0, 0.3);
}

TEST(Tensor, UniformRange) {
  rng gen{5};
  const tensor t = tensor::uniform({1000}, gen, -2.0f, 3.0f);
  EXPECT_GE(t.min(), -2.0f);
  EXPECT_LT(t.max(), 3.0f);
}

TEST(Tensor, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tensor_rt.bin";
  rng gen{9};
  const tensor t = tensor::randn({3, 4, 5}, gen);
  {
    binary_writer w{path, "t"};
    t.save(w);
    w.finish();
  }
  binary_reader r{path, "t"};
  const tensor u = tensor::load(r);
  EXPECT_EQ(u.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(u[i], t[i]);
  std::remove(path.c_str());
}

TEST(Tensor, ShapeString) {
  tensor t{{2, 3, 4}};
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
}

}  // namespace
}  // namespace dv
