// Tests of the SIMD dispatch layer (tensor/simd/simd.h): level selection
// and DV_SIMD startup semantics, plus the bitwise-identity contract — every
// supported dispatch level must produce byte-identical results for GEMM,
// conv2d forward/backward, RBF kernel rows, decision_batch, the reduction
// primitives, and full deep_validator scores, across DV_THREADS {1, 8}.
// Levels the host cannot run are skipped, never failed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/deep_validator.h"
#include "nn/layers.h"
#include "svm/kernel.h"
#include "svm/one_class_svm.h"
#include "tensor/ops.h"
#include "tensor/simd/simd.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace dv {
namespace {

/// Restores the startup dispatch level and thread count when a test exits.
struct simd_state_guard {
  ~simd_state_guard() {
    reset_simd_level();
    set_thread_count(0);
  }
};

/// Every level this host can actually run, widest last. Always contains
/// at least scalar.
std::vector<simd_level> supported_levels() {
  std::vector<simd_level> out;
  for (const auto level :
       {simd_level::scalar, simd_level::sse2, simd_level::avx2}) {
    if (simd_level_supported(level)) out.push_back(level);
  }
  return out;
}

/// Runs `fn` under a forced (level, threads) pair and returns its result.
template <typename Fn>
auto at_level(simd_level level, int threads, Fn&& fn) {
  set_simd_level(level);
  set_thread_count(threads);
  return fn();
}

bool bitwise_equal(const tensor& a, const tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

// -- Dispatch mechanics ------------------------------------------------------------

TEST(SimdDispatch, ScalarAlwaysSupportedAndSetTracksActiveLevel) {
  simd_state_guard guard;
  EXPECT_TRUE(simd_level_supported(simd_level::scalar));
  for (const auto level : supported_levels()) {
    set_simd_level(level);
    EXPECT_EQ(active_simd_level(), level);
    EXPECT_EQ(simd_kernels().level, level);
  }
  EXPECT_EQ(simd_level_name(simd_level::scalar), "scalar");
  EXPECT_EQ(simd_level_name(simd_level::sse2), "sse2");
  EXPECT_EQ(simd_level_name(simd_level::avx2), "avx2");
}

TEST(SimdDispatch, ForcingAnUnsupportedLevelThrows) {
  simd_state_guard guard;
  for (const auto level : {simd_level::sse2, simd_level::avx2}) {
    if (simd_level_supported(level)) continue;
    EXPECT_THROW(set_simd_level(level), std::invalid_argument)
        << simd_level_name(level);
  }
}

TEST(SimdDispatch, StartupSelectionHonorsDvSimd) {
  simd_state_guard guard;
  reset_simd_level();
  const char* env = std::getenv("DV_SIMD");
  const std::string_view request = env == nullptr ? "auto" : env;
  simd_level want = simd_level::scalar;
  if (request == "scalar") {
    want = simd_level::scalar;
  } else if (request == "sse2") {
    want = simd_level::sse2;
  } else if (request == "avx2") {
    want = simd_level::avx2;
  } else {
    // auto (and unknown values, which warn and fall back to auto) select
    // the widest supported level.
    EXPECT_EQ(active_simd_level(), supported_levels().back());
    return;
  }
  if (!simd_level_supported(want)) {
    GTEST_SKIP() << "DV_SIMD=" << request << " is not supported on this host";
  }
  EXPECT_EQ(active_simd_level(), want);
}

// -- Reduction primitives ----------------------------------------------------------

TEST(SimdIdentity, ReductionsBitIdenticalAcrossLevels) {
  simd_state_guard guard;
  const auto levels = supported_levels();
  rng gen{41};
  // Odd lengths on both sides of the 8-lane block size, including pure-tail
  // sizes (n < 8) and multi-block sizes with and without remainders.
  const std::int64_t sizes[] = {1, 3, 7, 8, 9, 15, 16, 17, 64, 100, 1003};
  for (const auto n : sizes) {
    const tensor a = tensor::randn({n}, gen);
    const tensor b = tensor::randn({n}, gen);
    std::vector<double> da(static_cast<std::size_t>(n));
    std::vector<double> db(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      da[static_cast<std::size_t>(i)] = a[i];
      db[static_cast<std::size_t>(i)] = b[i];
    }
    struct result {
      double sum, sq, dot, dot64, l1;
      tensor shifted;
    };
    auto run = [&] {
      tensor shifted = a;
      add_scalar(shifted.data(), n, 1.25f);
      return result{array_sum(a.data(), n),
                    squared_distance(a.data(), b.data(), n),
                    dot(a.data(), b.data(), n),
                    dot_f64(da.data(), db.data(), n),
                    l1_distance(a.data(), b.data(), n), std::move(shifted)};
    };
    const auto base = at_level(simd_level::scalar, 1, run);
    for (const auto level : levels) {
      const auto got = at_level(level, 1, run);
      EXPECT_EQ(got.sum, base.sum) << simd_level_name(level) << " n=" << n;
      EXPECT_EQ(got.sq, base.sq) << simd_level_name(level) << " n=" << n;
      EXPECT_EQ(got.dot, base.dot) << simd_level_name(level) << " n=" << n;
      EXPECT_EQ(got.dot64, base.dot64) << simd_level_name(level) << " n=" << n;
      EXPECT_EQ(got.l1, base.l1) << simd_level_name(level) << " n=" << n;
      EXPECT_TRUE(bitwise_equal(got.shifted, base.shifted))
          << simd_level_name(level) << " n=" << n;
    }
  }
}

TEST(SimdIdentity, SquaredDistanceRowMatchesPerRowCalls) {
  simd_state_guard guard;
  rng gen{43};
  const std::int64_t m = 37, d = 19;
  const tensor x = tensor::randn({d}, gen);
  const tensor rows = tensor::randn({m, d}, gen);
  for (const auto level : supported_levels()) {
    set_simd_level(level);
    std::vector<double> batched(static_cast<std::size_t>(m));
    squared_distance_row(x.data(), rows.data(), m, d, batched.data());
    for (std::int64_t j = 0; j < m; ++j) {
      const double single =
          squared_distance(x.data(), rows.data() + j * d, d);
      EXPECT_EQ(batched[static_cast<std::size_t>(j)], single)
          << simd_level_name(level) << " row " << j;
    }
  }
}

// -- GEMM and conv2d ---------------------------------------------------------------

TEST(SimdIdentity, GemmBitIdenticalAcrossLevelsAndThreads) {
  simd_state_guard guard;
  rng gen{47};
  const std::int64_t m = 130, n = 97, k = 301;
  const tensor a = tensor::randn({m, k}, gen);
  const tensor a_t = tensor::randn({k, m}, gen);
  const tensor b = tensor::randn({k, n}, gen);
  const tensor b_t = tensor::randn({n, k}, gen);
  auto run_all = [&] {
    std::vector<tensor> out;
    tensor c{{m, n}};
    gemm_nn(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    out.push_back(c);
    gemm_nt(m, n, k, 0.5f, a.data(), b_t.data(), 0.0f, c.data());
    out.push_back(c);
    gemm_tn(m, n, k, 1.0f, a_t.data(), b.data(), 1.0f, c.data());
    out.push_back(c);
    return out;
  };
  const auto base = at_level(simd_level::scalar, 1, run_all);
  for (const auto level : supported_levels()) {
    for (const int threads : {1, 8}) {
      const auto got = at_level(level, threads, run_all);
      ASSERT_EQ(got.size(), base.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_TRUE(bitwise_equal(got[i], base[i]))
            << "gemm variant " << i << " at " << simd_level_name(level)
            << " threads=" << threads;
      }
    }
  }
}

TEST(SimdIdentity, Conv2dForwardBackwardBitIdenticalAcrossLevelsAndThreads) {
  simd_state_guard guard;
  auto run = [&] {
    rng gen{53};
    conv2d conv{3, 8, 3, 1, 1, gen};
    // Stride-1 odd spatial size exercises the memcpy im2col fast path and
    // the col2im interior; the strided layer exercises the generic path.
    tensor x = tensor::randn({5, 3, 13, 13}, gen);
    tensor y = conv.forward(x, true);
    tensor g = tensor::randn(y.shape(), gen);
    tensor dx = conv.backward(g);
    conv2d strided{3, 4, 3, 2, 0, gen};
    tensor ys = strided.forward(x, true);
    tensor gs = tensor::randn(ys.shape(), gen);
    tensor dxs = strided.backward(gs);
    std::vector<tensor> out{y, dx, ys, dxs};
    for (auto& p : conv.params()) out.push_back(*p.grad);
    for (auto& p : strided.params()) out.push_back(*p.grad);
    return out;
  };
  const auto base = at_level(simd_level::scalar, 1, run);
  for (const auto level : supported_levels()) {
    for (const int threads : {1, 8}) {
      const auto got = at_level(level, threads, run);
      ASSERT_EQ(got.size(), base.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_TRUE(bitwise_equal(got[i], base[i]))
            << "conv tensor " << i << " at " << simd_level_name(level)
            << " threads=" << threads;
      }
    }
  }
}

// -- RBF rows, kernel matrix, and the one-class SVM --------------------------------

TEST(SimdIdentity, KernelMatrixAndDecisionBatchBitIdenticalAcrossLevels) {
  simd_state_guard guard;
  rng gen{59};
  const tensor samples = tensor::randn({120, 9}, gen);
  const tensor queries = tensor::randn({33, 9}, gen);
  const double gamma = 0.05;
  auto run = [&] {
    const tensor k = kernel_matrix(kernel_kind::rbf, samples, gamma);
    one_class_svm svm;
    svm.fit(samples, {});
    return std::make_pair(k, svm.decision_batch(queries));
  };
  const auto base = at_level(simd_level::scalar, 1, run);
  // The batched row evaluation must also match the per-pair kernel exactly.
  const std::int64_t d = samples.extent(1);
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      EXPECT_EQ(base.first[i * samples.extent(0) + j],
                static_cast<float>(rbf_kernel(samples.data() + i * d,
                                              samples.data() + j * d, d,
                                              gamma)));
    }
  }
  for (const auto level : supported_levels()) {
    for (const int threads : {1, 8}) {
      const auto got = at_level(level, threads, run);
      EXPECT_TRUE(bitwise_equal(got.first, base.first))
          << "kernel matrix at " << simd_level_name(level)
          << " threads=" << threads;
      ASSERT_EQ(got.second.size(), base.second.size());
      for (std::size_t i = 0; i < base.second.size(); ++i) {
        EXPECT_EQ(got.second[i], base.second[i])
            << "decision of query " << i << " at " << simd_level_name(level)
            << " threads=" << threads;
      }
    }
  }
}

// -- End-to-end: deep_validator scores ---------------------------------------------

TEST(SimdIdentity, DeepValidatorScoresBitIdenticalAcrossLevelsAndThreads) {
  simd_state_guard guard;
  const auto& world = dv::testing::shared_tiny_world();
  const tensor batch = world.test.images.slice_rows(0, 12);
  auto run = [&] {
    deep_validator validator;
    deep_validator_config cfg;
    cfg.max_train_per_class = 30;
    validator.fit(*world.model, world.train, cfg);
    return validator.evaluate(*world.model, batch);
  };
  const auto base = at_level(simd_level::scalar, 1, run);
  for (const auto level : supported_levels()) {
    // The DV_THREADS axis of this end-to-end matrix: serial for every
    // level, threaded only for the widest (test_parallel.cpp already
    // sweeps the thread axis exhaustively at the startup level).
    std::vector<int> thread_counts{1};
    if (level == supported_levels().back()) thread_counts.push_back(8);
    for (const int threads : thread_counts) {
      const auto got = at_level(level, threads, run);
      ASSERT_EQ(got.joint.size(), base.joint.size());
      for (std::size_t i = 0; i < base.joint.size(); ++i) {
        EXPECT_EQ(got.joint[i], base.joint[i])
            << "joint discrepancy of image " << i << " at "
            << simd_level_name(level) << " threads=" << threads;
        EXPECT_EQ(got.predictions[i], base.predictions[i]);
      }
      ASSERT_EQ(got.per_layer.size(), base.per_layer.size());
      for (std::size_t v = 0; v < base.per_layer.size(); ++v) {
        for (std::size_t i = 0; i < base.per_layer[v].size(); ++i) {
          EXPECT_EQ(got.per_layer[v][i], base.per_layer[v][i]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace dv
