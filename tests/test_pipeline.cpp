#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "pipeline/artifacts.h"
#include "pipeline/config.h"
#include "pipeline/corner_suite.h"
#include "pipeline/models.h"

namespace dv {
namespace {

TEST(Config, StandardConfigPerKind) {
  const experiment_config digits = standard_config(dataset_kind::digits);
  EXPECT_EQ(digits.data.kind, dataset_kind::digits);
  EXPECT_GT(digits.data.train_size, 0);
  EXPECT_EQ(digits.validator.last_probes, 0);

  const experiment_config objects = standard_config(dataset_kind::objects);
  // The paper validates only the last six layers of DenseNet.
  EXPECT_EQ(objects.validator.last_probes, 6);
}

TEST(Config, SummaryMentionsPaperDataset) {
  const experiment_config cfg = standard_config(dataset_kind::street);
  EXPECT_NE(cfg.summary().find("SVHN"), std::string::npos);
}

TEST(Config, ModelNamesStable) {
  EXPECT_NE(std::string{model_name(dataset_kind::street)}.find("Table II"),
            std::string::npos);
  EXPECT_NE(std::string{model_name(dataset_kind::objects)}.find("DenseNet"),
            std::string::npos);
}

TEST(Config, TrainUsesPaperOptimizer) {
  const experiment_config cfg = standard_config(dataset_kind::digits);
  EXPECT_EQ(cfg.train.optimizer, train_config::opt_kind::adadelta);
  EXPECT_FLOAT_EQ(cfg.train.lr, 1.0f);
  EXPECT_FLOAT_EQ(cfg.train.lr_decay, 0.95f);
}

TEST(CornerSuite, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/suite_rt.bin";
  corner_suite suite;
  // Minimal synthetic suite.
  suite.seeds.images = tensor{{2, 1, 4, 4}};
  suite.seeds.labels = {0, 1};
  suite.seeds.num_classes = 10;
  suite.seeds.name = "seeds";
  corner_entry entry;
  entry.kind = transform_kind::rotation;
  entry.usable = true;
  entry.chain = {{transform_kind::rotation, 42.0f, 0.0f}};
  entry.success_rate = 0.625;
  entry.mean_confidence = 0.88;
  entry.range_description = "1 through 70";
  entry.cases = suite.seeds;
  entry.misclassified = {1, 0};
  suite.entries.push_back(entry);

  suite.save(path);
  const corner_suite loaded = corner_suite::load(path);
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries[0].kind, transform_kind::rotation);
  EXPECT_TRUE(loaded.entries[0].usable);
  EXPECT_DOUBLE_EQ(loaded.entries[0].success_rate, 0.625);
  EXPECT_FLOAT_EQ(loaded.entries[0].chain[0].p1, 42.0f);
  EXPECT_EQ(loaded.entries[0].misclassified, (std::vector<unsigned char>{1, 0}));
  EXPECT_EQ(loaded.seeds.labels, suite.seeds.labels);
  std::remove(path.c_str());
}

TEST(CornerSuite, PooledSccsCollectsMisclassified) {
  corner_suite suite;
  suite.seeds.name = "seeds";
  corner_entry a;
  a.usable = true;
  a.cases.images = tensor{{3, 1, 2, 2}};
  a.cases.images.fill(0.25f);
  a.cases.labels = {0, 1, 2};
  a.cases.num_classes = 10;
  a.misclassified = {1, 0, 1};
  corner_entry b = a;
  b.usable = false;  // excluded entirely
  corner_entry c = a;
  c.misclassified = {0, 1, 0};
  suite.entries = {a, b, c};
  const dataset pooled = suite.pooled_sccs();
  EXPECT_EQ(pooled.size(), 3);  // 2 from a + 1 from c
  EXPECT_EQ(pooled.labels[0], 0);
  EXPECT_EQ(pooled.labels[1], 2);
  EXPECT_EQ(pooled.labels[2], 1);
  EXPECT_EQ(suite.usable_count(), 2);
}

TEST(CornerSuite, SccFccPartitionEntry) {
  corner_entry e;
  e.cases.images = tensor{{4, 1, 2, 2}};
  for (std::int64_t i = 0; i < 4; ++i) {
    e.cases.images.data()[i * 4] = static_cast<float>(i);  // tag each sample
  }
  e.cases.labels = {0, 1, 2, 3};
  e.cases.num_classes = 10;
  e.misclassified = {1, 0, 1, 0};
  const dataset sccs = e.sccs();
  const dataset fccs = e.fccs();
  EXPECT_EQ(sccs.size(), 2);
  EXPECT_EQ(fccs.size(), 2);
  EXPECT_EQ(sccs.labels, (std::vector<std::int64_t>{0, 2}));
  EXPECT_EQ(fccs.labels, (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(sccs.size() + fccs.size(), e.cases.size());
  EXPECT_FLOAT_EQ(sccs.images.sample(1)[0], 2.0f);
}

TEST(CornerSuite, DisplayName) {
  corner_entry e;
  e.kind = transform_kind::shear;
  EXPECT_EQ(e.display_name(), "shear");
  e.combined = true;
  EXPECT_EQ(e.display_name(), "combined");
}

TEST(Artifacts, DirectoryHonorsEnvironment) {
  ::setenv("DV_ARTIFACT_DIR", (::testing::TempDir() + "/dv_art").c_str(), 1);
  const std::string dir = artifact_directory();
  EXPECT_NE(dir.find("dv_art"), std::string::npos);
  ::unsetenv("DV_ARTIFACT_DIR");
}

TEST(Artifacts, FastModeShrinksConfig) {
  ::setenv("DV_FAST", "1", 1);
  const experiment_config fast = standard_config(dataset_kind::digits);
  ::unsetenv("DV_FAST");
  const experiment_config full = standard_config(dataset_kind::digits);
  EXPECT_LT(fast.data.train_size, full.data.train_size);
  EXPECT_LT(fast.seed_images, full.seed_images);
}

TEST(Artifacts, ScaleFactorParsesEnvironment) {
  ::setenv("DV_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(scale_factor(), 0.5);
  ::setenv("DV_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(scale_factor(), 1.0);
  ::unsetenv("DV_SCALE");
  EXPECT_DOUBLE_EQ(scale_factor(), 1.0);
}

}  // namespace
}  // namespace dv
