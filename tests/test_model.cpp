#include "nn/model.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/layers.h"
#include "pipeline/models.h"
#include "test_util.h"
#include "util/serialize.h"

namespace dv {
namespace {

std::unique_ptr<sequential> small_net(std::uint64_t seed) {
  rng gen{seed};
  auto m = std::make_unique<sequential>();
  m->add(std::make_unique<conv2d>(1, 2, 3, 1, 1, gen));
  m->add(std::make_unique<relu>(), /*probe=*/true);
  m->add(std::make_unique<flatten>());
  m->add(std::make_unique<dense>(2 * 4 * 4, 8, gen));
  m->add(std::make_unique<relu>(), /*probe=*/true);
  m->add(std::make_unique<dense>(8, 3, gen));
  return m;
}

TEST(Model, ForwardShapeAndProbes) {
  auto m = small_net(1);
  rng gen{2};
  tensor x = tensor::randn({5, 1, 4, 4}, gen);
  const tensor logits = m->forward(x);
  EXPECT_EQ(logits.shape(), (std::vector<std::int64_t>{5, 3}));
  EXPECT_EQ(m->probe_count(), 2);
  const auto probes = m->probes();
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_EQ(probes[0]->shape(), (std::vector<std::int64_t>{5, 2, 4, 4}));
  EXPECT_EQ(probes[1]->shape(), (std::vector<std::int64_t>{5, 8}));
}

TEST(Model, ProbabilitiesSumToOne) {
  auto m = small_net(3);
  rng gen{4};
  tensor x = tensor::randn({2, 1, 4, 4}, gen);
  const tensor p = m->probabilities(x);
  for (std::int64_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < 3; ++j) sum += p.at2(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Model, PredictIsArgmaxOfLogits) {
  auto m = small_net(5);
  rng gen{6};
  tensor x = tensor::randn({3, 1, 4, 4}, gen);
  const tensor logits = m->forward(x);
  const auto preds = m->predict(x);
  for (std::int64_t i = 0; i < 3; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < 3; ++j) {
      if (logits.at2(i, j) > logits.at2(i, best)) best = j;
    }
    EXPECT_EQ(preds[static_cast<std::size_t>(i)], best);
  }
}

TEST(Model, ParamCountMatchesArchitecture) {
  auto m = small_net(7);
  // conv: 2*9+2, dense1: 32*8+8, dense2: 8*3+3
  EXPECT_EQ(m->param_count(), 2 * 9 + 2 + 32 * 8 + 8 + 8 * 3 + 3);
}

TEST(Model, ZeroGradClearsGradients) {
  auto m = small_net(8);
  rng gen{9};
  tensor x = tensor::randn({2, 1, 4, 4}, gen);
  (void)m->forward(x, true);
  tensor g{{2, 3}};
  g.fill(1.0f);
  (void)m->backward(g);
  bool any_nonzero = false;
  for (auto& p : m->params()) {
    for (std::int64_t i = 0; i < p.grad->numel(); ++i) {
      if ((*p.grad)[i] != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  m->zero_grad();
  for (auto& p : m->params()) {
    for (std::int64_t i = 0; i < p.grad->numel(); ++i) {
      EXPECT_EQ((*p.grad)[i], 0.0f);
    }
  }
}

TEST(Model, SaveLoadReproducesOutputs) {
  const std::string path = ::testing::TempDir() + "/model_rt.bin";
  auto m = small_net(10);
  rng gen{11};
  tensor x = tensor::randn({2, 1, 4, 4}, gen);
  const tensor before = m->forward(x);
  m->save_params(path);

  auto m2 = small_net(999);  // different init
  const tensor different = m2->forward(x);
  bool diverged = false;
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    if (std::abs(before[i] - different[i]) > 1e-6f) diverged = true;
  }
  EXPECT_TRUE(diverged);

  m2->load_params(path);
  const tensor after = m2->forward(x);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_FLOAT_EQ(after[i], before[i]);
  }
  std::remove(path.c_str());
}

TEST(Model, LoadRejectsMismatchedArchitecture) {
  const std::string path = ::testing::TempDir() + "/model_bad.bin";
  auto m = small_net(12);
  m->save_params(path);
  rng gen{13};
  sequential other;
  other.add(std::make_unique<dense>(4, 4, gen));
  EXPECT_THROW(other.load_params(path), serialize_error);
  std::remove(path.c_str());
}

TEST(Model, DescribeMentionsProbes) {
  auto m = small_net(14);
  const std::string desc = m->describe();
  EXPECT_NE(desc.find("conv2d"), std::string::npos);
  EXPECT_NE(desc.find("[probe"), std::string::npos);
}

TEST(ModelFactories, DigitsCnnHasSixProbes) {
  auto m = make_digits_cnn(1);
  EXPECT_EQ(m->probe_count(), 6);
  rng gen{2};
  tensor x = tensor::randn({1, 1, 28, 28}, gen);
  EXPECT_EQ(m->forward(x).extent(1), 10);
}

TEST(ModelFactories, StreetCnnHasSixProbes) {
  auto m = make_street_cnn(1);
  EXPECT_EQ(m->probe_count(), 6);
  rng gen{2};
  tensor x = tensor::randn({1, 3, 32, 32}, gen);
  EXPECT_EQ(m->forward(x).extent(1), 10);
}

TEST(ModelFactories, DensenetProbesAndForward) {
  auto m = make_objects_densenet(1);
  // 3 blocks x 3 unit probes + 2 transitions + GAP = 12 probes.
  EXPECT_EQ(m->probe_count(), 12);
  rng gen{2};
  tensor x = tensor::randn({2, 3, 32, 32}, gen);
  const tensor logits = m->forward(x, true);
  EXPECT_EQ(logits.shape(), (std::vector<std::int64_t>{2, 10}));
  const auto probes = m->probes();
  EXPECT_EQ(probes.size(), 12u);
}

TEST(ModelFactories, MakeModelDispatch) {
  EXPECT_EQ(make_model(dataset_kind::digits, 1)->probe_count(), 6);
  EXPECT_EQ(make_model(dataset_kind::street, 1)->probe_count(), 6);
  EXPECT_EQ(make_model(dataset_kind::objects, 1)->probe_count(), 12);
}

TEST(SharedTinyWorld, ModelLearnedSomething) {
  const auto& world = dv::testing::shared_tiny_world();
  EXPECT_GT(world.test_accuracy, 0.8);
}

}  // namespace
}  // namespace dv
