#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace dv {
namespace {

TEST(Rng, SameSeedSameStream) {
  rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  rng gen{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  rng gen{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = gen.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  rng gen{11};
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += gen.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  rng gen{13};
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = gen.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  rng gen{17};
  constexpr int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = gen.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  rng gen{19};
  constexpr int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += gen.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  rng gen{23};
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += gen.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  rng parent1{5}, parent2{5};
  rng child1 = parent1.fork(100);
  rng child2 = parent2.fork(100);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
  rng other = parent1.fork(101);
  // Reset a matching fork to compare streams.
  rng base = parent2.fork(101);
  EXPECT_EQ(other.next_u64(), base.next_u64());
}

TEST(Rng, ForkDifferentTagsDiverge) {
  rng parent{5};
  rng a = parent.fork(1);
  rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  rng gen{29};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  gen.shuffle_indices(v.size(), [&](std::size_t a, std::size_t b) {
    std::swap(v[a], v[b]);
  });
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  // And it actually moved things.
  std::vector<int> identity(100);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(v, identity);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 1;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dv
