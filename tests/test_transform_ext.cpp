// Tests for the extension transformations (blur / noise / occlusion) and
// the validation-diagnosis API.
#include <gtest/gtest.h>

#include "augment/transforms.h"
#include "core/explain.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

tensor ramp_image() {
  tensor img{{1, 8, 8}};
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    img[i] = static_cast<float>(i) / 63.0f;
  }
  return img;
}

TEST(GaussianBlur, PreservesMeanApproximately) {
  const tensor img = ramp_image();
  const tensor out = gaussian_blur(img, 1.0f);
  EXPECT_NEAR(out.mean(), img.mean(), 0.02f);
}

TEST(GaussianBlur, ReducesVariance) {
  rng gen{1};
  const tensor img = tensor::uniform({1, 16, 16}, gen, 0.0f, 1.0f);
  const tensor out = gaussian_blur(img, 1.5f);
  auto variance = [](const tensor& t) {
    const float m = t.mean();
    double acc = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      acc += (t[i] - m) * (t[i] - m);
    }
    return acc / static_cast<double>(t.numel());
  };
  EXPECT_LT(variance(out), variance(img) * 0.5);
}

TEST(GaussianBlur, ConstantImageIsFixedPoint) {
  const tensor img = tensor::full({3, 6, 6}, 0.4f);
  const tensor out = gaussian_blur(img, 2.0f);
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_NEAR(out[i], 0.4f, 1e-5f);
  }
}

TEST(GaussianBlur, InvalidSigmaThrows) {
  EXPECT_THROW(gaussian_blur(ramp_image(), 0.0f), std::invalid_argument);
  EXPECT_THROW(gaussian_blur(tensor{{4, 4}}, 1.0f), std::invalid_argument);
}

TEST(NoiseTransform, DeterministicPerSeedTag) {
  const tensor img = ramp_image();
  const tensor a = apply_step(img, {transform_kind::noise, 0.1f, 3.0f});
  const tensor b = apply_step(img, {transform_kind::noise, 0.1f, 3.0f});
  const tensor c = apply_step(img, {transform_kind::noise, 0.1f, 4.0f});
  double same = 0.0, different = 0.0;
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    same += std::abs(a[i] - b[i]);
    different += std::abs(a[i] - c[i]);
  }
  EXPECT_EQ(same, 0.0);
  EXPECT_GT(different, 0.01);
}

TEST(NoiseTransform, StddevControlsMagnitude) {
  const tensor img = tensor::full({1, 20, 20}, 0.5f);
  const tensor gentle = apply_step(img, {transform_kind::noise, 0.02f, 1.0f});
  const tensor harsh = apply_step(img, {transform_kind::noise, 0.3f, 1.0f});
  double g = 0.0, h = 0.0;
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    g += std::abs(gentle[i] - 0.5f);
    h += std::abs(harsh[i] - 0.5f);
  }
  EXPECT_GT(h, g * 3.0);
  EXPECT_THROW(apply_step(img, {transform_kind::noise, -0.1f, 0.0f}),
               std::invalid_argument);
}

TEST(OcclusionTransform, ZeroesApproximatelyTheRequestedArea) {
  const tensor img = tensor::full({1, 20, 20}, 1.0f);
  const tensor out = apply_step(img, {transform_kind::occlusion, 0.5f, 0.0f});
  std::int64_t zeroed = 0;
  for (std::int64_t i = 0; i < out.numel(); ++i) zeroed += out[i] == 0.0f;
  EXPECT_EQ(zeroed, 10 * 10);
  EXPECT_THROW(apply_step(img, {transform_kind::occlusion, 0.0f, 0.0f}),
               std::invalid_argument);
  EXPECT_THROW(apply_step(img, {transform_kind::occlusion, 1.5f, 0.0f}),
               std::invalid_argument);
}

TEST(OcclusionTransform, PositionTagMovesPatch) {
  const tensor img = tensor::full({1, 20, 20}, 1.0f);
  const tensor a = apply_step(img, {transform_kind::occlusion, 0.3f, 0.0f});
  const tensor b = apply_step(img, {transform_kind::occlusion, 0.3f, 0.7f});
  double diff = 0.0;
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    diff += std::abs(a[i] - b[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(ExtTransforms, DescribeStrings) {
  EXPECT_EQ(transform_step({transform_kind::blur, 1.5f, 0}).describe(),
            "blur(sigma=1.5)");
  EXPECT_EQ(transform_step({transform_kind::noise, 0.2f, 0}).describe(),
            "noise(stddev=0.2)");
  EXPECT_EQ(transform_step({transform_kind::occlusion, 0.3f, 0}).describe(),
            "occlusion(size=0.3)");
  EXPECT_STREQ(transform_kind_name(transform_kind::blur), "blur");
}

// -- explain_validation -------------------------------------------------------------

const deep_validator& diag_validator() {
  static const deep_validator dv = [] {
    const auto& world = shared_tiny_world();
    deep_validator out;
    deep_validator_config cfg;
    cfg.max_train_per_class = 40;
    out.fit(*world.model, world.train, cfg);
    const auto clean = out.evaluate(*world.model, world.test.images).joint;
    out.set_threshold(threshold_for_fpr(clean, 0.05));
    return out;
  }();
  return dv;
}

TEST(Explain, JointEqualsSumAndSharesSumToOne) {
  const auto& world = shared_tiny_world();
  const auto report = explain_validation(*world.model, diag_validator(),
                                         world.test.images.sample(0));
  ASSERT_EQ(report.layers.size(), 3u);
  double sum = 0.0, share_sum = 0.0;
  for (const auto& l : report.layers) {
    sum += l.discrepancy;
    share_sum += l.share;
  }
  EXPECT_NEAR(report.joint_discrepancy, sum, 1e-9);
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(Explain, FlaggedMatchesThreshold) {
  const auto& world = shared_tiny_world();
  const transform_chain invert{{transform_kind::complement, 0, 0}};
  const auto bad = explain_validation(
      *world.model, diag_validator(),
      apply_chain(world.test.images.sample(1), invert));
  EXPECT_TRUE(bad.flagged);
  EXPECT_GT(bad.joint_discrepancy, diag_validator().threshold());
}

TEST(Explain, DominantLayerIsArgmax) {
  const auto& world = shared_tiny_world();
  const auto report = explain_validation(*world.model, diag_validator(),
                                         world.test.images.sample(2));
  double best = -1e300;
  int best_idx = -1;
  for (const auto& l : report.layers) {
    if (l.discrepancy > best) {
      best = l.discrepancy;
      best_idx = l.probe_index;
    }
  }
  EXPECT_EQ(report.dominant_layer(), best_idx);
}

TEST(Explain, FormatMentionsVerdictAndLayers) {
  const auto& world = shared_tiny_world();
  const auto report = explain_validation(*world.model, diag_validator(),
                                         world.test.images.sample(3));
  const std::string text = format_report(report);
  EXPECT_NE(text.find("joint discrepancy"), std::string::npos);
  EXPECT_NE(text.find("layer 1"), std::string::npos);
  EXPECT_NE(text.find("dominant layer"), std::string::npos);
}

TEST(Explain, UnfittedValidatorThrows) {
  const auto& world = shared_tiny_world();
  deep_validator unfitted;
  EXPECT_THROW(explain_validation(*world.model, unfitted,
                                  world.test.images.sample(0)),
               std::logic_error);
}

}  // namespace
}  // namespace dv
