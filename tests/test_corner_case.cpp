#include "augment/corner_case.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

TEST(SearchSpace, SchedulesMatchTableIV) {
  const auto rot =
      standard_search_space(transform_kind::rotation, dataset_kind::digits);
  ASSERT_FALSE(rot.schedule.empty());
  EXPECT_EQ(rot.schedule.front().kind, transform_kind::rotation);
  EXPECT_GT(rot.schedule.front().p1, 0.0f);
  EXPECT_LE(rot.schedule.back().p1, 70.0f + 1e-3f);
  // Monotonically increasing distortion.
  for (std::size_t i = 1; i < rot.schedule.size(); ++i) {
    EXPECT_GT(rot.schedule[i].p1, rot.schedule[i - 1].p1);
  }
}

TEST(SearchSpace, ScaleDecreasesTowardPaperLimit) {
  const auto sc =
      standard_search_space(transform_kind::scale, dataset_kind::digits);
  EXPECT_LT(sc.schedule.front().p1, 1.0f);
  EXPECT_NEAR(sc.schedule.back().p1, 0.4f, 0.051f);
  for (std::size_t i = 1; i < sc.schedule.size(); ++i) {
    EXPECT_LT(sc.schedule[i].p1, sc.schedule[i - 1].p1);
  }
}

TEST(SearchSpace, ComplementOnlyForGreyscale) {
  EXPECT_NO_THROW(
      standard_search_space(transform_kind::complement, dataset_kind::digits));
  EXPECT_THROW(
      standard_search_space(transform_kind::complement, dataset_kind::objects),
      std::invalid_argument);
}

TEST(SearchSpace, ApplicableTransformsPerKind) {
  const auto digits = applicable_transforms(dataset_kind::digits);
  const auto objects = applicable_transforms(dataset_kind::objects);
  EXPECT_EQ(digits.size(), 7u);  // includes complement
  EXPECT_EQ(objects.size(), 6u);
}

TEST(CombinedTransform, PerDatasetComposition) {
  const transform_chain complement{{transform_kind::complement, 0, 0}};
  const transform_chain scale{{transform_kind::scale, 0.7f, 0.7f}};
  const transform_chain brightness{{transform_kind::brightness, 0.5f, 0}};
  const auto digits = combined_transform(dataset_kind::digits,
                                         {complement, scale, brightness});
  ASSERT_EQ(digits.size(), 2u);
  EXPECT_EQ(digits[0].kind, transform_kind::complement);
  EXPECT_EQ(digits[1].kind, transform_kind::scale);
  const auto street =
      combined_transform(dataset_kind::street, {scale, brightness});
  EXPECT_EQ(street[0].kind, transform_kind::brightness);
  EXPECT_EQ(street[1].kind, transform_kind::scale);
  EXPECT_THROW(combined_transform(dataset_kind::street, {scale}),
               std::invalid_argument);
}

TEST(SelectSeeds, AllSeedsCorrectlyClassified) {
  const auto& world = shared_tiny_world();
  const dataset seeds = select_seeds(*world.model, world.test, 30, 5);
  EXPECT_EQ(seeds.size(), 30);
  const auto preds = world.model->predict(seeds.images);
  for (std::int64_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(preds[static_cast<std::size_t>(i)],
              seeds.labels[static_cast<std::size_t>(i)]);
  }
}

TEST(SelectSeeds, DeterministicForSeed) {
  const auto& world = shared_tiny_world();
  const dataset a = select_seeds(*world.model, world.test, 10, 5);
  const dataset b = select_seeds(*world.model, world.test, 10, 5);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SelectSeeds, TooManyRequestedThrows) {
  const auto& world = shared_tiny_world();
  EXPECT_THROW(select_seeds(*world.model, world.test, 100000, 5),
               std::runtime_error);
}

TEST(EvaluateChain, IdentityChainHasZeroSuccess) {
  const auto& world = shared_tiny_world();
  const dataset seeds = select_seeds(*world.model, world.test, 20, 5);
  const corner_search_result res = evaluate_chain(*world.model, seeds, {});
  EXPECT_DOUBLE_EQ(res.success_rate, 0.0);
  EXPECT_EQ(res.misclassified.size(), 20u);
  EXPECT_GT(res.mean_confidence, 0.3);
}

TEST(EvaluateChain, ComplementBreaksTinyModel) {
  const auto& world = shared_tiny_world();
  const dataset seeds = select_seeds(*world.model, world.test, 20, 5);
  const corner_search_result res = evaluate_chain(
      *world.model, seeds, {{transform_kind::complement, 0, 0}});
  // The model never saw inverted digits; most predictions should break.
  EXPECT_GT(res.success_rate, 0.5);
}

TEST(SearchCornerCases, StopsNearTargetSuccess) {
  const auto& world = shared_tiny_world();
  const dataset seeds = select_seeds(*world.model, world.test, 20, 5);
  const auto space =
      standard_search_space(transform_kind::rotation, dataset_kind::digits);
  const corner_search_result res =
      search_corner_cases(*world.model, seeds, space, 0.6, 0.3);
  EXPECT_GT(res.steps_evaluated, 0);
  if (res.usable) {
    EXPECT_GE(res.success_rate, 0.3);
    ASSERT_EQ(res.chosen.size(), 1u);
    EXPECT_EQ(res.chosen[0].kind, transform_kind::rotation);
    // Did not run past the target by much: stopped at the first crossing.
    EXPECT_LE(res.steps_evaluated,
              static_cast<int>(space.schedule.size()));
  }
}

TEST(SearchCornerCases, MildScheduleIsDiscarded) {
  const auto& world = shared_tiny_world();
  const dataset seeds = select_seeds(*world.model, world.test, 20, 5);
  // A schedule of tiny rotations never breaks the model.
  corner_search_space space;
  space.kind = transform_kind::rotation;
  for (float t = 0.5f; t <= 2.0f; t += 0.5f) {
    space.schedule.push_back({transform_kind::rotation, t, 0});
  }
  const corner_search_result res =
      search_corner_cases(*world.model, seeds, space, 0.6, 0.3);
  EXPECT_FALSE(res.usable);
  EXPECT_LT(res.success_rate, 0.3);
}

}  // namespace
}  // namespace dv
