// Stress tests for micro_batcher's lock-free pending_ counter.
// note_pending takes pending_mutex_ only on the transition to zero, so a
// flush() racing between its predicate check and its wait must still see
// the notify. Under DV_SANITIZE=thread these tests are the data-race
// oracle for that path; without TSan they still pin the liveness contract
// (a missed wakeup hangs the final flush) and the completion contract
// (flush returning implies every accepted future is ready).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "serve/micro_batcher.h"
#include "tensor/tensor.h"

namespace dv {
namespace {

using namespace std::chrono_literals;

/// A [1,2,2] frame whose first pixel encodes `value`.
tensor tagged_frame(float value) {
  tensor frame{{1, 2, 2}};
  frame.data()[0] = value;
  return frame;
}

micro_batcher<float>::batch_fn first_pixel_fn() {
  return [](const tensor& frames) {
    const std::int64_t n = frames.extent(0);
    std::vector<float> out(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] = frames.data()[i * 4];
    }
    return out;
  };
}

serve_config stress_config(int max_batch, std::size_t capacity,
                           overflow_policy policy) {
  serve_config cfg;
  cfg.batch.max_batch = max_batch;
  cfg.queue_capacity = capacity;
  cfg.on_full = policy;
  cfg.max_delay = std::chrono::microseconds{0};
  return cfg;
}

TEST(MicroBatcherStress, FlushRacesPendingTransitionToZero) {
  // caller_runs + capacity 1 maximizes contention: the worker and every
  // submitter decrement pending_, so the counter crosses zero from
  // arbitrary threads while the flusher spins on it.
  micro_batcher<float> mb{"stress", first_pixel_fn(),
                          stress_config(1, 1, overflow_policy::caller_runs)};
  constexpr int k_threads = 4;
  constexpr int k_frames = 200;
  std::atomic<bool> done{false};
  std::thread flusher{[&] {
    while (!done.load(std::memory_order_acquire)) mb.flush();
  }};
  std::vector<std::thread> submitters;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < k_threads; ++t) {
    submitters.emplace_back([&mb, &mismatches, t] {
      for (int i = 0; i < k_frames; ++i) {
        const float tag = static_cast<float>(t * k_frames + i);
        // Waiting on each future makes pending_ bounce through zero.
        if (mb.submit(tagged_frame(tag)).get() != tag) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& s : submitters) s.join();
  done.store(true, std::memory_order_release);
  flusher.join();
  mb.flush();  // a missed wakeup would hang here
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(mb.pending(), 0);
  mb.shutdown();
}

TEST(MicroBatcherStress, FlushImpliesEveryAcceptedFutureIsReady) {
  micro_batcher<float> mb{"stress", first_pixel_fn(),
                          stress_config(4, 64, overflow_policy::block)};
  for (int round = 0; round < 50; ++round) {
    std::vector<std::future<float>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(mb.submit(tagged_frame(static_cast<float>(i))));
    }
    mb.flush();
    EXPECT_EQ(mb.pending(), 0);
    for (std::size_t i = 0; i < futures.size(); ++i) {
      ASSERT_EQ(futures[i].wait_for(0s), std::future_status::ready);
      EXPECT_EQ(futures[i].get(), static_cast<float>(i));
    }
  }
  mb.shutdown();
}

}  // namespace
}  // namespace dv
