#include <gtest/gtest.h>

#include <set>

#include "data/factory.h"
#include "data/glyphs.h"
#include "data/synth_digits.h"
#include "data/synth_objects.h"
#include "data/synth_street.h"
#include "tensor/ops.h"

namespace dv {
namespace {

// -- Glyph rasterizer ---------------------------------------------------------

TEST(Glyphs, AllDigitsHaveStrokes) {
  for (int d = 0; d < 10; ++d) {
    EXPECT_FALSE(digit_strokes(d).empty()) << "digit " << d;
  }
  EXPECT_THROW(digit_strokes(10), std::invalid_argument);
  EXPECT_THROW(digit_strokes(-1), std::invalid_argument);
}

TEST(Glyphs, RenderProducesInk) {
  std::vector<float> buf(28 * 28, 0.0f);
  glyph_style style;
  render_digit(3, style, buf, 28, 28);
  float total = 0.0f;
  for (const float v : buf) total += v;
  EXPECT_GT(total, 10.0f);  // a visible glyph
  for (const float v : buf) EXPECT_LE(v, 1.0f);
}

TEST(Glyphs, DifferentDigitsDiffer) {
  std::vector<float> a(28 * 28, 0.0f), b(28 * 28, 0.0f);
  glyph_style style;
  render_digit(0, style, a, 28, 28);
  render_digit(1, style, b, 28, 28);
  double dist = squared_distance(a.data(), b.data(), 28 * 28);
  EXPECT_GT(dist, 1.0);
}

TEST(Glyphs, StyleOffsetsMoveInk) {
  std::vector<float> a(28 * 28, 0.0f), b(28 * 28, 0.0f);
  glyph_style style;
  render_digit(7, style, a, 28, 28);
  style.offset_x = 4.0f;
  render_digit(7, style, b, 28, 28);
  auto center_x = [](const std::vector<float>& img) {
    double cx = 0.0, mass = 0.0;
    for (int y = 0; y < 28; ++y) {
      for (int x = 0; x < 28; ++x) {
        cx += x * img[static_cast<std::size_t>(y * 28 + x)];
        mass += img[static_cast<std::size_t>(y * 28 + x)];
      }
    }
    return cx / mass;
  };
  EXPECT_NEAR(center_x(b) - center_x(a), 4.0, 1.0);
}

TEST(Glyphs, RandomStyleWithinBounds) {
  rng gen{1};
  for (int i = 0; i < 100; ++i) {
    const glyph_style s = random_style(gen);
    EXPECT_GT(s.scale, 0.5f);
    EXPECT_LT(s.scale, 1.5f);
    EXPECT_GE(s.thickness, 1.0f);
    EXPECT_LE(s.intensity, 1.0f);
  }
}

// -- Dataset generators (parameterized over kinds) ----------------------------

class DatasetKinds : public ::testing::TestWithParam<dataset_kind> {};

TEST_P(DatasetKinds, ShapeLabelsAndRange) {
  dataset_split_spec spec;
  spec.kind = GetParam();
  spec.train_size = 60;
  spec.test_size = 30;
  const dataset_bundle bundle = make_dataset(spec);
  EXPECT_EQ(bundle.train.size(), 60);
  EXPECT_EQ(bundle.test.size(), 30);
  EXPECT_EQ(bundle.train.num_classes, 10);
  EXPECT_NO_THROW(bundle.train.check());
  EXPECT_GE(bundle.train.images.min(), 0.0f);
  EXPECT_LE(bundle.train.images.max(), 1.0f);
  const std::int64_t expect_c = GetParam() == dataset_kind::digits ? 1 : 3;
  EXPECT_EQ(bundle.train.channels(), expect_c);
}

TEST_P(DatasetKinds, BalancedLabels) {
  dataset_split_spec spec;
  spec.kind = GetParam();
  spec.train_size = 100;
  spec.test_size = 10;
  const dataset_bundle bundle = make_dataset(spec);
  std::vector<int> counts(10, 0);
  for (const auto y : bundle.train.labels) {
    counts[static_cast<std::size_t>(y)]++;
  }
  for (const int c : counts) EXPECT_EQ(c, 10);
}

TEST_P(DatasetKinds, DeterministicForSameSeed) {
  dataset_split_spec spec;
  spec.kind = GetParam();
  spec.train_size = 20;
  spec.test_size = 10;
  spec.seed = 77;
  const dataset_bundle a = make_dataset(spec);
  const dataset_bundle b = make_dataset(spec);
  ASSERT_EQ(a.train.images.numel(), b.train.images.numel());
  for (std::int64_t i = 0; i < a.train.images.numel(); ++i) {
    ASSERT_EQ(a.train.images[i], b.train.images[i]) << "at " << i;
  }
}

TEST_P(DatasetKinds, TrainTestDisjointStreams) {
  dataset_split_spec spec;
  spec.kind = GetParam();
  spec.train_size = 20;
  spec.test_size = 20;
  const dataset_bundle bundle = make_dataset(spec);
  double dist = squared_distance(bundle.train.images.data(),
                                 bundle.test.images.data(),
                                 bundle.train.images.numel());
  EXPECT_GT(dist, 1.0);
}

TEST_P(DatasetKinds, ClassesAreSeparable) {
  // Nearest-centroid classification on raw pixels must beat chance by a wide
  // margin; this guards against degenerate generators.
  dataset_split_spec spec;
  spec.kind = GetParam();
  spec.train_size = 300;
  spec.test_size = 100;
  const dataset_bundle bundle = make_dataset(spec);
  const std::int64_t d = bundle.train.images.numel() / bundle.train.size();
  std::vector<std::vector<double>> centroids(
      10, std::vector<double>(static_cast<std::size_t>(d), 0.0));
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < bundle.train.size(); ++i) {
    const auto y = static_cast<std::size_t>(
        bundle.train.labels[static_cast<std::size_t>(i)]);
    const float* img = bundle.train.images.data() + i * d;
    for (std::int64_t j = 0; j < d; ++j) {
      centroids[y][static_cast<std::size_t>(j)] += img[j];
    }
    counts[y]++;
  }
  for (std::size_t k = 0; k < 10; ++k) {
    for (auto& v : centroids[k]) v /= counts[k];
  }
  int correct = 0;
  for (std::int64_t i = 0; i < bundle.test.size(); ++i) {
    const float* img = bundle.test.images.data() + i * d;
    int best = 0;
    double best_dist = 1e300;
    for (int k = 0; k < 10; ++k) {
      double dist = 0.0;
      for (std::int64_t j = 0; j < d; ++j) {
        const double diff = img[j] -
                            centroids[static_cast<std::size_t>(k)]
                                     [static_cast<std::size_t>(j)];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = k;
      }
    }
    correct += best == bundle.test.labels[static_cast<std::size_t>(i)] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / bundle.test.size(), 0.25);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DatasetKinds,
                         ::testing::Values(dataset_kind::digits,
                                           dataset_kind::objects,
                                           dataset_kind::street));

// -- Dataset container ---------------------------------------------------------

TEST(Dataset, SubsetPreservesOrderAndLabels) {
  synth_digits_config cfg;
  cfg.count = 20;
  const dataset d = make_synth_digits(cfg);
  const dataset s = d.subset({5, 2, 9});
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.labels[0], d.labels[5]);
  EXPECT_EQ(s.labels[1], d.labels[2]);
  const tensor expect = d.images.sample(9);
  const tensor got = s.images.sample(2);
  for (std::int64_t i = 0; i < expect.numel(); ++i) {
    EXPECT_EQ(got[i], expect[i]);
  }
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  synth_digits_config cfg;
  cfg.count = 5;
  const dataset d = make_synth_digits(cfg);
  EXPECT_THROW(d.subset({5}), std::out_of_range);
}

TEST(Dataset, SplitPartitions) {
  synth_digits_config cfg;
  cfg.count = 10;
  const dataset d = make_synth_digits(cfg);
  const auto [head, tail] = d.split(4);
  EXPECT_EQ(head.size(), 4);
  EXPECT_EQ(tail.size(), 6);
  EXPECT_EQ(tail.labels[0], d.labels[4]);
}

TEST(Dataset, CheckCatchesBrokenLabels) {
  synth_digits_config cfg;
  cfg.count = 4;
  dataset d = make_synth_digits(cfg);
  d.labels[0] = 17;
  EXPECT_THROW(d.check(), std::invalid_argument);
  d.labels.pop_back();
  EXPECT_THROW(d.check(), std::invalid_argument);
}

TEST(Dataset, SampleIndicesUniqueAndBounded) {
  rng gen{3};
  const auto idx = sample_indices(100, 30, gen);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::int64_t> unique{idx.begin(), idx.end()};
  EXPECT_EQ(unique.size(), 30u);
  for (const auto i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 100);
  }
  EXPECT_THROW(sample_indices(5, 6, gen), std::invalid_argument);
}

TEST(Factory, NamesAreStable) {
  EXPECT_STREQ(dataset_kind_name(dataset_kind::digits), "digits");
  EXPECT_STREQ(dataset_kind_paper_name(dataset_kind::objects), "CIFAR-10");
  EXPECT_STREQ(dataset_kind_paper_name(dataset_kind::street), "SVHN");
}

TEST(SynthObjects, ClassNamesDistinct) {
  std::set<std::string> names;
  for (int k = 0; k < 10; ++k) names.insert(synth_object_class_name(k));
  EXPECT_EQ(names.size(), 10u);
  EXPECT_THROW(synth_object_class_name(10), std::invalid_argument);
}

TEST(SynthStreet, IsNoisierThanDigits) {
  // The SVHN stand-in must look busier than the MNIST stand-in (the paper
  // leans on SVHN being a "noisy" dataset): brighter on average (textured
  // background everywhere) and with non-trivial pixel variance.
  synth_digits_config dc;
  dc.count = 50;
  synth_street_config sc;
  sc.count = 50;
  const dataset digits = make_synth_digits(dc);
  const dataset street = make_synth_street(sc);
  auto variance = [](const dataset& d) {
    const float m = d.images.mean();
    double acc = 0.0;
    for (std::int64_t i = 0; i < d.images.numel(); ++i) {
      const double dev = d.images[i] - m;
      acc += dev * dev;
    }
    return acc / static_cast<double>(d.images.numel());
  };
  EXPECT_GT(street.images.mean(), digits.images.mean() * 1.5f);
  EXPECT_GT(variance(street), 0.01);
}

}  // namespace
}  // namespace dv
