// Tests of the shared parallel runtime (util/thread_pool.h) and of the
// determinism contract of every parallelized kernel: results must be
// bit-identical regardless of DV_THREADS.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/deep_validator.h"
#include "nn/layers.h"
#include "svm/kernel.h"
#include "svm/one_class_svm.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace dv {
namespace {

/// Restores the default thread count when a test exits.
struct thread_count_guard {
  ~thread_count_guard() { set_thread_count(0); }
};

/// Runs `fn` under `threads` pool threads and returns its result.
template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
  set_thread_count(threads);
  return fn();
}

bool bitwise_equal(const tensor& a, const tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

// -- parallel_for mechanics ------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  thread_count_guard guard;
  set_thread_count(7);
  const struct {
    std::int64_t begin, end, grain;
  } cases[] = {{0, 1, 1},    {0, 7, 3},   {5, 23, 4},  {0, 100, 1},
               {0, 1000, 7}, {3, 3, 1},   {10, 9, 4},  {-6, 5, 2},
               {0, 64, 64},  {0, 64, 100}};
  for (const auto& c : cases) {
    const std::int64_t len = std::max<std::int64_t>(0, c.end - c.begin);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(len));
    // dv:parallel-safe(atomic per-index hit counters, coverage test)
    parallel_for(c.begin, c.end, c.grain,
                 [&](std::int64_t lo, std::int64_t hi) {
                   ASSERT_LE(lo, hi);
                   for (std::int64_t i = lo; i < hi; ++i) {
                     hits[static_cast<std::size_t>(i - c.begin)].fetch_add(1);
                   }
                 });
    for (std::int64_t i = 0; i < len; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "begin=" << c.begin << " end=" << c.end << " grain=" << c.grain
          << " index " << c.begin + i;
    }
  }
}

TEST(ParallelFor, ChunkIdsAreDenseAndRanksInRange) {
  thread_count_guard guard;
  set_thread_count(5);
  const std::int64_t begin = 2, end = 45, grain = 4;
  const std::int64_t chunks = parallel_chunk_count(begin, end, grain);
  EXPECT_EQ(chunks, (end - begin + grain - 1) / grain);
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(chunks));
  // dv:parallel-safe(atomic per-chunk counters, decomposition test)
  parallel_for_chunks(begin, end, grain,
                      [&](std::int64_t chunk, std::int64_t lo,
                          std::int64_t hi, int rank) {
                        ASSERT_GE(chunk, 0);
                        ASSERT_LT(chunk, chunks);
                        EXPECT_EQ(lo, begin + chunk * grain);
                        EXPECT_EQ(hi, std::min(end, lo + grain));
                        EXPECT_GE(rank, 0);
                        EXPECT_LT(rank, thread_count());
                        seen[static_cast<std::size_t>(chunk)].fetch_add(1);
                      });
  for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
    EXPECT_EQ(seen[static_cast<std::size_t>(chunk)].load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeRunsNothingAndBadGrainThrows) {
  thread_count_guard guard;
  bool ran = false;
  // dv:parallel-safe(empty range) dv-lint: allow(capture) body never runs
  parallel_for(4, 4, 1, [&](std::int64_t, std::int64_t) { ran = true; });
  // dv:parallel-safe(empty range) dv-lint: allow(capture) body never runs
  parallel_for(4, 0, 1, [&](std::int64_t, std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
  // dv:parallel-safe(invalid grain throws before running anything)
  EXPECT_THROW(parallel_for(0, 3, 0, [](std::int64_t, std::int64_t) {}),
               std::invalid_argument);
}

TEST(ParallelFor, PropagatesFirstException) {
  thread_count_guard guard;
  set_thread_count(4);
  EXPECT_THROW(
      // dv:parallel-safe(exception propagation test, no shared writes)
      parallel_for(0, 64, 1,
                   [](std::int64_t lo, std::int64_t) {
                     if (lo >= 32) throw std::runtime_error{"chunk failed"};
                   }),
      std::runtime_error);
  // The pool stays usable after a failed region.
  std::atomic<std::int64_t> sum{0};
  // dv:parallel-safe(atomic sum, pool-reuse smoke test)
  parallel_for(0, 10, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelFor, NestedRegionsRunSequentially) {
  thread_count_guard guard;
  set_thread_count(4);
  std::vector<std::atomic<int>> hits(64);
  // dv:parallel-safe(atomic hit counters, nesting test)
  parallel_for(0, 8, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      // dv:parallel-safe(atomic hit counters, nested region)
      parallel_for(0, 8, 1, [&](std::int64_t jlo, std::int64_t jhi) {
        for (std::int64_t j = jlo; j < jhi; ++j) {
          hits[static_cast<std::size_t>(i * 8 + j)].fetch_add(1);
        }
      });
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// -- Tiled GEMM vs naive reference --------------------------------------------------

/// The pre-rewrite naive triple loop, double-accumulated per output cell.
void reference_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                    float alpha, const float* a, bool ta, const float* b,
                    bool tb, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      const double prev =
          beta == 0.0f ? 0.0 : static_cast<double>(beta) * c[i * n + j];
      c[i * n + j] = static_cast<float>(alpha * acc + prev);
    }
  }
}

TEST(TiledGemm, MatchesReferenceOnOddShapesAndAllAlphaBeta) {
  thread_count_guard guard;
  set_thread_count(3);
  const std::int64_t sizes[] = {1, 3, 17, 64, 130};
  const float alphas[] = {1.0f, -0.5f};
  const float betas[] = {0.0f, 1.0f, 0.5f};
  rng gen{12345};
  for (const auto m : sizes) {
    for (const auto n : sizes) {
      for (const auto k : sizes) {
        const tensor a_nn = tensor::randn({m, k}, gen);
        const tensor a_tn = tensor::randn({k, m}, gen);
        const tensor b_nn = tensor::randn({k, n}, gen);
        const tensor b_nt = tensor::randn({n, k}, gen);
        const tensor c0 = tensor::randn({m, n}, gen);
        for (const auto alpha : alphas) {
          for (const auto beta : betas) {
            // beta == 0 must overwrite without reading C: poison it.
            const float fill = beta == 0.0f
                                   ? std::numeric_limits<float>::quiet_NaN()
                                   : 0.0f;
            for (int variant = 0; variant < 3; ++variant) {
              tensor c{{m, n}};
              tensor ref{{m, n}};
              for (std::int64_t i = 0; i < c.numel(); ++i) {
                c[i] = beta == 0.0f ? fill : c0[i];
                ref[i] = c[i];
              }
              const bool ta = variant == 2;
              const bool tb = variant == 1;
              const float* a = ta ? a_tn.data() : a_nn.data();
              const float* b = tb ? b_nt.data() : b_nn.data();
              if (variant == 0) {
                gemm_nn(m, n, k, alpha, a, b, beta, c.data());
              } else if (variant == 1) {
                gemm_nt(m, n, k, alpha, a, b, beta, c.data());
              } else {
                gemm_tn(m, n, k, alpha, a, b, beta, c.data());
              }
              reference_gemm(m, n, k, alpha, a, ta, b, tb, beta, ref.data());
              const float tol =
                  1e-4f * static_cast<float>(k) * std::abs(alpha) + 1e-5f;
              for (std::int64_t i = 0; i < c.numel(); ++i) {
                ASSERT_NEAR(c[i], ref[i], tol)
                    << "variant=" << variant << " m=" << m << " n=" << n
                    << " k=" << k << " alpha=" << alpha << " beta=" << beta
                    << " index " << i;
              }
            }
          }
        }
      }
    }
  }
}

// -- Bit-identical results across thread counts ----------------------------------------

TEST(Determinism, GemmBitIdenticalAcrossThreadCounts) {
  thread_count_guard guard;
  rng gen{7};
  const std::int64_t m = 130, n = 97, k = 301;
  const tensor a = tensor::randn({m, k}, gen);
  const tensor a_t = tensor::randn({k, m}, gen);
  const tensor b = tensor::randn({k, n}, gen);
  const tensor b_t = tensor::randn({n, k}, gen);
  auto run_all = [&] {
    std::vector<tensor> out;
    tensor c{{m, n}};
    gemm_nn(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    out.push_back(c);
    gemm_nt(m, n, k, 0.5f, a.data(), b_t.data(), 0.0f, c.data());
    out.push_back(c);
    gemm_tn(m, n, k, 1.0f, a_t.data(), b.data(), 1.0f, c.data());
    out.push_back(c);
    return out;
  };
  const auto serial = with_threads(1, run_all);
  const auto threaded = with_threads(8, run_all);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(serial[i], threaded[i])) << "gemm variant " << i;
  }
}

TEST(Determinism, Conv2dBitIdenticalAcrossThreadCounts) {
  thread_count_guard guard;
  auto run = [&] {
    rng gen{11};
    conv2d conv{3, 8, 3, 1, 1, gen};
    tensor x = tensor::randn({9, 3, 14, 14}, gen);
    tensor y = conv.forward(x, true);
    tensor g = tensor::randn(y.shape(), gen);
    tensor dx = conv.backward(g);
    std::vector<tensor> out{y, dx};
    for (auto& p : conv.params()) out.push_back(*p.grad);
    return out;
  };
  const auto serial = with_threads(1, run);
  const auto threaded = with_threads(8, run);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(serial[i], threaded[i]))
        << "conv output " << i << " differs between 1 and 8 threads";
  }
}

TEST(Determinism, KernelMatrixAndSvmBitIdenticalAcrossThreadCounts) {
  thread_count_guard guard;
  rng gen{13};
  const tensor samples = tensor::randn({120, 9}, gen);
  const tensor queries = tensor::randn({33, 9}, gen);
  auto run = [&] {
    const tensor k = kernel_matrix(kernel_kind::rbf, samples, 0.05);
    one_class_svm svm;
    svm.fit(samples, {});
    return std::make_pair(k, svm.decision_batch(queries));
  };
  const auto serial = with_threads(1, run);
  const auto threaded = with_threads(8, run);
  EXPECT_TRUE(bitwise_equal(serial.first, threaded.first));
  ASSERT_EQ(serial.second.size(), threaded.second.size());
  for (std::size_t i = 0; i < serial.second.size(); ++i) {
    EXPECT_EQ(serial.second[i], threaded.second[i]) << "query " << i;
  }
}

TEST(Determinism, DecisionBatchMatchesSingleDecision) {
  thread_count_guard guard;
  set_thread_count(4);
  rng gen{17};
  const tensor samples = tensor::randn({80, 6}, gen);
  const tensor queries = tensor::randn({21, 6}, gen);
  one_class_svm svm;
  svm.fit(samples, {});
  const auto batch = svm.decision_batch(queries);
  ASSERT_EQ(batch.size(), 21u);
  for (std::int64_t i = 0; i < queries.extent(0); ++i) {
    const double single =
        svm.decision({queries.data() + i * 6, static_cast<std::size_t>(6)});
    EXPECT_EQ(batch[static_cast<std::size_t>(i)], single) << "query " << i;
  }
}

TEST(Determinism, LinalgBitIdenticalAcrossThreadCounts) {
  thread_count_guard guard;
  rng gen{19};
  const tensor samples = tensor::randn({150, 23}, gen);
  auto run = [&] {
    const auto means = column_means(samples);
    return std::make_pair(means, covariance(samples, means, 1e-3));
  };
  const auto serial = with_threads(1, run);
  const auto threaded = with_threads(8, run);
  ASSERT_EQ(serial.first.size(), threaded.first.size());
  for (std::size_t i = 0; i < serial.first.size(); ++i) {
    EXPECT_EQ(serial.first[i], threaded.first[i]);
  }
  ASSERT_EQ(serial.second.size(), threaded.second.size());
  for (std::size_t i = 0; i < serial.second.size(); ++i) {
    EXPECT_EQ(serial.second[i], threaded.second[i]);
  }
}

// -- Conv2d scratch reshaping (regression for the stale-shape bug) -----------------

TEST(Conv2dScratch, GeometryChangeWithEqualElementCountReshapesScratch) {
  thread_count_guard guard;
  set_thread_count(2);
  rng gen{23};
  conv2d conv{1, 2, 3, 1, 1, gen};
  // 8x8 and 4x16 inputs produce im2col buffers with the same element count
  // (64 output pixels each) but different spatial layouts.
  tensor x1 = tensor::randn({2, 1, 8, 8}, gen);
  tensor x2 = tensor::randn({2, 1, 4, 16}, gen);
  const tensor y1 = conv.forward(x1, false);
  const tensor y2 = conv.forward(x2, false);
  EXPECT_EQ(y2.extent(2), 4);
  EXPECT_EQ(y2.extent(3), 16);
  // Re-running the first geometry after the second must reproduce the
  // original output exactly.
  const tensor y1_again = conv.forward(x1, false);
  EXPECT_TRUE(bitwise_equal(y1, y1_again));
}

// -- End-to-end: deep_validator scores ----------------------------------------------

TEST(Determinism, DeepValidatorScoresBitIdenticalAcrossThreadCounts) {
  thread_count_guard guard;
  const auto& world = dv::testing::shared_tiny_world();
  const tensor batch = world.test.images.slice_rows(0, 12);
  auto run = [&] {
    deep_validator validator;
    deep_validator_config cfg;
    cfg.max_train_per_class = 30;
    validator.fit(*world.model, world.train, cfg);
    return validator.evaluate(*world.model, batch);
  };
  const auto serial = with_threads(1, run);
  const auto threaded = with_threads(8, run);
  ASSERT_EQ(serial.joint.size(), threaded.joint.size());
  for (std::size_t i = 0; i < serial.joint.size(); ++i) {
    EXPECT_EQ(serial.joint[i], threaded.joint[i])
        << "joint discrepancy of image " << i
        << " differs between 1 and 8 threads";
    EXPECT_EQ(serial.predictions[i], threaded.predictions[i]);
  }
  for (std::size_t v = 0; v < serial.per_layer.size(); ++v) {
    for (std::size_t i = 0; i < serial.per_layer[v].size(); ++i) {
      EXPECT_EQ(serial.per_layer[v][i], threaded.per_layer[v][i]);
    }
  }
}

}  // namespace
}  // namespace dv
