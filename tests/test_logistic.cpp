#include "nn/logistic.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dv {
namespace {

TEST(Logistic, SeparatesLinearlySeparableData) {
  rng gen{1};
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const bool pos = i % 2 == 0;
    const double cx = pos ? 2.0 : -2.0;
    x.push_back({gen.normal(cx, 0.5), gen.normal(0.0, 0.5)});
    y.push_back(pos ? 1 : 0);
  }
  logistic_regression lr;
  lr.fit(x, y);
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const int pred = lr.probability(x[i]) > 0.5 ? 1 : 0;
    correct += pred == y[i] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / x.size(), 0.97);
  // The informative dimension carries most of the weight.
  EXPECT_GT(std::abs(lr.weights()[0]), std::abs(lr.weights()[1]) * 3);
}

TEST(Logistic, ProbabilityMonotoneInDecision) {
  rng gen{2};
  std::vector<std::vector<double>> x{{0.0}, {1.0}, {0.5}, {2.0}};
  std::vector<int> y{0, 1, 0, 1};
  logistic_regression lr;
  lr.fit(x, y);
  EXPECT_GT(lr.probability({{3.0}}), lr.probability({{-3.0}}));
  EXPECT_GT(lr.decision({{3.0}}), lr.decision({{-3.0}}));
}

TEST(Logistic, BiasHandlesShiftedClasses) {
  // All features 0: classification only possible through the bias.
  std::vector<std::vector<double>> x{{0.0}, {0.0}, {0.0}, {0.0}};
  std::vector<int> y{1, 1, 1, 0};
  logistic_regression lr;
  logistic_config cfg;
  cfg.standardize = false;
  lr.fit(x, y, cfg);
  EXPECT_GT(lr.probability({{0.0}}), 0.5);  // majority class prior
}

TEST(Logistic, RejectsDegenerateInputs) {
  logistic_regression lr;
  EXPECT_THROW(lr.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(lr.fit({{1.0}}, {1}), std::invalid_argument);  // one class
  EXPECT_THROW(lr.fit({{1.0}, {2.0}}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(lr.fit({{1.0}, {2.0, 3.0}}, {1, 0}), std::invalid_argument);
}

TEST(Logistic, UnfittedUseThrows) {
  logistic_regression lr;
  EXPECT_THROW(lr.decision({{1.0}}), std::logic_error);
}

TEST(Logistic, DimensionMismatchThrows) {
  logistic_regression lr;
  lr.fit({{1.0}, {-1.0}}, {1, 0});
  EXPECT_THROW(lr.decision({{1.0, 2.0}}), std::invalid_argument);
}

TEST(Logistic, StandardizationDoesNotChangeDecisionsMuch) {
  rng gen{3};
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    const bool pos = i % 2 == 0;
    x.push_back({gen.normal(pos ? 1000.0 : 900.0, 20.0)});
    y.push_back(pos ? 1 : 0);
  }
  logistic_regression scaled;
  scaled.fit(x, y);
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    correct += (scaled.probability(x[i]) > 0.5 ? 1 : 0) == y[i] ? 1 : 0;
  }
  // Badly scaled raw features are exactly where standardization matters.
  EXPECT_GT(static_cast<double>(correct) / x.size(), 0.9);
}

}  // namespace
}  // namespace dv
