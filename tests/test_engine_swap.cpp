// Tests for the hot-swap seam (serve/engine_handle.h): handle lifecycle,
// per-batch bank pinning (every frame of one batch scores against one
// generation), agreement with the sequential path, and the TSan stress —
// a publisher races fresh banks against submitters flowing through the
// micro_batcher, and every verdict must match exactly one published
// generation's threshold. Run under scripts/run_static_analysis.sh's
// tsan stage to validate the lock-free publish path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/deep_validator.h"
#include "core/validator_bank.h"
#include "eval/metrics.h"
#include "serve/engine_handle.h"
#include "serve/scoring_service.h"
#include "test_util.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;
using namespace std::chrono_literals;

struct thread_count_guard {
  ~thread_count_guard() { set_thread_count(0); }
};

/// A fitted validator with a threshold, shared across this binary.
const deep_validator& fitted_validator() {
  static const deep_validator dv = [] {
    const auto& world = shared_tiny_world();
    deep_validator out;
    deep_validator_config cfg;
    cfg.max_train_per_class = 40;
    out.fit(*world.model, world.train, cfg);
    const auto clean = out.evaluate(*world.model, world.test.images).joint;
    out.set_threshold(threshold_for_fpr(clean, 0.05));
    return out;
  }();
  return dv;
}

/// A bank sharing fitted_validator()'s layers but carrying `threshold`,
/// so each published generation is distinguishable by its verdicts.
validator_bank_view bank_with_threshold(double threshold) {
  const auto base = fitted_validator().bank();
  std::vector<int> probes;
  for (int i = 0; i < base.validated_layers(); ++i) {
    probes.push_back(base.probe_index(i));
  }
  return validator_bank_view{base.layers(), probes, base.spatial(),
                             base.batching(), threshold};
}

/// The stress test's generation-coloring rule: even generations flag
/// everything (threshold below any finite joint), odd ones flag nothing.
double threshold_for_generation(std::uint64_t g) {
  return g % 2 == 0 ? -1e9 : 1e9;
}

/// First `n` test images stacked as one [n,1,28,28] batch.
tensor subset_frames(std::int64_t n) {
  const auto& world = shared_tiny_world();
  tensor frames{{n, 1, 28, 28}};
  for (std::int64_t i = 0; i < n; ++i) {
    frames.set_sample(i, world.test.images.sample(i));
  }
  return frames;
}

// -- engine_handle units ------------------------------------------------------

TEST(EngineHandle, StartsEmpty) {
  engine_handle handle;
  EXPECT_EQ(handle.current(), nullptr);
  EXPECT_EQ(handle.generation(), 0u);
  EXPECT_FALSE(handle.has_bank());
}

TEST(EngineHandle, PublishRejectsEmptyBank) {
  engine_handle handle;
  EXPECT_THROW((void)handle.publish(validator_bank_view{}),
               std::invalid_argument);
  EXPECT_EQ(handle.generation(), 0u);
}

TEST(EngineHandle, GenerationsAreMonotonicAndOldBanksStayAlive) {
  engine_handle handle;
  EXPECT_EQ(handle.publish(bank_with_threshold(1.0)), 1u);
  const auto first = handle.current();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->generation, 1u);
  EXPECT_EQ(handle.publish(bank_with_threshold(2.0)), 2u);
  // The pinned generation-1 bank is untouched by the publish.
  EXPECT_EQ(first->generation, 1u);
  EXPECT_EQ(first->bank.threshold(), 1.0);
  EXPECT_EQ(handle.current()->generation, 2u);
  EXPECT_EQ(handle.generation(), 2u);
}

TEST(EngineHandle, PublishRecordsMetrics) {
  const bool was_enabled = metrics::enabled();
  metrics::set_enabled(true);
  engine_handle handle;
  (void)handle.publish(bank_with_threshold(1.0));
  const auto snap = metrics::collect();
  metrics::set_enabled(was_enabled);
  bool saw_publishes = false;
  bool saw_generation = false;
  for (const auto& s : snap.samples) {
    if (s.name == "dv_snapshot_publish_total" && s.value >= 1.0) {
      saw_publishes = true;
    }
    if (s.name == "dv_snapshot_active_generation" && s.value >= 1.0) {
      saw_generation = true;
    }
  }
  EXPECT_TRUE(saw_publishes);
  EXPECT_TRUE(saw_generation);
}

// -- engine_scorer ------------------------------------------------------------

TEST(EngineScorer, ThrowsBeforeFirstPublish) {
  const auto& world = shared_tiny_world();
  engine_handle handle;
  engine_scorer scorer{*world.model, handle};
  EXPECT_THROW((void)scorer.score(subset_frames(2)), std::logic_error);
}

TEST(EngineScorer, MatchesSequentialEvaluation) {
  const auto& dv = fitted_validator();
  const auto& world = shared_tiny_world();
  engine_handle handle;
  (void)handle.publish(dv.bank());
  engine_scorer scorer{*world.model, handle};

  const tensor frames = subset_frames(12);
  const auto results = scorer.score(frames);
  const auto expected = dv.evaluate(*world.model, frames);
  ASSERT_EQ(results.size(), 12u);
  for (std::size_t j = 0; j < results.size(); ++j) {
    EXPECT_EQ(std::memcmp(&results[j].joint, &expected.joint[j],
                          sizeof(double)),
              0);
    EXPECT_EQ(results[j].prediction, expected.predictions[j]);
    EXPECT_EQ(results[j].invalid, dv.flags_invalid(expected.joint[j]));
    EXPECT_EQ(results[j].generation, 1u);
    EXPECT_FALSE(results[j].has_weighted);
    ASSERT_EQ(results[j].per_layer.size(), expected.per_layer.size());
    for (std::size_t l = 0; l < expected.per_layer.size(); ++l) {
      EXPECT_EQ(std::memcmp(&results[j].per_layer[l],
                            &expected.per_layer[l][j], sizeof(double)),
                0);
    }
  }
}

TEST(EngineScorer, BatchPinsOneGenerationWhilePublisherRaces) {
  const auto& world = shared_tiny_world();
  engine_handle handle;
  (void)handle.publish(bank_with_threshold(threshold_for_generation(1)));
  engine_scorer scorer{*world.model, handle};

  std::atomic<bool> stop{false};
  std::thread publisher{[&] {
    std::uint64_t g = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      ++g;
      (void)handle.publish(bank_with_threshold(threshold_for_generation(g)));
      std::this_thread::yield();
    }
  }};

  const tensor frames = subset_frames(16);
  std::uint64_t last = 0;
  for (int round = 0; round < 20; ++round) {
    const auto results = scorer.score(frames);
    ASSERT_FALSE(results.empty());
    const std::uint64_t g = results.front().generation;
    // The bank is pinned ONCE per batch: every frame shares one
    // generation even though publishes land mid-batch.
    for (const auto& r : results) {
      EXPECT_EQ(r.generation, g);
      EXPECT_EQ(r.invalid, r.joint > threshold_for_generation(g));
    }
    EXPECT_GE(g, last);
    last = g;
  }
  stop.store(true);
  publisher.join();
  EXPECT_LE(last, handle.generation());
}

// -- hot-swap stress through the micro_batcher --------------------------------

TEST(EngineSwap, StressEveryVerdictMatchesOnePublishedGeneration) {
  thread_count_guard guard;
  const auto& world = shared_tiny_world();
  engine_handle handle;
  (void)handle.publish(bank_with_threshold(threshold_for_generation(1)));
  engine_scorer scorer{*world.model, handle};

  serve_config config;
  config.batch.max_batch = 8;
  config.queue_capacity = 64;
  scoring_service service{scorer, config};

  // Publisher: keeps swapping banks (min 5 generations, then until the
  // submitters drain) with the generation-colored threshold rule.
  std::atomic<bool> stop{false};
  std::thread publisher{[&] {
    std::uint64_t g = 1;
    while (g < 5 || !stop.load(std::memory_order_relaxed)) {
      ++g;
      (void)handle.publish(bank_with_threshold(threshold_for_generation(g)));
      std::this_thread::sleep_for(1ms);
    }
  }};

  // Submitters: race frames through the micro_batcher; futures keep
  // per-thread submission order.
  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 48;
  std::vector<std::vector<std::future<scoring_result>>> futures(kSubmitters);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      futures[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        futures[t].push_back(
            service.submit(world.test.images.sample((t * 31 + i) % 64)));
      }
    });
  }
  for (auto& s : submitters) s.join();
  service.flush();
  stop.store(true);
  publisher.join();
  const std::uint64_t final_generation = handle.generation();
  EXPECT_GE(final_generation, 5u);

  for (int t = 0; t < kSubmitters; ++t) {
    std::uint64_t last = 0;
    for (auto& f : futures[t]) {
      const scoring_result r = f.get();
      // The verdict is attributable to exactly one published generation:
      // its threshold rule decides `invalid`, nothing in between.
      ASSERT_GE(r.generation, 1u);
      ASSERT_LE(r.generation, final_generation);
      EXPECT_EQ(r.invalid, r.joint > threshold_for_generation(r.generation));
      // Batches form in queue order, so per-submitter generations never
      // run backwards.
      EXPECT_GE(r.generation, last);
      last = r.generation;
    }
  }
  service.shutdown();
}

}  // namespace
}  // namespace dv
