#include "nn/dense_block.h"

#include <gtest/gtest.h>

#include "grad_check.h"

namespace dv {
namespace {

using dv::testing::check_input_gradient;
using dv::testing::check_param_gradients;

TEST(ConcatChannels, LayoutAndValues) {
  tensor a = tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 4});
  tensor b = tensor::from_data({1, 2, 2, 2}, {5, 6, 7, 8, 9, 10, 11, 12});
  const tensor c = concat_channels(a, b);
  EXPECT_EQ(c.shape(), (std::vector<std::int64_t>{1, 3, 2, 2}));
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[4], 5.0f);
  EXPECT_EQ(c[11], 12.0f);
}

TEST(ConcatChannels, BatchedInterleaving) {
  // Two samples: concat must interleave per sample, not per tensor.
  tensor a = tensor::from_data({2, 1, 1, 1}, {1, 2});
  tensor b = tensor::from_data({2, 1, 1, 1}, {10, 20});
  const tensor c = concat_channels(a, b);
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[1], 10.0f);
  EXPECT_EQ(c[2], 2.0f);
  EXPECT_EQ(c[3], 20.0f);
}

TEST(ConcatChannels, ShapeMismatchThrows) {
  tensor a{{1, 1, 2, 2}};
  tensor b{{1, 1, 3, 3}};
  EXPECT_THROW(concat_channels(a, b), std::invalid_argument);
}

TEST(SplitChannels, InverseOfConcat) {
  rng gen{1};
  tensor a = tensor::randn({3, 2, 4, 4}, gen);
  tensor b = tensor::randn({3, 5, 4, 4}, gen);
  const tensor c = concat_channels(a, b);
  tensor a2, b2;
  split_channels(c, 2, a2, b2);
  ASSERT_TRUE(a2.same_shape(a));
  ASSERT_TRUE(b2.same_shape(b));
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a2[i], a[i]);
  for (std::int64_t i = 0; i < b.numel(); ++i) EXPECT_EQ(b2[i], b[i]);
}

TEST(SplitChannels, BadSplitPointThrows) {
  tensor x{{1, 3, 2, 2}};
  tensor a, b;
  EXPECT_THROW(split_channels(x, 0, a, b), std::invalid_argument);
  EXPECT_THROW(split_channels(x, 3, a, b), std::invalid_argument);
}

TEST(DenseBlock, OutputChannelsGrowByUnits) {
  rng gen{2};
  dense_block block{4, 3, 5, gen};
  EXPECT_EQ(block.out_channels(), 4 + 3 * 5);
  tensor x = tensor::randn({2, 4, 6, 6}, gen);
  const tensor y = block.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 19, 6, 6}));
}

TEST(DenseBlock, InputPassesThroughAsPrefix) {
  rng gen{3};
  dense_block block{2, 2, 1, gen};
  tensor x = tensor::randn({1, 2, 3, 3}, gen);
  const tensor y = block.forward(x, true);
  // First two channels of the output are exactly the input (identity path).
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(DenseBlock, GradCheck) {
  rng gen{4};
  dense_block block{2, 2, 2, gen};
  tensor x = tensor::randn({2, 2, 4, 4}, gen);
  tensor w = tensor::randn({2, 6, 4, 4}, gen);
  check_input_gradient(block, x, w, true, 1e-3, 4e-2);
  check_param_gradients(block, x, w, true, 1e-3, 4e-2);
}

TEST(DenseBlock, UnitProbes) {
  rng gen{5};
  dense_block block{2, 3, 4, gen};
  block.set_unit_probes(2);  // last two units
  EXPECT_EQ(block.probe_count(), 2);
  tensor x = tensor::randn({1, 2, 4, 4}, gen);
  (void)block.forward(x, true);
  std::vector<const tensor*> probes;
  block.collect_probes(probes);
  ASSERT_EQ(probes.size(), 2u);
  // Each probe is the new feature maps of one unit: growth channels.
  EXPECT_EQ(probes[0]->extent(1), 3);
  EXPECT_EQ(probes[1]->extent(1), 3);
}

TEST(DenseBlock, AllUnitProbes) {
  rng gen{6};
  dense_block block{2, 2, 3, gen};
  block.set_unit_probes(-1);
  EXPECT_EQ(block.probe_count(), 3);
}

TEST(DenseBlock, ParamsCoverAllUnits) {
  rng gen{7};
  dense_block block{2, 2, 3, gen};
  // Each unit: bn gamma+beta and conv weight = 3 params.
  EXPECT_EQ(block.params().size(), 9u);
  EXPECT_EQ(block.state().size(), 6u);  // 2 running stats per unit
}

TEST(Transition, HalvesSpatialAndSetsChannels) {
  rng gen{8};
  transition t{8, 4, gen};
  tensor x = tensor::randn({2, 8, 6, 6}, gen);
  const tensor y = t.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 4, 3, 3}));
}

TEST(Transition, GradCheck) {
  rng gen{9};
  transition t{4, 2, gen};
  tensor x = tensor::randn({2, 4, 4, 4}, gen);
  tensor w = tensor::randn({2, 2, 2, 2}, gen);
  check_input_gradient(t, x, w, true, 1e-3, 4e-2);
  check_param_gradients(t, x, w, true, 1e-3, 4e-2);
}

TEST(DenseBlock, RejectsWrongChannels) {
  rng gen{10};
  dense_block block{4, 2, 2, gen};
  tensor x = tensor::randn({1, 3, 4, 4}, gen);
  EXPECT_THROW(block.forward(x, true), std::invalid_argument);
}

}  // namespace
}  // namespace dv
