// Tests for the paper's stated extensions: the weighted joint validator
// (§III-B2 / §IV-D3 future-work remark) and the PGD / DeepFool attacks.
#include <gtest/gtest.h>

#include "attack/deepfool.h"
#include "attack/pgd.h"
#include "core/weighted_joint.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

const deep_validator& shared_base_validator() {
  static const deep_validator dv = [] {
    const auto& world = shared_tiny_world();
    deep_validator out;
    deep_validator_config cfg;
    cfg.max_train_per_class = 50;
    out.fit(*world.model, world.train, cfg);
    return out;
  }();
  return dv;
}

TEST(WeightedJoint, FitsOnNoiseOutliers) {
  const auto& world = shared_tiny_world();
  const auto& base = shared_base_validator();
  weighted_joint_validator wj;
  const tensor outliers =
      weighted_joint_validator::make_noise_outliers({60, 1, 28, 28}, 5);
  wj.fit(*world.model, base, world.test.images.slice_rows(0, 60), outliers);
  ASSERT_TRUE(wj.fitted());
  EXPECT_EQ(wj.weights().size(), 3u);
}

TEST(WeightedJoint, SeparatesNoiseFromClean) {
  const auto& world = shared_tiny_world();
  const auto& base = shared_base_validator();
  weighted_joint_validator wj;
  const tensor outliers =
      weighted_joint_validator::make_noise_outliers({60, 1, 28, 28}, 5);
  wj.fit(*world.model, base, world.test.images.slice_rows(0, 60), outliers);

  const tensor fresh_noise =
      weighted_joint_validator::make_noise_outliers({30, 1, 28, 28}, 99);
  const auto pos = wj.score_batch(*world.model, base, fresh_noise);
  const auto neg = wj.score_batch(*world.model, base,
                                  world.test.images.slice_rows(60, 120));
  EXPECT_GT(roc_auc(pos, neg), 0.9);
}

TEST(WeightedJoint, AtLeastMatchesUnweightedOnHeldOutNoise) {
  const auto& world = shared_tiny_world();
  const auto& base = shared_base_validator();
  weighted_joint_validator wj;
  const tensor outliers =
      weighted_joint_validator::make_noise_outliers({60, 1, 28, 28}, 5);
  wj.fit(*world.model, base, world.test.images.slice_rows(0, 60), outliers);

  const tensor fresh_noise =
      weighted_joint_validator::make_noise_outliers({40, 1, 28, 28}, 77);
  const tensor clean = world.test.images.slice_rows(60, 160);
  const double weighted_auc =
      roc_auc(wj.score_batch(*world.model, base, fresh_noise),
              wj.score_batch(*world.model, base, clean));
  const double unweighted_auc =
      roc_auc(base.evaluate(*world.model, fresh_noise).joint,
              base.evaluate(*world.model, clean).joint);
  EXPECT_GE(weighted_auc, unweighted_auc - 0.05);
}

TEST(WeightedJoint, UnfittedThrows) {
  const auto& world = shared_tiny_world();
  const auto& base = shared_base_validator();
  weighted_joint_validator wj;
  EXPECT_THROW(
      wj.score_batch(*world.model, base, world.test.images.slice_rows(0, 1)),
      std::logic_error);
}

std::pair<tensor, std::int64_t> correct_seed(std::int64_t skip) {
  const auto& world = shared_tiny_world();
  std::int64_t found = 0;
  for (std::int64_t i = 0; i < world.test.size(); ++i) {
    const tensor img = world.test.images.sample(i);
    const auto pred =
        world.model->predict(img.reshaped({1, 1, 28, 28})).front();
    if (pred == world.test.labels[static_cast<std::size_t>(i)] &&
        found++ == skip) {
      return {img, pred};
    }
  }
  throw std::runtime_error{"no seed"};
}

TEST(Pgd, StaysInEpsilonBallAndBeatsChance) {
  const auto& world = shared_tiny_world();
  pgd_attack attack{0.25f, 0.05f, 10, 2};
  int successes = 0;
  for (std::int64_t s = 0; s < 8; ++s) {
    const auto [img, label] = correct_seed(s);
    const attack_result res = attack.run(*world.model, img, label, -1);
    EXPECT_LE(res.distortion_linf, 0.25 + 1e-5);
    EXPECT_GE(res.adversarial.min(), 0.0f);
    EXPECT_LE(res.adversarial.max(), 1.0f);
    successes += res.success ? 1 : 0;
  }
  EXPECT_GE(successes, 2);
}

TEST(DeepFool, FindsSmallPerturbations) {
  const auto& world = shared_tiny_world();
  deepfool_attack attack{30};
  int successes = 0;
  double total_l2 = 0.0;
  for (std::int64_t s = 0; s < 6; ++s) {
    const auto [img, label] = correct_seed(s);
    const attack_result res = attack.run(*world.model, img, label, -1);
    if (res.success) {
      ++successes;
      total_l2 += res.distortion_l2;
    }
  }
  EXPECT_GE(successes, 4);  // DeepFool is a strong untargeted attack
  // Minimal-norm attack: average distortion well below the image norm.
  if (successes > 0) {
    EXPECT_LT(total_l2 / successes, 5.0);
  }
}

TEST(DeepFool, AlreadyMisclassifiedInputIsFixedPoint) {
  const auto& world = shared_tiny_world();
  // Find a misclassified test image (tiny model is imperfect).
  for (std::int64_t i = 0; i < world.test.size(); ++i) {
    const tensor img = world.test.images.sample(i);
    const auto pred =
        world.model->predict(img.reshaped({1, 1, 28, 28})).front();
    const auto label = world.test.labels[static_cast<std::size_t>(i)];
    if (pred != label) {
      deepfool_attack attack;
      const attack_result res = attack.run(*world.model, img, label, -1);
      EXPECT_EQ(res.iterations, 0);  // breaks immediately
      EXPECT_EQ(res.distortion_l0, 0);
      return;
    }
  }
  GTEST_SKIP() << "tiny model classified everything correctly";
}

}  // namespace
}  // namespace dv
