// Shutdown edges of the bounded MPSC queue under the serving layer, and
// the caller_runs overflow path of the micro-batcher built on top of it:
// push-after-close fails fast without consuming the item, a concurrent
// drain during a producer storm drops and duplicates nothing, close()
// releases parked producers and consumers, and a saturated queue under
// caller_runs scores on the submitting thread. All of it runs under the
// DV_SANITIZE=thread stage, so the assertions double as race detectors.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/micro_batcher.h"
#include "tensor/tensor.h"
#include "util/bounded_queue.h"
#include "util/metrics.h"

namespace dv {
namespace {

using namespace std::chrono_literals;

TEST(QueueShutdown, PushAfterCloseFailsFastAndKeepsTheItem) {
  bounded_queue<int> q{4};
  q.close();
  EXPECT_TRUE(q.closed());
  int item = 41;
  EXPECT_FALSE(q.push(item));
  EXPECT_EQ(item, 41);  // failed pushes must not consume the item
  EXPECT_EQ(q.try_push(item), queue_push_result::closed);
  EXPECT_EQ(item, 41);
  EXPECT_EQ(q.size(), 0u);
  // The consumer sees the drain-complete signal immediately.
  std::vector<int> batch;
  EXPECT_FALSE(q.pop_batch(batch, 8, 1ms));
  EXPECT_TRUE(batch.empty());
  q.close();  // idempotent
  EXPECT_TRUE(q.closed());
}

TEST(QueueShutdown, CloseReleasesParkedProducerWithoutConsuming) {
  bounded_queue<int> q{1};
  int head = 1;
  ASSERT_TRUE(q.push(head));
  std::atomic<bool> started{false};
  int stuck = 7;
  bool pushed = true;
  std::thread producer{[&] {
    started.store(true);
    pushed = q.push(stuck);  // parks: the queue is full
  }};
  while (!started.load()) std::this_thread::yield();
  q.close();
  producer.join();
  EXPECT_FALSE(pushed);
  EXPECT_EQ(stuck, 7);
  // The item accepted before close() is still drained.
  std::vector<int> batch;
  EXPECT_TRUE(q.pop_batch(batch, 8, 0ms));
  EXPECT_EQ(batch, std::vector<int>{1});
  EXPECT_FALSE(q.pop_batch(batch, 8, 0ms));
}

TEST(QueueShutdown, CloseReleasesParkedConsumer) {
  bounded_queue<int> q{4};
  std::promise<bool> popped;
  auto fut = popped.get_future();
  std::thread consumer{[&] {
    std::vector<int> batch;
    popped.set_value(q.pop_batch(batch, 4, 10ms));
  }};
  // Nothing is ever pushed, so only close() can release the consumer.
  EXPECT_EQ(fut.wait_for(20ms), std::future_status::timeout);
  q.close();
  consumer.join();
  EXPECT_FALSE(fut.get());
}

TEST(QueueShutdown, DrainWhilePushingDropsAndDuplicatesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 256;
  // A tiny bound keeps every producer cycling through the park/wake path
  // while the consumer drains concurrently.
  bounded_queue<int> q{8};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        EXPECT_TRUE(q.push(item));
      }
    });
  }
  std::vector<int> hits(kProducers * kPerProducer, 0);
  std::size_t total = 0;
  std::thread consumer{[&] {
    std::vector<int> batch;
    while (q.pop_batch(batch, 32, 100us)) {
      for (const int v : batch) ++hits[static_cast<std::size_t>(v)];
      total += batch.size();
    }
  }};
  for (auto& t : producers) t.join();
  q.close();  // all pushes accepted; the consumer drains the tail and exits
  consumer.join();
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers * kPerProducer));
  for (const int h : hits) ASSERT_EQ(h, 1);
  EXPECT_EQ(q.size(), 0u);
}

TEST(QueueShutdown, CallerRunsScoresOnTheSubmittingThreadWhenFull) {
  metrics::set_enabled(true);
  const std::string caller_runs_series =
      "dv_serve_caller_runs_total{service=\"queue_shutdown\"}";

  std::mutex mu;
  std::vector<std::thread::id> run_threads;
  std::thread::id worker_id{};
  std::atomic<bool> hold{true};
  std::atomic<int> entered{0};
  // Scores 2x the tag pixel per frame. The first invocation is
  // necessarily the worker (the inline path is reachable only while the
  // worker is busy), and it parks until the test opens the gate.
  auto fn = [&](const tensor& frames) {
    const auto me = std::this_thread::get_id();
    bool is_worker = false;
    {
      std::lock_guard lock{mu};
      if (run_threads.empty()) worker_id = me;
      is_worker = me == worker_id;
      run_threads.push_back(me);
    }
    entered.fetch_add(1);
    if (is_worker) {
      while (hold.load()) std::this_thread::yield();
    }
    std::vector<float> out;
    const std::int64_t stride =
        frames.extent(1) * frames.extent(2) * frames.extent(3);
    for (std::int64_t i = 0; i < frames.extent(0); ++i) {
      out.push_back(frames.data()[i * stride] * 2.0f);
    }
    return out;
  };

  serve_config cfg;
  cfg.batch.max_batch = 1;
  cfg.queue_capacity = 1;
  cfg.max_delay = 0us;
  cfg.on_full = overflow_policy::caller_runs;
  auto frame = [](float tag) {
    tensor f{{1, 2, 2}};
    f.data()[0] = tag;
    return f;
  };

  {
    micro_batcher<float> batcher{"queue_shutdown", fn, cfg};
    auto a = batcher.submit(frame(3));
    while (entered.load() < 1) std::this_thread::yield();  // worker parked
    auto b = batcher.submit(frame(5));  // queued: capacity 1 is now full
    std::future<float> c;
    std::thread submitter{[&] { c = batcher.submit(frame(7)); }};
    // The worker is parked and b occupies the only slot, so the third
    // submit must take the inline path; wait for its counter tick (which
    // run_inline records before serializing on the score mutex) before
    // opening the gate.
    for (;;) {
      const auto* tick = metrics::get_counter(caller_runs_series);
      if (tick != nullptr && tick->value() == 1) break;
      std::this_thread::yield();
    }
    hold.store(false);
    submitter.join();
    EXPECT_EQ(a.get(), 6.0f);
    EXPECT_EQ(b.get(), 10.0f);
    EXPECT_EQ(c.get(), 14.0f);
    batcher.shutdown();
  }

  std::lock_guard lock{mu};
  ASSERT_EQ(run_threads.size(), 3u);
  int on_worker = 0;
  for (const auto id : run_threads) on_worker += id == worker_id ? 1 : 0;
  // Frames a and b ride the queue path on the worker; exactly one call —
  // frame c — ran on the submitting thread. After the gate opens the
  // worker (b) and the submitter (c) race for the score mutex, so only
  // the first slot's owner is deterministic.
  EXPECT_EQ(on_worker, 2);
  EXPECT_EQ(run_threads[0], worker_id);
  metrics::set_enabled(false);
  metrics::reset();
}

}  // namespace
}  // namespace dv
