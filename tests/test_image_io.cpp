#include "util/image_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

namespace dv {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

TEST(ImageIo, PgmHeaderAndPayload) {
  const std::string path = ::testing::TempDir() + "/t.pgm";
  const std::vector<float> px{0.0f, 0.5f, 1.0f, 2.0f};  // 2x2; 2.0 clamps
  write_pgm(path, px, 2, 2);
  const std::string content = read_file(path);
  EXPECT_EQ(content.substr(0, 3), "P5\n");
  EXPECT_NE(content.find("2 2\n255\n"), std::string::npos);
  // Payload: 4 bytes after the header.
  const auto payload = content.substr(content.size() - 4);
  EXPECT_EQ(static_cast<unsigned char>(payload[0]), 0);
  EXPECT_EQ(static_cast<unsigned char>(payload[1]), 128);
  EXPECT_EQ(static_cast<unsigned char>(payload[2]), 255);
  EXPECT_EQ(static_cast<unsigned char>(payload[3]), 255);
  std::remove(path.c_str());
}

TEST(ImageIo, PpmInterleavesChannels) {
  const std::string path = ::testing::TempDir() + "/t.ppm";
  // 1x1 RGB with distinct channel values in CHW order.
  const std::vector<float> chw{1.0f, 0.5f, 0.0f};
  write_ppm(path, chw, 1, 1);
  const std::string content = read_file(path);
  EXPECT_EQ(content.substr(0, 3), "P6\n");
  const auto payload = content.substr(content.size() - 3);
  EXPECT_EQ(static_cast<unsigned char>(payload[0]), 255);
  EXPECT_EQ(static_cast<unsigned char>(payload[1]), 128);
  EXPECT_EQ(static_cast<unsigned char>(payload[2]), 0);
  std::remove(path.c_str());
}

TEST(ImageIo, SizeMismatchThrows) {
  const std::vector<float> px{0.0f, 0.0f};
  EXPECT_THROW(write_pgm("/tmp/x.pgm", px, 2, 2), std::invalid_argument);
  EXPECT_THROW(write_ppm("/tmp/x.ppm", px, 1, 1), std::invalid_argument);
}

TEST(ImageIo, WriteImageDispatchesOnChannels) {
  const std::string pgm = ::testing::TempDir() + "/d.pgm";
  const std::string ppm = ::testing::TempDir() + "/d.ppm";
  const std::vector<float> grey(4, 0.5f);
  const std::vector<float> rgb(12, 0.5f);
  write_image(pgm, grey, 1, 2, 2);
  write_image(ppm, rgb, 3, 2, 2);
  EXPECT_EQ(read_file(pgm).substr(0, 2), "P5");
  EXPECT_EQ(read_file(ppm).substr(0, 2), "P6");
  EXPECT_THROW(write_image("/tmp/x", grey, 2, 2, 1), std::invalid_argument);
  std::remove(pgm.c_str());
  std::remove(ppm.c_str());
}

TEST(ImageIo, AsciiArtShapeAndRamp) {
  const std::vector<float> px{0.0f, 1.0f, 0.5f, 0.0f};
  const std::string art = ascii_art(px, 1, 2, 2);
  // Two rows of two chars plus newlines.
  EXPECT_EQ(art.size(), 6u);
  EXPECT_EQ(art[0], ' ');   // dark pixel
  EXPECT_EQ(art[1], '@');   // bright pixel
  EXPECT_EQ(art[2], '\n');
}

TEST(ImageIo, AsciiArtRgbUsesLuma) {
  // Pure green pixel has luma 0.587 -> mid-ramp character, not blank.
  const std::vector<float> chw{0.0f, 1.0f, 0.0f};
  const std::string art = ascii_art(chw, 3, 1, 1);
  EXPECT_NE(art[0], ' ');
  EXPECT_NE(art[0], '@');
}

}  // namespace
}  // namespace dv
