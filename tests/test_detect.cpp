#include <gtest/gtest.h>

#include "core/deep_validator.h"
#include "detect/dv_adapter.h"
#include "detect/feature_squeeze.h"
#include "detect/kde.h"
#include "detect/squeezers.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace dv {
namespace {

using dv::testing::shared_tiny_world;

// -- Squeezers ------------------------------------------------------------------

TEST(BitDepthSqueezer, QuantizesToLevels) {
  bit_depth_squeezer sq{1};  // levels {0, 1}
  tensor img = tensor::from_data({1, 2, 2}, {0.1f, 0.4f, 0.6f, 0.9f});
  const tensor out = sq.apply(img);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_EQ(out[2], 1.0f);
  EXPECT_EQ(out[3], 1.0f);
}

TEST(BitDepthSqueezer, HigherDepthFiner) {
  bit_depth_squeezer sq{3};  // 8 levels
  tensor img = tensor::from_data({1, 1, 1}, {0.5f});
  const tensor out = sq.apply(img);
  EXPECT_NEAR(out[0], 4.0f / 7.0f, 1e-6f);
}

TEST(BitDepthSqueezer, InvalidBitsThrow) {
  EXPECT_THROW(bit_depth_squeezer{0}, std::invalid_argument);
  EXPECT_THROW(bit_depth_squeezer{17}, std::invalid_argument);
}

TEST(MedianSqueezer, RemovesSaltAndPepper) {
  median_squeezer sq{3};
  tensor img = tensor::full({1, 5, 5}, 0.5f);
  img.at3(0, 2, 2) = 1.0f;  // salt
  img.at3(0, 1, 1) = 0.0f;  // pepper
  const tensor out = sq.apply(img);
  EXPECT_FLOAT_EQ(out.at3(0, 2, 2), 0.5f);
  EXPECT_FLOAT_EQ(out.at3(0, 1, 1), 0.5f);
}

TEST(MedianSqueezer, ConstantImageIsFixedPoint) {
  median_squeezer sq{2};
  const tensor img = tensor::full({3, 4, 4}, 0.7f);
  const tensor out = sq.apply(img);
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_FLOAT_EQ(out[i], 0.7f);
  }
}

TEST(MeanSqueezer, Blurs) {
  mean_squeezer sq{3};
  tensor img{{1, 5, 5}};
  img.at3(0, 2, 2) = 9.0f;
  const tensor out = sq.apply(img);
  EXPECT_FLOAT_EQ(out.at3(0, 2, 2), 1.0f);  // 9/9
  EXPECT_FLOAT_EQ(out.at3(0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(out.at3(0, 0, 4), 0.0f);
}

TEST(Squeezers, NamesAreDescriptive) {
  EXPECT_EQ(bit_depth_squeezer{4}.name(), "bit_depth_4");
  EXPECT_EQ(median_squeezer{2}.name(), "median_2x2");
  EXPECT_EQ(mean_squeezer{3}.name(), "mean_3x3");
}

// -- Feature squeezing ------------------------------------------------------------

TEST(FeatureSqueezing, StandardBanks) {
  EXPECT_EQ(feature_squeezing_detector::standard_bank(true).size(), 2u);
  EXPECT_EQ(feature_squeezing_detector::standard_bank(false).size(), 3u);
}

TEST(FeatureSqueezing, ScoresAreNonNegativeAndBounded) {
  const auto& world = shared_tiny_world();
  feature_squeezing_detector fs{
      *world.model, feature_squeezing_detector::standard_bank(true)};
  const auto scores = fs.score_batch(world.test.images.slice_rows(0, 20));
  for (const double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 2.0);  // L1 distance of two probability vectors is <= 2
  }
}

TEST(FeatureSqueezing, SingleMatchesBatch) {
  const auto& world = shared_tiny_world();
  feature_squeezing_detector fs{
      *world.model, feature_squeezing_detector::standard_bank(true)};
  const double single = fs.score(world.test.images.sample(2));
  const auto batch = fs.score_batch(world.test.images.slice_rows(2, 3));
  EXPECT_NEAR(single, batch.front(), 1e-9);
}

// -- KDE --------------------------------------------------------------------------

kde_config tiny_kde_config() {
  kde_config cfg;
  cfg.max_train_per_class = 30;
  return cfg;
}

TEST(Kde, NoiseLessDenseThanClean) {
  const auto& world = shared_tiny_world();
  kde_detector kde{*world.model, world.train, tiny_kde_config()};
  rng gen{1};
  const tensor noise = tensor::uniform({30, 1, 28, 28}, gen, 0.0f, 1.0f);
  const auto clean = kde.score_batch(world.test.images.slice_rows(0, 30));
  const auto anomalous = kde.score_batch(noise);
  EXPECT_GT(mean(anomalous), mean(clean));
}

TEST(Kde, BandwidthPositive) {
  const auto& world = shared_tiny_world();
  kde_detector kde{*world.model, world.train, tiny_kde_config()};
  for (int k = 0; k < 10; ++k) {
    EXPECT_GT(kde.bandwidth(k), 0.0);
  }
}

TEST(Kde, ExplicitBandwidthHonored) {
  const auto& world = shared_tiny_world();
  kde_config cfg = tiny_kde_config();
  cfg.bandwidth = 2.5;
  kde_detector kde{*world.model, world.train, cfg};
  EXPECT_DOUBLE_EQ(kde.bandwidth(0), 2.5);
}

TEST(Kde, SingleMatchesBatch) {
  const auto& world = shared_tiny_world();
  kde_detector kde{*world.model, world.train, tiny_kde_config()};
  const double single = kde.score(world.test.images.sample(1));
  const auto batch = kde.score_batch(world.test.images.slice_rows(1, 2));
  EXPECT_NEAR(single, batch.front(), 1e-9);
}

// -- Deep Validation adapter --------------------------------------------------------

TEST(DvAdapter, MatchesValidatorScores) {
  const auto& world = shared_tiny_world();
  deep_validator dv;
  deep_validator_config cfg;
  cfg.max_train_per_class = 40;
  dv.fit(*world.model, world.train, cfg);
  deep_validation_detector adapter{*world.model, dv};
  const tensor batch = world.test.images.slice_rows(0, 5);
  const auto from_adapter = adapter.score_batch(batch);
  const auto from_validator = dv.evaluate(*world.model, batch).joint;
  ASSERT_EQ(from_adapter.size(), from_validator.size());
  for (std::size_t i = 0; i < from_adapter.size(); ++i) {
    EXPECT_NEAR(from_adapter[i], from_validator[i], 1e-12);
  }
  EXPECT_EQ(adapter.name(), "deep_validation");
}

TEST(Detector, DefaultBatchLoopsOverScore) {
  const auto& world = shared_tiny_world();
  // KDE overrides score_batch; exercise the base-class path through score().
  kde_detector kde{*world.model, world.train, tiny_kde_config()};
  const tensor two = world.test.images.slice_rows(4, 6);
  const std::vector<double> via_batch = kde.score_batch(two);
  const double first = kde.score(two.sample(0));
  EXPECT_NEAR(via_batch[0], first, 1e-9);
}

}  // namespace
}  // namespace dv
