// Tests for the substrate extensions: leaky ReLU / sigmoid / tanh layers,
// the reverse cross-entropy loss, and the precision-recall metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "grad_check.h"
#include "nn/layers.h"
#include "nn/loss.h"

namespace dv {
namespace {

using dv::testing::check_input_gradient;

TEST(LeakyRelu, ForwardScalesNegatives) {
  leaky_relu l{0.1f};
  tensor x = tensor::from_data({1, 3}, {-2.0f, 0.0f, 3.0f});
  const tensor y = l.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

TEST(LeakyRelu, GradCheck) {
  leaky_relu l{0.05f};
  rng gen{1};
  tensor x = tensor::randn({2, 8}, gen);
  tensor w = tensor::randn({2, 8}, gen);
  check_input_gradient(l, x, w);
}

TEST(LeakyRelu, InvalidSlopeThrows) {
  EXPECT_THROW(leaky_relu{-0.1f}, std::invalid_argument);
  EXPECT_THROW(leaky_relu{1.0f}, std::invalid_argument);
}

TEST(Sigmoid, ForwardRangeAndMidpoint) {
  sigmoid l;
  tensor x = tensor::from_data({1, 3}, {-100.0f, 0.0f, 100.0f});
  const tensor y = l.forward(x, true);
  EXPECT_NEAR(y[0], 0.0f, 1e-6f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  EXPECT_NEAR(y[2], 1.0f, 1e-6f);
}

TEST(Sigmoid, GradCheck) {
  sigmoid l;
  rng gen{2};
  tensor x = tensor::randn({3, 5}, gen);
  tensor w = tensor::randn({3, 5}, gen);
  check_input_gradient(l, x, w);
}

TEST(Tanh, ForwardOddSymmetry) {
  tanh_layer l;
  tensor x = tensor::from_data({1, 2}, {1.5f, -1.5f});
  const tensor y = l.forward(x, true);
  EXPECT_NEAR(y[0], -y[1], 1e-6f);
  EXPECT_NEAR(y[0], std::tanh(1.5f), 1e-6f);
}

TEST(Tanh, GradCheck) {
  tanh_layer l;
  rng gen{3};
  tensor x = tensor::randn({2, 6}, gen);
  tensor w = tensor::randn({2, 6}, gen);
  check_input_gradient(l, x, w);
}

// -- Reverse cross-entropy -----------------------------------------------------

TEST(ReverseCrossEntropy, UniformOffClassTargetIsOptimal) {
  // With logits that give the non-true classes equal probability and the
  // true class near zero, RCE should be near its minimum log(K-1)... the
  // loss value at the reverse-target distribution itself is log(K-1)? No:
  // the minimum of cross-entropy against target r is the entropy of r,
  // which is log(K-1) for the uniform off-class target.
  tensor logits = tensor::from_data({1, 3}, {-100.0f, 5.0f, 5.0f});
  const std::int64_t labels[1] = {0};
  tensor grad;
  const float loss = reverse_cross_entropy(logits, {labels, 1}, grad);
  EXPECT_NEAR(loss, std::log(2.0f), 1e-4);
}

TEST(ReverseCrossEntropy, GradientIsNumericallyCorrect) {
  rng gen{4};
  tensor logits = tensor::randn({2, 4}, gen);
  const std::int64_t labels[2] = {1, 3};
  tensor grad;
  (void)reverse_cross_entropy(logits, {labels, 2}, grad);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    tensor up = logits, down = logits;
    up[i] += static_cast<float>(eps);
    down[i] -= static_cast<float>(eps);
    tensor g2;
    const double numeric =
        (reverse_cross_entropy(up, {labels, 2}, g2) -
         reverse_cross_entropy(down, {labels, 2}, g2)) /
        (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-3);
  }
}

TEST(ReverseCrossEntropy, PushesTrueClassDown) {
  // The gradient on the true-class logit is positive (prob - 0 > 0), so a
  // gradient-descent step lowers it.
  tensor logits = tensor::from_data({1, 3}, {1.0f, 0.0f, 0.0f});
  const std::int64_t labels[1] = {0};
  tensor grad;
  (void)reverse_cross_entropy(logits, {labels, 1}, grad);
  EXPECT_GT(grad[0], 0.0f);
  EXPECT_LT(grad[1], 0.0f);
}

TEST(ReverseCrossEntropy, Validation) {
  tensor logits{{1, 1}};
  const std::int64_t labels[1] = {0};
  tensor grad;
  EXPECT_THROW(reverse_cross_entropy(logits, {labels, 1}, grad),
               std::invalid_argument);
  tensor logits3{{1, 3}};
  const std::int64_t bad[1] = {3};
  EXPECT_THROW(reverse_cross_entropy(logits3, {bad, 1}, grad),
               std::invalid_argument);
}

// -- Precision-recall ------------------------------------------------------------

TEST(PrCurve, PerfectSeparationHasUnitPrecision) {
  const std::vector<double> pos{3.0, 4.0};
  const std::vector<double> neg{0.0, 1.0};
  const auto curve = pr_curve(pos, neg);
  // Until recall reaches 1.0 precision stays 1.0.
  for (const auto& p : curve) {
    if (p.recall <= 1.0 && p.threshold >= 3.0) {
      EXPECT_DOUBLE_EQ(p.precision, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(average_precision(pos, neg), 1.0);
}

TEST(PrCurve, RecallMonotone) {
  const std::vector<double> pos{0.9, 0.4, 0.6};
  const std::vector<double> neg{0.5, 0.3, 0.8};
  const auto curve = pr_curve(pos, neg);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
  }
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
}

TEST(AveragePrecision, HandComputedCase) {
  // Descending: pos(1.0) -> P=1, R=0.5; neg(0.8); pos(0.6) -> P=2/3, R=1.
  // AP = 0.5 * 1 + 0.5 * 2/3 = 5/6.
  const std::vector<double> pos{1.0, 0.6};
  const std::vector<double> neg{0.8};
  EXPECT_NEAR(average_precision(pos, neg), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecision, ChanceLevelEqualsPrevalence) {
  // With identical score distributions AP tends to the positive prevalence.
  std::vector<double> pos, neg;
  for (int i = 0; i < 100; ++i) {
    pos.push_back(i % 10);
    neg.push_back(i % 10);
  }
  EXPECT_NEAR(average_precision(pos, neg), 0.5, 0.05);
}

TEST(PrCurve, EmptyThrows) {
  const std::vector<double> some{1.0};
  const std::vector<double> none{};
  EXPECT_THROW(pr_curve(none, some), std::invalid_argument);
  EXPECT_THROW(average_precision(some, none), std::invalid_argument);
}

}  // namespace
}  // namespace dv
