// dv_lint check engine: repo-invariant checks over the token stream
// produced by lexer.h. Four named checks (see docs/STATIC_ANALYSIS.md for
// the catalogue and the annotation grammar):
//
//   determinism    — no ambient randomness or wall-clock reads
//   thread-safety  — parallel_for sites annotated; no mutable statics
//   metrics-gating — dv::metrics handles null-guarded outside src/util
//   hygiene        — #pragma once, no `using namespace` in headers,
//                    no sprintf/strcpy/atoi-style libc calls
//
// Any violation is suppressible on its own line or the line above with
// `// dv-lint: allow(<check>)`.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dv_lint {

struct violation {
  std::string file;  // repo-relative path, forward slashes
  int line{0};
  std::string check;    // "determinism", "thread-safety", ...
  std::string message;  // human-readable explanation with a suggested fix
};

/// Runs every check over one file's contents. `rel_path` is the
/// repo-relative path (forward slashes); it selects which checks and
/// allowlists apply (e.g. src/util/ may own mutable statics, headers must
/// start with #pragma once). Results are sorted by line.
std::vector<violation> lint_source(const std::string& rel_path,
                                   std::string_view source);

/// Formats violations one per line: `file:line: [check] message`.
std::string format(const std::vector<violation>& violations);

/// Full command line: `dv_lint [--root <dir>] [path...]` where paths are
/// files or directories relative to the root (default: src bench tests).
/// Prints violations and a summary to `out`, errors to `err`. Returns 0
/// when clean, 1 on violations, 2 on usage or I/O errors.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace dv_lint
