// dv_lint check engine: repo-invariant checks over the token stream
// produced by lexer.h, plus the cross-file passes wired up by run_cli.
// Per-file checks (see docs/STATIC_ANALYSIS.md for the catalogue and the
// annotation grammar):
//
//   determinism    — no ambient randomness or wall-clock reads
//   thread-safety  — parallel_for sites annotated; no mutable statics
//   metrics-gating — dv::metrics handles null-guarded outside src/util
//   hygiene        — #pragma once, no `using namespace` in headers,
//                    no sprintf/strcpy/atoi-style libc calls
//   simd           — vendor intrinsics (<immintrin.h>, _mm*/__m*) only
//                    under src/tensor/simd/; use the dispatch table
//   capture        — by-ref captures written in parallel_for lambdas
//                    without loop-local indexing (capture_check.h)
//
// Cross-file passes (driven by run_cli over every scanned file):
//
//   layering / include-cycle / unused-include — include_graph.h
//   api-surface — api_surface.h golden-snapshot comparison
//
// Any violation is suppressible on its own line or the line above with
// `// dv-lint: allow(<check>)`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dv_lint {

struct violation {
  std::string file;  // repo-relative path, forward slashes
  int line{0};
  std::string check;    // "determinism", "thread-safety", ...
  std::string message;  // human-readable explanation with a suggested fix
};

/// One quoted `#include "..."` directive, with the suppression checks
/// active on its line (so cross-file passes honor `dv-lint: allow(...)`
/// without re-lexing the file).
struct include_ref {
  int line{0};
  std::string spelled;               // the path between the quotes
  std::vector<std::string> allowed;  // allow(...) names on this line
};

/// Everything the cross-file passes need to know about one file. This is
/// the unit the per-file result cache stores (cache.h), so it must be
/// derivable from (rel_path, content) alone.
struct file_summary {
  std::string rel_path;
  std::uint64_t content_hash{0};
  std::vector<violation> violations;  // per-file checks, sorted by line
  std::vector<include_ref> includes;  // quoted includes in order
  std::vector<std::string> declared;  // sorted unique declared symbols
  std::vector<std::string> used;      // sorted unique identifiers used
  std::vector<std::string> api;       // api-surface entries (headers only)
};

/// Runs every per-file check over one file's contents. `rel_path` is the
/// repo-relative path (forward slashes); it selects which checks and
/// allowlists apply (e.g. src/util/ may own mutable statics, headers must
/// start with #pragma once). Results are sorted by line.
std::vector<violation> lint_source(const std::string& rel_path,
                                   std::string_view source);

/// lint_source plus the extracted inputs for the cross-file passes
/// (includes, declared/used symbols, api-surface entries). content_hash
/// is FNV-1a over `source`.
file_summary summarize(const std::string& rel_path, std::string_view source);

/// Formats violations one per line: `file:line: [check] message`.
std::string format(const std::vector<violation>& violations);

/// Full command line:
///   dv_lint [--root <dir>] [--layers <file>] [--cache-dir <dir>]
///           [--api-surface <file>] [--check-api-surface]
///           [--update-api-surface] [path...]
/// Paths are files or directories relative to the root (default: src
/// bench tests tools). Prints violations and a summary to `out`, errors
/// to `err`. Returns 0 when clean, 1 on violations, 2 on usage or I/O
/// errors.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace dv_lint
