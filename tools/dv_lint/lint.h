// dv_lint check engine: repo-invariant checks over the token stream
// produced by lexer.h, plus the cross-file passes wired up by run_cli.
// Per-file checks (see docs/STATIC_ANALYSIS.md for the catalogue and the
// annotation grammar):
//
//   determinism    — no ambient randomness or wall-clock reads
//   thread-safety  — parallel_for sites annotated; no mutable statics
//   metrics-gating — dv::metrics handles null-guarded outside src/util
//   hygiene        — #pragma once, no `using namespace` in headers,
//                    no sprintf/strcpy/atoi-style libc calls
//   simd           — vendor intrinsics (<immintrin.h>, _mm*/__m*) only
//                    under src/tensor/simd/; use the dispatch table
//   capture        — by-ref captures written in parallel_for lambdas
//                    without loop-local indexing (capture_check.h)
//   init-only-config — getenv under src/ only inside dv:init functions
//                    (effects.h)
//
// Cross-file passes (driven by run_cli over every scanned file):
//
//   layering / include-cycle / unused-include — include_graph.h
//   api-surface — api_surface.h golden-snapshot comparison
//   hot-path-purity / lock-order / capture (transitive) — effect
//       inference over the cross-TU call graph (effects.h)
//   race — static lockset race detection: guarded-by verification plus
//       Eraser-style lockset-intersection inference over shared state
//       (race.h)
//
// Any violation is suppressible on its own line or the line above with
// `// dv-lint: allow(<check>)`.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dv_lint {

struct violation {
  std::string file;  // repo-relative path, forward slashes
  int line{0};
  std::string check;    // "determinism", "thread-safety", ...
  std::string message;  // human-readable explanation with a suggested fix
};

/// One registered check and its schema version. Bumping a version (or
/// adding a check) changes lint_schema_hash(), which is part of the
/// cache record header — every stale per-file entry then misses and is
/// re-derived instead of silently replaying results computed before the
/// check existed.
struct check_info {
  const char* name;
  int version;
};
const std::vector<check_info>& check_registry();

/// FNV-1a over the rendered check registry (names + versions). Stamped
/// into every cache record alongside the format version (cache.h).
std::uint64_t lint_schema_hash();

// ---------------------------------------------------------------------------
// Effect-inference records (effects.h). Extracted per file, cached with
// the summary, and resolved into a cross-TU call graph by the effects
// pass. The enum order is the cache serialization contract (cache.cpp).

enum class effect : unsigned char {
  may_block,         // condition waits, joins, sleeps, I/O
  may_allocate,      // new/make_unique/make_shared, vector growth ops
  reads_env,         // getenv
  reads_clock,       // wall/steady clock reads outside the metrics clock
  uses_ambient_rng,  // rand()-family, std::random_device
  writes_global,     // assignment to a namespace-scope mutable variable
};
inline constexpr int k_effect_count = 6;
const char* effect_name(effect e);

/// One mutex acquisition (lock_guard / unique_lock / scoped_lock /
/// shared_lock construction) inside a function body.
struct lock_record {
  std::string name;  // normalized mutex expression, scope-qualified
  int line{0};
  std::vector<std::string> held;     // locks already held at this point
  std::vector<std::string> allowed;  // allow(...) names on this line
};

/// One call expression inside a function body.
struct call_record {
  std::string callee;  // spelled name, qualifiers kept ("a::foo")
  int line{0};
  bool method{false};             // obj.foo(...) / obj->foo(...)
  std::vector<std::string> held;  // locks held at the call site
  /// Per top-level argument: the bare identifier when the argument is a
  /// single non-local identifier token, "" otherwise.
  std::vector<std::string> args;
};

/// One write whose target is not a local/parameter of the function (a
/// candidate writes_global witness, matched against the cross-file set
/// of namespace-scope mutable variables).
struct nonlocal_write {
  std::string name;
  int line{0};
};

// ---------------------------------------------------------------------------
// Race-detector records (race.h). Accesses and shared-state declarations
// are extracted per file alongside the effect records and resolved
// cross-TU by the race pass.

/// One read or write of a shared-state candidate inside a function body:
/// a bare (or `this->`-qualified) identifier whose base is not a local,
/// recorded with the locks held at that point. Resolution against the
/// field/global/static tables happens at check time, so most recorded
/// names simply never match anything shared.
struct access_record {
  std::string name;  // spelled base identifier ("pending_", "g_mode")
  int line{0};
  bool write{false};
  bool waived{false};  // allow(race) on the access line
  std::vector<std::string> held;  // locks held at the access site
};

/// One mutable `static` local declared inside a function body. Accesses
/// resolve by bare name within the declaring function only.
struct static_local_record {
  std::string name;
  int line{0};
  std::string guarded_by;            // dv:guarded-by(<lock>) on the decl
  std::vector<std::string> allowed;  // allow(...) names on the decl line
};

/// How a member field participates in the race analysis. The enum order
/// is the cache serialization contract (cache.cpp).
enum class field_kind : unsigned char {
  plain,   // ordinary mutable member: lockset rules apply
  mutex,   // std::mutex family: a lock identity, not data
  atomic,  // std::atomic<...>: synchronizes its own accesses
  cv,      // condition_variable: waits are externally locked
  konst,   // const member: immutable after construction
};

struct field_record {
  std::string name;
  int line{0};
  field_kind kind{field_kind::plain};
  std::string guarded_by;            // dv:guarded-by(<lock>) on the decl
  std::vector<std::string> allowed;  // allow(...) names on the decl line
};

/// One class/struct with its member declarations. Only classes that own
/// at least one mutex or atomic field are in scope for the race pass;
/// everything else is recorded but ignored at check time.
struct class_record {
  std::string name;  // scope-qualified ("dv::micro_batcher")
  int line{0};
  std::vector<field_record> fields;
};

/// One namespace-scope mutable variable declaration with its race
/// metadata (the bare-name list in file_summary::globals feeds the
/// writes_global effect; this record feeds the race pass).
struct global_record {
  std::string name;  // bare declared name (matches access spelling)
  int line{0};
  std::string guarded_by;
  std::vector<std::string> allowed;
};

/// Per-function facts the fixed point runs over. Lambdas passed to
/// parallel_for sites get their own synthetic record (is_lambda).
struct func_record {
  std::string name;  // scope-qualified: ns::type::fn ("" for lambdas)
  int line{0};
  /// Witness line per effect (-1 = no direct occurrence) and the token
  /// that triggered it ("wait", "getenv", ...).
  std::array<int, k_effect_count> direct{{-1, -1, -1, -1, -1, -1}};
  std::array<std::string, k_effect_count> witness;
  std::vector<lock_record> locks;
  std::vector<call_record> calls;
  std::vector<nonlocal_write> writes;
  std::vector<std::string> params;      // parameter names, in order
  std::vector<int> ref_params;          // indices of ref/pointer params
  std::vector<int> out_params_written;  // indices of ref/ptr params written
  std::vector<std::string> allowed;     // allow(...) names on the def line
  std::vector<access_record> accesses;  // shared-state reads/writes
  std::vector<static_local_record> statics;  // mutable statics declared here
  bool is_init{false};    // dv:init(<reason>): effects latch at startup
  bool is_hot{false};     // dv:hot-path(<reason>): hot-path purity root
  bool is_thread_entry{false};  // dv:thread-entry(<reason>): race root
  bool is_lambda{false};  // synthetic record for a parallel_for lambda
};

/// One parallel_for / parallel_for_chunks call site whose argument is a
/// lambda; `lambda_index` points at the synthetic func_record.
struct par_site_record {
  int line{0};
  std::string fn;  // "parallel_for" | "parallel_for_chunks"
  std::size_t lambda_index{0};
  std::vector<std::string> allowed;       // allow(...) names at the site
  std::vector<std::string> ref_captures;  // explicit &name captures
  std::vector<std::string> val_captures;  // explicit by-value captures
  bool default_ref{false};                // [&]
  bool captures_this{false};
};

/// One quoted `#include "..."` directive, with the suppression checks
/// active on its line (so cross-file passes honor `dv-lint: allow(...)`
/// without re-lexing the file).
struct include_ref {
  int line{0};
  std::string spelled;               // the path between the quotes
  std::vector<std::string> allowed;  // allow(...) names on this line
};

/// Everything the cross-file passes need to know about one file. This is
/// the unit the per-file result cache stores (cache.h), so it must be
/// derivable from (rel_path, content) alone.
struct file_summary {
  std::string rel_path;
  std::uint64_t content_hash{0};
  std::vector<violation> violations;  // per-file checks, sorted by line
  std::vector<include_ref> includes;  // quoted includes in order
  std::vector<std::string> declared;  // sorted unique declared symbols
  std::vector<std::string> used;      // sorted unique identifiers used
  std::vector<std::string> api;       // api-surface entries (headers only)
  std::vector<func_record> funcs;     // effect records (effects.h)
  std::vector<par_site_record> par_sites;
  std::vector<std::string> globals;   // namespace-scope mutable variables
  std::vector<class_record> classes;  // member declarations (race.h)
  std::vector<global_record> global_decls;  // global race metadata
};

/// Runs every per-file check over one file's contents. `rel_path` is the
/// repo-relative path (forward slashes); it selects which checks and
/// allowlists apply (e.g. src/util/ may own mutable statics, headers must
/// start with #pragma once). Results are sorted by line.
std::vector<violation> lint_source(const std::string& rel_path,
                                   std::string_view source);

/// lint_source plus the extracted inputs for the cross-file passes
/// (includes, declared/used symbols, api-surface entries). content_hash
/// is FNV-1a over `source`.
file_summary summarize(const std::string& rel_path, std::string_view source);

/// Formats violations one per line: `file:line: [check] message`.
std::string format(const std::vector<violation>& violations);

/// Full command line:
///   dv_lint [--root <dir>] [--layers <file>] [--cache-dir <dir>]
///           [--api-surface <file>] [--check-api-surface]
///           [--update-api-surface] [--json] [--explain <function>]
///           [--only <check,...>] [path...]
/// Paths are files or directories relative to the root (default: src
/// bench tests tools). Prints violations and a summary to `out`, errors
/// to `err`. `--json` switches the report to a machine-readable object;
/// `--only` keeps only the named checks; `--explain` prints the inferred
/// effect closure (witness call chains included) of the named function
/// instead of linting. Returns 0 when clean, 1 on violations, 2 on usage
/// or I/O errors.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace dv_lint
