// Cross-TU call graph shared by the effect-inference engine
// (effects.cpp) and the lockset race detector (race.cpp). Every function
// record of every scanned file becomes a node; calls are resolved by
// qualified-name matching on the last name component, with method calls
// accepted only on a unique match (and never for spellings shared with
// the standard containers). The resolved per-call target lists are what
// both fixed points — the bottom-up effect closure and the top-down
// entry-lockset meet — iterate over.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lint.h"

namespace dv_lint {

/// Files whose effects never propagate to callers: the DV_METRICS-gated
/// observability layer (its blocking/clock reads vanish when metrics are
/// off) and the parallel runtime itself (fork-join blocking is the
/// sanctioned kind). The race pass still scans these files — the
/// exemption is about effect propagation, not data ownership.
bool path_effect_exempt(std::string_view rel);

struct graph_node {
  const file_summary* file{nullptr};
  const func_record* rec{nullptr};
  bool exempt{false};  // path_effect_exempt(file)
};

/// (file, site, lambda node index) per parallel_for call site.
struct graph_site {
  const file_summary* file{nullptr};
  const par_site_record* site{nullptr};
  std::size_t lambda_node{0};
};

struct call_graph {
  std::vector<graph_node> nodes;
  std::vector<graph_site> sites;
  /// Last name component -> candidate node indices (named funcs only).
  std::unordered_map<std::string, std::vector<std::size_t>> by_last;
  /// call_targets[node][call index] = resolved callee nodes.
  std::vector<std::vector<std::vector<std::size_t>>> call_targets;

  /// Builds nodes, sites, the name index, and resolves every call. The
  /// summaries must outlive the graph (nodes hold pointers into them).
  void build_graph(const std::vector<file_summary>& files);

  static std::string last_component(const std::string& name);

  /// Method spellings shared with the standard containers/streams never
  /// resolve to repo functions: `cur.clear()` on a std::string must not
  /// inherit strong_lru_cache::clear's lock just because that happens to
  /// be the only `clear` defined in the repo.
  static bool std_method_name(const std::string& s);

  std::vector<std::size_t> resolve(const call_record& c) const;

  /// True when effects of callee `t` propagate into callers: dv:init
  /// functions run once at startup and exempt paths are the sanctioned
  /// observability/runtime layers.
  bool propagates(std::size_t t) const;

  /// Human-readable node name ("(lambda at file:line)" for lambdas).
  std::string display(std::size_t n) const;
};

}  // namespace dv_lint
