#include "capture_check.h"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>

#include "token_utils.h"

namespace dv_lint {

namespace {

const std::unordered_set<std::string>& ident_keywords() {
  static const std::unordered_set<std::string> kw = {
      "return", "new",    "delete",    "throw",    "else",
      "case",   "goto",   "sizeof",    "co_return", "co_yield",
      "co_await", "break", "continue", "do",       "if",
      "for",    "while",  "switch",    "catch",    "try"};
  return kw;
}

bool type_ish(const token* t) {
  if (t == nullptr) return false;
  if (t->kind == token_kind::identifier) {
    return ident_keywords().count(t->text) == 0;
  }
  return token_is_punct(t, "*") || token_is_punct(t, "&") ||
         token_is_punct(t, "&&") || token_is_punct(t, ">") ||
         token_is_punct(t, ">>");
}

/// Index of the opener matching the closer at `close` (scanning
/// backwards), or npos when unbalanced.
std::size_t match_backward(const std::vector<token>& toks, std::size_t close,
                           std::string_view open_ch,
                           std::string_view close_ch) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (token_is_punct(&toks[i], close_ch)) ++depth;
    if (token_is_punct(&toks[i], open_ch) && --depth == 0) return i;
  }
  return static_cast<std::size_t>(-1);
}

/// How the lambda gets at each outer name.
struct capture_set {
  bool default_ref{false};   // [&]
  bool default_val{false};   // [=]
  bool captures_this{false};
  std::unordered_set<std::string> by_ref;
  std::unordered_set<std::string> by_val;
};

/// The resolved target of one write expression.
struct lvalue {
  std::string base;          // leftmost identifier of the access chain
  bool deref{false};         // `*base = ...`
  bool has_index{false};     // chain went through [...] or (...)
  bool index_is_local{false};  // some index token is a lambda-local name
  bool resolvable{false};
};

/// Walks an access chain backwards from `last` (the token just before an
/// assignment operator, or just before/after ++/--) down to its base
/// identifier, collecting subscript/argument tokens on the way.
lvalue resolve_lvalue(const std::vector<token>& toks, std::size_t last,
                      const std::unordered_set<std::string>& locals) {
  lvalue lv;
  std::size_t p = last;
  for (int hops = 0; hops < 32; ++hops) {
    const token& t = toks[p];
    if (token_is_punct(&t, "]") || token_is_punct(&t, ")")) {
      const bool bracket = t.text == "]";
      const std::size_t open =
          match_backward(toks, p, bracket ? "[" : "(", bracket ? "]" : ")");
      if (open == static_cast<std::size_t>(-1) || open == 0) return lv;
      lv.has_index = true;
      for (std::size_t k = open + 1; k < p; ++k) {
        if (toks[k].kind == token_kind::identifier &&
            locals.count(toks[k].text) != 0) {
          lv.index_is_local = true;
        }
      }
      p = open - 1;
      continue;
    }
    if (t.kind == token_kind::identifier) {
      const token* prev = neighbor_token(toks, p, -1);
      if (token_is_punct(prev, ".") || token_is_punct(prev, "->")) {
        const std::size_t dot = static_cast<std::size_t>(prev - toks.data());
        if (dot == 0) return lv;
        p = dot - 1;
        continue;
      }
      if (token_is_punct(prev, "::")) return lv;  // qualified: not a capture
      lv.base = t.text;
      lv.deref = token_is_punct(prev, "*");
      lv.resolvable = true;
      return lv;
    }
    return lv;
  }
  return lv;
}

capture_set parse_captures(const std::vector<token>& toks, std::size_t lb,
                           std::size_t rb) {
  capture_set caps;
  int depth = 0;
  bool entry_start = true;
  for (std::size_t i = lb + 1; i < rb; ++i) {
    const token& t = toks[i];
    if (t.kind == token_kind::punct &&
        (t.text == "(" || t.text == "[" || t.text == "{")) {
      ++depth;
    }
    if (t.kind == token_kind::punct &&
        (t.text == ")" || t.text == "]" || t.text == "}")) {
      --depth;
    }
    if (depth == 0 && token_is_punct(&t, ",")) {
      entry_start = true;
      continue;
    }
    if (!entry_start) continue;
    if (token_is_punct(&t, "&")) {
      const token* next = neighbor_token(toks, i, 1);
      if (next != nullptr && next->kind == token_kind::identifier) {
        caps.by_ref.insert(next->text);
        ++i;
      } else {
        caps.default_ref = true;
      }
      entry_start = false;
      continue;
    }
    if (token_is_punct(&t, "=")) {
      caps.default_val = true;
      entry_start = false;
      continue;
    }
    if (token_is_punct(&t, "*")) continue;  // *this: handled by `this`
    if (t.kind == token_kind::identifier) {
      if (t.text == "this") {
        caps.captures_this = true;
      } else {
        caps.by_val.insert(t.text);
      }
      entry_start = false;
    }
  }
  return caps;
}

/// Collects names that are local to the lambda: parameters, body
/// declarations (heuristic: type-ish token, then the name, then a
/// declarator-shaped follower), and structured bindings.
std::unordered_set<std::string> collect_locals(const std::vector<token>& toks,
                                               std::size_t params_open,
                                               std::size_t params_close,
                                               std::size_t body_open,
                                               std::size_t body_close) {
  std::unordered_set<std::string> locals;
  for (std::size_t i = params_open + 1; i < params_close; ++i) {
    if (toks[i].kind != token_kind::identifier) continue;
    const token* next = neighbor_token(toks, i, 1);
    if (token_is_punct(next, ",") || token_is_punct(next, ")")) {
      locals.insert(toks[i].text);
    }
  }
  static const std::unordered_set<std::string> follower = {
      "=", ";", "{", "(", "[", ":", ",", ")"};
  for (std::size_t i = body_open + 1; i < body_close; ++i) {
    const token& t = toks[i];
    if (t.kind != token_kind::identifier) continue;
    if (t.text == "auto") {  // structured binding: auto [a, b] = ...
      std::size_t j = i + 1;
      while (j < body_close && (token_is_punct(&toks[j], "&") ||
                                token_is_punct(&toks[j], "&&"))) {
        ++j;
      }
      if (j < body_close && token_is_punct(&toks[j], "[")) {
        const std::size_t end = skip_balanced(toks, j, "[", "]");
        for (std::size_t k = j + 1; k + 1 < end; ++k) {
          if (toks[k].kind == token_kind::identifier) {
            locals.insert(toks[k].text);
          }
        }
      }
      continue;
    }
    if (ident_keywords().count(t.text) != 0) continue;
    const token* prev = neighbor_token(toks, i, -1);
    const token* next = neighbor_token(toks, i, 1);
    if (type_ish(prev) && next != nullptr &&
        next->kind == token_kind::punct && follower.count(next->text) != 0) {
      locals.insert(t.text);
    }
  }
  return locals;
}

bool write_op(const token& t) {
  if (t.kind != token_kind::punct) return false;
  static const std::unordered_set<std::string> ops = {
      "=",  "+=", "-=", "*=", "/=", "%=",
      "&=", "|=", "^=", "<<=", ">>="};
  return ops.count(t.text) != 0;
}

struct site_finding {
  int line;
  std::string message;
};

void analyze_site(const std::vector<token>& toks, std::size_t name_idx,
                  std::vector<site_finding>& findings) {
  const std::string& fn_name = toks[name_idx].text;
  const std::size_t call_open = name_idx + 1;
  const std::size_t call_end = skip_balanced(toks, call_open, "(", ")");

  // Locate a lambda introducer in argument position: `[` right after `(`
  // or a top-level `,` of the call.
  std::size_t lb = static_cast<std::size_t>(-1);
  int depth = 0;
  for (std::size_t i = call_open; i < call_end; ++i) {
    const token& t = toks[i];
    if (token_is_punct(&t, "(")) {
      ++depth;
      continue;
    }
    if (token_is_punct(&t, ")")) {
      --depth;
      continue;
    }
    if (depth == 1 && token_is_punct(&t, "[")) {
      const token* prev = neighbor_token(toks, i, -1);
      if (token_is_punct(prev, "(") || token_is_punct(prev, ",")) {
        lb = i;
        break;
      }
    }
  }
  if (lb == static_cast<std::size_t>(-1)) return;  // no lambda argument
  const std::size_t rb = skip_balanced(toks, lb, "[", "]") - 1;
  if (rb >= call_end) return;

  // Parameter list and body.
  std::size_t params_open = rb + 1;
  while (params_open < call_end &&
         toks[params_open].kind == token_kind::pp_directive) {
    ++params_open;
  }
  if (!token_is_punct(&toks[params_open], "(")) return;
  const std::size_t params_close =
      skip_balanced(toks, params_open, "(", ")") - 1;
  std::size_t body_open = params_close + 1;
  while (body_open < call_end && !token_is_punct(&toks[body_open], "{")) {
    ++body_open;
  }
  if (body_open >= call_end) return;
  const std::size_t body_close = skip_balanced(toks, body_open, "{", "}") - 1;

  const capture_set caps = parse_captures(toks, lb, rb);
  const std::unordered_set<std::string> locals =
      collect_locals(toks, params_open, params_close, body_open, body_close);

  for (std::size_t i = body_open + 1; i < body_close; ++i) {
    const token& t = toks[i];
    // Nested parallel sites are analyzed on their own; skip their ranges.
    if (t.kind == token_kind::identifier &&
        (t.text == "parallel_for" || t.text == "parallel_for_chunks") &&
        token_is_punct(neighbor_token(toks, i, 1), "(")) {
      i = skip_balanced(toks, i + 1, "(", ")") - 1;
      continue;
    }
    std::size_t target_end = static_cast<std::size_t>(-1);
    if (write_op(t)) {
      if (i == 0) continue;
      target_end = i - 1;
    } else if (token_is_punct(&t, "++") || token_is_punct(&t, "--")) {
      const token* next = neighbor_token(toks, i, 1);
      const token* prev = neighbor_token(toks, i, -1);
      const bool postfix =
          prev != nullptr && (prev->kind == token_kind::identifier ||
                              token_is_punct(prev, "]") ||
                              token_is_punct(prev, ")"));
      if (postfix) {
        target_end = i - 1;
      } else if (next != nullptr && next->kind == token_kind::identifier) {
        // Prefix: walk the chain forward to its last token, then resolve
        // backwards like every other lvalue.
        std::size_t e = static_cast<std::size_t>(next - toks.data());
        while (e + 1 < body_close) {
          const token& n = toks[e + 1];
          if (token_is_punct(&n, ".") || token_is_punct(&n, "->")) {
            e += 2;
            continue;
          }
          if (token_is_punct(&n, "[")) {
            e = skip_balanced(toks, e + 1, "[", "]") - 1;
            continue;
          }
          break;
        }
        target_end = e;
      } else {
        continue;
      }
    } else {
      continue;
    }

    const lvalue lv = resolve_lvalue(toks, target_end, locals);
    if (!lv.resolvable || lv.base.empty()) continue;
    if (locals.count(lv.base) != 0) continue;
    if (lv.has_index && lv.index_is_local) continue;  // disjoint-slot write

    // Decide whether the base reaches shared state.
    bool shared = false;
    std::string how;
    const bool explicit_ref = caps.by_ref.count(lv.base) != 0;
    const bool explicit_val = caps.by_val.count(lv.base) != 0;
    if (lv.base == "this") {
      shared = true;
      how = "reached through the captured 'this'";
    } else if (explicit_ref || (!explicit_val && caps.default_ref)) {
      shared = true;
      how = "captured by reference";
    } else if ((explicit_val || caps.default_val) &&
               (lv.deref || lv.has_index)) {
      shared = true;
      how = "a value-captured handle whose pointee is shared";
    } else if (caps.captures_this && !explicit_val) {
      // Not local, not captured by name, lambda holds `this`: the write
      // lands on a member of the shared object.
      shared = true;
      how = "reached through the captured 'this'";
    }
    if (!shared) continue;

    findings.push_back(
        {t.line,
         "'" + lv.base + "' is " + how + " and written by every chunk of "
             "this '" + fn_name +
             "' lambda without loop-local indexing; write disjoint slots "
             "indexed by the loop variable, reduce into per-chunk partials "
             "(DESIGN.md §8), or waive with // dv-lint: allow(capture) "
             "<reason>"});
  }
}

}  // namespace

std::vector<violation> check_captures(const std::string& rel_path,
                                      const lex_result& lx) {
  const auto& toks = lx.tokens;
  std::vector<site_finding> findings;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const token& t = toks[i];
    if (t.kind != token_kind::identifier) continue;
    if (t.text != "parallel_for" && t.text != "parallel_for_chunks") continue;
    if (!token_is_punct(neighbor_token(toks, i, 1), "(")) continue;
    if (line_allows(lx, "capture", t.line)) continue;  // site-level waiver
    analyze_site(toks, i, findings);
  }

  std::vector<violation> out;
  std::set<std::pair<int, std::string>> seen;
  for (auto& f : findings) {
    if (line_allows(lx, "capture", f.line)) continue;
    if (!seen.insert({f.line, f.message}).second) continue;
    out.push_back({rel_path, f.line, "capture", std::move(f.message)});
  }
  std::sort(out.begin(), out.end(), [](const violation& a, const violation& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.message < b.message;
  });
  return out;
}

}  // namespace dv_lint
