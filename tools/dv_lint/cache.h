// Per-file result cache for dv_lint. Each scanned file's summary
// (violations, includes, declared/used symbols, api entries) is stored
// as a small text record under the cache dir, keyed by the FNV-1a hash
// of the repo-relative path and guarded by the FNV-1a hash of the file
// contents plus a format-version stamp. A warm run re-lints only files
// whose contents changed; everything else is replayed from the records,
// so the cross-file passes still see the full tree.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "lint.h"

namespace dv_lint {

/// Bump when the record format changes; every stale record then misses
/// and is rewritten. v2 added the effect-inference records (functions,
/// parallel sites, globals); v3 added the race-detector records
/// (accesses, statics, classes/fields, global metadata) and stamped
/// lint_schema_hash() into the header, so adding or revising a check
/// invalidates old records without a manual version bump.
inline constexpr int k_cache_version = 3;

std::uint64_t fnv1a_hash(std::string_view data);

/// Loads the cached summary for `rel_path` into `out`. Returns false on
/// a miss: no record, unreadable/garbled record, version or content-hash
/// mismatch.
bool cache_load(const std::string& cache_dir, const std::string& rel_path,
                std::uint64_t content_hash, file_summary& out);

/// Writes the record for `summary` (creates `cache_dir` if needed).
/// Returns false on I/O failure — callers treat that as a soft error.
bool cache_store(const std::string& cache_dir, const file_summary& summary);

}  // namespace dv_lint
