#include "api_surface.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <unordered_set>

#include "token_utils.h"

namespace dv_lint {

namespace {

bool is_keyword_like(const std::string& s) {
  static const std::unordered_set<std::string> kw = {
      "if",     "for",      "while",   "switch",   "return", "sizeof",
      "alignof", "alignas", "static_assert", "decltype", "noexcept",
      "throw",  "catch",    "new",     "delete",   "operator", "requires",
      "case",   "goto",     "do",      "else",     "typename", "typedef",
      "using",  "template", "class",   "struct",   "union",  "enum",
      "namespace", "public", "private", "protected", "virtual", "override",
      "final",  "const",    "constexpr", "constinit", "consteval",
      "static", "inline",   "explicit", "friend",   "extern", "mutable",
      "volatile", "register", "this",   "true",     "false",  "nullptr",
      "concept", "export",  "auto",    "void",     "bool",   "char",
      "int",    "float",    "double",  "long",     "short",  "signed",
      "unsigned", "wchar_t"};
  return kw.count(s) != 0;
}

/// Skips a template argument/parameter list starting at the `<` token,
/// treating a `>>` token as two closers. Returns the index just past it.
std::size_t skip_angles(const std::vector<token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const token& t = toks[i];
    if (token_is_punct(&t, "<")) ++depth;
    if (token_is_punct(&t, "<<")) depth += 2;
    if (token_is_punct(&t, ">")) {
      if (--depth <= 0) return i + 1;
    }
    if (token_is_punct(&t, ">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    }
    if (token_is_punct(&t, ";") || token_is_punct(&t, "{")) return i;
  }
  return toks.size();
}

struct scope {
  brace_kind kind;
  std::string name;  // namespace or type name, "" otherwise
};

class extractor {
 public:
  explicit extractor(const lex_result& lx) : lx_{lx}, toks_{lx.tokens} {}

  header_decls run() {
    for (i_ = 0; i_ < toks_.size(); ++i_) {
      const token& t = toks_[i_];
      if (t.kind == token_kind::pp_directive) {
        scan_define(t.text);
        continue;
      }
      if (token_is_punct(&t, "{")) {
        scope s{classify_brace(toks_, i_), ""};
        if ((s.kind == brace_kind::ns || s.kind == brace_kind::type) &&
            !pending_name_.empty()) {
          s.name = pending_name_;
        }
        pending_name_.clear();
        stack_.push_back(std::move(s));
        continue;
      }
      if (token_is_punct(&t, "}")) {
        if (!stack_.empty()) stack_.pop_back();
        continue;
      }
      if (t.kind != token_kind::identifier) continue;
      if (t.text == "template") {
        const token* next = neighbor_token(toks_, i_, 1);
        if (token_is_punct(next, "<")) {
          i_ = skip_angles(toks_, i_ + 1) - 1;
        }
        continue;
      }
      if (t.text == "namespace") {
        handle_namespace();
        continue;
      }
      if (t.text == "enum") {
        handle_enum();
        continue;
      }
      if (t.text == "class" || t.text == "struct" || t.text == "union") {
        handle_class(t.text);
        continue;
      }
      if (t.text == "using") {
        handle_using();
        continue;
      }
      if (t.text == "typedef") {
        handle_typedef();
        continue;
      }
      if (t.text == "operator") {
        // Skip the operator token itself; never collect operator names.
        continue;
      }
      handle_plain_ident();
    }
    std::sort(out_.declared.begin(), out_.declared.end());
    out_.declared.erase(
        std::unique(out_.declared.begin(), out_.declared.end()),
        out_.declared.end());
    std::sort(out_.api.begin(), out_.api.end());
    out_.api.erase(std::unique(out_.api.begin(), out_.api.end()),
                   out_.api.end());
    return std::move(out_);
  }

 private:
  bool collectible() const {
    for (const scope& s : stack_) {
      if (s.kind == brace_kind::code || s.kind == brace_kind::expr) {
        return false;
      }
    }
    return true;
  }

  bool at_namespace_scope() const {
    for (const scope& s : stack_) {
      if (s.kind != brace_kind::ns) return false;
    }
    return true;
  }

  std::string qualified(const std::string& name) const {
    std::string q;
    for (const scope& s : stack_) {
      if (s.name.empty()) continue;
      q += s.name;
      q += "::";
    }
    return q + name;
  }

  void declare(const std::string& name) {
    if (!name.empty()) out_.declared.push_back(name);
  }

  void scan_define(const std::string& text) {
    std::size_t p = text.find_first_not_of(" \t");
    if (p == std::string::npos || text[p] != '#') return;
    p = text.find_first_not_of(" \t", p + 1);
    if (p == std::string::npos || text.compare(p, 6, "define") != 0) return;
    p = text.find_first_not_of(" \t", p + 6);
    if (p == std::string::npos) return;
    std::size_t e = p;
    while (e < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[e])) ||
            text[e] == '_')) {
      ++e;
    }
    if (e > p) declare(text.substr(p, e - p));
  }

  const token* tok(std::size_t idx) const {
    return idx < toks_.size() ? &toks_[idx] : nullptr;
  }

  void handle_namespace() {
    const token* prev = neighbor_token(toks_, i_, -1);
    if (token_is_ident(prev, "using")) return;
    std::string name;
    std::size_t j = i_ + 1;
    while (j < toks_.size()) {
      const token& t = toks_[j];
      if (t.kind == token_kind::identifier) {
        name += t.text;
        ++j;
        continue;
      }
      if (token_is_punct(&t, "::")) {
        name += "::";
        ++j;
        continue;
      }
      break;
    }
    if (j < toks_.size() && token_is_punct(&toks_[j], "=")) {
      // namespace alias: skip to the semicolon.
      while (j < toks_.size() && !token_is_punct(&toks_[j], ";")) ++j;
      i_ = j;
      return;
    }
    if (!name.empty() && collectible()) {
      out_.api.push_back("namespace " + qualified(name));
    }
    pending_name_ = name;
    i_ = j - 1;
  }

  void handle_class(const std::string& kw) {
    // `enum class` is routed through handle_enum before we get here.
    std::size_t j = i_ + 1;
    // Skip attributes and alignment specifiers.
    while (j < toks_.size()) {
      if (token_is_punct(&toks_[j], "[")) {
        j = skip_balanced(toks_, j, "[", "]");
        continue;
      }
      if (token_is_ident(&toks_[j], "alignas") &&
          token_is_punct(tok(j + 1), "(")) {
        j = skip_balanced(toks_, j + 1, "(", ")");
        continue;
      }
      break;
    }
    if (j >= toks_.size() || toks_[j].kind != token_kind::identifier) return;
    const std::string name = toks_[j].text;
    // Decide between definition, forward declaration, and elaborated
    // type in a variable declaration by peeking at what follows.
    std::size_t k = j + 1;
    if (k < toks_.size() && token_is_punct(&toks_[k], "<")) {
      k = skip_angles(toks_, k);  // explicit specialization
    }
    if (k < toks_.size() && token_is_ident(&toks_[k], "final")) ++k;
    if (k >= toks_.size()) return;
    if (token_is_punct(&toks_[k], ";")) {  // forward declaration
      declare(name);
      i_ = k;
      return;
    }
    if (!token_is_punct(&toks_[k], "{") && !token_is_punct(&toks_[k], ":")) {
      return;  // elaborated type (e.g. `struct tm t;`) — not a declaration
    }
    declare(name);
    if (collectible()) {
      out_.api.push_back(kw + " " + qualified(name));
    }
    pending_name_ = name;
    i_ = j;
  }

  void handle_enum() {
    std::size_t j = i_ + 1;
    if (j < toks_.size() && (token_is_ident(&toks_[j], "class") ||
                             token_is_ident(&toks_[j], "struct"))) {
      ++j;
    }
    std::string name;
    if (j < toks_.size() && toks_[j].kind == token_kind::identifier) {
      name = toks_[j].text;
      ++j;
    }
    // Optional underlying type, then `{` (definition) or `;` (opaque).
    while (j < toks_.size() && !token_is_punct(&toks_[j], "{") &&
           !token_is_punct(&toks_[j], ";")) {
      ++j;
    }
    if (j >= toks_.size() || token_is_punct(&toks_[j], ";")) {
      declare(name);
      i_ = j;
      return;
    }
    const std::size_t close = skip_balanced(toks_, j, "{", "}") - 1;
    std::vector<std::string> enumerators;
    bool expect_name = true;
    int depth = 0;
    for (std::size_t k = j + 1; k < close; ++k) {
      const token& t = toks_[k];
      if (t.kind == token_kind::punct &&
          (t.text == "(" || t.text == "{" || t.text == "[")) {
        ++depth;
      }
      if (t.kind == token_kind::punct &&
          (t.text == ")" || t.text == "}" || t.text == "]")) {
        --depth;
      }
      if (depth == 0 && token_is_punct(&t, ",")) {
        expect_name = true;
        continue;
      }
      if (expect_name && t.kind == token_kind::identifier) {
        enumerators.push_back(t.text);
        declare(t.text);
        expect_name = false;
      }
    }
    declare(name);
    if (!name.empty() && collectible()) {
      std::string entry = "enum " + qualified(name) + " {";
      for (std::size_t e = 0; e < enumerators.size(); ++e) {
        entry += (e == 0 ? " " : ", ") + enumerators[e];
      }
      entry += enumerators.empty() ? "}" : " }";
      out_.api.push_back(entry);
    }
    i_ = close;
  }

  void handle_using() {
    const token* next = neighbor_token(toks_, i_, 1);
    if (next == nullptr) return;
    if (token_is_ident(next, "namespace")) {
      while (i_ < toks_.size() && !token_is_punct(&toks_[i_], ";")) ++i_;
      return;
    }
    if (next->kind == token_kind::identifier) {
      const std::size_t name_idx =
          static_cast<std::size_t>(next - toks_.data());
      if (token_is_punct(tok(name_idx + 1), "=")) {
        declare(next->text);  // alias declaration
      }
    }
    while (i_ < toks_.size() && !token_is_punct(&toks_[i_], ";")) ++i_;
  }

  void handle_typedef() {
    std::string last;
    while (i_ < toks_.size() && !token_is_punct(&toks_[i_], ";")) {
      if (toks_[i_].kind == token_kind::identifier) last = toks_[i_].text;
      ++i_;
    }
    if (!is_keyword_like(last)) declare(last);
  }

  void handle_plain_ident() {
    const token& t = toks_[i_];
    if (is_keyword_like(t.text)) return;
    if (!collectible()) return;
    const token* prev = neighbor_token(toks_, i_, -1);
    const token* next = neighbor_token(toks_, i_, 1);
    const bool prev_ok =
        prev == nullptr ||
        (prev->kind == token_kind::identifier &&
         prev->text != "operator" && prev->text != "return" &&
         prev->text != "namespace") ||
        token_is_punct(prev, ";") || token_is_punct(prev, "}") ||
        token_is_punct(prev, "{") || token_is_punct(prev, ">") ||
        token_is_punct(prev, ">>") || token_is_punct(prev, "*") ||
        token_is_punct(prev, "&") || token_is_punct(prev, "&&") ||
        token_is_punct(prev, "]");
    if (token_is_punct(next, "(") && prev_ok) {
      declare(t.text);  // function or constructor name
      if (at_namespace_scope()) {
        out_.api.push_back("function " + qualified(t.text));
      }
      // Skip the parameter list so parameter names are not collected.
      i_ = skip_balanced(toks_, i_ + 1, "(", ")") - 1;
      return;
    }
    const bool prev_typeish =
        prev != nullptr &&
        ((prev->kind == token_kind::identifier && !is_keyword_like(prev->text)
              ? true
              : (token_is_ident(prev, "auto") || token_is_ident(prev, "bool") ||
                 token_is_ident(prev, "int") || token_is_ident(prev, "char") ||
                 token_is_ident(prev, "float") ||
                 token_is_ident(prev, "double") ||
                 token_is_ident(prev, "long") ||
                 token_is_ident(prev, "short") ||
                 token_is_ident(prev, "unsigned") ||
                 token_is_ident(prev, "signed") ||
                 token_is_ident(prev, "const") ||
                 token_is_ident(prev, "constexpr"))) ||
         token_is_punct(prev, ">") || token_is_punct(prev, ">>") ||
         token_is_punct(prev, "*") || token_is_punct(prev, "&") ||
         token_is_punct(prev, "&&"));
    if (prev_typeish && next != nullptr && next->kind == token_kind::punct &&
        (next->text == "=" || next->text == ";" || next->text == "{" ||
         next->text == "[" || next->text == ":" || next->text == ",")) {
      declare(t.text);  // member / constant / variable declaration
    }
  }

  const lex_result& lx_;
  const std::vector<token>& toks_;
  std::size_t i_{0};
  std::vector<scope> stack_;
  std::string pending_name_;
  header_decls out_;
};

}  // namespace

header_decls extract_decls(const lex_result& lx) {
  return extractor{lx}.run();
}

std::string render_surface(const std::vector<file_summary>& summaries) {
  std::set<std::string> lines;
  for (const file_summary& s : summaries) {
    for (const std::string& entry : s.api) {
      lines.insert(s.rel_path + " " + entry);
    }
  }
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace dv_lint
