// Static lockset race detector. check_races() resolves the cross-TU
// call graph (call_graph.h), computes each function's entry lockset —
// the meet (intersection) over all call sites of the locks guaranteed
// held by every caller — and checks every access to shared state:
//
//   shared state = namespace-scope mutables, mutable `static` locals,
//       and member fields of any src/ class that owns a std::mutex or
//       std::atomic member
//
//   guarded-by   — state annotated `// dv:guarded-by(<lock>)` must hold
//       that lock (entry lockset ∪ locks acquired locally) at every
//       non-exempt access; violations point at the access site
//   inference    — unannotated state gets the Eraser treatment: the
//       candidate lockset is the intersection of the effective locksets
//       over all accesses. An empty intersection with at least one
//       write in a function reachable from a concurrency root
//       (parallel_for lambdas, dv:thread-entry functions) is reported
//       at the declaration, with a witness pair of accesses and the
//       call chain from the root
//
// Exempt accesses: std::atomic / mutex / condition_variable / const
// members (they are not data in the lockset sense), dv:init functions,
// constructors/destructors of the owning class, a static local's own
// initializer, and anything waived with `// dv-lint: allow(race)` (on
// the access line: that access; on the declaration: the whole
// variable).
#pragma once

#include <string>
#include <vector>

#include "lint.h"

namespace dv_lint {

/// Cross-file pass over every scanned file's cached records. Violations
/// carry check == "race" and are sorted by (file, line).
std::vector<violation> check_races(const std::vector<file_summary>& files);

/// Renders the shared-state accesses of every function whose qualified
/// name matches `name` (exact or suffix), with the effective lockset at
/// each access and the function's reachability from concurrency roots.
/// Returns "" when no function matches.
std::string explain_races(const std::vector<file_summary>& files,
                          const std::string& name);

}  // namespace dv_lint
