// Small token-cursor helpers shared by the dv_lint passes. Everything
// here operates on the token stream from lexer.h; `neighbor` steps over
// preprocessor directives so `#include` lines never masquerade as
// expression context.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "lexer.h"

namespace dv_lint {

inline const token* neighbor_token(const std::vector<token>& toks,
                                   std::size_t i, int step) {
  for (std::size_t j = i;;) {
    if (step < 0 && j == 0) return nullptr;
    j = static_cast<std::size_t>(static_cast<long long>(j) + step);
    if (j >= toks.size()) return nullptr;
    if (toks[j].kind != token_kind::pp_directive) return &toks[j];
  }
}

inline bool token_is_ident(const token* t, std::string_view text) {
  return t != nullptr && t->kind == token_kind::identifier && t->text == text;
}

inline bool token_is_punct(const token* t, std::string_view text) {
  return t != nullptr && t->kind == token_kind::punct && t->text == text;
}

/// Index just past the closer matching the opener at `open` (or
/// toks.size() when unbalanced). `open_ch`/`close_ch` are single-char
/// punctuators like "("/")" or "["/"]".
inline std::size_t skip_balanced(const std::vector<token>& toks,
                                 std::size_t open, std::string_view open_ch,
                                 std::string_view close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (token_is_punct(&toks[i], open_ch)) ++depth;
    if (token_is_punct(&toks[i], close_ch) && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// What kind of scope a `{` opened. Derived from the tokens preceding it.
enum class brace_kind : char {
  ns,    // namespace / extern "C"
  type,  // class / struct / union / enum body
  code,  // function, lambda, or control-flow body
  expr   // braced initializer or unknown
};

inline brace_kind classify_brace(const std::vector<token>& toks,
                                 std::size_t open) {
  int seen = 0;
  for (const token* t = neighbor_token(toks, open, -1);
       t != nullptr && seen < 12; ++seen) {
    if (t->kind == token_kind::punct &&
        (t->text == ";" || t->text == "{" || t->text == "}")) {
      break;
    }
    if (token_is_punct(t, ")")) return brace_kind::code;
    if (t->kind == token_kind::identifier) {
      if (t->text == "namespace" || t->text == "extern") {
        return brace_kind::ns;
      }
      if (t->text == "class" || t->text == "struct" || t->text == "union" ||
          t->text == "enum") {
        return brace_kind::type;
      }
      if (t->text == "else" || t->text == "do" || t->text == "try") {
        return brace_kind::code;
      }
      if (t->text == "return") return brace_kind::expr;
    }
    if (token_is_punct(t, "=")) return brace_kind::expr;
    const std::size_t idx = static_cast<std::size_t>(t - toks.data());
    t = neighbor_token(toks, idx, -1);
  }
  return brace_kind::expr;
}

/// True when `// dv-lint: allow(<check>)` appears on `line` or the line
/// directly above it.
inline bool line_allows(const lex_result& lx, std::string_view check,
                        int line) {
  for (const int l : {line, line - 1}) {
    const auto it = lx.notes.find(l);
    if (it == lx.notes.end()) continue;
    for (const auto& name : it->second.allowed) {
      if (name == check) return true;
    }
  }
  return false;
}

}  // namespace dv_lint
