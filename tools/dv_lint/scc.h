// Iterative Tarjan strongly-connected-components, shared by the
// include-graph cycle pass and the effect-inference fixed point. The
// graph is adjacency lists over dense node indices; sccs() returns every
// component in *reverse topological order* of the condensation (callees
// before callers when edges point caller -> callee), which is exactly
// the order a bottom-up fixed point wants to visit them in.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace dv_lint {

struct scc_result {
  /// Every component, singletons included, in reverse topological order
  /// of the condensation (a node's out-edges lead only into components
  /// emitted earlier).
  std::vector<std::vector<std::size_t>> components;
  /// component_of[node] = index into `components`.
  std::vector<std::size_t> component_of;
};

inline scc_result tarjan_sccs(
    const std::vector<std::vector<std::size_t>>& edges) {
  const std::size_t n = edges.size();
  scc_result out;
  out.component_of.assign(n, 0);
  std::vector<int> index_of(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  int next_index = 0;

  for (std::size_t root = 0; root < n; ++root) {
    if (index_of[root] >= 0) continue;
    // Explicit stack: (node, next-edge cursor).
    std::vector<std::pair<std::size_t, std::size_t>> work{{root, 0}};
    while (!work.empty()) {
      auto& [v, cursor] = work.back();
      if (cursor == 0) {
        index_of[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (cursor < edges[v].size()) {
        const std::size_t w = edges[v][cursor++];
        if (index_of[w] < 0) {
          work.emplace_back(w, 0);
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index_of[w]);
      }
      if (descended) continue;
      if (low[v] == index_of[v]) {
        std::vector<std::size_t> scc;
        for (;;) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          out.component_of[w] = out.components.size();
          scc.push_back(w);
          if (w == v) break;
        }
        out.components.push_back(std::move(scc));
      }
      const std::size_t finished = v;
      work.pop_back();
      if (!work.empty()) {
        const std::size_t parent = work.back().first;
        low[parent] = std::min(low[parent], low[finished]);
      }
    }
  }
  return out;
}

}  // namespace dv_lint
