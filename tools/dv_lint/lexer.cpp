#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace dv_lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when `tag(` appears in `text` with a non-empty reason between the
/// parentheses (the shared shape of the dv: function annotations).
bool has_reasoned_tag(std::string_view text, std::string_view tag) {
  const std::size_t at = text.find(tag);
  if (at == std::string_view::npos) return false;
  const std::size_t open = at + tag.size();
  const std::size_t close = text.find(')', open);
  return close != std::string_view::npos && close > open;
}

/// Parses lint annotations out of one comment's text and attaches them to
/// `notes`. Grammar (anywhere inside the comment, all forms may repeat):
///   dv-lint: allow(<check>[, <check>...])
///   dv:parallel-safe / dv:init / dv:hot-path, each followed by
///   (<non-empty reason>)
/// The tag spellings are split across lines above on purpose: this very
/// comment would otherwise annotate scan_comment itself.
void scan_comment(std::string_view text, int line, line_notes& notes) {
  constexpr std::string_view allow_tag = "dv-lint: allow(";
  for (std::size_t pos = 0; (pos = text.find(allow_tag, pos)) != std::string_view::npos;) {
    pos += allow_tag.size();
    const std::size_t close = text.find(')', pos);
    if (close == std::string_view::npos) break;
    std::string_view list = text.substr(pos, close - pos);
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      std::string_view item = list.substr(0, comma);
      while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) {
        item.remove_prefix(1);
      }
      while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) {
        item.remove_suffix(1);
      }
      if (!item.empty()) notes.allowed.emplace_back(item);
      if (comma == std::string_view::npos) break;
      list.remove_prefix(comma + 1);
    }
    pos = close;
  }
  if (has_reasoned_tag(text, "dv:parallel-safe(")) notes.parallel_safe = true;
  if (has_reasoned_tag(text, "dv:init(")) notes.init_fn = true;
  if (has_reasoned_tag(text, "dv:hot-path(")) notes.hot_path = true;
  if (has_reasoned_tag(text, "dv:thread-entry(")) notes.thread_entry = true;
  constexpr std::string_view guard_tag = "dv:guarded-by(";
  const std::size_t guard_at = text.find(guard_tag);
  if (guard_at != std::string_view::npos) {
    const std::size_t open = guard_at + guard_tag.size();
    const std::size_t close = text.find(')', open);
    if (close != std::string_view::npos && close > open) {
      std::string_view lock = text.substr(open, close - open);
      while (!lock.empty() && (lock.front() == ' ' || lock.front() == '\t')) {
        lock.remove_prefix(1);
      }
      while (!lock.empty() && (lock.back() == ' ' || lock.back() == '\t')) {
        lock.remove_suffix(1);
      }
      notes.guarded_by.assign(lock);
    }
  }
  (void)line;
}

class lexer {
 public:
  explicit lexer(std::string_view source) : src_{source} {}

  lex_result run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        pp_line();
        continue;
      }
      at_line_start_ = false;
      if (c == '"' || c == '\'') {
        quoted(c);
        continue;
      }
      if (c == 'R' && peek(1) == '"') {
        raw_string();
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(token_kind kind, std::string text, int line) {
    out_.tokens.push_back({kind, std::move(text), line});
  }

  void line_comment() {
    const int start = line_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    scan_comment(src_.substr(begin, pos_ - begin), start, out_.notes[start]);
  }

  void block_comment() {
    const int start = line_;
    const std::size_t begin = pos_;
    pos_ += 2;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) pos_ += 2;
    scan_comment(src_.substr(begin, pos_ - begin), start, out_.notes[start]);
  }

  /// One preprocessor logical line, including backslash continuations.
  /// Trailing // and /* comments still get annotation-scanned.
  void pp_line() {
    const int start = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        break;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      text.push_back(c);
      ++pos_;
    }
    emit(token_kind::pp_directive, std::move(text), start);
    at_line_start_ = true;  // consumed up to (not including) the newline
  }

  void quoted(char quote) {
    const int start = line_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != quote) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;
    emit(token_kind::string_lit, "", start);
  }

  void raw_string() {
    const int start = line_;
    pos_ += 2;  // R"
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim.push_back(src_[pos_++]);
    const std::string close = ")" + delim + "\"";
    while (pos_ < src_.size() && src_.compare(pos_, close.size(), close) != 0) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) pos_ += close.size();
    emit(token_kind::string_lit, "", start);
  }

  void identifier() {
    const int start = line_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    emit(token_kind::identifier, std::string{src_.substr(begin, pos_ - begin)},
         start);
  }

  void number() {
    const int start = line_;
    const std::size_t begin = pos_;
    // Good enough for lint purposes: digits, hex, separators, exponents
    // (with signs), suffixes, and the decimal point.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    emit(token_kind::number, std::string{src_.substr(begin, pos_ - begin)},
         start);
  }

  void punct() {
    const int start = line_;
    // Multi-character operators stay intact (maximal munch, longest
    // first) so the passes can tell `<=` from `<<=` from `<` `=` and
    // recognize compound assignments / increments as single tokens.
    static constexpr std::string_view multi[] = {
        "<<=", ">>=", "<=>", "...", "::", "->", "!=", "==",
        "&&",  "||",  "+=",  "-=",  "*=", "/=", "%=", "&=",
        "|=",  "^=",  "<<",  ">>",  "<=", ">=", "++", "--"};
    for (const std::string_view op : multi) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        emit(token_kind::punct, std::string{op}, start);
        pos_ += op.size();
        return;
      }
    }
    emit(token_kind::punct, std::string(1, src_[pos_]), start);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_{0};
  int line_{1};
  bool at_line_start_{true};
  lex_result out_;
};

}  // namespace

lex_result lex(std::string_view source) { return lexer{source}.run(); }

}  // namespace dv_lint
