// API-surface pass: extracts the public symbol inventory of a header —
// namespaces, class/struct/union definitions, free functions, and enums
// with their enumerator names — as canonical text entries. run_cli
// aggregates the entries of every header under src/ into a sorted
// snapshot, compares it against the checked-in golden
// (tools/dv_lint/api_surface.golden) under --check-api-surface, and
// rewrites the golden under --update-api-surface, so every API break is
// an explicit, reviewable diff.
//
// The same extraction also yields the `declared` symbol set (a superset
// of the API entries: members, aliases, macros, constants) that the
// include-graph pass uses for its unused-include heuristic.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace dv_lint {

struct header_decls {
  /// Canonical API entries, e.g. "class dv::tensor",
  /// "function dv::gemm_nn", "enum dv::log_level { debug, info }".
  std::vector<std::string> api;
  /// Sorted unique names the file declares (types, functions, members,
  /// enumerators, aliases, macros). Namespace names are excluded: a
  /// `dv::` qualifier in an includer must not count as symbol use.
  std::vector<std::string> declared;
};

header_decls extract_decls(const lex_result& lx);

/// Renders the sorted, unique API snapshot over every summarized header
/// under src/: one `<header> <entry>` line each, trailing newline.
std::string render_surface(const std::vector<file_summary>& summaries);

}  // namespace dv_lint
