#include "effects.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "call_graph.h"
#include "scc.h"
#include "token_utils.h"

namespace dv_lint {

const char* effect_name(effect e) {
  switch (e) {
    case effect::may_block:
      return "may_block";
    case effect::may_allocate:
      return "may_allocate";
    case effect::reads_env:
      return "reads_env";
    case effect::reads_clock:
      return "reads_clock";
    case effect::uses_ambient_rng:
      return "uses_ambient_rng";
    case effect::writes_global:
      return "writes_global";
  }
  return "?";
}

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::vector<std::string>& v, std::string_view s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

// path_effect_exempt now lives in call_graph.cpp (the race pass shares
// it for propagation decisions, not for scope).

bool keyword_like(const std::string& s) {
  static const std::unordered_set<std::string> kw = {
      "if",       "for",     "while",   "switch",     "return",
      "sizeof",   "alignof", "alignas", "decltype",   "static_assert",
      "noexcept", "throw",   "catch",   "new",        "delete",
      "operator", "requires", "case",   "goto",       "do",
      "else",     "typename", "typedef", "using",     "template",
      "class",    "struct",  "union",   "enum",       "namespace",
      "public",   "private", "protected", "co_return", "co_await",
      "co_yield", "assert",  "defined", "this"};
  return kw.count(s) != 0;
}

/// Index of the opener matching the closer at `close` (scanning
/// backwards), or npos when unbalanced.
std::size_t match_backward(const std::vector<token>& toks, std::size_t close,
                           std::string_view open_ch,
                           std::string_view close_ch) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (token_is_punct(&toks[i], close_ch)) ++depth;
    if (token_is_punct(&toks[i], open_ch) && --depth == 0) return i;
  }
  return npos;
}

/// Skips a template argument list starting at `<` (same contract as the
/// api-surface pass: bail at `;`/`{` so comparisons don't run away).
std::size_t skip_angles(const std::vector<token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const token& t = toks[i];
    if (token_is_punct(&t, "<")) ++depth;
    if (token_is_punct(&t, "<<")) depth += 2;
    if (token_is_punct(&t, ">") && --depth <= 0) return i + 1;
    if (token_is_punct(&t, ">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    }
    if (token_is_punct(&t, ";") || token_is_punct(&t, "{")) return i;
  }
  return toks.size();
}

bool write_op(const token& t) {
  if (t.kind != token_kind::punct) return false;
  static const std::unordered_set<std::string> ops = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  return ops.count(t.text) != 0;
}

bool type_ish(const token* t) {
  if (t == nullptr) return false;
  if (t->kind == token_kind::identifier) return !keyword_like(t->text);
  return token_is_punct(t, "*") || token_is_punct(t, "&") ||
         token_is_punct(t, "&&") || token_is_punct(t, ">") ||
         token_is_punct(t, ">>");
}

std::vector<std::string> allows_at(const lex_result& lx, int line) {
  std::vector<std::string> out;
  for (const int l : {line, line - 1}) {
    const auto it = lx.notes.find(l);
    if (it == lx.notes.end()) continue;
    for (const auto& name : it->second.allowed) {
      if (!contains(out, name)) out.push_back(name);
    }
  }
  return out;
}

bool note_flag(const lex_result& lx, int line, bool line_notes::* field) {
  for (const int l : {line, line - 1}) {
    const auto it = lx.notes.find(l);
    if (it != lx.notes.end() && it->second.*field) return true;
  }
  return false;
}

/// The dv:guarded-by(<lock>) annotation on `line` or the line above.
std::string guard_note(const lex_result& lx, int line) {
  for (const int l : {line, line - 1}) {
    const auto it = lx.notes.find(l);
    if (it != lx.notes.end() && !it->second.guarded_by.empty()) {
      return it->second.guarded_by;
    }
  }
  return {};
}

/// The resolved base of one write target (compact version of the
/// capture pass's lvalue walk: chase `]`/`)` groups and `.`/`->` links
/// back to the leftmost identifier).
struct lvalue {
  std::string base;
  bool resolvable{false};
};

lvalue resolve_lvalue(const std::vector<token>& toks, std::size_t last) {
  lvalue lv;
  std::size_t p = last;
  for (int hops = 0; hops < 32; ++hops) {
    const token& t = toks[p];
    if (token_is_punct(&t, "]") || token_is_punct(&t, ")")) {
      const bool bracket = t.text == "]";
      const std::size_t open =
          match_backward(toks, p, bracket ? "[" : "(", bracket ? "]" : ")");
      if (open == npos || open == 0) return lv;
      p = open - 1;
      continue;
    }
    if (t.kind == token_kind::identifier) {
      const token* prev = neighbor_token(toks, p, -1);
      if (token_is_punct(prev, ".") || token_is_punct(prev, "->")) {
        const std::size_t dot = static_cast<std::size_t>(prev - toks.data());
        if (dot == 0) return lv;
        if (token_is_ident(neighbor_token(toks, dot, -1), "this")) {
          lv.base = t.text;  // `this->member`: the member is the base
          lv.resolvable = true;
          return lv;
        }
        p = dot - 1;
        continue;
      }
      if (token_is_punct(prev, "::")) return lv;  // qualified: not ours
      lv.base = t.text;
      lv.resolvable = true;
      return lv;
    }
    return lv;
  }
  return lv;
}

// ---------------------------------------------------------------------------
// Direct-effect vocabularies. Method spellings (after . or ->) count for
// the blocking set only; env/clock/RNG must be free or std-qualified.

bool blocking_call(const std::string& s) {
  static const std::unordered_set<std::string> names = {
      "wait",      "wait_for", "wait_until", "join",  "sleep_for",
      "sleep_until", "fopen",  "fread",      "fwrite", "fgets",
      "fclose",    "popen",    "system",     "getline"};
  return names.count(s) != 0;
}

bool io_ident(const std::string& s) {
  static const std::unordered_set<std::string> names = {
      "ifstream", "ofstream", "fstream", "cout", "cerr", "clog"};
  return names.count(s) != 0;
}

bool io_call(const std::string& s) {
  static const std::unordered_set<std::string> names = {
      "printf", "fprintf", "puts", "fputs"};
  return names.count(s) != 0;
}

bool alloc_call(const std::string& s) {
  static const std::unordered_set<std::string> names = {
      "make_unique", "make_shared", "push_back",
      "emplace_back", "resize",     "reserve"};
  return names.count(s) != 0;
}

bool clock_ident(const std::string& s) {
  return s == "system_clock" || s == "steady_clock" ||
         s == "high_resolution_clock";
}

bool clock_call(const std::string& s) {
  static const std::unordered_set<std::string> names = {
      "time", "clock", "gettimeofday", "localtime", "gmtime", "ctime"};
  return names.count(s) != 0;
}

bool rng_call(const std::string& s) {
  static const std::unordered_set<std::string> names = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48"};
  return names.count(s) != 0;
}

/// Mutating member calls that count as writes through their receiver
/// (so `out.push_back(x)` on a ref parameter marks it written).
bool mutator_method(const std::string& s) {
  static const std::unordered_set<std::string> names = {
      "push_back", "emplace_back", "insert", "erase",
      "clear",     "resize",       "reserve", "store", "assign"};
  return names.count(s) != 0;
}

bool guard_class(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

// ---------------------------------------------------------------------------
// Per-file extraction

struct scope {
  brace_kind kind;
  std::string name;
};

struct held_lock {
  std::string name;
  int depth{0};
  std::string guard_var;
};

class extractor {
 public:
  extractor(const std::string& rel_path, const lex_result& lx)
      : rel_{rel_path},
        lx_{lx},
        toks_{lx.tokens},
        thread_pool_home_{rel_path == "src/util/thread_pool.h" ||
                          rel_path == "src/util/thread_pool.cpp"} {}

  file_effects run() {
    for (i_ = 0; i_ < toks_.size(); ++i_) {
      const token& t = toks_[i_];
      if (t.kind == token_kind::pp_directive) continue;
      if (token_is_punct(&t, "{")) {
        scope s{classify_brace(toks_, i_), ""};
        if ((s.kind == brace_kind::ns || s.kind == brace_kind::type) &&
            !pending_name_.empty()) {
          s.name = pending_name_;
        }
        pending_name_.clear();
        stack_.push_back(std::move(s));
        continue;
      }
      if (token_is_punct(&t, "}")) {
        if (!stack_.empty()) stack_.pop_back();
        continue;
      }
      if (t.kind != token_kind::identifier) continue;
      if (t.text == "template" &&
          token_is_punct(neighbor_token(toks_, i_, 1), "<")) {
        i_ = skip_angles(toks_, i_ + 1) - 1;
        continue;
      }
      if (t.text == "namespace") {
        handle_namespace();
        continue;
      }
      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "enum") {
        handle_type_keyword();
        continue;
      }
      if (t.text == "using" || t.text == "typedef") {
        while (i_ < toks_.size() && !token_is_punct(&toks_[i_], ";")) ++i_;
        continue;
      }
      if (t.text == "operator") continue;  // operator defs: not tracked
      if (keyword_like(t.text)) continue;
      if (i_ + 1 < toks_.size() && token_is_punct(&toks_[i_ + 1], "(")) {
        if (try_function(i_)) continue;
        // Not a definition: skip the parameter list / argument list so
        // its contents never masquerade as declarations.
        i_ = skip_balanced(toks_, i_ + 1, "(", ")") - 1;
        continue;
      }
      maybe_global(i_);
      maybe_field(i_);
    }
    std::sort(out_.sites.begin(), out_.sites.end(),
              [](const par_site_record& a, const par_site_record& b) {
                return a.line < b.line;
              });
    std::sort(out_.globals.begin(), out_.globals.end());
    out_.globals.erase(std::unique(out_.globals.begin(), out_.globals.end()),
                       out_.globals.end());
    return std::move(out_);
  }

 private:
  bool collectible() const {
    for (const scope& s : stack_) {
      if (s.kind == brace_kind::code || s.kind == brace_kind::expr) {
        return false;
      }
    }
    return true;
  }

  bool at_ns_scope() const {
    for (const scope& s : stack_) {
      if (s.kind != brace_kind::ns) return false;
    }
    return true;
  }

  std::string scope_qualifier() const {
    std::string q;
    for (const scope& s : stack_) {
      if (s.name.empty()) continue;
      if (!q.empty()) q += "::";
      q += s.name;
    }
    return q;
  }

  void handle_namespace() {
    const token* prev = neighbor_token(toks_, i_, -1);
    if (token_is_ident(prev, "using")) return;
    std::string name;
    std::size_t j = i_ + 1;
    while (j < toks_.size()) {
      if (toks_[j].kind == token_kind::identifier) {
        name += toks_[j].text;
      } else if (token_is_punct(&toks_[j], "::")) {
        name += "::";
      } else {
        break;
      }
      ++j;
    }
    if (j < toks_.size() && token_is_punct(&toks_[j], "=")) {
      while (j < toks_.size() && !token_is_punct(&toks_[j], ";")) ++j;
      i_ = j;
      return;
    }
    pending_name_ = name;
    i_ = j - 1;
  }

  void handle_type_keyword() {
    std::size_t j = i_ + 1;
    if (j < toks_.size() && (token_is_ident(&toks_[j], "class") ||
                             token_is_ident(&toks_[j], "struct"))) {
      ++j;  // enum class
    }
    while (j < toks_.size() && token_is_punct(&toks_[j], "[")) {
      j = skip_balanced(toks_, j, "[", "]");
    }
    if (j >= toks_.size() || toks_[j].kind != token_kind::identifier) return;
    pending_name_ = toks_[j].text;
    i_ = j;
  }

  void maybe_global(std::size_t i) {
    if (!at_ns_scope() || toks_[i].kind != token_kind::identifier) return;
    const token* prev = neighbor_token(toks_, i, -1);
    const token* next = neighbor_token(toks_, i, 1);
    if (!type_ish(prev) || next == nullptr ||
        next->kind != token_kind::punct) {
      return;
    }
    if (next->text != "=" && next->text != ";" && next->text != "{" &&
        next->text != "[") {
      return;
    }
    // Walk back to the statement boundary: a const/atomic/alias opener
    // anywhere in the prefix makes this not a mutable global.
    const token* t = prev;
    for (int hops = 0; t != nullptr && hops < 16; ++hops) {
      if (t->kind == token_kind::punct &&
          (t->text == ";" || t->text == "{" || t->text == "}")) {
        break;
      }
      if (t->kind == token_kind::identifier &&
          (t->text == "const" || t->text == "constexpr" ||
           t->text == "constinit" || t->text == "atomic" ||
           t->text == "thread_local" || t->text == "using" ||
           t->text == "typedef" || t->text == "static_assert")) {
        return;
      }
      t = neighbor_token(toks_, static_cast<std::size_t>(t - toks_.data()),
                         -1);
    }
    out_.globals.push_back(toks_[i].text);
    const int line = toks_[i].line;
    out_.global_decls.push_back({toks_[i].text, line, guard_note(lx_, line),
                                 allows_at(lx_, line)});
  }

  /// Member-field declaration detection at type scope. Every field of
  /// every class is recorded with its race classification; the race pass
  /// only consults classes that own a mutex or atomic member.
  void maybe_field(std::size_t i) {
    if (stack_.empty() || stack_.back().kind != brace_kind::type) return;
    if (!collectible() || toks_[i].kind != token_kind::identifier) return;
    const token* prev = neighbor_token(toks_, i, -1);
    const token* next = neighbor_token(toks_, i, 1);
    if (!type_ish(prev) || next == nullptr ||
        next->kind != token_kind::punct) {
      return;
    }
    if (next->text != "=" && next->text != ";" && next->text != "{" &&
        next->text != "[") {
      return;
    }
    // Walk back to the statement boundary (`:` covers access specifiers)
    // classifying the declared type; the first classification wins.
    field_kind kind = field_kind::plain;
    const token* t = prev;
    for (int hops = 0; t != nullptr && hops < 24; ++hops) {
      if (t->kind == token_kind::punct &&
          (t->text == ";" || t->text == "{" || t->text == "}" ||
           t->text == ":")) {
        break;
      }
      if (t->kind == token_kind::identifier) {
        const std::string& s = t->text;
        if (s == "using" || s == "typedef" || s == "static_assert" ||
            s == "friend" || s == "operator") {
          return;
        }
        if (s == "const" || s == "constexpr" || s == "constinit") {
          kind = field_kind::konst;
        } else if (s == "atomic" || s == "atomic_flag") {
          kind = field_kind::atomic;
        } else if (s == "mutex" || s == "timed_mutex" ||
                   s == "recursive_mutex" || s == "shared_mutex" ||
                   s == "shared_timed_mutex") {
          kind = field_kind::mutex;
        } else if (s == "condition_variable" ||
                   s == "condition_variable_any") {
          kind = field_kind::cv;
        }
        if (kind != field_kind::plain) break;
      }
      t = neighbor_token(toks_, static_cast<std::size_t>(t - toks_.data()),
                         -1);
    }
    const std::string cls = scope_qualifier();
    if (cls.empty()) return;
    class_record* cr = nullptr;
    for (class_record& c : out_.classes) {
      if (c.name == cls) {
        cr = &c;
        break;
      }
    }
    if (cr == nullptr) {
      out_.classes.push_back({cls, toks_[i].line, {}});
      cr = &out_.classes.back();
    }
    const int line = toks_[i].line;
    cr->fields.push_back({toks_[i].text, line, kind, guard_note(lx_, line),
                          allows_at(lx_, line)});
  }

  /// Gathers `A::B::` qualifiers spelled directly before the name token
  /// (out-of-line member definitions), dropping template arguments.
  std::string backward_qualified(std::size_t name_idx) const {
    std::string full = toks_[name_idx].text;
    std::size_t p = name_idx;
    for (;;) {
      const token* colons = neighbor_token(toks_, p, -1);
      if (!token_is_punct(colons, "::")) break;
      const std::size_t ci = static_cast<std::size_t>(colons - toks_.data());
      const token* q = neighbor_token(toks_, ci, -1);
      if (q == nullptr) break;
      std::size_t qi = static_cast<std::size_t>(q - toks_.data());
      if (token_is_punct(q, ">")) {
        const std::size_t lt = match_backward(toks_, qi, "<", ">");
        if (lt == npos || lt == 0) break;
        const token* qq = neighbor_token(toks_, lt, -1);
        if (qq == nullptr || qq->kind != token_kind::identifier) break;
        qi = static_cast<std::size_t>(qq - toks_.data());
        q = qq;
      }
      if (q->kind != token_kind::identifier || keyword_like(q->text)) break;
      full = q->text + "::" + full;
      p = qi;
    }
    return full;
  }

  /// Parses one parameter list into names + ref/pointer indices.
  void parse_params(std::size_t open, std::size_t close, func_record& rec) {
    std::size_t piece_begin = open + 1;
    int depth = 0;
    auto flush = [&](std::size_t piece_end) {
      std::string name;
      bool by_ref = false;
      bool stop = false;
      for (std::size_t k = piece_begin; k < piece_end && !stop; ++k) {
        const token& t = toks_[k];
        if (t.kind == token_kind::punct) {
          if (t.text == "&" || t.text == "&&" || t.text == "*") by_ref = true;
          if (t.text == "=") stop = true;  // default argument
          continue;
        }
        if (t.kind == token_kind::identifier && !keyword_like(t.text)) {
          name = t.text;
        }
      }
      if (name.empty() || name == "void") return;
      if (by_ref) rec.ref_params.push_back(static_cast<int>(rec.params.size()));
      rec.params.push_back(name);
    };
    for (std::size_t k = open + 1; k < close; ++k) {
      const token& t = toks_[k];
      if (t.kind != token_kind::punct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{" || t.text == "<") {
        ++depth;
      } else if (t.text == ")" || t.text == "]" || t.text == "}" ||
                 t.text == ">") {
        --depth;
      } else if (t.text == "," && depth == 0) {
        flush(k);
        piece_begin = k + 1;
      }
    }
    if (close > piece_begin) flush(close);
  }

  /// Tries to parse a function definition whose name token is at `ni`
  /// (next token is `(`). On success the body has been scanned, the
  /// record pushed, and i_ advanced past the closing brace.
  bool try_function(std::size_t ni) {
    if (!collectible()) return false;
    const std::size_t params_open = ni + 1;
    const std::size_t params_end = skip_balanced(toks_, params_open, "(", ")");
    if (params_end >= toks_.size()) return false;
    const std::size_t params_close = params_end - 1;

    // Trailing specifiers, then `{` (definition) or anything else (not).
    std::size_t j = params_end;
    std::size_t body_open = npos;
    while (j < toks_.size() && body_open == npos) {
      const token& t = toks_[j];
      if (t.kind == token_kind::pp_directive) {
        ++j;
        continue;
      }
      if (t.kind == token_kind::identifier &&
          (t.text == "const" || t.text == "override" || t.text == "final" ||
           t.text == "mutable" || t.text == "volatile")) {
        ++j;
        continue;
      }
      if (t.kind == token_kind::identifier &&
          (t.text == "noexcept" || t.text == "throw")) {
        ++j;
        if (j < toks_.size() && token_is_punct(&toks_[j], "(")) {
          j = skip_balanced(toks_, j, "(", ")");
        }
        continue;
      }
      if (token_is_punct(&t, "[")) {  // [[attribute]]
        j = skip_balanced(toks_, j, "[", "]");
        continue;
      }
      if (token_is_punct(&t, "->")) {  // trailing return type
        ++j;
        while (j < toks_.size()) {
          const token& r = toks_[j];
          if (r.kind == token_kind::identifier ||
              token_is_punct(&r, "::") || token_is_punct(&r, "*") ||
              token_is_punct(&r, "&") || token_is_punct(&r, "&&")) {
            ++j;
            continue;
          }
          if (token_is_punct(&r, "<")) {
            j = skip_angles(toks_, j);
            continue;
          }
          break;
        }
        continue;
      }
      if (token_is_punct(&t, ":")) {  // constructor initializer list
        ++j;
        for (;;) {
          while (j < toks_.size() &&
                 (toks_[j].kind == token_kind::identifier ||
                  token_is_punct(&toks_[j], "::") ||
                  toks_[j].kind == token_kind::pp_directive)) {
            ++j;
          }
          if (j >= toks_.size()) return false;
          if (token_is_punct(&toks_[j], "<")) {
            j = skip_angles(toks_, j);
            continue;
          }
          if (token_is_punct(&toks_[j], "(")) {
            j = skip_balanced(toks_, j, "(", ")");
          } else if (token_is_punct(&toks_[j], "{")) {
            // Either a member's braced initializer or — when it directly
            // follows `,`/`:` consumption with no initializer — the body.
            const token* prev = neighbor_token(toks_, j, -1);
            if (prev != nullptr && (prev->kind == token_kind::identifier ||
                                    token_is_punct(prev, ">"))) {
              j = skip_balanced(toks_, j, "{", "}");
            } else {
              body_open = j;
              break;
            }
          } else {
            return false;
          }
          if (j < toks_.size() && token_is_punct(&toks_[j], ",")) {
            ++j;
            continue;
          }
          if (j < toks_.size() && token_is_punct(&toks_[j], "{")) {
            body_open = j;
          }
          break;
        }
        if (body_open == npos) return false;
        continue;
      }
      if (token_is_punct(&t, "{")) {
        body_open = j;
        continue;
      }
      return false;  // `;` (declaration), `=` (pure/default/delete), ...
    }
    if (body_open == npos) return false;
    const std::size_t body_close = skip_balanced(toks_, body_open, "{", "}");

    func_record rec;
    const std::string fname = backward_qualified(ni);
    const std::string qual = scope_qualifier();
    rec.name = qual.empty() ? fname : qual + "::" + fname;
    rec.line = toks_[ni].line;
    rec.allowed = allows_at(lx_, rec.line);
    rec.is_init = note_flag(lx_, rec.line, &line_notes::init_fn);
    rec.is_hot = note_flag(lx_, rec.line, &line_notes::hot_path);
    rec.is_thread_entry = note_flag(lx_, rec.line, &line_notes::thread_entry);
    parse_params(params_open, params_close, rec);

    std::unordered_set<std::string> locals{rec.params.begin(),
                                           rec.params.end()};
    const std::size_t dot = rec.name.rfind("::");
    const std::string lock_prefix =
        dot == std::string::npos ? std::string{} : rec.name.substr(0, dot);
    scan_range(rec, params_end, body_close - 1, locals, lock_prefix);
    out_.funcs.push_back(std::move(rec));
    i_ = body_close - 1;
    return true;
  }

  std::vector<std::string> held_names(
      const std::vector<held_lock>& held) const {
    std::vector<std::string> out;
    out.reserve(held.size());
    for (const held_lock& h : held) out.push_back(h.name);
    return out;
  }

  /// Normalizes one guard-constructor argument [b, e) into a lock name.
  /// A bare identifier (optionally through `this->`) gets the enclosing
  /// scope prefix so the same member mutex names identically across TUs.
  std::string lock_name(std::size_t b, std::size_t e,
                        const std::string& lock_prefix) const {
    std::size_t begin = b;
    if (begin + 1 < e && token_is_ident(&toks_[begin], "this") &&
        token_is_punct(&toks_[begin + 1], "->")) {
      begin += 2;
    }
    if (e == begin + 1 && toks_[begin].kind == token_kind::identifier) {
      const std::string& bare = toks_[begin].text;
      return lock_prefix.empty() ? bare : lock_prefix + "::" + bare;
    }
    std::string flat;
    for (std::size_t k = b; k < e; ++k) {
      if (toks_[k].kind == token_kind::pp_directive) continue;
      flat += toks_[k].text;
    }
    return flat;
  }

  /// Parses `std::lock_guard[<...>] var(expr)` / `{expr}` at the guard
  /// class ident `i`. Returns the index to resume scanning from (the
  /// closing token) or `i` when this isn't an acquisition.
  std::size_t handle_lock(func_record& rec, std::size_t i, int depth,
                          std::vector<held_lock>& held,
                          const std::string& lock_prefix) {
    std::size_t j = i + 1;
    if (j < toks_.size() && token_is_punct(&toks_[j], "<")) {
      j = skip_angles(toks_, j);
    }
    if (j >= toks_.size() || toks_[j].kind != token_kind::identifier) {
      return i;
    }
    const std::string var = toks_[j].text;
    const std::size_t open = j + 1;
    if (open >= toks_.size()) return i;
    const bool paren = token_is_punct(&toks_[open], "(");
    const bool brace = token_is_punct(&toks_[open], "{");
    if (!paren && !brace) return i;
    const std::size_t close =
        skip_balanced(toks_, open, paren ? "(" : "{", paren ? ")" : "}") - 1;
    // Split top-level arguments; drop tag arguments, bail on defer/try.
    std::vector<std::pair<std::size_t, std::size_t>> args;
    std::size_t b = open + 1;
    int d = 0;
    for (std::size_t k = open + 1; k <= close; ++k) {
      const token& t = toks_[k];
      if (t.kind == token_kind::punct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") ++d;
        if (t.text == ")" || t.text == "]" || t.text == "}") --d;
        if (t.text == "," && d == 0) {
          if (k > b) args.emplace_back(b, k);
          b = k + 1;
        }
      }
    }
    if (close > b) args.emplace_back(b, close);
    const int line = toks_[i].line;
    for (const auto& [ab, ae] : args) {
      const std::string flat = lock_name(ab, ae, "");
      if (ends_with(flat, "defer_lock") || ends_with(flat, "try_to_lock")) {
        return close;  // never (or not yet) acquired
      }
      if (ends_with(flat, "adopt_lock")) continue;
    }
    for (const auto& [ab, ae] : args) {
      const std::string flat = lock_name(ab, ae, "");
      if (ends_with(flat, "adopt_lock")) continue;
      const std::string name = lock_name(ab, ae, lock_prefix);
      if (name.empty()) continue;
      rec.locks.push_back(
          {name, line, held_names(held), allows_at(lx_, line)});
      held.push_back({name, depth, var});
    }
    return close;
  }

  void set_effect(func_record& rec, effect e, int line,
                  const std::string& witness) {
    const int idx = static_cast<int>(e);
    if (rec.direct[idx] >= 0) return;
    rec.direct[idx] = line;
    rec.witness[idx] = witness;
  }

  /// Direct-effect classification for the identifier at `i`.
  void handle_direct(func_record& rec, std::size_t i) {
    const token& t = toks_[i];
    const token* prev = neighbor_token(toks_, i, -1);
    const token* next = neighbor_token(toks_, i, 1);
    const bool member = token_is_punct(prev, ".") || token_is_punct(prev, "->");
    const bool called = token_is_punct(next, "(");
    if (called && blocking_call(t.text)) {
      set_effect(rec, effect::may_block, t.line, t.text);
      return;
    }
    if (io_ident(t.text) || (called && io_call(t.text))) {
      set_effect(rec, effect::may_block, t.line, t.text);
      return;
    }
    if (t.text == "new" && !token_is_ident(prev, "operator")) {
      set_effect(rec, effect::may_allocate, t.line, "new");
      return;
    }
    if (called && alloc_call(t.text)) {
      set_effect(rec, effect::may_allocate, t.line, t.text);
      return;
    }
    if (member) return;  // env/clock/RNG spellings must not be members
    if (called && (t.text == "getenv" || t.text == "secure_getenv")) {
      set_effect(rec, effect::reads_env, t.line, t.text);
      return;
    }
    if (clock_ident(t.text) || (called && clock_call(t.text))) {
      set_effect(rec, effect::reads_clock, t.line, t.text);
      return;
    }
    if (t.text == "random_device" || (called && rng_call(t.text))) {
      set_effect(rec, effect::uses_ambient_rng, t.line, t.text);
    }
  }

  /// Records one shared-state access candidate. Locals shadow everything
  /// except statics this very function declared (their names are erased
  /// from shadowing on purpose).
  void note_access(func_record& rec, const std::string& base, int line,
                   bool write, const std::vector<held_lock>& held,
                   const std::unordered_set<std::string>& locals,
                   const std::unordered_set<std::string>& static_names) {
    if (base.empty() || base == "this" || keyword_like(base)) return;
    if (locals.count(base) != 0 && static_names.count(base) == 0) return;
    access_record a;
    a.name = base;
    a.line = line;
    a.write = write;
    a.waived = contains(allows_at(lx_, line), "race");
    a.held = held_names(held);
    rec.accesses.push_back(std::move(a));
  }

  /// Records a mutable `static` local declared at `i` (the `static`
  /// keyword). Immune declarations (const/atomic/thread_local) and
  /// function declarations are ignored.
  void handle_static(func_record& rec, std::size_t i,
                     std::unordered_set<std::string>& static_names) {
    bool immune = false;
    std::string name;
    for (std::size_t j = i + 1; j < toks_.size(); ++j) {
      const token& t = toks_[j];
      if (t.kind == token_kind::pp_directive) continue;
      if (t.kind == token_kind::identifier) {
        if (t.text == "const" || t.text == "constexpr" ||
            t.text == "constinit" || t.text == "atomic" ||
            t.text == "thread_local") {
          immune = true;
        } else if (!keyword_like(t.text)) {
          name = t.text;  // the last plain identifier names the variable
        }
        continue;
      }
      if (t.kind != token_kind::punct) return;
      if (t.text == "<") {
        j = skip_angles(toks_, j) - 1;
        continue;
      }
      if (t.text == "::" || t.text == "&" || t.text == "*") continue;
      if (t.text == ";" || t.text == "=" || t.text == "{") break;
      return;  // `(` and friends: a function declaration, not a variable
    }
    if (immune || name.empty()) return;
    static_local_record sl;
    sl.name = name;
    sl.line = toks_[i].line;
    sl.guarded_by = guard_note(lx_, sl.line);
    sl.allowed = allows_at(lx_, sl.line);
    rec.statics.push_back(std::move(sl));
    static_names.insert(name);
  }

  /// Records a call expression (name at `i`, next token `(`).
  void handle_call(func_record& rec, std::size_t i,
                   const std::vector<held_lock>& held,
                   const std::unordered_set<std::string>& locals,
                   const std::unordered_set<std::string>& static_names) {
    const token& t = toks_[i];
    if (keyword_like(t.text) || guard_class(t.text)) return;
    const token* prev = neighbor_token(toks_, i, -1);
    const bool method =
        token_is_punct(prev, ".") || token_is_punct(prev, "->");
    std::string callee = t.text;
    if (token_is_punct(prev, "::")) {
      callee = backward_qualified(i);
      if (starts_with(callee, "std::")) return;  // external
    }
    const std::size_t open = i + 1;
    const std::size_t close = skip_balanced(toks_, open, "(", ")") - 1;
    call_record c;
    c.callee = std::move(callee);
    c.line = t.line;
    c.method = method;
    c.held = held_names(held);
    // Per top-level argument: a single non-local identifier or "".
    std::size_t b = open + 1;
    int d = 0;
    auto flush = [&](std::size_t e) {
      std::string name;
      if (e == b + 1 && toks_[b].kind == token_kind::identifier &&
          locals.count(toks_[b].text) == 0 && !keyword_like(toks_[b].text)) {
        name = toks_[b].text;
      }
      c.args.push_back(std::move(name));
    };
    for (std::size_t k = open + 1; k <= close; ++k) {
      const token& a = toks_[k];
      if (a.kind != token_kind::punct) continue;
      if (a.text == "(" || a.text == "[" || a.text == "{" || a.text == "<") {
        ++d;
      } else if (a.text == ")" || a.text == "]" || a.text == "}" ||
                 a.text == ">") {
        --d;
      } else if (a.text == "," && d == 0) {
        flush(k);
        b = k + 1;
      }
    }
    if (close > b || (close == b + 0 && false)) {
      if (close >= b + 1 || close > open) {
        if (close >= b) flush(close);
      }
    }
    if (close == open) c.args.clear();  // `foo()`: no arguments at all
    rec.calls.push_back(std::move(c));

    // `recv.push_back(x)`-style mutation through the receiver.
    if (method && mutator_method(t.text)) {
      const std::size_t pi = static_cast<std::size_t>(prev - toks_.data());
      if (pi > 0) {
        const lvalue lv = resolve_lvalue(toks_, pi - 1);
        if (lv.resolvable) {
          note_write(rec, lv.base, t.line, locals);
          note_access(rec, lv.base, t.line, /*write=*/true, held, locals,
                      static_names);
        }
      }
    }
  }

  void note_write(func_record& rec, const std::string& base, int line,
                  const std::unordered_set<std::string>& locals) {
    if (base.empty() || base == "this") return;
    for (std::size_t p = 0; p < rec.params.size(); ++p) {
      if (rec.params[p] != base) continue;
      const int pi = static_cast<int>(p);
      if (std::find(rec.ref_params.begin(), rec.ref_params.end(), pi) !=
              rec.ref_params.end() &&
          std::find(rec.out_params_written.begin(),
                    rec.out_params_written.end(),
                    pi) == rec.out_params_written.end()) {
        rec.out_params_written.push_back(pi);
      }
      return;
    }
    if (locals.count(base) != 0) return;
    for (const nonlocal_write& w : rec.writes) {
      if (w.name == base) return;
    }
    rec.writes.push_back({base, line});
  }

  /// Write detection at an assignment/inc/dec operator token `i`.
  void handle_write(func_record& rec, std::size_t i, std::size_t begin,
                    std::size_t end,
                    const std::unordered_set<std::string>& locals,
                    const std::vector<held_lock>& held,
                    const std::unordered_set<std::string>& static_names) {
    std::size_t target_end = npos;
    const token& t = toks_[i];
    if (write_op(t)) {
      if (i <= begin) return;
      target_end = i - 1;
    } else {  // ++ / --
      const token* prevt = neighbor_token(toks_, i, -1);
      const token* nextt = neighbor_token(toks_, i, 1);
      const bool postfix =
          prevt != nullptr && (prevt->kind == token_kind::identifier ||
                               token_is_punct(prevt, "]") ||
                               token_is_punct(prevt, ")"));
      if (postfix) {
        target_end = i - 1;
      } else if (nextt != nullptr && nextt->kind == token_kind::identifier) {
        std::size_t e = static_cast<std::size_t>(nextt - toks_.data());
        while (e + 1 < end) {
          const token& n = toks_[e + 1];
          if (token_is_punct(&n, ".") || token_is_punct(&n, "->")) {
            e += 2;
            continue;
          }
          if (token_is_punct(&n, "[")) {
            e = skip_balanced(toks_, e + 1, "[", "]") - 1;
            continue;
          }
          break;
        }
        target_end = e;
      } else {
        return;
      }
    }
    const lvalue lv = resolve_lvalue(toks_, target_end);
    if (!lv.resolvable) return;
    note_write(rec, lv.base, t.line, locals);
    note_access(rec, lv.base, t.line, /*write=*/true, held, locals,
                static_names);
  }

  /// The shared body walk: direct effects, lock tracking, calls, writes,
  /// local declarations, and nested parallel_for sites.
  void scan_range(func_record& rec, std::size_t begin, std::size_t end,
                  std::unordered_set<std::string>& locals,
                  const std::string& lock_prefix) {
    int depth = 0;
    std::vector<held_lock> held;
    // Names declared `static` inside this body: they stay shared state
    // even though declaration syntax would otherwise make them locals.
    std::unordered_set<std::string> static_names;
    for (std::size_t i = begin; i < end; ++i) {
      const token& t = toks_[i];
      if (t.kind == token_kind::pp_directive) continue;
      if (token_is_punct(&t, "{")) {
        ++depth;
        continue;
      }
      if (token_is_punct(&t, "}")) {
        --depth;
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [&](const held_lock& h) {
                                    return h.depth > depth;
                                  }),
                   held.end());
        continue;
      }
      if (write_op(t) || token_is_punct(&t, "++") ||
          token_is_punct(&t, "--")) {
        handle_write(rec, i, begin, end, locals, held, static_names);
        continue;
      }
      if (t.kind != token_kind::identifier) continue;
      if (t.text == "static") {
        handle_static(rec, i, static_names);
        continue;
      }

      // Local declarations (incl. structured bindings) shadow captures
      // and parameters for write/arg resolution.
      if (t.text == "auto") {
        std::size_t j = i + 1;
        while (j < end && (token_is_punct(&toks_[j], "&") ||
                           token_is_punct(&toks_[j], "&&"))) {
          ++j;
        }
        if (j < end && token_is_punct(&toks_[j], "[")) {
          const std::size_t e = skip_balanced(toks_, j, "[", "]");
          for (std::size_t k = j + 1; k + 1 < e; ++k) {
            if (toks_[k].kind == token_kind::identifier) {
              locals.insert(toks_[k].text);
            }
          }
        }
        continue;
      }
      if (guard_class(t.text)) {
        const std::size_t resumed = handle_lock(rec, i, depth, held,
                                                lock_prefix);
        if (resumed != i) {
          i = resumed;
          continue;
        }
      }
      if (t.text == "unlock") {
        const token* prev = neighbor_token(toks_, i, -1);
        if (token_is_punct(prev, ".") || token_is_punct(prev, "->")) {
          const token* var = neighbor_token(
              toks_, static_cast<std::size_t>(prev - toks_.data()), -1);
          if (var != nullptr) {
            held.erase(std::remove_if(held.begin(), held.end(),
                                      [&](const held_lock& h) {
                                        return h.guard_var == var->text;
                                      }),
                       held.end());
          }
        }
        continue;
      }
      if ((t.text == "parallel_for" || t.text == "parallel_for_chunks") &&
          i + 1 < toks_.size() && token_is_punct(&toks_[i + 1], "(")) {
        if (!thread_pool_home_ && site_done_.insert(i).second) {
          handle_site(i, rec, lock_prefix);
        }
        // The enclosing function keeps absorbing the body's effects (the
        // loop walks on through it); the call itself is the sanctioned
        // fork-join and is never an edge.
        continue;
      }
      handle_direct(rec, i);
      if (i + 1 < toks_.size() && token_is_punct(&toks_[i + 1], "(") &&
          !keyword_like(t.text)) {
        handle_call(rec, i, held, locals, static_names);
      }
      // Plain local declaration: type-ish token, the name, then a
      // declarator-shaped follower.
      if (!keyword_like(t.text)) {
        const token* prev = neighbor_token(toks_, i, -1);
        const token* next = neighbor_token(toks_, i, 1);
        static const std::unordered_set<std::string> follower = {
            "=", ";", "{", "(", "[", ":", ",", ")"};
        if (type_ish(prev) && next != nullptr &&
            next->kind == token_kind::punct &&
            follower.count(next->text) != 0) {
          if (static_names.count(t.text) == 0) locals.insert(t.text);
          continue;
        }
        // Read access: a bare identifier (or `this->member`) that is not
        // a qualified-name piece, call, or write target. Writes are
        // recorded by handle_write when the operator token comes up.
        bool qualified_or_member =
            token_is_punct(prev, "::") || token_is_punct(next, "::") ||
            token_is_punct(prev, ".");
        if (token_is_punct(prev, "->")) {
          const std::size_t pi = static_cast<std::size_t>(
              neighbor_token(toks_, i, -1) - toks_.data());
          if (!token_is_ident(neighbor_token(toks_, pi, -1), "this")) {
            qualified_or_member = true;
          }
        }
        const bool written =
            (next != nullptr &&
             (write_op(*next) || token_is_punct(next, "++") ||
              token_is_punct(next, "--"))) ||
            token_is_punct(prev, "++") || token_is_punct(prev, "--");
        if (!qualified_or_member && !written &&
            !token_is_punct(next, "(")) {
          note_access(rec, t.text, t.line, /*write=*/false, held, locals,
                      static_names);
        }
      }
    }
  }

  /// Extracts one parallel_for site: capture list, synthetic lambda
  /// record (scanned like a function body), and the site entry itself.
  void handle_site(std::size_t name_idx, const func_record& enclosing,
                   const std::string& lock_prefix) {
    const std::size_t call_open = name_idx + 1;
    const std::size_t call_end = skip_balanced(toks_, call_open, "(", ")");
    // Lambda introducer in argument position.
    std::size_t lb = npos;
    int depth = 0;
    for (std::size_t i = call_open; i < call_end; ++i) {
      const token& t = toks_[i];
      if (token_is_punct(&t, "(")) {
        ++depth;
        continue;
      }
      if (token_is_punct(&t, ")")) {
        --depth;
        continue;
      }
      if (depth == 1 && token_is_punct(&t, "[")) {
        const token* prev = neighbor_token(toks_, i, -1);
        if (token_is_punct(prev, "(") || token_is_punct(prev, ",")) {
          lb = i;
          break;
        }
      }
    }
    if (lb == npos) return;
    const std::size_t rb = skip_balanced(toks_, lb, "[", "]") - 1;
    if (rb >= call_end) return;

    par_site_record site;
    site.line = toks_[name_idx].line;
    site.fn = toks_[name_idx].text;
    site.allowed = allows_at(lx_, site.line);
    // Capture list (compact form of the capture pass's parser).
    int cdepth = 0;
    bool entry_start = true;
    for (std::size_t i = lb + 1; i < rb; ++i) {
      const token& t = toks_[i];
      if (t.kind == token_kind::punct &&
          (t.text == "(" || t.text == "[" || t.text == "{")) {
        ++cdepth;
      }
      if (t.kind == token_kind::punct &&
          (t.text == ")" || t.text == "]" || t.text == "}")) {
        --cdepth;
      }
      if (cdepth == 0 && token_is_punct(&t, ",")) {
        entry_start = true;
        continue;
      }
      if (!entry_start) continue;
      if (token_is_punct(&t, "&")) {
        const token* next = neighbor_token(toks_, i, 1);
        if (next != nullptr && next->kind == token_kind::identifier) {
          site.ref_captures.push_back(next->text);
          ++i;
        } else {
          site.default_ref = true;
        }
        entry_start = false;
        continue;
      }
      if (token_is_punct(&t, "=")) {
        entry_start = false;
        continue;
      }
      if (token_is_punct(&t, "*")) continue;  // *this
      if (t.kind == token_kind::identifier) {
        if (t.text == "this") {
          site.captures_this = true;
        } else {
          site.val_captures.push_back(t.text);
        }
        entry_start = false;
      }
    }

    // Parameter list and body.
    std::size_t params_open = rb + 1;
    while (params_open < call_end &&
           toks_[params_open].kind == token_kind::pp_directive) {
      ++params_open;
    }
    if (params_open >= call_end ||
        !token_is_punct(&toks_[params_open], "(")) {
      return;
    }
    const std::size_t params_end =
        skip_balanced(toks_, params_open, "(", ")");
    std::size_t body_open = params_end;
    while (body_open < call_end && !token_is_punct(&toks_[body_open], "{")) {
      ++body_open;
    }
    if (body_open >= call_end) return;
    const std::size_t body_close = skip_balanced(toks_, body_open, "{", "}");

    func_record lrec;
    lrec.line = site.line;
    lrec.is_lambda = true;
    lrec.is_init = enclosing.is_init;  // a lambda inside an init function
    lrec.allowed = site.allowed;
    parse_params(params_open, params_end - 1, lrec);
    std::unordered_set<std::string> locals{lrec.params.begin(),
                                           lrec.params.end()};
    scan_range(lrec, params_end, body_close - 1, locals, lock_prefix);
    site.lambda_index = out_.funcs.size();
    out_.funcs.push_back(std::move(lrec));
    out_.sites.push_back(std::move(site));
  }

  std::string rel_;
  const lex_result& lx_;
  const std::vector<token>& toks_;
  const bool thread_pool_home_;
  std::size_t i_{0};
  std::vector<scope> stack_;
  std::string pending_name_;
  std::unordered_set<std::size_t> site_done_;
  file_effects out_;
};

// ---------------------------------------------------------------------------
// Cross-file engine: name resolution, SCC fixed point, witness chains.

/// How a node came to carry an effect (or hold a lock): through the call
/// at `line` to node `via` (>= 0), or directly at `line` (via < 0, with
/// `note` holding the witness token / acquisition file).
struct origin {
  int via{-1};
  int line{-1};
  std::string note;
  bool waived{false};  // lock origins: acquisition has allow(lock-order)
};

/// The effect engine: the shared cross-TU call graph (call_graph.h) plus
/// the effect-closure state the bottom-up fixed point computes over it.
struct engine : call_graph {
  std::unordered_set<std::string> globals;

  std::vector<std::array<origin, k_effect_count>> closure;
  std::vector<std::map<std::string, origin>> locksets;
  std::vector<std::set<int>> wparams;

  void build(const std::vector<file_summary>& files) {
    build_graph(files);
    for (const file_summary& f : files) {
      globals.insert(f.globals.begin(), f.globals.end());
    }
    close_over_sccs();
  }

  void close_over_sccs() {
    closure.resize(nodes.size());
    locksets.resize(nodes.size());
    wparams.resize(nodes.size());
    // Seed with each node's own facts.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const func_record& fr = *nodes[i].rec;
      for (int e = 0; e < k_effect_count; ++e) {
        if (fr.direct[e] >= 0) {
          closure[i][e] = {-1, fr.direct[e], fr.witness[e], false};
        }
      }
      for (const nonlocal_write& w : fr.writes) {
        if (globals.count(w.name) != 0) {
          const int e = static_cast<int>(effect::writes_global);
          if (closure[i][e].line < 0) closure[i][e] = {-1, w.line, w.name};
          break;
        }
      }
      for (const lock_record& l : fr.locks) {
        if (locksets[i].count(l.name) == 0) {
          locksets[i][l.name] = {-1, l.line, nodes[i].file->rel_path,
                                 contains(l.allowed, "lock-order")};
        }
      }
      wparams[i].insert(fr.out_params_written.begin(),
                        fr.out_params_written.end());
    }
    // Dense edges for the SCC decomposition.
    std::vector<std::vector<std::size_t>> edges(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      std::set<std::size_t> uniq;
      for (const auto& targets : call_targets[i]) {
        uniq.insert(targets.begin(), targets.end());
      }
      edges[i].assign(uniq.begin(), uniq.end());
    }
    const scc_result sccs = tarjan_sccs(edges);
    // Components come callees-first, so one inner loop per component
    // converges (iterate until stable for intra-SCC recursion).
    for (const auto& comp : sccs.components) {
      bool changed = true;
      while (changed) {
        changed = false;
        for (const std::size_t m : comp) {
          const auto& calls = nodes[m].rec->calls;
          for (std::size_t k = 0; k < calls.size(); ++k) {
            for (const std::size_t t : call_targets[m][k]) {
              if (!propagates(t)) continue;
              for (int e = 0; e < k_effect_count; ++e) {
                if (closure[t][e].line >= 0 && closure[m][e].line < 0) {
                  closure[m][e] = {static_cast<int>(t), calls[k].line, "",
                                   false};
                  changed = true;
                }
              }
              for (const auto& [lname, lo] : locksets[t]) {
                if (locksets[m].count(lname) == 0) {
                  locksets[m][lname] = {static_cast<int>(t), calls[k].line,
                                        "", lo.waived};
                  changed = true;
                }
              }
              for (const int wp : wparams[t]) {
                if (wp < 0 ||
                    static_cast<std::size_t>(wp) >= calls[k].args.size()) {
                  continue;
                }
                const std::string& arg = calls[k].args[wp];
                if (arg.empty()) continue;
                const func_record& mr = *nodes[m].rec;
                for (const int rp : mr.ref_params) {
                  if (static_cast<std::size_t>(rp) < mr.params.size() &&
                      mr.params[rp] == arg &&
                      wparams[m].insert(rp).second) {
                    changed = true;
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  /// Renders the witness chain for (node, effect): the callee path, then
  /// the triggering token and its location.
  std::string chain(std::size_t n, int e) const {
    std::string path;
    std::size_t cur = n;
    for (int hops = 0; hops < 64; ++hops) {
      const origin& o = closure[cur][e];
      if (o.via < 0) {
        std::string tail = "'" + o.note + "' (" + nodes[cur].file->rel_path +
                           ":" + std::to_string(o.line) + ")";
        return path.empty() ? tail : "call chain " + path + " ending in " +
                                         tail;
      }
      const std::size_t next = static_cast<std::size_t>(o.via);
      path += (path.empty() ? "" : " -> ") + display(next);
      cur = next;
    }
    return path;
  }

  std::string lock_chain(std::size_t n, const std::string& lname) const {
    std::string path;
    std::size_t cur = n;
    for (int hops = 0; hops < 64; ++hops) {
      const auto it = locksets[cur].find(lname);
      if (it == locksets[cur].end()) break;
      const origin& o = it->second;
      if (o.via < 0) {
        std::string tail = "acquisition at " + o.note + ":" +
                           std::to_string(o.line);
        return path.empty() ? tail : "call chain " + path + " ending in " +
                                         tail;
      }
      const std::size_t next = static_cast<std::size_t>(o.via);
      path += (path.empty() ? "" : " -> ") + display(next);
      cur = next;
    }
    return path;
  }
};

bool in_tests(const std::string& rel) { return starts_with(rel, "tests/"); }

// ---------------------------------------------------------------------------
// hot-path-purity

const std::array<const char*, k_effect_count> k_effect_verbs = {
    "blocks", "allocates", "reads the environment", "reads the clock",
    "draws ambient randomness", "writes namespace-scope state"};

void report_hot_root(const engine& eng, std::size_t node,
                     const std::string& what,
                     const std::vector<std::string>& allowed,
                     const std::string& file, int line,
                     std::vector<violation>& out) {
  if (contains(allowed, "hot-path-purity")) return;
  static const std::array<effect, 5> banned = {
      effect::may_block, effect::reads_env, effect::reads_clock,
      effect::uses_ambient_rng, effect::may_allocate};
  for (const effect e : banned) {
    const int ei = static_cast<int>(e);
    if (eng.closure[node][ei].line < 0) continue;
    if (contains(allowed, std::string{"effect:"} + effect_name(e))) continue;
    out.push_back(
        {file, line, "hot-path-purity",
         what + " transitively " + k_effect_verbs[ei] + ": " +
             eng.chain(node, ei) +
             "; hot paths must stay pure (docs/STATIC_ANALYSIS.md) — hoist "
             "the effect out of the parallel region, or waive with "
             "// dv-lint: allow(effect:" +
             effect_name(e) + ") <reason>"});
  }
  if (contains(allowed, "effect:acquires_lock")) return;
  for (const auto& [lname, lo] : eng.locksets[node]) {
    out.push_back(
        {file, line, "hot-path-purity",
         what + " transitively acquires lock '" + lname + "': " +
             eng.lock_chain(node, lname) +
             "; a lock inside a hot path serializes the pool — restructure, "
             "or waive with // dv-lint: allow(effect:acquires_lock) "
             "<reason>"});
  }
}

void check_hot_paths(const engine& eng, std::vector<violation>& out) {
  for (const auto& sr : eng.sites) {
    if (in_tests(sr.file->rel_path)) continue;
    report_hot_root(eng, sr.lambda_node, "'" + sr.site->fn + "' body",
                    sr.site->allowed, sr.file->rel_path, sr.site->line, out);
  }
  for (std::size_t i = 0; i < eng.nodes.size(); ++i) {
    const func_record& fr = *eng.nodes[i].rec;
    if (!fr.is_hot || fr.is_lambda) continue;
    if (in_tests(eng.nodes[i].file->rel_path)) continue;
    report_hot_root(eng, i, "dv:hot-path function '" + fr.name + "'",
                    fr.allowed, eng.nodes[i].file->rel_path, fr.line, out);
  }
}

// ---------------------------------------------------------------------------
// lock-order

struct lock_edge {
  std::string from, to;
  std::string file;
  int line{0};
};

void check_lock_order(const engine& eng, std::vector<violation>& out) {
  std::vector<lock_edge> edges;
  std::set<std::pair<std::string, std::string>> seen;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, int line, bool waived) {
    if (waived) return;
    if (from == to) {
      out.push_back(
          {file, line, "lock-order",
           "lock '" + from +
               "' acquired while already held; a non-recursive mutex "
               "self-deadlocks here — drop the inner acquisition or waive "
               "with // dv-lint: allow(lock-order) <reason>"});
      return;
    }
    if (seen.insert({from, to}).second) {
      edges.push_back({from, to, file, line});
    }
  };

  for (std::size_t i = 0; i < eng.nodes.size(); ++i) {
    const graph_node& nr = eng.nodes[i];
    if (!starts_with(nr.file->rel_path, "src/") || nr.exempt) continue;
    for (const lock_record& l : nr.rec->locks) {
      const bool waived = contains(l.allowed, "lock-order");
      for (const std::string& h : l.held) {
        add_edge(h, l.name, nr.file->rel_path, l.line, waived);
      }
    }
    const auto& calls = nr.rec->calls;
    for (std::size_t k = 0; k < calls.size(); ++k) {
      if (calls[k].held.empty()) continue;
      for (const std::size_t t : eng.call_targets[i][k]) {
        if (!eng.propagates(t)) continue;
        for (const auto& [lname, lo] : eng.locksets[t]) {
          for (const std::string& h : calls[k].held) {
            add_edge(h, lname, nr.file->rel_path, calls[k].line, lo.waived);
          }
        }
      }
    }
  }

  // Cycle detection over the acquired-while-held graph.
  std::map<std::string, std::size_t> id;
  for (const lock_edge& e : edges) {
    id.emplace(e.from, id.size());
    id.emplace(e.to, id.size());
  }
  std::vector<std::string> names(id.size());
  for (const auto& [n, i] : id) names[i] = n;
  std::vector<std::vector<std::size_t>> g(id.size());
  for (const lock_edge& e : edges) {
    g[id[e.from]].push_back(id[e.to]);
  }
  const scc_result sccs = tarjan_sccs(g);
  for (const auto& comp : sccs.components) {
    if (comp.size() < 2) continue;
    std::vector<std::string> members;
    for (const std::size_t n : comp) members.push_back(names[n]);
    std::sort(members.begin(), members.end());
    std::string list;
    for (const auto& m : members) {
      if (!list.empty()) list += " -> ";
      list += "'" + m + "'";
    }
    // Anchor at the first recorded edge that stays inside the cycle and
    // describe up to three of its edges.
    const std::unordered_set<std::string> in_comp{members.begin(),
                                                  members.end()};
    const lock_edge* anchor = nullptr;
    std::string detail;
    int shown = 0;
    for (const lock_edge& e : edges) {
      if (in_comp.count(e.from) == 0 || in_comp.count(e.to) == 0) continue;
      if (anchor == nullptr) anchor = &e;
      if (shown < 3) {
        detail += (detail.empty() ? "" : "; ") + ("'" + e.to +
                  "' taken while holding '" + e.from + "' at " + e.file +
                  ":" + std::to_string(e.line));
        ++shown;
      }
    }
    if (anchor == nullptr) continue;
    out.push_back(
        {anchor->file, anchor->line, "lock-order",
         "lock-order cycle between " + list + " (" + detail +
             "); threads interleaving these orders deadlock — pick one "
             "global acquisition order, or waive an acquisition with "
             "// dv-lint: allow(lock-order) <reason>"});
  }
}

// ---------------------------------------------------------------------------
// transitive capture

void check_transitive_captures(const engine& eng,
                               std::vector<violation>& out) {
  std::set<std::pair<int, std::string>> dedup;
  for (const auto& sr : eng.sites) {
    if (in_tests(sr.file->rel_path)) continue;
    const par_site_record& site = *sr.site;
    if (contains(site.allowed, "capture")) continue;
    const func_record& lam = *eng.nodes[sr.lambda_node].rec;
    for (std::size_t k = 0; k < lam.calls.size(); ++k) {
      const call_record& c = lam.calls[k];
      for (std::size_t a = 0; a < c.args.size(); ++a) {
        const std::string& arg = c.args[a];
        if (arg.empty()) continue;
        const bool by_ref =
            contains(site.ref_captures, arg) ||
            (site.default_ref && !contains(site.val_captures, arg));
        if (!by_ref) continue;
        for (const std::size_t t : eng.call_targets[sr.lambda_node][k]) {
          if (eng.wparams[t].count(static_cast<int>(a)) == 0) continue;
          const std::string msg =
              "'" + arg + "' is captured by reference and written through "
              "'" + eng.display(t) + "' (argument " + std::to_string(a + 1) +
              " of the call at " + sr.file->rel_path + ":" +
              std::to_string(c.line) +
              "); every chunk races on it — write disjoint slots, reduce "
              "into per-chunk partials, or waive with // dv-lint: "
              "allow(capture) <reason>";
          if (dedup.insert({site.line, msg}).second) {
            out.push_back({sr.file->rel_path, site.line, "capture", msg});
          }
          break;
        }
      }
    }
  }
}

}  // namespace

file_effects extract_effects(const std::string& rel_path,
                             const lex_result& lx) {
  return extractor{rel_path, lx}.run();
}

void check_init_only_config(const std::string& rel_path, const lex_result& lx,
                            const file_effects& fx,
                            std::vector<violation>& out) {
  if (!starts_with(rel_path, "src/") || path_effect_exempt(rel_path)) return;
  const int ei = static_cast<int>(effect::reads_env);
  for (const func_record& f : fx.funcs) {
    if (f.is_init || f.direct[ei] < 0) continue;
    const int line = f.direct[ei];
    if (line_allows(lx, "init-only-config", line)) continue;
    out.push_back(
        {rel_path, line, "init-only-config",
         "'" + f.witness[ei] +
             "' outside a dv:init function re-reads configuration per "
             "call; latch the knob once at startup in a function annotated "
             "// dv:init(<reason>), or waive with // dv-lint: "
             "allow(init-only-config) <reason>"});
  }
}

std::vector<violation> check_effects(const std::vector<file_summary>& files) {
  engine eng;
  eng.build(files);
  std::vector<violation> out;
  check_hot_paths(eng, out);
  check_lock_order(eng, out);
  check_transitive_captures(eng, out);
  return out;
}

std::string explain_effects(const std::vector<file_summary>& files,
                            const std::string& name) {
  engine eng;
  eng.build(files);
  std::ostringstream os;
  for (std::size_t i = 0; i < eng.nodes.size(); ++i) {
    const func_record& fr = *eng.nodes[i].rec;
    if (fr.is_lambda) continue;
    if (fr.name != name && !ends_with(fr.name, "::" + name)) continue;
    os << fr.name << " (" << eng.nodes[i].file->rel_path << ":" << fr.line
       << ")";
    if (fr.is_init) os << " [dv:init]";
    if (fr.is_hot) os << " [dv:hot-path]";
    if (eng.nodes[i].exempt) os << " [exempt path]";
    os << "\n";
    bool any = false;
    for (int e = 0; e < k_effect_count; ++e) {
      if (eng.closure[i][e].line < 0) continue;
      os << "  " << effect_name(static_cast<effect>(e)) << ": "
         << eng.chain(i, e) << "\n";
      any = true;
    }
    for (const auto& [lname, lo] : eng.locksets[i]) {
      os << "  acquires_lock '" << lname << "': " << eng.lock_chain(i, lname)
         << "\n";
      any = true;
    }
    if (!any) os << "  (no inferred effects)\n";
  }
  return os.str();
}

}  // namespace dv_lint
