// dv_lint — repo-invariant static checker for the deterministic runtime.
// See docs/STATIC_ANALYSIS.md for the check catalogue.
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return dv_lint::run_cli(args, std::cout, std::cerr);
}
