#include "cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace dv_lint {

namespace {

namespace fs = std::filesystem;

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

fs::path record_path(const std::string& cache_dir,
                     const std::string& rel_path) {
  return fs::path{cache_dir} / (hex64(fnv1a_hash(rel_path)) + ".rec");
}

bool parse_int(const std::string& s, int& out) {
  if (s.empty()) return false;
  long v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
    if (v > 1000000000) return false;
  }
  out = static_cast<int>(v);
  return true;
}

/// Splits `line` on tabs into at most `max_fields` pieces; the last
/// piece keeps any remaining tabs (messages may contain them in theory).
std::vector<std::string> split_tabs(const std::string& line,
                                    std::size_t max_fields) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (out.size() + 1 < max_fields) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) break;
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  out.push_back(line.substr(start));
  return out;
}

// Effect-record list encodings. "-" means an empty list; otherwise the
// separator-joined entries (empty entries preserved, so a call with one
// unresolvable argument round-trips as "" -> {""}).

std::string join_list(const std::vector<std::string>& v, char sep) {
  if (v.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += sep;
    out += v[i];
  }
  return out;
}

std::string join_ints(const std::vector<int>& v) {
  if (v.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(v[i]);
  }
  return out;
}

std::vector<std::string> parse_list(const std::string& field, char sep) {
  std::vector<std::string> out;
  if (field == "-") return out;
  std::string cur;
  for (const char c : field) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool parse_ints(const std::string& field, std::vector<int>& out) {
  if (field == "-") return true;
  for (const std::string& piece : parse_list(field, ',')) {
    int v = 0;
    if (!parse_int(piece, v)) return false;
    out.push_back(v);
  }
  return true;
}

}  // namespace

std::uint64_t fnv1a_hash(std::string_view data) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

bool cache_load(const std::string& cache_dir, const std::string& rel_path,
                std::uint64_t content_hash, file_summary& out) {
  std::ifstream in{record_path(cache_dir, rel_path)};
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) ||
      line != "dv_lint-cache " + std::to_string(k_cache_version) + " " +
                  hex64(lint_schema_hash())) {
    return false;
  }
  if (!std::getline(in, line) || line != "path " + rel_path) return false;
  if (!std::getline(in, line) || line != "hash " + hex64(content_hash)) {
    return false;
  }
  file_summary s;
  s.rel_path = rel_path;
  s.content_hash = content_hash;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) return false;
    const std::string tag = line.substr(0, tab);
    if (tag == "v") {
      const auto f = split_tabs(line, 4);  // v, line, check, message
      if (f.size() != 4) return false;
      violation v;
      v.file = rel_path;
      if (!parse_int(f[1], v.line)) return false;
      v.check = f[2];
      v.message = f[3];
      s.violations.push_back(std::move(v));
    } else if (tag == "inc") {
      const auto f = split_tabs(line, 4);  // inc, line, allow-csv, spelled
      if (f.size() != 4) return false;
      include_ref ref;
      if (!parse_int(f[1], ref.line)) return false;
      if (f[2] != "-") {
        std::istringstream cs{f[2]};
        std::string name;
        while (std::getline(cs, name, ',')) {
          if (!name.empty()) ref.allowed.push_back(name);
        }
      }
      ref.spelled = f[3];
      s.includes.push_back(std::move(ref));
    } else if (tag == "sym") {
      s.declared.push_back(line.substr(tab + 1));
    } else if (tag == "use") {
      s.used.push_back(line.substr(tab + 1));
    } else if (tag == "api") {
      s.api.push_back(line.substr(tab + 1));
    } else if (tag == "fn") {
      const auto f = split_tabs(line, 4);  // fn, line, flags, name
      if (f.size() != 4) return false;
      func_record fr;
      if (!parse_int(f[1], fr.line)) return false;
      fr.is_lambda = f[2].find('L') != std::string::npos;
      fr.is_init = f[2].find('I') != std::string::npos;
      fr.is_hot = f[2].find('H') != std::string::npos;
      fr.is_thread_entry = f[2].find('T') != std::string::npos;
      fr.name = f[3];
      s.funcs.push_back(std::move(fr));
    } else if (tag == "fd") {
      const auto f = split_tabs(line, 4);  // fd, effect, line, witness
      if (f.size() != 4 || s.funcs.empty()) return false;
      int e = 0, l = 0;
      if (!parse_int(f[1], e) || e >= k_effect_count || !parse_int(f[2], l)) {
        return false;
      }
      s.funcs.back().direct[e] = l;
      s.funcs.back().witness[e] = f[3];
    } else if (tag == "fp") {
      const auto f = split_tabs(line, 4);  // fp, params, refs, written
      if (f.size() != 4 || s.funcs.empty()) return false;
      func_record& fr = s.funcs.back();
      fr.params = parse_list(f[1], ',');
      if (f[1] == "-") fr.params.clear();
      if (!parse_ints(f[2], fr.ref_params) ||
          !parse_ints(f[3], fr.out_params_written)) {
        return false;
      }
    } else if (tag == "fa") {
      if (s.funcs.empty()) return false;
      s.funcs.back().allowed = parse_list(line.substr(tab + 1), ',');
    } else if (tag == "fl") {
      const auto f = split_tabs(line, 5);  // fl, line, allowed, held, name
      if (f.size() != 5 || s.funcs.empty()) return false;
      lock_record lr;
      if (!parse_int(f[1], lr.line)) return false;
      lr.allowed = parse_list(f[2], ',');
      lr.held = parse_list(f[3], '|');
      lr.name = f[4];
      s.funcs.back().locks.push_back(std::move(lr));
    } else if (tag == "fc") {
      // fc, line, flags, held, args, callee
      const auto f = split_tabs(line, 6);
      if (f.size() != 6 || s.funcs.empty()) return false;
      call_record cr;
      if (!parse_int(f[1], cr.line)) return false;
      cr.method = f[2].find('m') != std::string::npos;
      cr.held = parse_list(f[3], '|');
      cr.args = parse_list(f[4], ',');
      cr.callee = f[5];
      s.funcs.back().calls.push_back(std::move(cr));
    } else if (tag == "fw") {
      const auto f = split_tabs(line, 3);  // fw, line, name
      if (f.size() != 3 || s.funcs.empty()) return false;
      nonlocal_write w;
      if (!parse_int(f[1], w.line)) return false;
      w.name = f[2];
      s.funcs.back().writes.push_back(std::move(w));
    } else if (tag == "acc") {
      const auto f = split_tabs(line, 5);  // acc, line, flags, held, name
      if (f.size() != 5 || s.funcs.empty()) return false;
      access_record a;
      if (!parse_int(f[1], a.line)) return false;
      a.write = f[2].find('W') != std::string::npos;
      a.waived = f[2].find('V') != std::string::npos;
      a.held = parse_list(f[3], '|');
      a.name = f[4];
      s.funcs.back().accesses.push_back(std::move(a));
    } else if (tag == "sl") {
      const auto f = split_tabs(line, 5);  // sl, line, allowed, guard, name
      if (f.size() != 5 || s.funcs.empty()) return false;
      static_local_record sl;
      if (!parse_int(f[1], sl.line)) return false;
      sl.allowed = parse_list(f[2], ',');
      sl.guarded_by = f[3] == "-" ? "" : f[3];
      sl.name = f[4];
      s.funcs.back().statics.push_back(std::move(sl));
    } else if (tag == "cls") {
      const auto f = split_tabs(line, 3);  // cls, line, name
      if (f.size() != 3) return false;
      class_record cr;
      if (!parse_int(f[1], cr.line)) return false;
      cr.name = f[2];
      s.classes.push_back(std::move(cr));
    } else if (tag == "fld") {
      // fld, line, kind, allowed, guard, name — attaches to the last cls
      const auto f = split_tabs(line, 6);
      if (f.size() != 6 || s.classes.empty() || f[2].size() != 1) {
        return false;
      }
      field_record fr;
      if (!parse_int(f[1], fr.line)) return false;
      switch (f[2][0]) {
        case 'p': fr.kind = field_kind::plain; break;
        case 'm': fr.kind = field_kind::mutex; break;
        case 'a': fr.kind = field_kind::atomic; break;
        case 'c': fr.kind = field_kind::cv; break;
        case 'k': fr.kind = field_kind::konst; break;
        default: return false;
      }
      fr.allowed = parse_list(f[3], ',');
      fr.guarded_by = f[4] == "-" ? "" : f[4];
      fr.name = f[5];
      s.classes.back().fields.push_back(std::move(fr));
    } else if (tag == "gd") {
      const auto f = split_tabs(line, 5);  // gd, line, allowed, guard, name
      if (f.size() != 5) return false;
      global_record g;
      if (!parse_int(f[1], g.line)) return false;
      g.allowed = parse_list(f[2], ',');
      g.guarded_by = f[3] == "-" ? "" : f[3];
      g.name = f[4];
      s.global_decls.push_back(std::move(g));
    } else if (tag == "site") {
      // site, line, lambda-idx, flags, fn, allowed, refcaps, valcaps
      const auto f = split_tabs(line, 8);
      if (f.size() != 8) return false;
      par_site_record ps;
      int li = 0;
      if (!parse_int(f[1], ps.line) || !parse_int(f[2], li)) return false;
      ps.lambda_index = static_cast<std::size_t>(li);
      ps.default_ref = f[3].find('R') != std::string::npos;
      ps.captures_this = f[3].find('T') != std::string::npos;
      ps.fn = f[4];
      ps.allowed = parse_list(f[5], ',');
      ps.ref_captures = parse_list(f[6], ',');
      ps.val_captures = parse_list(f[7], ',');
      s.par_sites.push_back(std::move(ps));
    } else if (tag == "gv") {
      s.globals.push_back(line.substr(tab + 1));
    } else {
      return false;
    }
  }
  out = std::move(s);
  return true;
}

bool cache_store(const std::string& cache_dir, const file_summary& summary) {
  std::error_code ec;
  fs::create_directories(cache_dir, ec);
  if (ec) return false;
  const fs::path final_path = record_path(cache_dir, summary.rel_path);
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream os{tmp_path, std::ios::trunc};
    if (!os) return false;
    os << "dv_lint-cache " << k_cache_version << ' '
       << hex64(lint_schema_hash()) << '\n';
    os << "path " << summary.rel_path << '\n';
    os << "hash " << hex64(summary.content_hash) << '\n';
    for (const auto& v : summary.violations) {
      os << "v\t" << v.line << '\t' << v.check << '\t' << v.message << '\n';
    }
    for (const auto& ref : summary.includes) {
      std::string csv;
      for (const auto& name : ref.allowed) {
        if (!csv.empty()) csv += ',';
        csv += name;
      }
      os << "inc\t" << ref.line << '\t' << (csv.empty() ? "-" : csv) << '\t'
         << ref.spelled << '\n';
    }
    for (const auto& name : summary.declared) os << "sym\t" << name << '\n';
    for (const auto& name : summary.used) os << "use\t" << name << '\n';
    for (const auto& entry : summary.api) os << "api\t" << entry << '\n';
    // Effect records. Functions are written in extraction order so each
    // site's lambda_index stays valid on reload.
    for (const auto& f : summary.funcs) {
      std::string flags;
      if (f.is_lambda) flags += 'L';
      if (f.is_init) flags += 'I';
      if (f.is_hot) flags += 'H';
      if (f.is_thread_entry) flags += 'T';
      os << "fn\t" << f.line << '\t' << (flags.empty() ? "-" : flags) << '\t'
         << f.name << '\n';
      for (int e = 0; e < k_effect_count; ++e) {
        if (f.direct[e] < 0) continue;
        os << "fd\t" << e << '\t' << f.direct[e] << '\t' << f.witness[e]
           << '\n';
      }
      if (!f.params.empty()) {
        os << "fp\t" << join_list(f.params, ',') << '\t'
           << join_ints(f.ref_params) << '\t'
           << join_ints(f.out_params_written) << '\n';
      }
      if (!f.allowed.empty()) {
        os << "fa\t" << join_list(f.allowed, ',') << '\n';
      }
      for (const auto& l : f.locks) {
        os << "fl\t" << l.line << '\t' << join_list(l.allowed, ',') << '\t'
           << join_list(l.held, '|') << '\t' << l.name << '\n';
      }
      for (const auto& c : f.calls) {
        os << "fc\t" << c.line << '\t' << (c.method ? "m" : "-") << '\t'
           << join_list(c.held, '|') << '\t' << join_list(c.args, ',')
           << '\t' << c.callee << '\n';
      }
      for (const auto& w : f.writes) {
        os << "fw\t" << w.line << '\t' << w.name << '\n';
      }
      for (const auto& a : f.accesses) {
        std::string aflags;
        if (a.write) aflags += 'W';
        if (a.waived) aflags += 'V';
        os << "acc\t" << a.line << '\t' << (aflags.empty() ? "-" : aflags)
           << '\t' << join_list(a.held, '|') << '\t' << a.name << '\n';
      }
      for (const auto& sl : f.statics) {
        os << "sl\t" << sl.line << '\t' << join_list(sl.allowed, ',') << '\t'
           << (sl.guarded_by.empty() ? "-" : sl.guarded_by) << '\t'
           << sl.name << '\n';
      }
    }
    for (const auto& ps : summary.par_sites) {
      std::string flags;
      if (ps.default_ref) flags += 'R';
      if (ps.captures_this) flags += 'T';
      os << "site\t" << ps.line << '\t' << ps.lambda_index << '\t'
         << (flags.empty() ? "-" : flags) << '\t' << ps.fn << '\t'
         << join_list(ps.allowed, ',') << '\t'
         << join_list(ps.ref_captures, ',') << '\t'
         << join_list(ps.val_captures, ',') << '\n';
    }
    for (const auto& g : summary.globals) os << "gv\t" << g << '\n';
    for (const auto& c : summary.classes) {
      os << "cls\t" << c.line << '\t' << c.name << '\n';
      for (const auto& fl : c.fields) {
        char kind = 'p';
        switch (fl.kind) {
          case field_kind::plain: kind = 'p'; break;
          case field_kind::mutex: kind = 'm'; break;
          case field_kind::atomic: kind = 'a'; break;
          case field_kind::cv: kind = 'c'; break;
          case field_kind::konst: kind = 'k'; break;
        }
        os << "fld\t" << fl.line << '\t' << kind << '\t'
           << join_list(fl.allowed, ',') << '\t'
           << (fl.guarded_by.empty() ? "-" : fl.guarded_by) << '\t'
           << fl.name << '\n';
      }
    }
    for (const auto& g : summary.global_decls) {
      os << "gd\t" << g.line << '\t' << join_list(g.allowed, ',') << '\t'
         << (g.guarded_by.empty() ? "-" : g.guarded_by) << '\t' << g.name
         << '\n';
    }
    if (!os) return false;
  }
  // Rename-into-place keeps concurrent readers from seeing a torn record.
  fs::rename(tmp_path, final_path, ec);
  return !ec;
}

}  // namespace dv_lint
