#include "cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace dv_lint {

namespace {

namespace fs = std::filesystem;

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

fs::path record_path(const std::string& cache_dir,
                     const std::string& rel_path) {
  return fs::path{cache_dir} / (hex64(fnv1a_hash(rel_path)) + ".rec");
}

bool parse_int(const std::string& s, int& out) {
  if (s.empty()) return false;
  long v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
    if (v > 1000000000) return false;
  }
  out = static_cast<int>(v);
  return true;
}

/// Splits `line` on tabs into at most `max_fields` pieces; the last
/// piece keeps any remaining tabs (messages may contain them in theory).
std::vector<std::string> split_tabs(const std::string& line,
                                    std::size_t max_fields) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (out.size() + 1 < max_fields) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) break;
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  out.push_back(line.substr(start));
  return out;
}

}  // namespace

std::uint64_t fnv1a_hash(std::string_view data) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

bool cache_load(const std::string& cache_dir, const std::string& rel_path,
                std::uint64_t content_hash, file_summary& out) {
  std::ifstream in{record_path(cache_dir, rel_path)};
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) ||
      line != "dv_lint-cache " + std::to_string(k_cache_version)) {
    return false;
  }
  if (!std::getline(in, line) || line != "path " + rel_path) return false;
  if (!std::getline(in, line) || line != "hash " + hex64(content_hash)) {
    return false;
  }
  file_summary s;
  s.rel_path = rel_path;
  s.content_hash = content_hash;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) return false;
    const std::string tag = line.substr(0, tab);
    if (tag == "v") {
      const auto f = split_tabs(line, 4);  // v, line, check, message
      if (f.size() != 4) return false;
      violation v;
      v.file = rel_path;
      if (!parse_int(f[1], v.line)) return false;
      v.check = f[2];
      v.message = f[3];
      s.violations.push_back(std::move(v));
    } else if (tag == "inc") {
      const auto f = split_tabs(line, 4);  // inc, line, allow-csv, spelled
      if (f.size() != 4) return false;
      include_ref ref;
      if (!parse_int(f[1], ref.line)) return false;
      if (f[2] != "-") {
        std::istringstream cs{f[2]};
        std::string name;
        while (std::getline(cs, name, ',')) {
          if (!name.empty()) ref.allowed.push_back(name);
        }
      }
      ref.spelled = f[3];
      s.includes.push_back(std::move(ref));
    } else if (tag == "sym") {
      s.declared.push_back(line.substr(tab + 1));
    } else if (tag == "use") {
      s.used.push_back(line.substr(tab + 1));
    } else if (tag == "api") {
      s.api.push_back(line.substr(tab + 1));
    } else {
      return false;
    }
  }
  out = std::move(s);
  return true;
}

bool cache_store(const std::string& cache_dir, const file_summary& summary) {
  std::error_code ec;
  fs::create_directories(cache_dir, ec);
  if (ec) return false;
  const fs::path final_path = record_path(cache_dir, summary.rel_path);
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream os{tmp_path, std::ios::trunc};
    if (!os) return false;
    os << "dv_lint-cache " << k_cache_version << '\n';
    os << "path " << summary.rel_path << '\n';
    os << "hash " << hex64(summary.content_hash) << '\n';
    for (const auto& v : summary.violations) {
      os << "v\t" << v.line << '\t' << v.check << '\t' << v.message << '\n';
    }
    for (const auto& ref : summary.includes) {
      std::string csv;
      for (const auto& name : ref.allowed) {
        if (!csv.empty()) csv += ',';
        csv += name;
      }
      os << "inc\t" << ref.line << '\t' << (csv.empty() ? "-" : csv) << '\t'
         << ref.spelled << '\n';
    }
    for (const auto& name : summary.declared) os << "sym\t" << name << '\n';
    for (const auto& name : summary.used) os << "use\t" << name << '\n';
    for (const auto& entry : summary.api) os << "api\t" << entry << '\n';
    if (!os) return false;
  }
  // Rename-into-place keeps concurrent readers from seeing a torn record.
  fs::rename(tmp_path, final_path, ec);
  return !ec;
}

}  // namespace dv_lint
