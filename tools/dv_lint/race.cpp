#include "race.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "call_graph.h"

namespace dv_lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::vector<std::string>& v, std::string_view s) {
  for (const std::string& e : v) {
    if (e == s) return true;
  }
  return false;
}

bool in_src(const std::string& rel) { return starts_with(rel, "src/"); }

std::vector<std::string> sorted_unique(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<std::string> set_union(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<std::string> set_intersect(const std::vector<std::string>& a,
                                       const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Lock-name comparison with qualification leniency: acquisition sites
/// qualify bare mutex names with the acquiring function's scope
/// (effects.cpp lock_name), while annotations may spell the bare name or
/// any suffix of the qualified one.
bool lock_matches(const std::string& held, const std::string& guard) {
  return held == guard || ends_with(held, "::" + guard) ||
         ends_with(guard, "::" + held);
}

bool holds_lock(const std::vector<std::string>& held,
                const std::string& guard) {
  for (const std::string& h : held) {
    if (lock_matches(h, guard)) return true;
  }
  return false;
}

std::string render_lockset(const std::vector<std::string>& locks) {
  if (locks.empty()) return "{}";
  std::string out = "{";
  for (std::size_t i = 0; i < locks.size(); ++i) {
    out += (i == 0 ? "" : ", ") + locks[i];
  }
  return out + "}";
}

/// The lockset engine: the shared cross-TU call graph plus the top-down
/// entry-lockset meet and root reachability with parent pointers.
struct race_engine : call_graph {
  /// Sorted entry lockset per node: locks every caller is guaranteed to
  /// hold. Meaningful only when `known`; unknown (never-called) nodes
  /// are treated as {} — an external caller promises nothing.
  std::vector<std::vector<std::string>> entry;
  std::vector<char> known;
  /// Seeded at {} because nothing in the graph calls it: an external
  /// caller promises no locks.
  std::vector<char> external;
  std::vector<char> root;   // concurrency root (lambda site / thread entry)
  std::vector<char> reach;  // reachable from some root
  /// parent[n] = (caller on the BFS tree, call line); valid when
  /// reach[n] && !root[n].
  std::vector<std::pair<std::size_t, int>> parent;

  void build(const std::vector<file_summary>& files) {
    build_graph(files);
    entry.assign(nodes.size(), {});
    known.assign(nodes.size(), 0);
    external.assign(nodes.size(), 0);
    root.assign(nodes.size(), 0);
    reach.assign(nodes.size(), 0);
    parent.assign(nodes.size(), {0, -1});
    for (const graph_site& s : sites) root[s.lambda_node] = 1;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].rec->is_thread_entry) root[i] = 1;
      if (root[i]) known[i] = 1;  // roots are pinned at {}
    }
    meet_entry_locksets();
    resolve_external();
    bfs_from_roots();
  }

  /// Nodes the meet never reached are callable only from outside the
  /// analyzed graph (or from other such nodes). Seed the ones nothing in
  /// the graph calls at {} — an external caller promises no locks — and
  /// re-run the meet so locks THEY acquire still flow into their
  /// callees; repeat until only never-called-from-anywhere cycles
  /// remain, which get the same conservative {}.
  void resolve_external() {
    for (;;) {
      std::vector<char> called(nodes.size(), 0);
      for (std::size_t m = 0; m < nodes.size(); ++m) {
        for (const auto& targets : call_targets[m]) {
          for (const std::size_t t : targets) {
            if (t != m) called[t] = 1;
          }
        }
      }
      bool seeded = false;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (known[i] == 0 && called[i] == 0) {
          known[i] = 1;
          external[i] = 1;
          seeded = true;
        }
      }
      if (!seeded) break;
      meet_entry_locksets();
    }
    bool rest = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (known[i] == 0) {
        known[i] = 1;
        external[i] = 1;
        rest = true;
      }
    }
    if (rest) meet_entry_locksets();
  }

  /// entry(callee) = ∩ over call sites of (caller entry ∪ locks held at
  /// the site). Non-root nodes start at ⊤ (unknown, identity for ∩), so
  /// sets only shrink once seeded and the iteration terminates.
  void meet_entry_locksets() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t m = 0; m < nodes.size(); ++m) {
        if (known[m] == 0) continue;  // ⊤ caller contributes identity
        const auto& calls = nodes[m].rec->calls;
        for (std::size_t k = 0; k < calls.size(); ++k) {
          const std::vector<std::string> at_site =
              set_union(entry[m], sorted_unique(calls[k].held));
          for (const std::size_t t : call_targets[m][k]) {
            if (root[t] != 0) continue;
            if (known[t] == 0) {
              entry[t] = at_site;
              known[t] = 1;
              changed = true;
            } else {
              std::vector<std::string> met = set_intersect(entry[t], at_site);
              if (met != entry[t]) {
                entry[t] = std::move(met);
                changed = true;
              }
            }
          }
        }
      }
    }
  }

  void bfs_from_roots() {
    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (root[i] != 0) {
        reach[i] = 1;
        queue.push_back(i);
      }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t m = queue[head];
      const auto& calls = nodes[m].rec->calls;
      for (std::size_t k = 0; k < calls.size(); ++k) {
        for (const std::size_t t : call_targets[m][k]) {
          if (reach[t] != 0) continue;
          reach[t] = 1;
          parent[t] = {m, calls[k].line};
          queue.push_back(t);
        }
      }
    }
  }

  const std::vector<std::string>& entry_lockset(std::size_t n) const {
    static const std::vector<std::string> empty;
    return known[n] != 0 ? entry[n] : empty;
  }

  /// "root -> ... -> display(n)" along the BFS tree ("" if unreachable).
  std::string root_chain(std::size_t n) const {
    if (reach[n] == 0) return "";
    std::vector<std::size_t> path;
    std::size_t cur = n;
    for (int hops = 0; root[cur] == 0 && hops < 64; ++hops) {
      path.push_back(cur);
      cur = parent[cur].first;
    }
    std::string out = display(cur);
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      out += " -> " + display(*it);
    }
    return out;
  }
};

/// One resolved access to a tracked shared variable.
struct var_access {
  std::size_t node{0};
  const access_record* rec{nullptr};
  std::vector<std::string> effective;  // entry lockset ∪ locally held
};

/// One tracked shared variable (field / global / static local).
struct shared_var {
  std::string display_name;
  std::string decl_file;
  int decl_line{0};
  std::string guarded_by;   // annotation as spelled ("" = infer)
  std::string guard_scope;  // qualification prefix for bare guard names
  bool suppressed{false};   // allow(race) on the declaration
  std::vector<var_access> accesses;
};

std::string qualified_guard(const shared_var& v) {
  if (v.guarded_by.find("::") != std::string::npos || v.guard_scope.empty()) {
    return v.guarded_by;
  }
  return v.guard_scope + "::" + v.guarded_by;
}

/// Variable tables plus the resolution of raw access records into them.
struct var_table {
  std::vector<shared_var> vars;
  /// class name -> field name -> vars index.
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::size_t>>
      fields;
  /// bare global name -> vars index.
  std::unordered_map<std::string, std::size_t> globals;
  /// (node index, static name) -> vars index.
  std::map<std::pair<std::size_t, std::string>, std::size_t> statics;
  /// vars index -> static declaration line (initializer exemption).
  std::unordered_map<std::size_t, int> static_decl_line;

  void build(const race_engine& eng, const std::vector<file_summary>& files) {
    for (const file_summary& f : files) {
      if (!in_src(f.rel_path)) continue;
      for (const class_record& c : f.classes) {
        bool owns_sync = false;
        for (const field_record& fr : c.fields) {
          if (fr.kind == field_kind::mutex || fr.kind == field_kind::atomic) {
            owns_sync = true;
            break;
          }
        }
        if (!owns_sync) continue;
        auto& by_name = fields[c.name];
        for (const field_record& fr : c.fields) {
          if (fr.kind != field_kind::plain) continue;
          if (by_name.count(fr.name) != 0) continue;
          by_name[fr.name] = vars.size();
          vars.push_back({c.name + "::" + fr.name, f.rel_path, fr.line,
                          fr.guarded_by, c.name,
                          contains(fr.allowed, "race"),
                          {}});
        }
      }
      for (const global_record& g : f.global_decls) {
        if (globals.count(g.name) != 0) continue;
        globals[g.name] = vars.size();
        vars.push_back({g.name, f.rel_path, g.line, g.guarded_by,
                        std::string{}, contains(g.allowed, "race"),
                        {}});
      }
    }
    for (std::size_t n = 0; n < eng.nodes.size(); ++n) {
      if (!in_src(eng.nodes[n].file->rel_path)) continue;
      const func_record& fr = *eng.nodes[n].rec;
      for (const static_local_record& sl : fr.statics) {
        const auto key = std::make_pair(n, sl.name);
        if (statics.count(key) != 0) continue;
        statics[key] = vars.size();
        const std::string scope =
            fr.is_lambda ? eng.display(n) : fr.name;
        static_decl_line[vars.size()] = sl.line;
        vars.push_back({"static '" + sl.name + "' in " + scope,
                        eng.nodes[n].file->rel_path, sl.line, sl.guarded_by,
                        call_graph::last_component(fr.name) == fr.name
                            ? std::string{}
                            : fr.name.substr(
                                  0, fr.name.size() -
                                         call_graph::last_component(fr.name)
                                             .size() -
                                         2),
                        contains(sl.allowed, "race"),
                        {}});
      }
    }
  }

  /// Resolves one access: static local of the function first, then a
  /// field of the enclosing class, then a namespace-scope variable.
  /// Returns vars.size() when the name is nothing we track.
  std::size_t resolve_access(const race_engine& eng, std::size_t n,
                             const access_record& a) const {
    const auto sit = statics.find(std::make_pair(n, a.name));
    if (sit != statics.end()) return sit->second;
    const func_record& fr = *eng.nodes[n].rec;
    if (!fr.is_lambda && !fr.name.empty()) {
      const std::string last = call_graph::last_component(fr.name);
      if (last != fr.name) {
        const std::string cls =
            fr.name.substr(0, fr.name.size() - last.size() - 2);
        const auto cit = fields.find(cls);
        if (cit != fields.end()) {
          const auto fit = cit->second.find(a.name);
          if (fit != cit->second.end()) {
            // Constructors and destructors of the owning class run
            // before/after the object is shared.
            if (last == call_graph::last_component(cls)) return vars.size();
            return fit->second;
          }
        }
      }
    }
    const auto git = globals.find(a.name);
    if (git != globals.end()) return git->second;
    return vars.size();
  }
};

void collect_accesses(const race_engine& eng,
                      var_table& table) {
  for (std::size_t n = 0; n < eng.nodes.size(); ++n) {
    if (!in_src(eng.nodes[n].file->rel_path)) continue;
    const func_record& fr = *eng.nodes[n].rec;
    if (fr.is_init) continue;  // startup-only paths are exempt wholesale
    for (const access_record& a : fr.accesses) {
      const std::size_t v = table.resolve_access(eng, n, a);
      if (v >= table.vars.size()) continue;
      const auto dit = table.static_decl_line.find(v);
      if (dit != table.static_decl_line.end() && dit->second == a.line) {
        continue;  // the static's own initializer
      }
      table.vars[v].accesses.push_back(
          {n, &a,
           set_union(eng.entry_lockset(n), sorted_unique(a.held))});
    }
  }
}

std::string access_location(const race_engine& eng, const var_access& va) {
  return eng.nodes[va.node].file->rel_path + ":" +
         std::to_string(va.rec->line);
}

void check_guarded(const race_engine& eng, const shared_var& v,
                   std::vector<violation>& out) {
  const std::string guard = qualified_guard(v);
  for (const var_access& va : v.accesses) {
    if (va.rec->waived) continue;
    if (holds_lock(va.effective, guard)) continue;
    out.push_back(
        {eng.nodes[va.node].file->rel_path, va.rec->line, "race",
         "'" + v.display_name + "' is declared guarded by '" + v.guarded_by +
             "' but is " + (va.rec->write ? "written" : "read") + " in " +
             eng.display(va.node) + " holding " +
             render_lockset(va.effective) + "; acquire '" + v.guarded_by +
             "' around this access, or waive with // dv-lint: allow(race)"});
  }
}

void check_inferred(const race_engine& eng, const shared_var& v,
                    std::vector<violation>& out) {
  std::vector<const var_access*> live;
  for (const var_access& va : v.accesses) {
    if (!va.rec->waived) live.push_back(&va);
  }
  if (live.empty()) return;
  std::vector<std::string> candidate = live[0]->effective;
  for (const var_access* va : live) {
    candidate = set_intersect(candidate, va->effective);
  }
  if (!candidate.empty()) return;  // consistently guarded by some lock
  const var_access* write = nullptr;
  for (const var_access* va : live) {
    if (va->rec->write && eng.reach[va->node] != 0) {
      write = va;
      break;
    }
  }
  if (write == nullptr) return;  // never written on a concurrent path
  // The best witness partner: a second access with no lock in common
  // with the write, preferably in a different function.
  const var_access* other = nullptr;
  for (const var_access* va : live) {
    if (va == write) continue;
    const bool disjoint =
        set_intersect(write->effective, va->effective).empty();
    if (other == nullptr ||
        (disjoint && va->node != write->node &&
         !set_intersect(write->effective, other->effective).empty())) {
      other = va;
    }
  }
  std::string msg = "'" + v.display_name +
                    "' may be accessed concurrently without a consistent "
                    "lock (lockset intersection over " +
                    std::to_string(live.size()) +
                    (live.size() == 1 ? " access" : " accesses") +
                    " is empty): written in " + eng.display(write->node) +
                    " (" + access_location(eng, *write) + ") holding " +
                    render_lockset(write->effective);
  const std::string chain = eng.root_chain(write->node);
  if (!chain.empty()) msg += ", reached from concurrency root " + chain;
  if (other != nullptr) {
    msg += "; also " +
           std::string{other->rec->write ? "written" : "read"} + " in " +
           eng.display(other->node) + " (" + access_location(eng, *other) +
           ") holding " + render_lockset(other->effective);
    const std::string ochain = eng.root_chain(other->node);
    if (!ochain.empty()) msg += ", reached from concurrency root " + ochain;
  }
  msg +=
      "; annotate the declaration with // dv:guarded-by(<lock>), make it "
      "std::atomic, or waive with // dv-lint: allow(race)";
  out.push_back({v.decl_file, v.decl_line, "race", std::move(msg)});
}

}  // namespace

std::vector<violation> check_races(const std::vector<file_summary>& files) {
  race_engine eng;
  eng.build(files);
  var_table table;
  table.build(eng, files);
  collect_accesses(eng, table);
  std::vector<violation> out;
  for (const shared_var& v : table.vars) {
    if (v.suppressed) continue;
    if (!v.guarded_by.empty()) {
      check_guarded(eng, v, out);
    } else {
      check_inferred(eng, v, out);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const violation& a, const violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return out;
}

std::string explain_races(const std::vector<file_summary>& files,
                          const std::string& name) {
  race_engine eng;
  eng.build(files);
  var_table table;
  table.build(eng, files);
  std::string out;
  for (std::size_t n = 0; n < eng.nodes.size(); ++n) {
    const func_record& fr = *eng.nodes[n].rec;
    if (fr.is_lambda || fr.name.empty()) continue;
    if (fr.name != name && !ends_with(fr.name, "::" + name)) continue;
    out += "race facts for " + fr.name + " (" +
           eng.nodes[n].file->rel_path + ":" + std::to_string(fr.line) +
           ")\n";
    out += "  entry lockset: " + render_lockset(eng.entry_lockset(n)) +
           (eng.external[n] != 0 ? " (no known caller)" : "") + "\n";
    const std::string chain = eng.root_chain(n);
    out += chain.empty()
               ? "  not reachable from a concurrency root\n"
               : "  reachable from concurrency root: " + chain + "\n";
    bool any = false;
    for (const access_record& a : fr.accesses) {
      const std::size_t v = table.resolve_access(eng, n, a);
      if (v >= table.vars.size()) continue;
      any = true;
      out += "  " + std::string{a.write ? "write" : "read"} + " '" +
             table.vars[v].display_name + "' at line " +
             std::to_string(a.line) + " holding " +
             render_lockset(
                 set_union(eng.entry_lockset(n), sorted_unique(a.held))) +
             (a.waived ? " [waived]" : "") + "\n";
    }
    if (!any) out += "  no tracked shared-state accesses\n";
  }
  return out;
}

}  // namespace dv_lint
