#include "lint.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "api_surface.h"
#include "cache.h"
#include "capture_check.h"
#include "effects.h"
#include "include_graph.h"
#include "lexer.h"
#include "race.h"
#include "token_utils.h"
#include "util/thread_pool.h"

namespace dv_lint {

namespace {

namespace fs = std::filesystem;

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Everything the checks need to know about the file being linted.
struct file_ctx {
  std::string rel_path;
  const lex_result* lx{nullptr};
  std::vector<violation>* out{nullptr};

  bool is_header{false};
  bool in_src{false};       // under src/
  bool in_src_util{false};  // under src/util/
  /// Files allowed to read clocks / own RNG internals (tensor random
  /// fills, the observability clock, span tracing).
  bool determinism_allowlisted{false};
  /// parallel_for's declaration/definition home; call-site rule is skipped.
  bool thread_pool_home{false};

  bool suppressed(std::string_view check, int line) const {
    for (const int l : {line, line - 1}) {
      const auto it = lx->notes.find(l);
      if (it == lx->notes.end()) continue;
      for (const auto& name : it->second.allowed) {
        if (name == check) return true;
      }
    }
    return false;
  }

  bool parallel_safe(int line) const {
    for (const int l : {line, line - 1}) {
      const auto it = lx->notes.find(l);
      if (it != lx->notes.end() && it->second.parallel_safe) return true;
    }
    return false;
  }

  void report(int line, std::string check, std::string message) const {
    if (suppressed(check, line)) return;
    out->push_back({rel_path, line, std::move(check), std::move(message)});
  }
};

file_ctx make_ctx(const std::string& rel_path, const lex_result& lx,
                  std::vector<violation>& out) {
  file_ctx ctx;
  ctx.rel_path = rel_path;
  ctx.lx = &lx;
  ctx.out = &out;
  ctx.is_header = ends_with(rel_path, ".h");
  ctx.in_src = starts_with(rel_path, "src/");
  ctx.in_src_util = starts_with(rel_path, "src/util/");
  ctx.determinism_allowlisted = starts_with(rel_path, "src/tensor/") ||
                                starts_with(rel_path, "src/util/metrics") ||
                                starts_with(rel_path, "src/util/trace");
  ctx.thread_pool_home = rel_path == "src/util/thread_pool.h" ||
                         rel_path == "src/util/thread_pool.cpp";
  return ctx;
}

// Token-cursor helpers now live in token_utils.h (shared with the
// capture and api-surface passes); keep the short local names.
const token* neighbor(const std::vector<token>& toks, std::size_t i,
                      int step) {
  return neighbor_token(toks, i, step);
}

bool is_ident(const token* t, std::string_view text) {
  return token_is_ident(t, text);
}

bool is_punct(const token* t, std::string_view text) {
  return token_is_punct(t, text);
}

/// True for a free-function call spelling: bare `name(` or `std::name(`,
/// but not `obj.name(`, `obj->name(`, or `other_ns::name(`.
bool is_free_call(const std::vector<token>& toks, std::size_t i) {
  if (!is_punct(neighbor(toks, i, 1), "(")) return false;
  const token* prev = neighbor(toks, i, -1);
  if (prev == nullptr) return true;
  if (is_punct(prev, ".") || is_punct(prev, "->")) return false;
  if (is_punct(prev, "::")) {
    const token* qual = neighbor(toks, i, -2);
    return is_ident(qual, "std");
  }
  return true;
}

// ---------------------------------------------------------------------------
// determinism: no ambient randomness, no wall-clock reads.

void check_determinism(const file_ctx& ctx) {
  if (ctx.determinism_allowlisted) return;
  const auto& toks = ctx.lx->tokens;
  static const std::unordered_set<std::string> rng_idents = {
      "random_device"};
  static const std::unordered_set<std::string> rng_calls = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48"};
  static const std::unordered_set<std::string> clock_calls = {
      "time", "clock", "gettimeofday", "localtime", "gmtime", "ctime"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const token& t = toks[i];
    if (t.kind != token_kind::identifier) continue;
    if (rng_idents.count(t.text) != 0) {
      ctx.report(t.line, "determinism",
                 "'std::" + t.text +
                     "' seeds are not reproducible; derive seeds from the "
                     "experiment config and draw from dv::rng "
                     "(src/util/rng.h)");
      continue;
    }
    if (t.text == "system_clock") {
      ctx.report(t.line, "determinism",
                 "wall-clock read 'system_clock' breaks run-to-run "
                 "determinism; use dv::metrics::now_ns() (frozen under "
                 "DV_METRICS_DETERMINISTIC) or dv::stopwatch");
      continue;
    }
    if (rng_calls.count(t.text) != 0 && is_free_call(toks, i)) {
      ctx.report(t.line, "determinism",
                 "'" + t.text +
                     "' is ambient randomness; draw from an explicitly "
                     "seeded dv::rng (src/util/rng.h) so runs reproduce "
                     "bit-for-bit");
      continue;
    }
    if (clock_calls.count(t.text) != 0 && is_free_call(toks, i)) {
      ctx.report(t.line, "determinism",
                 "wall-clock call '" + t.text +
                     "(' breaks run-to-run determinism; use "
                     "dv::metrics::now_ns() or dv::stopwatch for timing");
    }
  }
}

// ---------------------------------------------------------------------------
// thread-safety: annotated parallel_for sites, no mutable statics/globals.

// brace_kind / classify_brace moved to token_utils.h (the api-surface
// pass shares them).

bool all_ns(const std::vector<brace_kind>& stack) {
  return std::all_of(stack.begin(), stack.end(), [](brace_kind k) {
    return k == brace_kind::ns;
  });
}

bool contains_code(const std::vector<brace_kind>& stack) {
  return std::find(stack.begin(), stack.end(), brace_kind::code) !=
         stack.end();
}

/// Scans a declaration starting at `i` up to `;`, `=`, `{`, or `(` and
/// reports whether a constness/immunity keyword appears in the prefix and
/// which identifier names the variable.
struct decl_scan {
  bool immune{false};       // const/constexpr/constinit/atomic/thread_local
  bool function_like{false};  // hit '(' right after the declared name
  std::string name;
  std::size_t end{0};  // index of the terminator token
};

decl_scan scan_decl(const std::vector<token>& toks, std::size_t i) {
  decl_scan d;
  std::string last_ident;
  for (; i < toks.size(); ++i) {
    const token& t = toks[i];
    if (t.kind == token_kind::pp_directive) continue;
    if (t.kind == token_kind::identifier) {
      if (t.text == "const" || t.text == "constexpr" ||
          t.text == "constinit" || t.text == "atomic" ||
          t.text == "thread_local") {
        d.immune = true;
      }
      if (t.text == "operator") {  // operator overloads are functions
        d.function_like = true;
        d.end = i;
        return d;
      }
      last_ident = t.text;
      continue;
    }
    if (t.kind == token_kind::punct) {
      if (t.text == ";" || t.text == "=" || t.text == "{") {
        d.name = last_ident;
        d.end = i;
        return d;
      }
      if (t.text == "(") {
        d.function_like = true;
        d.name = last_ident;
        d.end = i;
        return d;
      }
    }
  }
  d.end = toks.size();
  d.name = last_ident;
  return d;
}

void check_thread_safety(const file_ctx& ctx) {
  const auto& toks = ctx.lx->tokens;
  std::vector<brace_kind> stack;
  bool statement_start = true;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const token& t = toks[i];
    if (t.kind == token_kind::pp_directive) {
      statement_start = true;
      continue;
    }
    if (is_punct(&t, "{")) {
      stack.push_back(classify_brace(toks, i));
      statement_start = true;
      continue;
    }
    if (is_punct(&t, "}")) {
      if (!stack.empty()) stack.pop_back();
      statement_start = true;
      continue;
    }

    // (a) every parallel_for / parallel_for_chunks call site needs a
    // dv:parallel-safe(<reason>) annotation explaining why the body is
    // safe under the determinism contract.
    if (!ctx.thread_pool_home &&
        (t.text == "parallel_for" || t.text == "parallel_for_chunks") &&
        t.kind == token_kind::identifier &&
        is_punct(neighbor(toks, i, 1), "(")) {
      if (!ctx.parallel_safe(t.line)) {
        ctx.report(t.line, "thread-safety",
                   "'" + t.text +
                       "' call site missing a // dv:parallel-safe(<reason>) "
                       "annotation stating why the body is deterministic "
                       "and race-free");
      }
    }

    if (!ctx.in_src) {  // statics/globals are enforced for library code
      statement_start = is_punct(&t, ";");
      continue;
    }

    // (b) mutable function-local statics.
    if (t.kind == token_kind::identifier && t.text == "static" &&
        contains_code(stack)) {
      const decl_scan d = scan_decl(toks, i + 1);
      if (!d.immune && !d.function_like && !d.name.empty()) {
        ctx.report(t.line, "thread-safety",
                   "mutable function-local static '" + d.name +
                       "' is shared across threads; make it const, atomic, "
                       "or justify it with dv-lint: allow(thread-safety)");
      }
      statement_start = false;
      continue;
    }

    // (c) mutable namespace-scope globals.
    if (statement_start && all_ns(stack) &&
        t.kind == token_kind::identifier) {
      static const std::unordered_set<std::string> decl_openers = {
          "using",    "namespace", "class",  "struct",   "union",
          "enum",     "template",  "typedef", "friend",  "static_assert",
          "extern",   "concept",   "operator", "requires"};
      if (decl_openers.count(t.text) == 0) {
        decl_scan d = scan_decl(toks, i);
        // Require a type + name so stray tokens are never flagged.
        if (!d.immune && !d.function_like && !d.name.empty() &&
            d.end > i + 1) {
          ctx.report(t.line, "thread-safety",
                     "non-const global '" + d.name +
                         "' is mutable shared state; make it const/"
                         "constexpr, atomic, or thread_local, or justify "
                         "it with dv-lint: allow(thread-safety)");
        }
      }
    }
    statement_start = is_punct(&t, ";");
  }
}

// ---------------------------------------------------------------------------
// metrics-gating: dv::metrics handles must be null-guarded outside
// src/util (all lookup helpers return nullptr when DV_METRICS is off).

bool qualified_metrics(const std::vector<token>& toks, std::size_t i) {
  const token* colons = neighbor(toks, i, -1);
  const token* qual = neighbor(toks, i, -2);
  return is_punct(colons, "::") && is_ident(qual, "metrics");
}

std::size_t skip_parens(const std::vector<token>& toks, std::size_t open) {
  return skip_balanced(toks, open, "(", ")");
}

void check_metrics_gating(const file_ctx& ctx) {
  if (ctx.in_src_util) return;
  const auto& toks = ctx.lx->tokens;
  static const std::unordered_set<std::string> lookups = {
      "get_counter", "get_gauge", "get_histogram"};
  static const std::unordered_set<std::string> mutators = {
      "set_enabled", "reset", "set_clock_frozen"};

  std::unordered_map<std::string, int> handles;  // var -> decl brace depth
  int depth = 0;
  bool guard_seen = false;
  int guard_depth = 0;

  auto note_guard = [&] {
    guard_seen = true;
    guard_depth = depth;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const token& t = toks[i];
    if (is_punct(&t, "{")) {
      ++depth;
      continue;
    }
    if (is_punct(&t, "}")) {
      --depth;
      if (guard_seen && depth < guard_depth) guard_seen = false;
      for (auto it = handles.begin(); it != handles.end();) {
        it = depth < it->second ? handles.erase(it) : std::next(it);
      }
      continue;
    }
    if (t.kind != token_kind::identifier) continue;

    // Registry mutators are reserved for tests and tools.
    if (ctx.in_src && mutators.count(t.text) != 0 &&
        qualified_metrics(toks, i)) {
      ctx.report(t.line, "metrics-gating",
                 "'metrics::" + t.text +
                     "' mutates global registry state and is reserved for "
                     "tests/tools; library code must stay gated behind "
                     "DV_METRICS");
      continue;
    }

    // `metrics::enabled()` anywhere in the enclosing scope counts as the
    // gate for every handle (the helpers are all-null or all-non-null).
    if (t.text == "enabled" && qualified_metrics(toks, i)) {
      note_guard();
      continue;
    }

    if (lookups.count(t.text) != 0 && qualified_metrics(toks, i)) {
      // `metrics::get_x(...)->use(...)` dereferences a maybe-null handle.
      const std::size_t after = skip_parens(toks, i + 1);
      if (!guard_seen && after < toks.size() &&
          is_punct(&toks[after], "->")) {
        ctx.report(t.line, "metrics-gating",
                   "dereferencing 'metrics::" + t.text +
                       "(...)' without a null check; the lookup returns "
                       "nullptr when DV_METRICS is off");
      }
      // `type* var = metrics::get_x(...)` registers a handle variable
      // (the `dv::` qualification is optional).
      const token* eq = neighbor(toks, i, -3);  // before `metrics ::`
      const token* var = neighbor(toks, i, -4);
      if (is_punct(eq, "::") && is_ident(var, "dv")) {
        eq = neighbor(toks, i, -5);
        var = neighbor(toks, i, -6);
      }
      if (is_punct(eq, "=") && var != nullptr &&
          var->kind == token_kind::identifier) {
        handles[var->text] = depth;
      }
      continue;
    }

    // Guard spellings on a known handle variable: `if (h)`, `!h`,
    // `h != nullptr`, `h == nullptr`, `h && ...`, `h ? ... : ...`,
    // `ASSERT/EXPECT_NE(h, nullptr)`.
    if (handles.count(t.text) != 0) {
      const token* next = neighbor(toks, i, 1);
      const token* next2 = neighbor(toks, i, 2);
      const token* prev = neighbor(toks, i, -1);
      const token* prev2 = neighbor(toks, i, -2);
      const bool vs_nullptr =
          (is_punct(next, "!=") || is_punct(next, "==") ||
           is_punct(next, ",")) &&
          is_ident(next2, "nullptr");
      const bool truthy = is_punct(next, "&&") || is_punct(next, "?") ||
                          is_punct(prev, "!") ||
                          (is_punct(prev, "(") && is_ident(prev2, "if") &&
                           is_punct(next, ")"));
      if (vs_nullptr || truthy) {
        note_guard();
        continue;
      }
      if (is_punct(next, "->") && !guard_seen) {
        ctx.report(t.line, "metrics-gating",
                   "metrics handle '" + t.text +
                       "' dereferenced without a null check; lookups "
                       "return nullptr when DV_METRICS is off — guard "
                       "with `if (" +
                       t.text + " != nullptr)` or metrics::enabled()");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// hygiene: #pragma once, no `using namespace` in headers, no unsafe libc.

void check_hygiene(const file_ctx& ctx) {
  const auto& toks = ctx.lx->tokens;
  if (ctx.is_header) {
    bool pragma_once_first = false;
    int first_line = 1;
    if (!toks.empty()) {
      first_line = toks.front().line;
      if (toks.front().kind == token_kind::pp_directive) {
        std::string squashed;
        for (const char c : toks.front().text) {
          if (c != ' ' && c != '\t') squashed.push_back(c);
        }
        pragma_once_first = squashed == "#pragmaonce";
      }
    }
    if (!pragma_once_first) {
      ctx.report(first_line, "hygiene",
                 "header must start with #pragma once (before any other "
                 "declaration or directive)");
    }
  }

  static const std::unordered_map<std::string, std::string> banned = {
      {"sprintf", "use snprintf with an explicit buffer size"},
      {"vsprintf", "use vsnprintf with an explicit buffer size"},
      {"strcpy", "use std::string or std::snprintf"},
      {"strcat", "use std::string"},
      {"gets", "use std::getline"},
      {"tmpnam", "use mkstemp-style unique creation"},
      {"atoi", "use std::strtol / std::from_chars (atoi hides errors)"},
      {"atol", "use std::strtol / std::from_chars (atol hides errors)"},
      {"atoll", "use std::strtoll / std::from_chars (atoll hides errors)"},
      {"atof", "use std::strtod (atof hides errors)"},
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const token& t = toks[i];
    if (t.kind != token_kind::identifier) continue;
    if (ctx.is_header && t.text == "using" &&
        is_ident(neighbor(toks, i, 1), "namespace")) {
      ctx.report(t.line, "hygiene",
                 "'using namespace' in a header leaks into every includer; "
                 "qualify names instead");
      continue;
    }
    const auto it = banned.find(t.text);
    if (it != banned.end() && is_free_call(toks, i)) {
      ctx.report(t.line, "hygiene",
                 "unsafe libc call '" + t.text + "': " + it->second);
    }
  }
}

// ---------------------------------------------------------------------------
// simd: vendor intrinsics live only under src/tensor/simd/; everything
// else reaches them through the dispatch table (tensor/simd/simd.h), so
// every kernel keeps scalar/sse2/avx2 variants with the bitwise-identity
// contract.

/// Parses a pp directive's text as `#include <path>` or `#include "path"`;
/// returns the spelled path or "" for any other directive.
std::string include_any_path(const std::string& text) {
  std::size_t p = text.find_first_not_of(" \t");
  if (p == std::string::npos || text[p] != '#') return {};
  p = text.find_first_not_of(" \t", p + 1);
  if (p == std::string::npos || text.compare(p, 7, "include") != 0) return {};
  p = text.find_first_not_of(" \t", p + 7);
  if (p == std::string::npos) return {};
  const char open = text[p];
  const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') return {};
  const std::size_t end = text.find(close, p + 1);
  if (end == std::string::npos) return {};
  return text.substr(p + 1, end - p - 1);
}

void check_simd(const file_ctx& ctx) {
  if (starts_with(ctx.rel_path, "src/tensor/simd/")) return;
  static const std::unordered_set<std::string> intrinsic_headers = {
      "immintrin.h", "x86intrin.h", "x86gprintrin.h", "emmintrin.h",
      "xmmintrin.h", "pmmintrin.h", "tmmintrin.h",    "smmintrin.h",
      "nmmintrin.h", "wmmintrin.h", "ammintrin.h",    "arm_neon.h"};
  for (const token& t : ctx.lx->tokens) {
    if (t.kind == token_kind::pp_directive) {
      const std::string spelled = include_any_path(t.text);
      if (intrinsic_headers.count(spelled) != 0) {
        ctx.report(t.line, "simd",
                   "intrinsics header '" + spelled +
                       "' included outside src/tensor/simd/; add an ISA "
                       "variant to the dispatch table (tensor/simd/simd.h) "
                       "so the DV_SIMD bitwise-identity contract holds");
      }
      continue;
    }
    if (t.kind != token_kind::identifier) continue;
    if (starts_with(t.text, "_mm") || starts_with(t.text, "__m")) {
      ctx.report(t.line, "simd",
                 "intrinsic '" + t.text +
                     "' used outside src/tensor/simd/; route it through "
                     "the dispatch table (tensor/simd/simd.h)");
    }
  }
}

std::vector<violation> lint_lexed(const std::string& rel_path,
                                  const lex_result& lx,
                                  const file_effects& fx) {
  std::vector<violation> out;
  const file_ctx ctx = make_ctx(rel_path, lx, out);
  check_determinism(ctx);
  check_thread_safety(ctx);
  check_metrics_gating(ctx);
  check_hygiene(ctx);
  check_simd(ctx);
  check_init_only_config(rel_path, lx, fx, out);
  const auto captures = check_captures(rel_path, lx);
  out.insert(out.end(), captures.begin(), captures.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const violation& a, const violation& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.check < b.check;
                   });
  return out;
}

/// Parses a pp directive's text as `#include "<path>"`; returns the path
/// or "" when the directive is something else (or an angle include).
std::string quoted_include_path(const std::string& text) {
  std::size_t p = text.find_first_not_of(" \t");
  if (p == std::string::npos || text[p] != '#') return {};
  p = text.find_first_not_of(" \t", p + 1);
  if (p == std::string::npos || text.compare(p, 7, "include") != 0) return {};
  p = text.find_first_not_of(" \t", p + 7);
  if (p == std::string::npos || text[p] != '"') return {};
  const std::size_t close = text.find('"', p + 1);
  if (close == std::string::npos) return {};
  return text.substr(p + 1, close - p - 1);
}

std::vector<std::string> allows_on_line(const lex_result& lx, int line) {
  std::vector<std::string> out;
  for (const int l : {line, line - 1}) {
    const auto it = lx.notes.find(l);
    if (it == lx.notes.end()) continue;
    for (const auto& name : it->second.allowed) {
      if (std::find(out.begin(), out.end(), name) == out.end()) {
        out.push_back(name);
      }
    }
  }
  return out;
}

}  // namespace

const std::vector<check_info>& check_registry() {
  // Bump a version (or add an entry) whenever a check's logic changes in
  // a way that affects results derived from cached records.
  static const std::vector<check_info> registry = {
      {"determinism", 1},      {"thread-safety", 1},
      {"metrics-gating", 1},   {"hygiene", 1},
      {"simd", 1},             {"capture", 2},
      {"init-only-config", 1}, {"layering", 1},
      {"include-cycle", 1},    {"unused-include", 1},
      {"api-surface", 1},      {"hot-path-purity", 1},
      {"lock-order", 1},       {"race", 1},
  };
  return registry;
}

std::uint64_t lint_schema_hash() {
  static const std::uint64_t hash = [] {
    std::string rendered;
    for (const check_info& c : check_registry()) {
      rendered += c.name;
      rendered += ':';
      rendered += std::to_string(c.version);
      rendered += ';';
    }
    return fnv1a_hash(rendered);
  }();
  return hash;
}

std::vector<violation> lint_source(const std::string& rel_path,
                                   std::string_view source) {
  const lex_result lx = lex(source);
  return lint_lexed(rel_path, lx, extract_effects(rel_path, lx));
}

file_summary summarize(const std::string& rel_path, std::string_view source) {
  const lex_result lx = lex(source);
  file_effects fx = extract_effects(rel_path, lx);
  file_summary s;
  s.rel_path = rel_path;
  s.content_hash = fnv1a_hash(source);
  s.violations = lint_lexed(rel_path, lx, fx);
  s.funcs = std::move(fx.funcs);
  s.par_sites = std::move(fx.sites);
  s.globals = std::move(fx.globals);
  s.classes = std::move(fx.classes);
  s.global_decls = std::move(fx.global_decls);

  std::set<std::string> used;
  for (const token& t : lx.tokens) {
    if (t.kind == token_kind::identifier) {
      used.insert(t.text);
      continue;
    }
    if (t.kind != token_kind::pp_directive) continue;
    const std::string spelled = quoted_include_path(t.text);
    if (!spelled.empty()) {
      s.includes.push_back({t.line, spelled, allows_on_line(lx, t.line)});
      continue;
    }
    // Conditional-compilation and macro-body identifiers count as uses
    // (`#if DV_METRICS`, `#define WRAP(x) dv::clamp(x)`).
    std::string ident;
    for (const char c : t.text) {
      const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
      if (word) {
        ident.push_back(c);
      } else if (!ident.empty()) {
        if (!(ident[0] >= '0' && ident[0] <= '9')) used.insert(ident);
        ident.clear();
      }
    }
    if (!ident.empty() && !(ident[0] >= '0' && ident[0] <= '9')) {
      used.insert(ident);
    }
  }
  s.used.assign(used.begin(), used.end());

  if (ends_with(rel_path, ".h")) {
    header_decls decls = extract_decls(lx);
    s.api = std::move(decls.api);
    s.declared = std::move(decls.declared);
  }
  return s;
}

std::string format(const std::vector<violation>& violations) {
  std::ostringstream os;
  for (const auto& v : violations) {
    os << v.file << ':' << v.line << ": [" << v.check << "] " << v.message
       << '\n';
  }
  return os.str();
}

namespace {

bool skip_dir(const std::string& name) {
  return name == ".git" || name == "lint_fixtures" ||
         starts_with(name, "build") || starts_with(name, "artifacts");
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp";
}

void collect(const fs::path& root, const fs::path& path,
             std::set<std::string>& files) {
  if (fs::is_directory(path)) {
    for (fs::recursive_directory_iterator it{path}, end; it != end; ++it) {
      if (it->is_directory() && skip_dir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable(it->path())) {
        files.insert(fs::relative(it->path(), root).generic_string());
      }
    }
    return;
  }
  files.insert(fs::relative(path, root).generic_string());
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Prefer a root-relative spelling for paths inside the root (so the
/// api-surface golden reports as tools/dv_lint/api_surface.golden, not
/// an absolute path), falling back to the path as given.
std::string display_path(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (!ec && !rel.empty() && rel.generic_string().compare(0, 2, "..") != 0) {
    return rel.generic_string();
  }
  return path.generic_string();
}

constexpr std::string_view k_usage =
    "usage: dv_lint [--root <dir>] [--layers <file>] [--cache-dir <dir>] "
    "[--api-surface <file>] [--check-api-surface] [--update-api-surface] "
    "[--json] [--explain <function>] [--only <check,...>] [path...]";

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void format_json(const std::vector<violation>& violations, std::size_t scanned,
                 int cached, std::ostream& out) {
  out << "{\n  \"files_scanned\": " << scanned << ",\n  \"cached\": " << cached
      << ",\n  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const violation& v = violations[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"file\": \""
        << json_escape(v.file) << "\", \"line\": " << v.line
        << ", \"check\": \"" << json_escape(v.check) << "\", \"message\": \""
        << json_escape(v.message) << "\"}";
  }
  out << (violations.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  fs::path root = ".";
  std::string layers_arg, cache_dir, api_arg, explain_arg, only_arg;
  bool check_api = false, update_api = false, json = false;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto value = [&](const char* flag, std::string& into) -> bool {
      if (i + 1 >= args.size()) {
        err << "dv_lint: " << flag << " requires an argument\n";
        return false;
      }
      into = args[++i];
      return true;
    };
    if (args[i] == "--root") {
      std::string r;
      if (!value("--root", r)) return 2;
      root = r;
    } else if (args[i] == "--layers") {
      if (!value("--layers", layers_arg)) return 2;
    } else if (args[i] == "--cache-dir") {
      if (!value("--cache-dir", cache_dir)) return 2;
    } else if (args[i] == "--api-surface") {
      if (!value("--api-surface", api_arg)) return 2;
    } else if (args[i] == "--check-api-surface") {
      check_api = true;
    } else if (args[i] == "--update-api-surface") {
      update_api = true;
    } else if (args[i] == "--json") {
      json = true;
    } else if (args[i] == "--explain") {
      if (!value("--explain", explain_arg)) return 2;
    } else if (args[i] == "--only") {
      if (!value("--only", only_arg)) return 2;
    } else if (starts_with(args[i], "--")) {
      err << "dv_lint: unknown option '" << args[i] << "' (" << k_usage
          << ")\n";
      return 2;
    } else {
      paths.push_back(args[i]);
    }
  }
  if (!fs::is_directory(root)) {
    err << "dv_lint: root '" << root.string() << "' is not a directory\n";
    return 2;
  }
  if (paths.empty()) paths = {"src", "bench", "tests", "tools"};

  // Layer manifest: an explicit --layers must exist; the default
  // tools/dv_lint/layers.txt is optional (fixture trees may not have one).
  layer_manifest manifest;
  const fs::path layers_path =
      layers_arg.empty() ? root / "tools/dv_lint/layers.txt"
                         : fs::path{layers_arg};
  {
    std::string text;
    if (read_file(layers_path, text)) {
      manifest = parse_layer_manifest(text);
    } else if (!layers_arg.empty()) {
      err << "dv_lint: cannot read layer manifest '" << layers_arg << "'\n";
      return 2;
    }
  }

  std::set<std::string> file_set;
  for (const auto& p : paths) {
    const fs::path full = root / p;
    if (!fs::exists(full)) {
      err << "dv_lint: path '" << p << "' not found under '"
          << root.string() << "'\n";
      return 2;
    }
    collect(root, full, file_set);
  }
  const std::vector<std::string> files{file_set.begin(), file_set.end()};
  const std::size_t n = files.size();

  std::vector<file_summary> summaries(n);
  std::vector<char> unreadable(n, 0);
  std::atomic<int> cached{0};
  // Each chunk owns a disjoint slice of the path-sorted file list; the
  // cached counter is atomic and order-insensitive.
  // The scan loop IS the I/O stage: it reads sources and cache records
  // and builds summaries by design, so purity is waived wholesale.
  // dv:parallel-safe(disjoint slots) dv-lint: allow(hot-path-purity)
  dv::parallel_for(
      0, static_cast<std::int64_t>(n), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t idx = lo; idx < hi; ++idx) {
          const std::size_t i = static_cast<std::size_t>(idx);
          std::string source;
          if (!read_file(root / files[i], source)) {
            unreadable[i] = 1;
            continue;
          }
          const std::uint64_t hash = fnv1a_hash(source);
          if (!cache_dir.empty() &&
              cache_load(cache_dir, files[i], hash, summaries[i])) {
            cached.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          summaries[i] = summarize(files[i], source);
          if (!cache_dir.empty()) cache_store(cache_dir, summaries[i]);
        }
      });
  for (std::size_t i = 0; i < n; ++i) {
    if (unreadable[i] != 0) {
      err << "dv_lint: cannot read '" << files[i] << "'\n";
      return 2;
    }
  }

  // --explain short-circuits the violation report: print the inferred
  // effect closure (with witness chains) and the race facts (entry
  // locksets, root reachability, shared-state accesses) for the name.
  if (!explain_arg.empty()) {
    const std::string effects_text = explain_effects(summaries, explain_arg);
    const std::string race_text = explain_races(summaries, explain_arg);
    if (effects_text.empty() && race_text.empty()) {
      err << "dv_lint: --explain: no function named '" << explain_arg
          << "' in the scanned files\n";
      return 2;
    }
    out << effects_text << race_text;
    return 0;
  }

  std::vector<violation> all;
  for (const auto& s : summaries) {
    all.insert(all.end(), s.violations.begin(), s.violations.end());
  }

  // Effect inference runs over every scanned file (tests and tools
  // contribute callees even though hot-path roots there are skipped).
  // It is recomputed from the per-file records each run, so touching one
  // file re-derives every caller's closure from warm cache entries.
  const auto effect_violations = check_effects(summaries);
  all.insert(all.end(), effect_violations.begin(), effect_violations.end());

  // The lockset race detector shares the cross-TU call graph: guarded-by
  // verification plus Eraser-style inference over shared state.
  const auto race_violations = check_races(summaries);
  all.insert(all.end(), race_violations.begin(), race_violations.end());

  // Cross-file passes run over the library tree only: tests and tools may
  // include src/ headers freely and are not part of the layer contract.
  std::vector<file_summary> src_files;
  for (const auto& s : summaries) {
    if (starts_with(s.rel_path, "src/")) src_files.push_back(s);
  }
  const auto graph_violations = check_include_graph(src_files, manifest);
  all.insert(all.end(), graph_violations.begin(), graph_violations.end());

  if (check_api || update_api) {
    const fs::path api_path = api_arg.empty()
                                  ? root / "tools/dv_lint/api_surface.golden"
                                  : fs::path{api_arg};
    const std::string rendered = render_surface(src_files);
    if (update_api) {
      std::ofstream os{api_path, std::ios::trunc | std::ios::binary};
      os << rendered;
      if (!os) {
        err << "dv_lint: cannot write api surface '" << api_path.string()
            << "'\n";
        return 2;
      }
    } else {
      const std::string shown = display_path(api_path, root);
      std::string golden;
      if (!read_file(api_path, golden)) {
        all.push_back({shown, 1, "api-surface",
                       "golden snapshot missing; review the public API and "
                       "generate it with dv_lint --update-api-surface"});
      } else if (golden != rendered) {
        // Report counts plus the first drifted entry in each direction so
        // the diagnostic is actionable without opening a diff tool.
        std::set<std::string> want, have;
        std::istringstream ws{golden}, hs{rendered};
        std::string line;
        while (std::getline(ws, line)) want.insert(line);
        while (std::getline(hs, line)) have.insert(line);
        std::vector<std::string> added, removed;
        std::set_difference(have.begin(), have.end(), want.begin(),
                            want.end(), std::back_inserter(added));
        std::set_difference(want.begin(), want.end(), have.begin(),
                            have.end(), std::back_inserter(removed));
        std::string msg = "public API surface drifted from the golden "
                          "snapshot: " +
                          std::to_string(added.size()) + " entry(ies) added, " +
                          std::to_string(removed.size()) + " removed";
        if (!added.empty()) msg += "; first added: '" + added.front() + "'";
        if (!removed.empty()) {
          msg += "; first removed: '" + removed.front() + "'";
        }
        msg += "; review the API change, then regenerate with dv_lint "
               "--update-api-surface";
        all.push_back({shown, 1, "api-surface", std::move(msg)});
      }
    }
  }

  if (!only_arg.empty()) {
    std::set<std::string> keep;
    std::istringstream cs{only_arg};
    std::string name;
    while (std::getline(cs, name, ',')) {
      if (!name.empty()) keep.insert(name);
    }
    all.erase(std::remove_if(all.begin(), all.end(),
                             [&](const violation& v) {
                               return keep.count(v.check) == 0;
                             }),
              all.end());
  }

  std::stable_sort(all.begin(), all.end(),
                   [](const violation& a, const violation& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.check < b.check;
                   });
  if (json) {
    format_json(all, n, cached.load(), out);
    return all.empty() ? 0 : 1;
  }
  out << format(all);
  out << "dv_lint: " << n << " file(s) scanned, " << cached.load()
      << " cached, " << all.size() << " violation(s)\n";
  return all.empty() ? 0 : 1;
}

}  // namespace dv_lint
