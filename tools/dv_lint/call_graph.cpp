#include "call_graph.h"

#include <unordered_set>

namespace dv_lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool path_effect_exempt(std::string_view rel) {
  return starts_with(rel, "src/util/metrics") ||
         starts_with(rel, "src/util/trace") ||
         starts_with(rel, "src/util/thread_pool");
}

std::string call_graph::last_component(const std::string& name) {
  const std::size_t p = name.rfind("::");
  return p == std::string::npos ? name : name.substr(p + 2);
}

bool call_graph::std_method_name(const std::string& s) {
  static const std::unordered_set<std::string> names = {
      "clear", "size",  "empty",   "begin", "end",   "find",   "count",
      "at",    "front", "back",    "data",  "str",   "c_str",  "substr",
      "append", "insert", "erase", "reserve", "resize", "push_back",
      "emplace_back", "pop_back", "emplace", "swap", "get",    "reset",
      "load",  "store", "length",  "assign", "fill", "min",    "max",
      "first", "second", "value",  "reason", "what", "compare"};
  return names.count(s) != 0;
}

void call_graph::build_graph(const std::vector<file_summary>& files) {
  for (const file_summary& f : files) {
    const bool exempt = path_effect_exempt(f.rel_path);
    const std::size_t base = nodes.size();
    for (const func_record& fr : f.funcs) {
      nodes.push_back({&f, &fr, exempt});
      if (!fr.is_lambda && !fr.name.empty()) {
        by_last[last_component(fr.name)].push_back(nodes.size() - 1);
      }
    }
    for (const par_site_record& ps : f.par_sites) {
      if (ps.lambda_index < f.funcs.size()) {
        sites.push_back({&f, &ps, base + ps.lambda_index});
      }
    }
  }
  call_targets.resize(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& calls = nodes[i].rec->calls;
    call_targets[i].resize(calls.size());
    for (std::size_t k = 0; k < calls.size(); ++k) {
      call_targets[i][k] = resolve(calls[k]);
    }
  }
}

std::vector<std::size_t> call_graph::resolve(const call_record& c) const {
  std::vector<std::size_t> out;
  const std::string last = last_component(c.callee);
  if (c.method && std_method_name(last)) return out;
  const auto it = by_last.find(last);
  if (it == by_last.end()) return out;
  const bool qualified = c.callee.find("::") != std::string::npos;
  for (const std::size_t cand : it->second) {
    const std::string& full = nodes[cand].rec->name;
    if (qualified && full != c.callee && !ends_with(full, "::" + c.callee)) {
      continue;
    }
    out.push_back(cand);
  }
  // A method call only resolves on a unique name match — otherwise
  // every `v.size()` would inherit whatever some class's size() does.
  if (c.method && out.size() != 1) out.clear();
  return out;
}

bool call_graph::propagates(std::size_t t) const {
  return !nodes[t].exempt && !nodes[t].rec->is_init;
}

std::string call_graph::display(std::size_t n) const {
  const func_record& fr = *nodes[n].rec;
  return fr.is_lambda ? "(lambda at " + nodes[n].file->rel_path + ":" +
                            std::to_string(fr.line) + ")"
                      : fr.name;
}

}  // namespace dv_lint
