// Capture-analysis pass: machine-checks the thread-safety story the
// `// dv:parallel-safe(...)` comments used to carry on faith.
//
// For every `parallel_for` / `parallel_for_chunks` call site whose last
// argument is a lambda, the pass classifies the captures (by-value,
// by-reference, `this`, capture defaults) and walks the lambda body for
// writes. A write is flagged when its target is captured by reference
// (or reaches shared state through `this` / a value-captured pointer)
// and the write is not indexed by a loop-local variable — i.e. it is not
// the disjoint-slot pattern `out[i] = ...` nor the per-chunk-partials
// pattern `partial[chunk] += ...` from the DESIGN.md §8 determinism
// contract. Reviewed-and-safe sites are waived in place with
// `// dv-lint: allow(capture) <reason>`.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace dv_lint {

/// Returns the capture violations for one file, sorted by line.
/// Suppressions (`dv-lint: allow(capture)`) are already applied.
std::vector<violation> check_captures(const std::string& rel_path,
                                      const lex_result& lx);

}  // namespace dv_lint
