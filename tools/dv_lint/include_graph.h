// Include-graph pass: cross-file checks over the quoted-include DAG of
// the scanned tree.
//
//   layering       — src/ modules may only include same-layer or
//                    lower-layer modules per the checked-in manifest
//                    (tools/dv_lint/layers.txt, one layer per line,
//                    lowest first)
//   include-cycle  — the quoted-include graph must stay acyclic; each
//                    strongly connected component is reported once, on
//                    its lexicographically smallest member
//   unused-include — IWYU-lite: a direct include none of whose provided
//                    symbols (its own declarations plus, transitively,
//                    those of its includes) appear in the includer
//
// All three honor `// dv-lint: allow(<check>)` on the include line (the
// per-include allow lists travel inside file_summary so cached files
// keep their waivers).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lint.h"

namespace dv_lint {

struct layer_manifest {
  bool loaded{false};
  /// layers[i] = module names at rank i; lower rank = lower layer.
  std::vector<std::vector<std::string>> layers;
  std::unordered_map<std::string, int> rank;  // module -> layer index
};

/// Parses the manifest text: one layer per line, whitespace-separated
/// module names, `#` starts a comment. Lines are ordered lowest layer
/// first.
layer_manifest parse_layer_manifest(std::string_view text);

/// Runs layering, include-cycle, and unused-include over the summarized
/// files. Include targets are resolved against the scanned set only
/// (first as src/-relative, then includer-relative), so unresolved
/// includes — system headers, generated files — are simply skipped.
std::vector<violation> check_include_graph(
    const std::vector<file_summary>& files, const layer_manifest& layers);

}  // namespace dv_lint
