// Effect-inference engine. extract_effects() walks one file's token
// stream and records, per function definition, the *direct* effects its
// body exhibits (blocking waits, allocation, getenv, clock reads,
// ambient RNG, writes to namespace-scope state), every mutex
// acquisition with the set of locks already held, and every call with
// the locks held at the call site — plus one synthetic record per
// parallel_for lambda. The records are cached with the file summary
// (cache.h), so warm runs skip re-lexing unchanged files entirely.
//
// check_effects() then resolves calls across every scanned TU into a
// call graph, closes the per-function summaries over its SCCs with one
// bottom-up fixed point (scc.h), and enforces:
//
//   hot-path-purity — parallel_for lambda bodies and dv:hot-path(...)
//       functions must not transitively block, read env/clock, draw
//       ambient randomness, allocate, or acquire locks
//   lock-order      — the global acquired-while-held graph over
//       src/ must stay acyclic (cycle = deadlock by interleaving)
//   capture         — by-ref captures written *through callees* of a
//       parallel_for lambda (the transitive form of capture_check.h)
//
// init-only-config (getenv outside a dv:init function) is a per-file
// check and runs from lint_lexed; it lives here because it reads the
// same records. Every diagnostic carries the witness call chain; the
// --explain CLI mode prints the full chain for any function by name.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace dv_lint {

/// Everything effect-related extracted from one file. funcs includes
/// synthetic lambda records (referenced by sites[*].lambda_index).
struct file_effects {
  std::vector<func_record> funcs;
  std::vector<par_site_record> sites;
  /// Namespace-scope mutable variables declared in this file (the
  /// cross-file writes_global target set).
  std::vector<std::string> globals;
  /// Shared-state declarations for the race pass (race.h): member
  /// fields per class and namespace-scope variables with metadata.
  std::vector<class_record> classes;
  std::vector<global_record> global_decls;
};

file_effects extract_effects(const std::string& rel_path,
                             const lex_result& lx);

/// Per-file check: under src/, getenv may only appear inside a function
/// annotated dv:init(<reason>) (knobs latch at startup, never per-call).
void check_init_only_config(const std::string& rel_path, const lex_result& lx,
                            const file_effects& fx,
                            std::vector<violation>& out);

/// Cross-file pass over every scanned file's cached records: resolves
/// the call graph, runs the fixed point, and emits hot-path-purity,
/// lock-order, and transitive capture violations.
std::vector<violation> check_effects(const std::vector<file_summary>& files);

/// Renders the inferred effect closure of every function whose
/// (qualified) name matches `name`, one witness chain per effect.
/// Returns "" when no function matches.
std::string explain_effects(const std::vector<file_summary>& files,
                            const std::string& name);

}  // namespace dv_lint
