// Hand-rolled C++ lexer for dv_lint: just enough tokenization to walk the
// repository's own sources without a compiler frontend. Comments, string
// and character literals, and preprocessor directives are consumed whole,
// so banned identifiers inside them never produce false positives — and
// lint annotations (`// dv-lint: allow(check)`, `// dv:parallel-safe(why)`)
// are recovered from the comment text they live in.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dv_lint {

enum class token_kind {
  identifier,   // [A-Za-z_][A-Za-z0-9_]*
  number,       // integer / floating literal (value not interpreted)
  punct,        // one operator or punctuator; "::", "->", "!=", "==",
                // "&&", "||" are kept as single tokens
  string_lit,   // "...", R"(...)", '...' — contents discarded
  pp_directive  // one whole preprocessor logical line, continuations folded
};

struct token {
  token_kind kind{token_kind::punct};
  std::string text;  // identifier/punct spelling; directive text for pp
  int line{1};       // 1-based line the token starts on
};

/// Lint annotations attached to a source line by its comments.
struct line_notes {
  /// Check names named by `dv-lint: allow(<name>[, <name>...])`.
  std::vector<std::string> allowed;
  /// True when the line carries `dv:parallel-safe(<reason>)` with a
  /// non-empty reason.
  bool parallel_safe{false};
  /// True when the line carries `dv:init(<reason>)`: the function defined
  /// here latches ambient state (env knobs) once at startup/first use, so
  /// its reads_env/reads_clock effects do not propagate to callers.
  bool init_fn{false};
  /// True when the line carries `dv:hot-path(<reason>)`: the function
  /// defined here is a serving hot-path root and must satisfy the same
  /// transitive purity contract as a parallel_for lambda body.
  bool hot_path{false};
  /// True when the line carries `dv:thread-entry(<reason>)`: the function
  /// defined here runs on its own thread (worker loop, detached task), so
  /// the race pass treats it as a concurrency root.
  bool thread_entry{false};
  /// Lock named by `dv:guarded-by(<lock>)` on a field or global
  /// declaration: every access to the declared state must hold this lock.
  /// Empty when the line carries no guard annotation.
  std::string guarded_by;
};

struct lex_result {
  std::vector<token> tokens;
  /// Line number -> annotations found in comments starting on that line.
  std::map<int, line_notes> notes;
};

/// Tokenizes `source`. Never throws on malformed input: unterminated
/// literals and comments simply end at end-of-file.
lex_result lex(std::string_view source);

}  // namespace dv_lint
