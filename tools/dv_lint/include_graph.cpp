#include "include_graph.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_set>

#include "scc.h"

namespace dv_lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool ref_allows(const include_ref& ref, std::string_view check) {
  return std::find(ref.allowed.begin(), ref.allowed.end(), check) !=
         ref.allowed.end();
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string{} : path.substr(0, slash);
}

/// Collapses `a/./b` and `a/x/../b` segments so includer-relative
/// includes resolve against the scanned-file set.
std::string normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::istringstream is{path};
  std::string seg;
  while (std::getline(is, seg, '/')) {
    if (seg.empty() || seg == ".") continue;
    if (seg == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
      continue;
    }
    parts.push_back(seg);
  }
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

/// The module a src/ file belongs to: the path component directly after
/// src/ ("" for files sitting at src/ itself or outside src/).
std::string module_of(const std::string& rel_path) {
  if (!starts_with(rel_path, "src/")) return {};
  const std::size_t slash = rel_path.find('/', 4);
  if (slash == std::string::npos) return {};
  return rel_path.substr(4, slash - 4);
}

struct graph {
  const std::vector<file_summary>* files{nullptr};
  std::unordered_map<std::string, std::size_t> index;  // rel_path -> files idx
  /// edges[i] = indices of files that files[i] directly includes.
  std::vector<std::vector<std::size_t>> edges;
  /// For each file, the resolved target index of each include (or npos).
  std::vector<std::vector<std::size_t>> resolved;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

graph build_graph(const std::vector<file_summary>& files) {
  graph g;
  g.files = &files;
  for (std::size_t i = 0; i < files.size(); ++i) {
    g.index.emplace(files[i].rel_path, i);
  }
  g.edges.resize(files.size());
  g.resolved.resize(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    g.resolved[i].assign(files[i].includes.size(), graph::npos);
    for (std::size_t k = 0; k < files[i].includes.size(); ++k) {
      const std::string& spelled = files[i].includes[k].spelled;
      // Quoted includes in this repo are spelled src/-relative; fall
      // back to includer-relative for fixtures and tools.
      std::size_t target = graph::npos;
      const auto src_it = g.index.find(normalize("src/" + spelled));
      if (src_it != g.index.end()) {
        target = src_it->second;
      } else {
        const std::string local =
            normalize(dir_of(files[i].rel_path) + "/" + spelled);
        const auto loc_it = g.index.find(local);
        if (loc_it != g.index.end()) target = loc_it->second;
      }
      g.resolved[i][k] = target;
      if (target != graph::npos && target != i) {
        g.edges[i].push_back(target);
      }
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// layering

void check_layering(const graph& g, const layer_manifest& layers,
                    std::vector<violation>& out) {
  if (!layers.loaded) return;
  const auto& files = *g.files;
  // A module missing from the manifest is reported once, on the first
  // (path-sorted) file of that module.
  std::set<std::string> unknown_reported;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string from_mod = module_of(files[i].rel_path);
    if (from_mod.empty()) continue;
    const auto from_rank = layers.rank.find(from_mod);
    if (from_rank == layers.rank.end()) {
      if (unknown_reported.insert(from_mod).second) {
        out.push_back({files[i].rel_path, 1, "layering",
                       "module '" + from_mod +
                           "' is not listed in the layer manifest; add it "
                           "to tools/dv_lint/layers.txt at its layer"});
      }
      continue;
    }
    for (std::size_t k = 0; k < files[i].includes.size(); ++k) {
      const std::size_t target = g.resolved[i][k];
      if (target == graph::npos) continue;
      const include_ref& ref = files[i].includes[k];
      if (ref_allows(ref, "layering")) continue;
      const std::string to_mod = module_of(files[target].rel_path);
      if (to_mod.empty() || to_mod == from_mod) continue;
      const auto to_rank = layers.rank.find(to_mod);
      if (to_rank == layers.rank.end()) continue;  // reported above
      if (to_rank->second > from_rank->second) {
        out.push_back(
            {files[i].rel_path, ref.line, "layering",
             "include of '" + ref.spelled + "' reaches up from layer-" +
                 std::to_string(from_rank->second) + " module '" + from_mod +
                 "' into layer-" + std::to_string(to_rank->second) +
                 " module '" + to_mod +
                 "'; move the shared code down a layer or invert the "
                 "dependency (declared order: tools/dv_lint/layers.txt)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// include-cycle (iterative Tarjan SCC, shared with the effects pass —
// scc.h)

void check_cycles(const graph& g, std::vector<violation>& out) {
  const scc_result sccs = tarjan_sccs(g.edges);
  const auto& files = *g.files;
  for (const auto& scc : sccs.components) {
    if (scc.size() < 2) continue;
    std::vector<std::string> members;
    members.reserve(scc.size());
    for (const std::size_t idx : scc) {
      members.push_back(files[idx].rel_path);
    }
    std::sort(members.begin(), members.end());
    // Report on the smallest member, at the line of its first include
    // that stays inside the SCC.
    const std::size_t anchor = g.index.at(members.front());
    const std::unordered_set<std::size_t> in_scc{scc.begin(), scc.end()};
    int line = 1;
    bool waived = false;
    for (std::size_t k = 0; k < files[anchor].includes.size(); ++k) {
      const std::size_t target = g.resolved[anchor][k];
      if (target != graph::npos && in_scc.count(target) != 0) {
        line = files[anchor].includes[k].line;
        waived = ref_allows(files[anchor].includes[k], "include-cycle");
        break;
      }
    }
    if (waived) continue;
    std::string list;
    for (const auto& m : members) {
      if (!list.empty()) list += ", ";
      list += m;
    }
    out.push_back({members.front(), line, "include-cycle",
                   "include cycle between {" + list +
                       "}; break it with a forward declaration or by "
                       "moving the shared pieces into a lower header"});
  }
}

// ---------------------------------------------------------------------------
// unused-include (IWYU-lite over transitive provided() sets)

struct provider {
  const graph* g{nullptr};
  std::vector<std::vector<std::string>> memo;  // sorted unique
  std::vector<char> state;                     // 0 new, 1 visiting, 2 done

  const std::vector<std::string>& provided(std::size_t i) {
    if (state[i] == 2) return memo[i];
    if (state[i] == 1) return memo[i];  // cycle guard: partial set
    state[i] = 1;
    std::set<std::string> acc((*g->files)[i].declared.begin(),
                              (*g->files)[i].declared.end());
    for (const std::size_t dep : g->edges[i]) {
      const auto& sub = provided(dep);
      acc.insert(sub.begin(), sub.end());
    }
    memo[i].assign(acc.begin(), acc.end());
    state[i] = 2;
    return memo[i];
  }
};

bool self_paired(const std::string& includer, const std::string& target) {
  // x.cpp may keep its own x.h even when no symbol is referenced yet.
  if (!ends_with(includer, ".cpp") || !ends_with(target, ".h")) return false;
  const std::string stem_inc = includer.substr(0, includer.size() - 4);
  const std::string stem_tgt = target.substr(0, target.size() - 2);
  const std::size_t slash_inc = stem_inc.rfind('/');
  const std::size_t slash_tgt = stem_tgt.rfind('/');
  const std::string base_inc = slash_inc == std::string::npos
                                   ? stem_inc
                                   : stem_inc.substr(slash_inc + 1);
  const std::string base_tgt = slash_tgt == std::string::npos
                                   ? stem_tgt
                                   : stem_tgt.substr(slash_tgt + 1);
  return base_inc == base_tgt;
}

bool sorted_intersects(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp == 0) return true;
    (cmp < 0 ? i : j)++;
  }
  return false;
}

void check_unused(const graph& g, std::vector<violation>& out) {
  const auto& files = *g.files;
  provider prov;
  prov.g = &g;
  prov.memo.resize(files.size());
  prov.state.assign(files.size(), 0);
  for (std::size_t i = 0; i < files.size(); ++i) {
    // A file that uses no identifiers at all is an umbrella includer —
    // its includes exist to re-export, not to be referenced.
    if (files[i].used.empty()) continue;
    for (std::size_t k = 0; k < files[i].includes.size(); ++k) {
      const std::size_t target = g.resolved[i][k];
      if (target == graph::npos || target == i) continue;
      const include_ref& ref = files[i].includes[k];
      if (ref_allows(ref, "unused-include")) continue;
      if (self_paired(files[i].rel_path, files[target].rel_path)) continue;
      // A header that declares symbols itself must have one of *its own*
      // declarations referenced; only a pure umbrella header (declares
      // nothing, exists to re-export) is judged by its transitive set —
      // otherwise `#include "svm/kernel.h"` would count as used merely
      // because kernel.h pulls in tensor.h and the includer uses tensors.
      if (!files[target].declared.empty()) {
        if (sorted_intersects(files[target].declared, files[i].used)) {
          continue;
        }
      } else if (sorted_intersects(prov.provided(target), files[i].used)) {
        continue;
      }
      out.push_back({files[i].rel_path, ref.line, "unused-include",
                     "unused include '" + ref.spelled +
                         "': no symbol declared by it (or its includes) is "
                         "referenced in this file; delete it or waive with "
                         "dv-lint: allow(unused-include) <reason>"});
    }
  }
}

}  // namespace

layer_manifest parse_layer_manifest(std::string_view text) {
  layer_manifest m;
  std::istringstream is{std::string{text}};
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls{line};
    std::vector<std::string> mods;
    std::string mod;
    while (ls >> mod) mods.push_back(mod);
    if (mods.empty()) continue;
    const int rank = static_cast<int>(m.layers.size());
    for (const auto& name : mods) {
      m.rank.emplace(name, rank);
    }
    m.layers.push_back(std::move(mods));
  }
  m.loaded = !m.layers.empty();
  return m;
}

std::vector<violation> check_include_graph(
    const std::vector<file_summary>& files, const layer_manifest& layers) {
  const graph g = build_graph(files);
  std::vector<violation> out;
  check_layering(g, layers, out);
  check_cycles(g, out);
  check_unused(g, out);
  return out;
}

}  // namespace dv_lint
