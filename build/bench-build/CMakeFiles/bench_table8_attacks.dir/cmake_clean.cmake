file(REMOVE_RECURSE
  "../bench/bench_table8_attacks"
  "../bench/bench_table8_attacks.pdb"
  "CMakeFiles/bench_table8_attacks.dir/bench_table8_attacks.cpp.o"
  "CMakeFiles/bench_table8_attacks.dir/bench_table8_attacks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
