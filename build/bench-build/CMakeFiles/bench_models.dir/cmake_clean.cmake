file(REMOVE_RECURSE
  "../bench/bench_models"
  "../bench/bench_models.pdb"
  "CMakeFiles/bench_models.dir/bench_models.cpp.o"
  "CMakeFiles/bench_models.dir/bench_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
