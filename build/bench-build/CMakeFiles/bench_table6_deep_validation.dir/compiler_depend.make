# Empty compiler generated dependencies file for bench_table6_deep_validation.
# This may be replaced when dependencies are built.
