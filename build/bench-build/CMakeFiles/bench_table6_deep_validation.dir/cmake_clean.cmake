file(REMOVE_RECURSE
  "../bench/bench_table6_deep_validation"
  "../bench/bench_table6_deep_validation.pdb"
  "CMakeFiles/bench_table6_deep_validation.dir/bench_table6_deep_validation.cpp.o"
  "CMakeFiles/bench_table6_deep_validation.dir/bench_table6_deep_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_deep_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
