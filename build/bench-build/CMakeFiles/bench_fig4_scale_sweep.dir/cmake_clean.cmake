file(REMOVE_RECURSE
  "../bench/bench_fig4_scale_sweep"
  "../bench/bench_fig4_scale_sweep.pdb"
  "CMakeFiles/bench_fig4_scale_sweep.dir/bench_fig4_scale_sweep.cpp.o"
  "CMakeFiles/bench_fig4_scale_sweep.dir/bench_fig4_scale_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scale_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
