file(REMOVE_RECURSE
  "../bench/bench_table7_baselines"
  "../bench/bench_table7_baselines.pdb"
  "CMakeFiles/bench_table7_baselines.dir/bench_table7_baselines.cpp.o"
  "CMakeFiles/bench_table7_baselines.dir/bench_table7_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
