# Empty dependencies file for bench_fig3_discrepancy_hist.
# This may be replaced when dependencies are built.
