file(REMOVE_RECURSE
  "../bench/bench_fig3_discrepancy_hist"
  "../bench/bench_fig3_discrepancy_hist.pdb"
  "CMakeFiles/bench_fig3_discrepancy_hist.dir/bench_fig3_discrepancy_hist.cpp.o"
  "CMakeFiles/bench_fig3_discrepancy_hist.dir/bench_fig3_discrepancy_hist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_discrepancy_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
