# Empty dependencies file for bench_perf_validation.
# This may be replaced when dependencies are built.
