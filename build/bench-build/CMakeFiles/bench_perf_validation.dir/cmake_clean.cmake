file(REMOVE_RECURSE
  "../bench/bench_perf_validation"
  "../bench/bench_perf_validation.pdb"
  "CMakeFiles/bench_perf_validation.dir/bench_perf_validation.cpp.o"
  "CMakeFiles/bench_perf_validation.dir/bench_perf_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
