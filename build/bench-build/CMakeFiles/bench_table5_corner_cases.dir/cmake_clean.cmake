file(REMOVE_RECURSE
  "../bench/bench_table5_corner_cases"
  "../bench/bench_table5_corner_cases.pdb"
  "CMakeFiles/bench_table5_corner_cases.dir/bench_table5_corner_cases.cpp.o"
  "CMakeFiles/bench_table5_corner_cases.dir/bench_table5_corner_cases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_corner_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
