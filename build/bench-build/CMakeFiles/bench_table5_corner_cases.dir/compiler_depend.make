# Empty compiler generated dependencies file for bench_table5_corner_cases.
# This may be replaced when dependencies are built.
