file(REMOVE_RECURSE
  "CMakeFiles/corner_case_gallery.dir/corner_case_gallery.cpp.o"
  "CMakeFiles/corner_case_gallery.dir/corner_case_gallery.cpp.o.d"
  "corner_case_gallery"
  "corner_case_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corner_case_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
