# Empty compiler generated dependencies file for corner_case_gallery.
# This may be replaced when dependencies are built.
