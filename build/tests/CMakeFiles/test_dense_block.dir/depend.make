# Empty dependencies file for test_dense_block.
# This may be replaced when dependencies are built.
