file(REMOVE_RECURSE
  "CMakeFiles/test_dense_block.dir/test_dense_block.cpp.o"
  "CMakeFiles/test_dense_block.dir/test_dense_block.cpp.o.d"
  "test_dense_block"
  "test_dense_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
