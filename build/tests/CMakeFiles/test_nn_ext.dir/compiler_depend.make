# Empty compiler generated dependencies file for test_nn_ext.
# This may be replaced when dependencies are built.
