file(REMOVE_RECURSE
  "CMakeFiles/test_nn_ext.dir/test_nn_ext.cpp.o"
  "CMakeFiles/test_nn_ext.dir/test_nn_ext.cpp.o.d"
  "test_nn_ext"
  "test_nn_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
