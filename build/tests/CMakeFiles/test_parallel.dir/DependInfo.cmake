
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/test_parallel.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/test_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/dv_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/dv_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/dv_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/augment/CMakeFiles/dv_augment.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dv_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dv_data.dir/DependInfo.cmake"
  "/root/repo/build/src/svm/CMakeFiles/dv_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
