file(REMOVE_RECURSE
  "CMakeFiles/test_affine.dir/test_affine.cpp.o"
  "CMakeFiles/test_affine.dir/test_affine.cpp.o.d"
  "test_affine"
  "test_affine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_affine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
