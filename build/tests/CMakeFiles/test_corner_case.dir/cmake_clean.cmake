file(REMOVE_RECURSE
  "CMakeFiles/test_corner_case.dir/test_corner_case.cpp.o"
  "CMakeFiles/test_corner_case.dir/test_corner_case.cpp.o.d"
  "test_corner_case"
  "test_corner_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corner_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
