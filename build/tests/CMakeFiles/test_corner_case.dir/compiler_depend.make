# Empty compiler generated dependencies file for test_corner_case.
# This may be replaced when dependencies are built.
