# Empty compiler generated dependencies file for test_transform_ext.
# This may be replaced when dependencies are built.
