file(REMOVE_RECURSE
  "CMakeFiles/test_transform_ext.dir/test_transform_ext.cpp.o"
  "CMakeFiles/test_transform_ext.dir/test_transform_ext.cpp.o.d"
  "test_transform_ext"
  "test_transform_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transform_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
