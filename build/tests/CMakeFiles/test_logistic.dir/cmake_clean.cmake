file(REMOVE_RECURSE
  "CMakeFiles/test_logistic.dir/test_logistic.cpp.o"
  "CMakeFiles/test_logistic.dir/test_logistic.cpp.o.d"
  "test_logistic"
  "test_logistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
