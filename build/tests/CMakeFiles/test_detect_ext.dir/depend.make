# Empty dependencies file for test_detect_ext.
# This may be replaced when dependencies are built.
