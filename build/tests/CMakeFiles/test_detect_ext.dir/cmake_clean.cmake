file(REMOVE_RECURSE
  "CMakeFiles/test_detect_ext.dir/test_detect_ext.cpp.o"
  "CMakeFiles/test_detect_ext.dir/test_detect_ext.cpp.o.d"
  "test_detect_ext"
  "test_detect_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
