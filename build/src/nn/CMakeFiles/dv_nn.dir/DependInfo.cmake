
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/dv_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/dv_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/dv_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/dv_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/dv_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/dv_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/dv_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/dv_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/dense_block.cpp" "src/nn/CMakeFiles/dv_nn.dir/dense_block.cpp.o" "gcc" "src/nn/CMakeFiles/dv_nn.dir/dense_block.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/dv_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/dv_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/dv_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/dv_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/dv_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/dv_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/dv_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/dv_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/dv_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/dv_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
