file(REMOVE_RECURSE
  "libdv_nn.a"
)
