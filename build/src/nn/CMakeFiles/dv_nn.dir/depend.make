# Empty dependencies file for dv_nn.
# This may be replaced when dependencies are built.
