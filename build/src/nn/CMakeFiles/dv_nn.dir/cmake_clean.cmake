file(REMOVE_RECURSE
  "CMakeFiles/dv_nn.dir/activation.cpp.o"
  "CMakeFiles/dv_nn.dir/activation.cpp.o.d"
  "CMakeFiles/dv_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/dv_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/dv_nn.dir/conv2d.cpp.o"
  "CMakeFiles/dv_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/dv_nn.dir/dense.cpp.o"
  "CMakeFiles/dv_nn.dir/dense.cpp.o.d"
  "CMakeFiles/dv_nn.dir/dense_block.cpp.o"
  "CMakeFiles/dv_nn.dir/dense_block.cpp.o.d"
  "CMakeFiles/dv_nn.dir/loss.cpp.o"
  "CMakeFiles/dv_nn.dir/loss.cpp.o.d"
  "CMakeFiles/dv_nn.dir/model.cpp.o"
  "CMakeFiles/dv_nn.dir/model.cpp.o.d"
  "CMakeFiles/dv_nn.dir/optimizer.cpp.o"
  "CMakeFiles/dv_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/dv_nn.dir/pool.cpp.o"
  "CMakeFiles/dv_nn.dir/pool.cpp.o.d"
  "CMakeFiles/dv_nn.dir/trainer.cpp.o"
  "CMakeFiles/dv_nn.dir/trainer.cpp.o.d"
  "libdv_nn.a"
  "libdv_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
