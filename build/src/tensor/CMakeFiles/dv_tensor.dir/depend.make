# Empty dependencies file for dv_tensor.
# This may be replaced when dependencies are built.
