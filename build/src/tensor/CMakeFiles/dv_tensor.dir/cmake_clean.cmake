file(REMOVE_RECURSE
  "CMakeFiles/dv_tensor.dir/linalg.cpp.o"
  "CMakeFiles/dv_tensor.dir/linalg.cpp.o.d"
  "CMakeFiles/dv_tensor.dir/ops.cpp.o"
  "CMakeFiles/dv_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/dv_tensor.dir/tensor.cpp.o"
  "CMakeFiles/dv_tensor.dir/tensor.cpp.o.d"
  "libdv_tensor.a"
  "libdv_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
