file(REMOVE_RECURSE
  "libdv_tensor.a"
)
