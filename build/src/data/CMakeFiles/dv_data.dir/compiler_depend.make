# Empty compiler generated dependencies file for dv_data.
# This may be replaced when dependencies are built.
