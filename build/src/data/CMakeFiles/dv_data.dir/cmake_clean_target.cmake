file(REMOVE_RECURSE
  "libdv_data.a"
)
