file(REMOVE_RECURSE
  "CMakeFiles/dv_data.dir/dataset.cpp.o"
  "CMakeFiles/dv_data.dir/dataset.cpp.o.d"
  "CMakeFiles/dv_data.dir/factory.cpp.o"
  "CMakeFiles/dv_data.dir/factory.cpp.o.d"
  "CMakeFiles/dv_data.dir/glyphs.cpp.o"
  "CMakeFiles/dv_data.dir/glyphs.cpp.o.d"
  "CMakeFiles/dv_data.dir/synth_digits.cpp.o"
  "CMakeFiles/dv_data.dir/synth_digits.cpp.o.d"
  "CMakeFiles/dv_data.dir/synth_objects.cpp.o"
  "CMakeFiles/dv_data.dir/synth_objects.cpp.o.d"
  "CMakeFiles/dv_data.dir/synth_street.cpp.o"
  "CMakeFiles/dv_data.dir/synth_street.cpp.o.d"
  "libdv_data.a"
  "libdv_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
