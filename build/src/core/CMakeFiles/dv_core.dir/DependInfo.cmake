
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/deep_validator.cpp" "src/core/CMakeFiles/dv_core.dir/deep_validator.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/deep_validator.cpp.o.d"
  "/root/repo/src/core/explain.cpp" "src/core/CMakeFiles/dv_core.dir/explain.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/explain.cpp.o.d"
  "/root/repo/src/core/feature_scaler.cpp" "src/core/CMakeFiles/dv_core.dir/feature_scaler.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/feature_scaler.cpp.o.d"
  "/root/repo/src/core/layer_validator.cpp" "src/core/CMakeFiles/dv_core.dir/layer_validator.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/layer_validator.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/dv_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/probe_reducer.cpp" "src/core/CMakeFiles/dv_core.dir/probe_reducer.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/probe_reducer.cpp.o.d"
  "/root/repo/src/core/weighted_joint.cpp" "src/core/CMakeFiles/dv_core.dir/weighted_joint.cpp.o" "gcc" "src/core/CMakeFiles/dv_core.dir/weighted_joint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/dv_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/svm/CMakeFiles/dv_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dv_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
