file(REMOVE_RECURSE
  "CMakeFiles/dv_core.dir/deep_validator.cpp.o"
  "CMakeFiles/dv_core.dir/deep_validator.cpp.o.d"
  "CMakeFiles/dv_core.dir/explain.cpp.o"
  "CMakeFiles/dv_core.dir/explain.cpp.o.d"
  "CMakeFiles/dv_core.dir/feature_scaler.cpp.o"
  "CMakeFiles/dv_core.dir/feature_scaler.cpp.o.d"
  "CMakeFiles/dv_core.dir/layer_validator.cpp.o"
  "CMakeFiles/dv_core.dir/layer_validator.cpp.o.d"
  "CMakeFiles/dv_core.dir/monitor.cpp.o"
  "CMakeFiles/dv_core.dir/monitor.cpp.o.d"
  "CMakeFiles/dv_core.dir/probe_reducer.cpp.o"
  "CMakeFiles/dv_core.dir/probe_reducer.cpp.o.d"
  "CMakeFiles/dv_core.dir/weighted_joint.cpp.o"
  "CMakeFiles/dv_core.dir/weighted_joint.cpp.o.d"
  "libdv_core.a"
  "libdv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
