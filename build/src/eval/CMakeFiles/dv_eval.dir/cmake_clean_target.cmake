file(REMOVE_RECURSE
  "libdv_eval.a"
)
