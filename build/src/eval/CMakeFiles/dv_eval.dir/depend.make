# Empty dependencies file for dv_eval.
# This may be replaced when dependencies are built.
