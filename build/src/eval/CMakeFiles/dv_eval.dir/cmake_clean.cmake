file(REMOVE_RECURSE
  "CMakeFiles/dv_eval.dir/histogram.cpp.o"
  "CMakeFiles/dv_eval.dir/histogram.cpp.o.d"
  "CMakeFiles/dv_eval.dir/logistic.cpp.o"
  "CMakeFiles/dv_eval.dir/logistic.cpp.o.d"
  "CMakeFiles/dv_eval.dir/metrics.cpp.o"
  "CMakeFiles/dv_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/dv_eval.dir/table.cpp.o"
  "CMakeFiles/dv_eval.dir/table.cpp.o.d"
  "libdv_eval.a"
  "libdv_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
