file(REMOVE_RECURSE
  "CMakeFiles/dv_detect.dir/detector.cpp.o"
  "CMakeFiles/dv_detect.dir/detector.cpp.o.d"
  "CMakeFiles/dv_detect.dir/dv_adapter.cpp.o"
  "CMakeFiles/dv_detect.dir/dv_adapter.cpp.o.d"
  "CMakeFiles/dv_detect.dir/feature_squeeze.cpp.o"
  "CMakeFiles/dv_detect.dir/feature_squeeze.cpp.o.d"
  "CMakeFiles/dv_detect.dir/kde.cpp.o"
  "CMakeFiles/dv_detect.dir/kde.cpp.o.d"
  "CMakeFiles/dv_detect.dir/lid.cpp.o"
  "CMakeFiles/dv_detect.dir/lid.cpp.o.d"
  "CMakeFiles/dv_detect.dir/mahalanobis.cpp.o"
  "CMakeFiles/dv_detect.dir/mahalanobis.cpp.o.d"
  "CMakeFiles/dv_detect.dir/squeezers.cpp.o"
  "CMakeFiles/dv_detect.dir/squeezers.cpp.o.d"
  "libdv_detect.a"
  "libdv_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
