# Empty dependencies file for dv_detect.
# This may be replaced when dependencies are built.
