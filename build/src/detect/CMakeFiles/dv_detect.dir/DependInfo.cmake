
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/detector.cpp" "src/detect/CMakeFiles/dv_detect.dir/detector.cpp.o" "gcc" "src/detect/CMakeFiles/dv_detect.dir/detector.cpp.o.d"
  "/root/repo/src/detect/dv_adapter.cpp" "src/detect/CMakeFiles/dv_detect.dir/dv_adapter.cpp.o" "gcc" "src/detect/CMakeFiles/dv_detect.dir/dv_adapter.cpp.o.d"
  "/root/repo/src/detect/feature_squeeze.cpp" "src/detect/CMakeFiles/dv_detect.dir/feature_squeeze.cpp.o" "gcc" "src/detect/CMakeFiles/dv_detect.dir/feature_squeeze.cpp.o.d"
  "/root/repo/src/detect/kde.cpp" "src/detect/CMakeFiles/dv_detect.dir/kde.cpp.o" "gcc" "src/detect/CMakeFiles/dv_detect.dir/kde.cpp.o.d"
  "/root/repo/src/detect/lid.cpp" "src/detect/CMakeFiles/dv_detect.dir/lid.cpp.o" "gcc" "src/detect/CMakeFiles/dv_detect.dir/lid.cpp.o.d"
  "/root/repo/src/detect/mahalanobis.cpp" "src/detect/CMakeFiles/dv_detect.dir/mahalanobis.cpp.o" "gcc" "src/detect/CMakeFiles/dv_detect.dir/mahalanobis.cpp.o.d"
  "/root/repo/src/detect/squeezers.cpp" "src/detect/CMakeFiles/dv_detect.dir/squeezers.cpp.o" "gcc" "src/detect/CMakeFiles/dv_detect.dir/squeezers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dv_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/svm/CMakeFiles/dv_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dv_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
