file(REMOVE_RECURSE
  "libdv_detect.a"
)
