# Empty compiler generated dependencies file for dv_svm.
# This may be replaced when dependencies are built.
