file(REMOVE_RECURSE
  "CMakeFiles/dv_svm.dir/kernel.cpp.o"
  "CMakeFiles/dv_svm.dir/kernel.cpp.o.d"
  "CMakeFiles/dv_svm.dir/one_class_svm.cpp.o"
  "CMakeFiles/dv_svm.dir/one_class_svm.cpp.o.d"
  "libdv_svm.a"
  "libdv_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
