
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svm/kernel.cpp" "src/svm/CMakeFiles/dv_svm.dir/kernel.cpp.o" "gcc" "src/svm/CMakeFiles/dv_svm.dir/kernel.cpp.o.d"
  "/root/repo/src/svm/one_class_svm.cpp" "src/svm/CMakeFiles/dv_svm.dir/one_class_svm.cpp.o" "gcc" "src/svm/CMakeFiles/dv_svm.dir/one_class_svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
