file(REMOVE_RECURSE
  "libdv_svm.a"
)
