file(REMOVE_RECURSE
  "CMakeFiles/dv_pipeline.dir/artifacts.cpp.o"
  "CMakeFiles/dv_pipeline.dir/artifacts.cpp.o.d"
  "CMakeFiles/dv_pipeline.dir/config.cpp.o"
  "CMakeFiles/dv_pipeline.dir/config.cpp.o.d"
  "CMakeFiles/dv_pipeline.dir/corner_suite.cpp.o"
  "CMakeFiles/dv_pipeline.dir/corner_suite.cpp.o.d"
  "CMakeFiles/dv_pipeline.dir/models.cpp.o"
  "CMakeFiles/dv_pipeline.dir/models.cpp.o.d"
  "libdv_pipeline.a"
  "libdv_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
