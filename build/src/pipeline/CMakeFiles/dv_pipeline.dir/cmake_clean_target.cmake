file(REMOVE_RECURSE
  "libdv_pipeline.a"
)
