# Empty dependencies file for dv_pipeline.
# This may be replaced when dependencies are built.
