
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/augment/affine.cpp" "src/augment/CMakeFiles/dv_augment.dir/affine.cpp.o" "gcc" "src/augment/CMakeFiles/dv_augment.dir/affine.cpp.o.d"
  "/root/repo/src/augment/corner_case.cpp" "src/augment/CMakeFiles/dv_augment.dir/corner_case.cpp.o" "gcc" "src/augment/CMakeFiles/dv_augment.dir/corner_case.cpp.o.d"
  "/root/repo/src/augment/stream.cpp" "src/augment/CMakeFiles/dv_augment.dir/stream.cpp.o" "gcc" "src/augment/CMakeFiles/dv_augment.dir/stream.cpp.o.d"
  "/root/repo/src/augment/transforms.cpp" "src/augment/CMakeFiles/dv_augment.dir/transforms.cpp.o" "gcc" "src/augment/CMakeFiles/dv_augment.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dv_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
