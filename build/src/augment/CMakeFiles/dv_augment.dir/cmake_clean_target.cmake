file(REMOVE_RECURSE
  "libdv_augment.a"
)
