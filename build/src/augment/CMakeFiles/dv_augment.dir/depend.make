# Empty dependencies file for dv_augment.
# This may be replaced when dependencies are built.
