file(REMOVE_RECURSE
  "CMakeFiles/dv_augment.dir/affine.cpp.o"
  "CMakeFiles/dv_augment.dir/affine.cpp.o.d"
  "CMakeFiles/dv_augment.dir/corner_case.cpp.o"
  "CMakeFiles/dv_augment.dir/corner_case.cpp.o.d"
  "CMakeFiles/dv_augment.dir/stream.cpp.o"
  "CMakeFiles/dv_augment.dir/stream.cpp.o.d"
  "CMakeFiles/dv_augment.dir/transforms.cpp.o"
  "CMakeFiles/dv_augment.dir/transforms.cpp.o.d"
  "libdv_augment.a"
  "libdv_augment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
