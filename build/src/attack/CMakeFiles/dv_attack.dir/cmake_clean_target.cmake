file(REMOVE_RECURSE
  "libdv_attack.a"
)
