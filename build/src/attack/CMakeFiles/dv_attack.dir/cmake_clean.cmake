file(REMOVE_RECURSE
  "CMakeFiles/dv_attack.dir/attack.cpp.o"
  "CMakeFiles/dv_attack.dir/attack.cpp.o.d"
  "CMakeFiles/dv_attack.dir/bim.cpp.o"
  "CMakeFiles/dv_attack.dir/bim.cpp.o.d"
  "CMakeFiles/dv_attack.dir/cw.cpp.o"
  "CMakeFiles/dv_attack.dir/cw.cpp.o.d"
  "CMakeFiles/dv_attack.dir/deepfool.cpp.o"
  "CMakeFiles/dv_attack.dir/deepfool.cpp.o.d"
  "CMakeFiles/dv_attack.dir/fgsm.cpp.o"
  "CMakeFiles/dv_attack.dir/fgsm.cpp.o.d"
  "CMakeFiles/dv_attack.dir/jsma.cpp.o"
  "CMakeFiles/dv_attack.dir/jsma.cpp.o.d"
  "CMakeFiles/dv_attack.dir/pgd.cpp.o"
  "CMakeFiles/dv_attack.dir/pgd.cpp.o.d"
  "libdv_attack.a"
  "libdv_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
