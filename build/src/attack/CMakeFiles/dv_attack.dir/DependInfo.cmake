
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attack.cpp" "src/attack/CMakeFiles/dv_attack.dir/attack.cpp.o" "gcc" "src/attack/CMakeFiles/dv_attack.dir/attack.cpp.o.d"
  "/root/repo/src/attack/bim.cpp" "src/attack/CMakeFiles/dv_attack.dir/bim.cpp.o" "gcc" "src/attack/CMakeFiles/dv_attack.dir/bim.cpp.o.d"
  "/root/repo/src/attack/cw.cpp" "src/attack/CMakeFiles/dv_attack.dir/cw.cpp.o" "gcc" "src/attack/CMakeFiles/dv_attack.dir/cw.cpp.o.d"
  "/root/repo/src/attack/deepfool.cpp" "src/attack/CMakeFiles/dv_attack.dir/deepfool.cpp.o" "gcc" "src/attack/CMakeFiles/dv_attack.dir/deepfool.cpp.o.d"
  "/root/repo/src/attack/fgsm.cpp" "src/attack/CMakeFiles/dv_attack.dir/fgsm.cpp.o" "gcc" "src/attack/CMakeFiles/dv_attack.dir/fgsm.cpp.o.d"
  "/root/repo/src/attack/jsma.cpp" "src/attack/CMakeFiles/dv_attack.dir/jsma.cpp.o" "gcc" "src/attack/CMakeFiles/dv_attack.dir/jsma.cpp.o.d"
  "/root/repo/src/attack/pgd.cpp" "src/attack/CMakeFiles/dv_attack.dir/pgd.cpp.o" "gcc" "src/attack/CMakeFiles/dv_attack.dir/pgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
