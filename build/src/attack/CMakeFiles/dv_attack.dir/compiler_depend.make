# Empty compiler generated dependencies file for dv_attack.
# This may be replaced when dependencies are built.
