file(REMOVE_RECURSE
  "CMakeFiles/dv_util.dir/image_io.cpp.o"
  "CMakeFiles/dv_util.dir/image_io.cpp.o.d"
  "CMakeFiles/dv_util.dir/logging.cpp.o"
  "CMakeFiles/dv_util.dir/logging.cpp.o.d"
  "CMakeFiles/dv_util.dir/rng.cpp.o"
  "CMakeFiles/dv_util.dir/rng.cpp.o.d"
  "CMakeFiles/dv_util.dir/serialize.cpp.o"
  "CMakeFiles/dv_util.dir/serialize.cpp.o.d"
  "CMakeFiles/dv_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dv_util.dir/thread_pool.cpp.o.d"
  "libdv_util.a"
  "libdv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
