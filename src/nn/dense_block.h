// DenseNet building blocks (Huang et al., CVPR 2017).
//
// A dense block chains `units` composite BN -> ReLU -> Conv3x3 units; the
// output of every unit is concatenated onto the running channel stack, so
// unit u sees all feature maps produced before it. A transition layer
// (BN -> ReLU -> Conv1x1 -> AvgPool2) compresses channels and halves the
// spatial resolution between blocks.
//
// Each unit can be flagged as a probe point: the probe output is the unit's
// newly produced feature maps y_u = f_u(s_{u-1}), i.e. "the output of layer
// u" in the paper's sense.
#pragma once

#include <memory>

#include "nn/layers.h"

namespace dv {

/// One BN-ReLU-Conv3x3 unit of a dense block.
class dense_unit {
 public:
  dense_unit(std::int64_t in_c, std::int64_t growth, rng& gen);

  tensor forward(const tensor& x, bool training);
  /// Returns gradient w.r.t. the unit input.
  tensor backward(const tensor& grad_out);
  std::vector<param_ref> params();
  std::vector<tensor*> state();

  const tensor& cached_output() const { return output_; }
  std::int64_t growth() const { return growth_; }

 private:
  std::int64_t growth_;
  batch_norm bn_;
  relu act_;
  conv2d conv_;
  tensor output_;
};

/// Dense block: `units` dense_units with concatenative connectivity.
class dense_block : public layer {
 public:
  dense_block(std::int64_t in_c, std::int64_t growth, int units, rng& gen);

  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::vector<param_ref> params() override;
  std::vector<tensor*> state() override;
  std::string name() const override { return "dense_block"; }
  std::string describe() const override;

  /// Probes: one per unit (the unit's new feature maps).
  void collect_probes(std::vector<const tensor*>& out) const override;
  int probe_count() const override;

  /// Marks the last `n` units (or all if n < 0) as probe points.
  void set_unit_probes(int n);

  std::int64_t out_channels() const {
    return in_c_ + growth_ * static_cast<std::int64_t>(units_.size());
  }

 private:
  std::int64_t in_c_, growth_;
  std::vector<std::unique_ptr<dense_unit>> units_;
  std::vector<bool> unit_probe_;
  std::vector<std::int64_t> input_shape_;
};

/// Transition layer: BN -> ReLU -> Conv1x1 (compression) -> AvgPool2.
class transition : public layer {
 public:
  transition(std::int64_t in_c, std::int64_t out_c, rng& gen);

  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::vector<param_ref> params() override;
  std::vector<tensor*> state() override;
  std::string name() const override { return "transition"; }
  std::string describe() const override;

  std::int64_t out_channels() const { return out_c_; }

 private:
  std::int64_t out_c_;
  batch_norm bn_;
  relu act_;
  conv2d conv_;
  avg_pool2d pool_;
};

/// Concatenates two 4-D tensors along the channel axis.
tensor concat_channels(const tensor& a, const tensor& b);

/// Splits a 4-D tensor along channels into [0, c_first) and [c_first, C).
void split_channels(const tensor& x, std::int64_t c_first, tensor& first,
                    tensor& second);

}  // namespace dv
