#include <limits>
#include <sstream>
#include <stdexcept>

#include "nn/layers.h"

namespace dv {

max_pool2d::max_pool2d(std::int64_t window) : window_{window} {
  if (window <= 1) throw std::invalid_argument{"max_pool2d: window must be >1"};
}

tensor max_pool2d::forward(const tensor& x, bool /*training*/) {
  if (x.dim() != 4) throw std::invalid_argument{"max_pool2d: expected 4-D"};
  input_shape_ = x.shape();
  const std::int64_t n = x.extent(0), c = x.extent(1), h = x.extent(2),
                     w = x.extent(3);
  const std::int64_t oh = h / window_, ow = w / window_;
  if (oh == 0 || ow == 0) {
    throw std::invalid_argument{"max_pool2d: input smaller than window"};
  }
  tensor out{{n, c, oh, ow}};
  argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  std::int64_t oi = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < window_; ++ky) {
            const std::int64_t iy = oy * window_ + ky;
            for (std::int64_t kx = 0; kx < window_; ++kx) {
              const std::int64_t ix = ox * window_ + kx;
              const std::int64_t idx = iy * w + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          out[oi] = best;
          argmax_[static_cast<std::size_t>(oi)] =
              (i * c + ch) * h * w + best_idx;
        }
      }
    }
  }
  if (probe_) cached_output_ = out;
  return out;
}

tensor max_pool2d::backward(const tensor& grad_out) {
  if (static_cast<std::size_t>(grad_out.numel()) != argmax_.size()) {
    throw std::invalid_argument{"max_pool2d::backward: shape mismatch"};
  }
  tensor grad_in{input_shape_};
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in[argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  }
  return grad_in;
}

std::string max_pool2d::describe() const {
  std::ostringstream out;
  out << "max_pool2d(" << window_ << "x" << window_ << ")";
  return out.str();
}

tensor global_avg_pool::forward(const tensor& x, bool /*training*/) {
  if (x.dim() != 4) throw std::invalid_argument{"global_avg_pool: expected 4-D"};
  input_shape_ = x.shape();
  const std::int64_t n = x.extent(0), c = x.extent(1);
  const std::int64_t plane = x.extent(2) * x.extent(3);
  tensor out{{n, c}};
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* p = x.data() + (i * c + ch) * plane;
      double acc = 0.0;
      for (std::int64_t j = 0; j < plane; ++j) acc += p[j];
      out.at2(i, ch) = static_cast<float>(acc / static_cast<double>(plane));
    }
  }
  if (probe_) cached_output_ = out;
  return out;
}

tensor global_avg_pool::backward(const tensor& grad_out) {
  const std::int64_t n = input_shape_[0], c = input_shape_[1];
  const std::int64_t plane = input_shape_[2] * input_shape_[3];
  if (grad_out.dim() != 2 || grad_out.extent(0) != n ||
      grad_out.extent(1) != c) {
    throw std::invalid_argument{"global_avg_pool::backward: shape mismatch"};
  }
  tensor grad_in{input_shape_};
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at2(i, ch) * inv;
      float* p = grad_in.data() + (i * c + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) p[j] = g;
    }
  }
  return grad_in;
}

avg_pool2d::avg_pool2d(std::int64_t window) : window_{window} {
  if (window <= 1) throw std::invalid_argument{"avg_pool2d: window must be >1"};
}

tensor avg_pool2d::forward(const tensor& x, bool /*training*/) {
  if (x.dim() != 4) throw std::invalid_argument{"avg_pool2d: expected 4-D"};
  input_shape_ = x.shape();
  const std::int64_t n = x.extent(0), c = x.extent(1), h = x.extent(2),
                     w = x.extent(3);
  const std::int64_t oh = h / window_, ow = w / window_;
  if (oh == 0 || ow == 0) {
    throw std::invalid_argument{"avg_pool2d: input smaller than window"};
  }
  tensor out{{n, c, oh, ow}};
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      float* oplane = out.data() + (i * c + ch) * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (std::int64_t ky = 0; ky < window_; ++ky) {
            for (std::int64_t kx = 0; kx < window_; ++kx) {
              acc += plane[(oy * window_ + ky) * w + ox * window_ + kx];
            }
          }
          oplane[oy * ow + ox] = acc * inv;
        }
      }
    }
  }
  if (probe_) cached_output_ = out;
  return out;
}

tensor avg_pool2d::backward(const tensor& grad_out) {
  const std::int64_t n = input_shape_[0], c = input_shape_[1],
                     h = input_shape_[2], w = input_shape_[3];
  const std::int64_t oh = h / window_, ow = w / window_;
  if (grad_out.dim() != 4 || grad_out.extent(0) != n ||
      grad_out.extent(1) != c || grad_out.extent(2) != oh ||
      grad_out.extent(3) != ow) {
    throw std::invalid_argument{"avg_pool2d::backward: shape mismatch"};
  }
  tensor grad_in{input_shape_};
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* gplane = grad_out.data() + (i * c + ch) * oh * ow;
      float* plane = grad_in.data() + (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const float g = gplane[oy * ow + ox] * inv;
          for (std::int64_t ky = 0; ky < window_; ++ky) {
            for (std::int64_t kx = 0; kx < window_; ++kx) {
              plane[(oy * window_ + ky) * w + ox * window_ + kx] += g;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::string avg_pool2d::describe() const {
  std::ostringstream out;
  out << "avg_pool2d(" << window_ << "x" << window_ << ")";
  return out.str();
}

}  // namespace dv
