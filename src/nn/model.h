// Sequential CNN model with Deep Validation probes.
//
// The model matches the paper's formulation f(x) = f_L(...f_1(x)): a stack
// of layers ending in a logits layer. Softmax is applied outside the stack
// (by `probabilities` / the loss), matching the convention that layer L is
// the softmax output layer and layers 1..L-1 are hidden layers whose outputs
// are validated.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace dv {

class sequential {
 public:
  sequential() = default;

  /// Appends a layer; `probe` marks it as a Deep Validation probe point.
  layer& add(std::unique_ptr<layer> l, bool probe = false);

  /// Forward pass to logits [N, num_classes].
  tensor forward(const tensor& x, bool training = false);

  /// Backward pass from logits gradient; returns gradient w.r.t. the input.
  tensor backward(const tensor& grad_logits);

  /// Softmax probabilities [N, num_classes].
  tensor probabilities(const tensor& x, bool training = false);

  /// Argmax class predictions.
  std::vector<std::int64_t> predict(const tensor& x);

  /// Hidden representations captured by probe layers during the most recent
  /// forward pass, in network order. Pointers are valid until the next
  /// forward pass.
  std::vector<const tensor*> probes() const;

  /// Total number of probe points in the network.
  int probe_count() const;

  /// All trainable parameters.
  std::vector<param_ref> params();
  /// All persistent buffers (batch-norm statistics).
  std::vector<tensor*> state();
  /// Total number of trainable scalars.
  std::int64_t param_count();

  /// Zeroes all parameter gradients.
  void zero_grad();

  std::size_t layer_count() const { return layers_.size(); }
  layer& at(std::size_t i) { return *layers_[i]; }

  /// Multi-line architecture summary (used to print Table II).
  std::string describe() const;

  /// Saves parameters + state to `path`; the architecture itself is rebuilt
  /// in code by the caller before loading.
  void save_params(const std::string& path) const;
  /// Loads parameters + state; throws serialize_error on shape mismatch.
  void load_params(const std::string& path);

 private:
  std::vector<std::unique_ptr<layer>> layers_;
};

}  // namespace dv
