#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/layers.h"
#include "tensor/ops.h"
#include "util/trace.h"
#include "util/thread_pool.h"

namespace dv {

namespace {

/// Samples per parallel chunk. Fixed (never derived from the thread count)
/// so the per-chunk gradient partials reduce in the same order for any
/// DV_THREADS setting.
constexpr std::int64_t k_sample_grain = 4;

/// Returns the rank-th scratch buffer, (re)allocated unless its shape is
/// exactly [rows, cols]. Comparing the shape — not numel() — prevents two
/// geometries with equal element counts from silently sharing a
/// wrongly-shaped buffer.
tensor& scratch_for(std::vector<tensor>& scratch, int rank, std::int64_t rows,
                    std::int64_t cols) {
  auto& buf = scratch[static_cast<std::size_t>(rank)];
  if (buf.dim() != 2 || buf.extent(0) != rows || buf.extent(1) != cols) {
    buf = tensor{{rows, cols}};
  }
  return buf;
}

}  // namespace

conv2d::conv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad, rng& gen, bool bias)
    : in_c_{in_c},
      out_c_{out_c},
      kernel_{kernel},
      stride_{stride},
      pad_{pad},
      has_bias_{bias} {
  if (in_c <= 0 || out_c <= 0 || kernel <= 0 || stride <= 0 || pad < 0) {
    throw std::invalid_argument{"conv2d: invalid geometry"};
  }
  const std::int64_t fan_in = in_c * kernel * kernel;
  const float std = std::sqrt(2.0f / static_cast<float>(fan_in));
  weight_ = tensor::randn({out_c, fan_in}, gen, std);
  dweight_ = tensor::zeros({out_c, fan_in});
  if (has_bias_) {
    bias_ = tensor::zeros({out_c});
    dbias_ = tensor::zeros({out_c});
  }
}

tensor conv2d::forward(const tensor& x, bool /*training*/) {
  trace_span span{"nn.conv2d.forward"};
  if (x.dim() != 4 || x.extent(1) != in_c_) {
    throw std::invalid_argument{"conv2d::forward: expected [N," +
                                std::to_string(in_c_) + ",H,W], got " +
                                x.shape_string()};
  }
  input_ = x;
  const conv_geometry g{in_c_, x.extent(2), x.extent(3), kernel_, stride_,
                        pad_};
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument{"conv2d::forward: output collapses to zero"};
  }
  const std::int64_t n = x.extent(0);
  tensor out{{n, out_c_, oh, ow}};
  col_scratch_.resize(static_cast<std::size_t>(thread_count()));
  const std::int64_t in_stride = in_c_ * g.in_h * g.in_w;
  const std::int64_t out_stride = out_c_ * oh * ow;
  // Each sample writes a disjoint slice of `out`, so the batch loop is
  // embarrassingly parallel; only the im2col scratch is per-thread.
  // Thread-local im2col/GEMM panels grow to steady-state size once per
  // thread, then stay warm — the allocation never recurs per sample.
  // dv:parallel-safe(disjoint slices) dv-lint: allow(effect:may_allocate)
  parallel_for_chunks(
      0, n, k_sample_grain,
      [&](std::int64_t, std::int64_t begin, std::int64_t end, int rank) {
        tensor& col =
            scratch_for(col_scratch_, rank, g.col_rows(), g.col_cols());
        for (std::int64_t i = begin; i < end; ++i) {
          im2col(x.data() + i * in_stride, g, col.data());
          gemm_nn(out_c_, g.col_cols(), g.col_rows(), 1.0f, weight_.data(),
                  col.data(), 0.0f, out.data() + i * out_stride);
          if (has_bias_) {
            float* base = out.data() + i * out_stride;
            for (std::int64_t c = 0; c < out_c_; ++c) {
              add_scalar(base + c * oh * ow, oh * ow, bias_[c]);
            }
          }
        }
      });
  if (probe_) cached_output_ = out;
  return out;
}

tensor conv2d::backward(const tensor& grad_out) {
  trace_span span{"nn.conv2d.backward"};
  const conv_geometry g{in_c_, input_.extent(2), input_.extent(3), kernel_,
                        stride_, pad_};
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t n = input_.extent(0);
  if (grad_out.dim() != 4 || grad_out.extent(0) != n ||
      grad_out.extent(1) != out_c_ || grad_out.extent(2) != oh ||
      grad_out.extent(3) != ow) {
    throw std::invalid_argument{"conv2d::backward: grad shape mismatch"};
  }
  tensor grad_in{input_.shape()};
  const std::int64_t in_stride = in_c_ * g.in_h * g.in_w;
  const std::int64_t out_stride = out_c_ * oh * ow;
  col_scratch_.resize(static_cast<std::size_t>(thread_count()));
  dcol_scratch_.resize(static_cast<std::size_t>(thread_count()));
  // grad_in slices are disjoint per sample; dweight_/dbias_ are reductions.
  // Each chunk accumulates into its own partial, and the partials are
  // folded in ascending chunk order below — the chunk decomposition
  // depends only on (n, grain), so the sum order (and the bit pattern of
  // the result) is identical for every thread count. With a single chunk
  // the partials are skipped and gradients accumulate in place.
  const std::int64_t num_chunks = parallel_chunk_count(0, n, k_sample_grain);
  std::vector<tensor> dw_partial, db_partial;
  if (num_chunks > 1) {
    dw_partial.resize(static_cast<std::size_t>(num_chunks));
    if (has_bias_) db_partial.resize(static_cast<std::size_t>(num_chunks));
  }
  // Thread-local im2col/GEMM panels grow to steady-state size once per
  // thread, then stay warm — the allocation never recurs per sample.
  // dv:parallel-safe(per-chunk partials) dv-lint: allow(effect:may_allocate)
  parallel_for_chunks(
      0, n, k_sample_grain,
      [&](std::int64_t chunk, std::int64_t begin, std::int64_t end,
          int rank) {
        tensor& col =
            scratch_for(col_scratch_, rank, g.col_rows(), g.col_cols());
        tensor& dcol =
            scratch_for(dcol_scratch_, rank, g.col_rows(), g.col_cols());
        float* dw = dweight_.data();
        float* db = has_bias_ ? dbias_.data() : nullptr;
        if (num_chunks > 1) {
          auto& dwp = dw_partial[static_cast<std::size_t>(chunk)];
          dwp = tensor::zeros(dweight_.shape());
          dw = dwp.data();
          if (has_bias_) {
            auto& dbp = db_partial[static_cast<std::size_t>(chunk)];
            dbp = tensor::zeros(dbias_.shape());
            db = dbp.data();
          }
        }
        for (std::int64_t i = begin; i < end; ++i) {
          const float* go = grad_out.data() + i * out_stride;
          // dW += dY * col^T  — recompute col for this sample.
          im2col(input_.data() + i * in_stride, g, col.data());
          gemm_nt(out_c_, g.col_rows(), g.col_cols(), 1.0f, go, col.data(),
                  1.0f, dw);
          // dcol = W^T * dY, then scatter back to the image.
          gemm_tn(g.col_rows(), g.col_cols(), out_c_, 1.0f, weight_.data(),
                  go, 0.0f, dcol.data());
          col2im(dcol.data(), g, grad_in.data() + i * in_stride);
          if (has_bias_) {
            for (std::int64_t c = 0; c < out_c_; ++c) {
              db[c] += static_cast<float>(array_sum(go + c * oh * ow,
                                                    oh * ow));
            }
          }
        }
      });
  if (num_chunks > 1) {
    for (std::int64_t chunk = 0; chunk < num_chunks; ++chunk) {
      dweight_ += dw_partial[static_cast<std::size_t>(chunk)];
      if (has_bias_) dbias_ += db_partial[static_cast<std::size_t>(chunk)];
    }
  }
  return grad_in;
}

std::vector<param_ref> conv2d::params() {
  std::vector<param_ref> out{{&weight_, &dweight_, "weight"}};
  if (has_bias_) out.push_back({&bias_, &dbias_, "bias"});
  return out;
}

std::string conv2d::describe() const {
  std::ostringstream out;
  out << "conv2d(" << out_c_ << " filters " << kernel_ << "x" << kernel_
      << ", stride " << stride_ << ", pad " << pad_ << ")";
  return out.str();
}

}  // namespace dv
