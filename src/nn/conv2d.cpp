#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/layers.h"
#include "tensor/ops.h"

namespace dv {

conv2d::conv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad, rng& gen, bool bias)
    : in_c_{in_c},
      out_c_{out_c},
      kernel_{kernel},
      stride_{stride},
      pad_{pad},
      has_bias_{bias} {
  if (in_c <= 0 || out_c <= 0 || kernel <= 0 || stride <= 0 || pad < 0) {
    throw std::invalid_argument{"conv2d: invalid geometry"};
  }
  const std::int64_t fan_in = in_c * kernel * kernel;
  const float std = std::sqrt(2.0f / static_cast<float>(fan_in));
  weight_ = tensor::randn({out_c, fan_in}, gen, std);
  dweight_ = tensor::zeros({out_c, fan_in});
  if (has_bias_) {
    bias_ = tensor::zeros({out_c});
    dbias_ = tensor::zeros({out_c});
  }
}

tensor conv2d::forward(const tensor& x, bool /*training*/) {
  if (x.dim() != 4 || x.extent(1) != in_c_) {
    throw std::invalid_argument{"conv2d::forward: expected [N," +
                                std::to_string(in_c_) + ",H,W], got " +
                                x.shape_string()};
  }
  input_ = x;
  const conv_geometry g{in_c_, x.extent(2), x.extent(3), kernel_, stride_,
                        pad_};
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument{"conv2d::forward: output collapses to zero"};
  }
  const std::int64_t n = x.extent(0);
  tensor out{{n, out_c_, oh, ow}};
  if (col_.numel() != g.col_rows() * g.col_cols()) {
    col_ = tensor{{g.col_rows(), g.col_cols()}};
  }
  const std::int64_t in_stride = in_c_ * g.in_h * g.in_w;
  const std::int64_t out_stride = out_c_ * oh * ow;
  for (std::int64_t i = 0; i < n; ++i) {
    im2col(x.data() + i * in_stride, g, col_.data());
    gemm_nn(out_c_, g.col_cols(), g.col_rows(), 1.0f, weight_.data(),
            col_.data(), 0.0f, out.data() + i * out_stride);
  }
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      float* base = out.data() + i * out_stride;
      for (std::int64_t c = 0; c < out_c_; ++c) {
        const float b = bias_[c];
        float* plane = base + c * oh * ow;
        for (std::int64_t p = 0; p < oh * ow; ++p) plane[p] += b;
      }
    }
  }
  if (probe_) cached_output_ = out;
  return out;
}

tensor conv2d::backward(const tensor& grad_out) {
  const conv_geometry g{in_c_, input_.extent(2), input_.extent(3), kernel_,
                        stride_, pad_};
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t n = input_.extent(0);
  if (grad_out.dim() != 4 || grad_out.extent(0) != n ||
      grad_out.extent(1) != out_c_ || grad_out.extent(2) != oh ||
      grad_out.extent(3) != ow) {
    throw std::invalid_argument{"conv2d::backward: grad shape mismatch"};
  }
  tensor grad_in{input_.shape()};
  tensor dcol{{g.col_rows(), g.col_cols()}};
  const std::int64_t in_stride = in_c_ * g.in_h * g.in_w;
  const std::int64_t out_stride = out_c_ * oh * ow;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* go = grad_out.data() + i * out_stride;
    // dW += dY * col^T  — recompute col for this sample.
    im2col(input_.data() + i * in_stride, g, col_.data());
    gemm_nt(out_c_, g.col_rows(), g.col_cols(), 1.0f, go, col_.data(), 1.0f,
            dweight_.data());
    // dcol = W^T * dY, then scatter back to the image.
    gemm_tn(g.col_rows(), g.col_cols(), out_c_, 1.0f, weight_.data(), go, 0.0f,
            dcol.data());
    col2im(dcol.data(), g, grad_in.data() + i * in_stride);
    if (has_bias_) {
      for (std::int64_t c = 0; c < out_c_; ++c) {
        double acc = 0.0;
        const float* plane = go + c * oh * ow;
        for (std::int64_t p = 0; p < oh * ow; ++p) acc += plane[p];
        dbias_[c] += static_cast<float>(acc);
      }
    }
  }
  return grad_in;
}

std::vector<param_ref> conv2d::params() {
  std::vector<param_ref> out{{&weight_, &dweight_, "weight"}};
  if (has_bias_) out.push_back({&bias_, &dbias_, "bias"});
  return out;
}

std::string conv2d::describe() const {
  std::ostringstream out;
  out << "conv2d(" << out_c_ << " filters " << kernel_ << "x" << kernel_
      << ", stride " << stride_ << ", pad " << pad_ << ")";
  return out.str();
}

}  // namespace dv
