#include "nn/logistic.h"

#include <cmath>
#include <stdexcept>

namespace dv {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void logistic_regression::fit(const std::vector<std::vector<double>>& features,
                              const std::vector<int>& labels,
                              const logistic_config& config) {
  if (features.empty() || features.size() != labels.size()) {
    throw std::invalid_argument{"logistic_regression::fit: bad inputs"};
  }
  const std::size_t n = features.size();
  const std::size_t d = features[0].size();
  int positives = 0;
  for (const int y : labels) {
    if (y != 0 && y != 1) {
      throw std::invalid_argument{"logistic_regression::fit: labels 0/1"};
    }
    positives += y;
  }
  if (positives == 0 || positives == static_cast<int>(n)) {
    throw std::invalid_argument{
        "logistic_regression::fit: need both classes"};
  }
  for (const auto& row : features) {
    if (row.size() != d) {
      throw std::invalid_argument{"logistic_regression::fit: ragged rows"};
    }
  }

  // Optional standardization for stable step sizes.
  std::vector<double> mean(d, 0.0), inv_std(d, 1.0);
  if (config.standardize) {
    for (const auto& row : features) {
      for (std::size_t j = 0; j < d; ++j) mean[j] += row[j];
    }
    for (auto& m : mean) m /= static_cast<double>(n);
    std::vector<double> var(d, 0.0);
    for (const auto& row : features) {
      for (std::size_t j = 0; j < d; ++j) {
        const double c = row[j] - mean[j];
        var[j] += c * c;
      }
    }
    for (std::size_t j = 0; j < d; ++j) {
      var[j] /= static_cast<double>(n);
      inv_std[j] = var[j] > 1e-12 ? 1.0 / std::sqrt(var[j]) : 1.0;
    }
  } else {
    mean.assign(d, 0.0);
    inv_std.assign(d, 1.0);
  }

  std::vector<double> w(d, 0.0);
  double b = 0.0;
  std::vector<double> grad(d);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double z = b;
      for (std::size_t j = 0; j < d; ++j) {
        z += w[j] * (features[i][j] - mean[j]) * inv_std[j];
      }
      const double err = sigmoid(z) - labels[i];
      for (std::size_t j = 0; j < d; ++j) {
        grad[j] += err * (features[i][j] - mean[j]) * inv_std[j];
      }
      grad_b += err;
    }
    const double scale = config.learning_rate / static_cast<double>(n);
    for (std::size_t j = 0; j < d; ++j) {
      w[j] -= scale * (grad[j] + config.l2 * w[j] * static_cast<double>(n));
    }
    b -= scale * grad_b;
  }

  // Fold standardization back into raw-space weights.
  weights_.assign(d, 0.0);
  bias_ = b;
  for (std::size_t j = 0; j < d; ++j) {
    weights_[j] = w[j] * inv_std[j];
    bias_ -= w[j] * mean[j] * inv_std[j];
  }
}

double logistic_regression::decision(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error{"logistic_regression: not fitted"};
  if (x.size() != weights_.size()) {
    throw std::invalid_argument{"logistic_regression: dimension mismatch"};
  }
  double z = bias_;
  for (std::size_t j = 0; j < x.size(); ++j) z += weights_[j] * x[j];
  return z;
}

double logistic_regression::probability(std::span<const double> x) const {
  return sigmoid(decision(x));
}

}  // namespace dv
