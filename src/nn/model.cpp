#include "nn/model.h"

#include <sstream>

#include "tensor/ops.h"
#include "util/serialize.h"

namespace dv {

namespace {
constexpr const char* k_model_magic = "dv-model-v1";
}

layer& sequential::add(std::unique_ptr<layer> l, bool probe) {
  l->set_probe(probe);
  layers_.push_back(std::move(l));
  return *layers_.back();
}

tensor sequential::forward(const tensor& x, bool training) {
  tensor h = x;
  for (auto& l : layers_) h = l->forward(h, training);
  return h;
}

tensor sequential::backward(const tensor& grad_logits) {
  tensor g = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

tensor sequential::probabilities(const tensor& x, bool training) {
  tensor logits = forward(x, training);
  softmax_rows(logits);
  return logits;
}

std::vector<std::int64_t> sequential::predict(const tensor& x) {
  return argmax_rows(forward(x, false));
}

std::vector<const tensor*> sequential::probes() const {
  std::vector<const tensor*> out;
  for (const auto& l : layers_) l->collect_probes(out);
  return out;
}

int sequential::probe_count() const {
  int n = 0;
  for (const auto& l : layers_) n += l->probe_count();
  return n;
}

std::vector<param_ref> sequential::params() {
  std::vector<param_ref> out;
  for (auto& l : layers_) {
    for (auto& p : l->params()) out.push_back(p);
  }
  return out;
}

std::vector<tensor*> sequential::state() {
  std::vector<tensor*> out;
  for (auto& l : layers_) {
    for (auto* t : l->state()) out.push_back(t);
  }
  return out;
}

std::int64_t sequential::param_count() {
  std::int64_t n = 0;
  for (auto& p : params()) n += p.value->numel();
  return n;
}

void sequential::zero_grad() {
  for (auto& p : params()) p.grad->fill(0.0f);
}

std::string sequential::describe() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    out << "  " << (i + 1) << ". " << layers_[i]->describe();
    if (layers_[i]->probe_count() > 0) {
      out << "   [probe x" << layers_[i]->probe_count() << "]";
    }
    out << "\n";
  }
  return out.str();
}

void sequential::save_params(const std::string& path) const {
  binary_writer w{path, k_model_magic};
  auto& self = const_cast<sequential&>(*this);
  const auto ps = self.params();
  w.write_u64(ps.size());
  for (const auto& p : ps) p.value->save(w);
  const auto st = self.state();
  w.write_u64(st.size());
  for (const auto* t : st) t->save(w);
  w.finish();
}

void sequential::load_params(const std::string& path) {
  binary_reader r{path, k_model_magic};
  const auto ps = params();
  if (r.read_u64() != ps.size()) {
    throw serialize_error{"model load: parameter count mismatch"};
  }
  for (const auto& p : ps) {
    tensor t = tensor::load(r);
    if (t.shape() != p.value->shape()) {
      throw serialize_error{"model load: shape mismatch for " + p.name};
    }
    *p.value = std::move(t);
  }
  const auto st = state();
  if (r.read_u64() != st.size()) {
    throw serialize_error{"model load: state count mismatch"};
  }
  for (auto* dst : st) {
    tensor t = tensor::load(r);
    if (t.shape() != dst->shape()) {
      throw serialize_error{"model load: state shape mismatch"};
    }
    *dst = std::move(t);
  }
}

}  // namespace dv
