#include "nn/dense_block.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace dv {

tensor concat_channels(const tensor& a, const tensor& b) {
  if (a.dim() != 4 || b.dim() != 4 || a.extent(0) != b.extent(0) ||
      a.extent(2) != b.extent(2) || a.extent(3) != b.extent(3)) {
    throw std::invalid_argument{"concat_channels: incompatible shapes"};
  }
  const std::int64_t n = a.extent(0), ca = a.extent(1), cb = b.extent(1);
  const std::int64_t plane = a.extent(2) * a.extent(3);
  tensor out{{n, ca + cb, a.extent(2), a.extent(3)}};
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * (ca + cb) * plane, a.data() + i * ca * plane,
                static_cast<std::size_t>(ca * plane) * sizeof(float));
    std::memcpy(out.data() + (i * (ca + cb) + ca) * plane,
                b.data() + i * cb * plane,
                static_cast<std::size_t>(cb * plane) * sizeof(float));
  }
  return out;
}

void split_channels(const tensor& x, std::int64_t c_first, tensor& first,
                    tensor& second) {
  if (x.dim() != 4 || c_first <= 0 || c_first >= x.extent(1)) {
    throw std::invalid_argument{"split_channels: bad arguments"};
  }
  const std::int64_t n = x.extent(0), c = x.extent(1);
  const std::int64_t c_second = c - c_first;
  const std::int64_t plane = x.extent(2) * x.extent(3);
  first = tensor{{n, c_first, x.extent(2), x.extent(3)}};
  second = tensor{{n, c_second, x.extent(2), x.extent(3)}};
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(first.data() + i * c_first * plane, x.data() + i * c * plane,
                static_cast<std::size_t>(c_first * plane) * sizeof(float));
    std::memcpy(second.data() + i * c_second * plane,
                x.data() + (i * c + c_first) * plane,
                static_cast<std::size_t>(c_second * plane) * sizeof(float));
  }
}

dense_unit::dense_unit(std::int64_t in_c, std::int64_t growth, rng& gen)
    : growth_{growth},
      bn_{in_c},
      conv_{in_c, growth, /*kernel=*/3, /*stride=*/1, /*pad=*/1, gen,
            /*bias=*/false} {}

tensor dense_unit::forward(const tensor& x, bool training) {
  tensor h = bn_.forward(x, training);
  h = act_.forward(h, training);
  output_ = conv_.forward(h, training);
  return output_;
}

tensor dense_unit::backward(const tensor& grad_out) {
  tensor g = conv_.backward(grad_out);
  g = act_.backward(g);
  return bn_.backward(g);
}

std::vector<param_ref> dense_unit::params() {
  auto out = bn_.params();
  for (auto& p : conv_.params()) out.push_back(p);
  return out;
}

std::vector<tensor*> dense_unit::state() { return bn_.state(); }

dense_block::dense_block(std::int64_t in_c, std::int64_t growth, int units,
                         rng& gen)
    : in_c_{in_c}, growth_{growth} {
  if (units <= 0) throw std::invalid_argument{"dense_block: units"};
  std::int64_t c = in_c;
  for (int u = 0; u < units; ++u) {
    units_.push_back(std::make_unique<dense_unit>(c, growth, gen));
    c += growth;
  }
  unit_probe_.assign(units_.size(), false);
}

tensor dense_block::forward(const tensor& x, bool training) {
  if (x.dim() != 4 || x.extent(1) != in_c_) {
    throw std::invalid_argument{"dense_block::forward: bad input " +
                                x.shape_string()};
  }
  input_shape_ = x.shape();
  tensor state = x;
  for (auto& unit : units_) {
    tensor y = unit->forward(state, training);
    state = concat_channels(state, y);
  }
  if (probe_) cached_output_ = state;
  return state;
}

tensor dense_block::backward(const tensor& grad_out) {
  const std::int64_t expect_c = out_channels();
  if (grad_out.dim() != 4 || grad_out.extent(1) != expect_c) {
    throw std::invalid_argument{"dense_block::backward: bad grad shape"};
  }
  tensor g = grad_out;
  for (auto it = units_.rbegin(); it != units_.rend(); ++it) {
    tensor g_prev, g_y;
    split_channels(g, g.extent(1) - growth_, g_prev, g_y);
    tensor g_input = (*it)->backward(g_y);
    g_prev += g_input;
    g = std::move(g_prev);
  }
  return g;
}

std::vector<param_ref> dense_block::params() {
  std::vector<param_ref> out;
  for (auto& unit : units_) {
    for (auto& p : unit->params()) out.push_back(p);
  }
  return out;
}

std::vector<tensor*> dense_block::state() {
  std::vector<tensor*> out;
  for (auto& unit : units_) {
    for (auto* t : unit->state()) out.push_back(t);
  }
  return out;
}

std::string dense_block::describe() const {
  std::ostringstream out;
  out << "dense_block(" << units_.size() << " units, growth " << growth_
      << ", " << in_c_ << " -> " << out_channels() << " channels)";
  return out.str();
}

void dense_block::collect_probes(std::vector<const tensor*>& out) const {
  for (std::size_t u = 0; u < units_.size(); ++u) {
    if (unit_probe_[u]) out.push_back(&units_[u]->cached_output());
  }
  if (probe_) out.push_back(&cached_output_);
}

int dense_block::probe_count() const {
  int n = probe_ ? 1 : 0;
  for (const bool p : unit_probe_) n += p ? 1 : 0;
  return n;
}

void dense_block::set_unit_probes(int n) {
  const int total = static_cast<int>(units_.size());
  const int count = (n < 0 || n > total) ? total : n;
  for (int u = 0; u < total; ++u) {
    unit_probe_[static_cast<std::size_t>(u)] = u >= total - count;
  }
}

transition::transition(std::int64_t in_c, std::int64_t out_c, rng& gen)
    : out_c_{out_c},
      bn_{in_c},
      conv_{in_c, out_c, /*kernel=*/1, /*stride=*/1, /*pad=*/0, gen,
            /*bias=*/false},
      pool_{2} {}

tensor transition::forward(const tensor& x, bool training) {
  tensor h = bn_.forward(x, training);
  h = act_.forward(h, training);
  h = conv_.forward(h, training);
  tensor out = pool_.forward(h, training);
  if (probe_) cached_output_ = out;
  return out;
}

tensor transition::backward(const tensor& grad_out) {
  tensor g = pool_.backward(grad_out);
  g = conv_.backward(g);
  g = act_.backward(g);
  return bn_.backward(g);
}

std::vector<param_ref> transition::params() {
  auto out = bn_.params();
  for (auto& p : conv_.params()) out.push_back(p);
  return out;
}

std::vector<tensor*> transition::state() { return bn_.state(); }

std::string transition::describe() const {
  std::ostringstream out;
  out << "transition(conv1x1 -> " << out_c_ << " channels, avg_pool 2x2)";
  return out.str();
}

}  // namespace dv
