#include "nn/trainer.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/trace.h"

namespace dv {

namespace {
std::unique_ptr<optimizer> make_optimizer(sequential& model,
                                          const train_config& config) {
  switch (config.optimizer) {
    case train_config::opt_kind::adadelta:
      return std::make_unique<adadelta>(model.params(), config.lr);
    case train_config::opt_kind::sgd:
      return std::make_unique<sgd>(model.params(), config.lr, config.momentum);
    case train_config::opt_kind::adam:
      return std::make_unique<adam>(model.params(), config.lr);
  }
  return nullptr;
}

tensor gather_batch(const tensor& images, const std::vector<std::size_t>& order,
                    std::int64_t begin, std::int64_t end) {
  std::vector<std::int64_t> shape = images.shape();
  shape[0] = end - begin;
  tensor out{shape};
  const std::int64_t stride = images.numel() / images.extent(0);
  for (std::int64_t i = begin; i < end; ++i) {
    const auto src = static_cast<std::int64_t>(order[static_cast<std::size_t>(i)]);
    std::copy_n(images.data() + src * stride, stride,
                out.data() + (i - begin) * stride);
  }
  return out;
}
}  // namespace

train_report fit(sequential& model, const tensor& images,
                 const std::vector<std::int64_t>& labels,
                 const train_config& config) {
  const std::int64_t n = images.extent(0);
  auto opt = make_optimizer(model, config);
  auto* ada = dynamic_cast<adadelta*>(opt.get());

  trace_span fit_span{"train.fit"};
  metrics::counter* epochs_total = metrics::get_counter("dv_train_epochs_total");
  metrics::counter* batches_total = metrics::get_counter("dv_train_batches_total");
  metrics::counter* images_total = metrics::get_counter("dv_train_images_total");
  metrics::histogram* epoch_seconds = metrics::get_histogram(
      "dv_train_epoch_seconds", metrics::histogram_options::latency());

  std::vector<std::size_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng shuffle_gen{config.shuffle_seed};

  train_report report;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    trace_span epoch_span{"train.epoch"};
    const std::int64_t epoch_start_ns = metrics::now_ns();
    shuffle_gen.shuffle_indices(order.size(), [&](std::size_t a, std::size_t b) {
      std::swap(order[a], order[b]);
    });
    double loss_sum = 0.0;
    std::int64_t correct = 0;
    std::int64_t batches = 0;
    for (std::int64_t begin = 0; begin < n; begin += config.batch_size) {
      const std::int64_t end = std::min<std::int64_t>(n, begin + config.batch_size);
      tensor batch = gather_batch(images, order, begin, end);
      std::vector<std::int64_t> batch_labels(
          static_cast<std::size_t>(end - begin));
      for (std::int64_t i = begin; i < end; ++i) {
        batch_labels[static_cast<std::size_t>(i - begin)] =
            labels[order[static_cast<std::size_t>(i)]];
      }
      tensor logits = model.forward(batch, /*training=*/true);
      tensor grad;
      const float loss = softmax_cross_entropy(logits, batch_labels, grad);
      const auto preds = argmax_rows(logits);
      for (std::size_t i = 0; i < preds.size(); ++i) {
        correct += preds[i] == batch_labels[i] ? 1 : 0;
      }
      model.zero_grad();
      model.backward(grad);
      opt->step();
      loss_sum += loss;
      ++batches;
    }
    if (ada != nullptr) ada->decay_lr(config.lr_decay);
    const float epoch_loss = static_cast<float>(loss_sum / std::max<std::int64_t>(1, batches));
    const float epoch_acc =
        static_cast<float>(correct) / static_cast<float>(std::max<std::int64_t>(1, n));
    report.epoch_loss.push_back(epoch_loss);
    report.epoch_accuracy.push_back(epoch_acc);
    if (epochs_total != nullptr) {
      epochs_total->add();
      batches_total->add(static_cast<std::uint64_t>(batches));
      images_total->add(static_cast<std::uint64_t>(n));
      epoch_seconds->observe(
          static_cast<double>(metrics::now_ns() - epoch_start_ns) * 1e-9);
      metrics::set("dv_train_loss", epoch_loss);
      metrics::set("dv_train_accuracy", epoch_acc);
    }
    if (config.verbose) {
      log_info() << "epoch " << (epoch + 1) << "/" << config.epochs
                 << " loss " << epoch_loss << " acc " << epoch_acc;
    }
  }
  return report;
}

double accuracy(sequential& model, const tensor& images,
                const std::vector<std::int64_t>& labels, int batch_size) {
  trace_span span{"train.accuracy"};
  const std::int64_t n = images.extent(0);
  std::int64_t correct = 0;
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min<std::int64_t>(n, begin + batch_size);
    tensor batch = images.slice_rows(begin, end);
    const auto preds = model.predict(batch);
    for (std::int64_t i = begin; i < end; ++i) {
      correct +=
          preds[static_cast<std::size_t>(i - begin)] ==
                  labels[static_cast<std::size_t>(i)]
              ? 1
              : 0;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

tensor batched_probabilities(sequential& model, const tensor& images,
                             int batch_size) {
  const std::int64_t n = images.extent(0);
  tensor all;
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min<std::int64_t>(n, begin + batch_size);
    tensor probs = model.probabilities(images.slice_rows(begin, end));
    if (all.empty()) {
      all = tensor{{n, probs.extent(1)}};
    }
    std::copy_n(probs.data(), probs.numel(), all.data() + begin * probs.extent(1));
  }
  return all;
}

double mean_top1_confidence(sequential& model, const tensor& images,
                            int batch_size) {
  tensor probs = batched_probabilities(model, images, batch_size);
  const std::int64_t n = probs.extent(0);
  const std::int64_t c = probs.extent(1);
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = probs.data() + i * c;
    acc += *std::max_element(row, row + c);
  }
  return acc / static_cast<double>(n);
}

}  // namespace dv
