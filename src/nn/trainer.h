// Mini-batch training loop and batched evaluation helpers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"

namespace dv {

struct train_config {
  int epochs{10};
  int batch_size{64};
  /// Optimizer selection. The paper trains with Adadelta (lr 1.0, decay
  /// 0.95 per epoch); Adam is often faster on the small synthetic tasks.
  enum class opt_kind { adadelta, sgd, adam };
  opt_kind optimizer{opt_kind::adadelta};
  float lr{1.0f};
  float lr_decay{0.95f};   // per-epoch multiplicative decay (adadelta only)
  float momentum{0.9f};    // sgd only
  std::uint64_t shuffle_seed{1};
  bool verbose{true};
};

struct train_report {
  std::vector<float> epoch_loss;
  std::vector<float> epoch_accuracy;  // training accuracy
};

/// Trains `model` in place on (images [N,C,H,W], labels).
train_report fit(sequential& model, const tensor& images,
                 const std::vector<std::int64_t>& labels,
                 const train_config& config);

/// Top-1 accuracy evaluated in mini-batches.
double accuracy(sequential& model, const tensor& images,
                const std::vector<std::int64_t>& labels, int batch_size = 128);

/// Softmax probabilities for a whole set, evaluated in mini-batches.
tensor batched_probabilities(sequential& model, const tensor& images,
                             int batch_size = 128);

/// Mean of the maximum softmax entry over the set (Table III / V column).
double mean_top1_confidence(sequential& model, const tensor& images,
                            int batch_size = 128);

}  // namespace dv
