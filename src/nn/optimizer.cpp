#include "nn/optimizer.h"

#include <cmath>

namespace dv {

void optimizer::zero_grad() {
  for (auto& p : params_) p.grad->fill(0.0f);
}

sgd::sgd(std::vector<param_ref> params, float lr, float momentum,
         float weight_decay)
    : optimizer{std::move(params)},
      lr_{lr},
      momentum_{momentum},
      weight_decay_{weight_decay} {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value->shape());
}

void sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* w = params_[i].value->data();
    const float* g = params_[i].grad->data();
    float* v = velocity_[i].data();
    const std::int64_t n = params_[i].value->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] - lr_ * grad;
      w[j] += v[j];
    }
  }
}

adadelta::adadelta(std::vector<param_ref> params, float lr, float rho,
                   float eps)
    : optimizer{std::move(params)}, lr_{lr}, rho_{rho}, eps_{eps} {
  accum_grad_.reserve(params_.size());
  accum_update_.reserve(params_.size());
  for (const auto& p : params_) {
    accum_grad_.emplace_back(p.value->shape());
    accum_update_.emplace_back(p.value->shape());
  }
}

void adadelta::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* w = params_[i].value->data();
    const float* g = params_[i].grad->data();
    float* eg = accum_grad_[i].data();
    float* eu = accum_update_[i].data();
    const std::int64_t n = params_[i].value->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      eg[j] = rho_ * eg[j] + (1.0f - rho_) * g[j] * g[j];
      const float update = -std::sqrt((eu[j] + eps_) / (eg[j] + eps_)) * g[j];
      eu[j] = rho_ * eu[j] + (1.0f - rho_) * update * update;
      w[j] += lr_ * update;
    }
  }
}

adam::adam(std::vector<param_ref> params, float lr, float beta1, float beta2,
           float eps)
    : optimizer{std::move(params)},
      lr_{lr},
      beta1_{beta1},
      beta2_{beta2},
      eps_{eps} {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* w = params_[i].value->data();
    const float* g = params_[i].grad->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::int64_t n = params_[i].value->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mh = m[j] / bc1;
      const float vh = v[j] / bc2;
      w[j] -= lr_ * mh / (std::sqrt(vh) + eps_);
    }
  }
}

}  // namespace dv
