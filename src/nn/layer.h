// Base interface for neural-network layers.
//
// Layers own their parameters and gradients and cache whatever forward
// state their backward pass needs. Batches are 4-D [N, C, H, W] for spatial
// layers and 2-D [N, F] for fully connected ones. A layer can be flagged as
// a *probe*: after a forward pass its cached output is exposed to the Deep
// Validation framework as the hidden representation f_i(x) of that layer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace dv {

class binary_reader;
class binary_writer;

/// Non-owning handle to one trainable parameter and its gradient buffer.
struct param_ref {
  tensor* value{};
  tensor* grad{};
  std::string name;
};

class layer {
 public:
  virtual ~layer() = default;
  layer() = default;
  layer(const layer&) = delete;
  layer& operator=(const layer&) = delete;

  /// Computes the layer output. `training` toggles train-time behaviour
  /// (dropout masks, batch-norm batch statistics).
  virtual tensor forward(const tensor& x, bool training) = 0;

  /// Propagates `grad_out` (gradient w.r.t. the last forward output) back,
  /// accumulating parameter gradients, and returns the gradient w.r.t. the
  /// last forward input. Must be called after forward on the same batch.
  virtual tensor backward(const tensor& grad_out) = 0;

  /// Trainable parameters; empty for stateless layers.
  virtual std::vector<param_ref> params() { return {}; }

  /// Persistent non-trainable buffers (e.g. batch-norm running statistics)
  /// that must be serialized alongside the parameters.
  virtual std::vector<tensor*> state() { return {}; }

  /// Short type name, e.g. "conv2d".
  virtual std::string name() const = 0;

  /// One-line human description used when printing architectures (Table II).
  virtual std::string describe() const { return name(); }

  /// Appends pointers to the cached probe outputs of this layer (possibly
  /// several for composite layers). Valid until the next forward pass.
  virtual void collect_probes(std::vector<const tensor*>& out) const {
    if (probe_) out.push_back(&cached_output_);
  }

  /// Number of probe points this layer contributes.
  virtual int probe_count() const { return probe_ ? 1 : 0; }

  bool is_probe() const { return probe_; }
  void set_probe(bool p) { probe_ = p; }

 protected:
  /// Derived classes store the forward result here when flagged as a probe
  /// (and may do so unconditionally if they need it for backward anyway).
  tensor cached_output_;
  bool probe_{false};
};

}  // namespace dv
