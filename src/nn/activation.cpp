#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/layers.h"

namespace dv {

tensor relu::forward(const tensor& x, bool /*training*/) {
  tensor out = x;
  mask_ = tensor{x.shape()};
  float* o = out.data();
  float* m = mask_.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    if (o[i] > 0.0f) {
      m[i] = 1.0f;
    } else {
      o[i] = 0.0f;
      m[i] = 0.0f;
    }
  }
  if (probe_) cached_output_ = out;
  return out;
}

tensor relu::backward(const tensor& grad_out) {
  if (!grad_out.same_shape(mask_)) {
    throw std::invalid_argument{"relu::backward: shape mismatch"};
  }
  tensor grad_in = grad_out;
  grad_in.mul_elem(mask_);
  return grad_in;
}

dropout::dropout(double p, std::uint64_t seed) : p_{p}, gen_{seed} {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument{"dropout: p must be in [0, 1)"};
  }
}

tensor dropout::forward(const tensor& x, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0) {
    if (probe_) cached_output_ = x;
    return x;
  }
  mask_ = tensor{x.shape()};
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  float* m = mask_.data();
  for (std::int64_t i = 0; i < mask_.numel(); ++i) {
    m[i] = gen_.bernoulli(p_) ? 0.0f : keep_scale;
  }
  tensor out = x;
  out.mul_elem(mask_);
  if (probe_) cached_output_ = out;
  return out;
}

tensor dropout::backward(const tensor& grad_out) {
  if (!last_training_ || p_ == 0.0) return grad_out;
  tensor grad_in = grad_out;
  grad_in.mul_elem(mask_);
  return grad_in;
}

std::string dropout::describe() const {
  std::ostringstream out;
  out << "dropout(p=" << p_ << ")";
  return out.str();
}

tensor flatten::forward(const tensor& x, bool /*training*/) {
  input_shape_ = x.shape();
  tensor out = x.reshaped({x.extent(0), x.numel() / x.extent(0)});
  if (probe_) cached_output_ = out;
  return out;
}

tensor flatten::backward(const tensor& grad_out) {
  return grad_out.reshaped(input_shape_);
}

}  // namespace dv

namespace dv {

leaky_relu::leaky_relu(float slope) : slope_{slope} {
  if (slope < 0.0f || slope >= 1.0f) {
    throw std::invalid_argument{"leaky_relu: slope must be in [0, 1)"};
  }
}

tensor leaky_relu::forward(const tensor& x, bool /*training*/) {
  tensor out = x;
  grad_mask_ = tensor{x.shape()};
  float* o = out.data();
  float* m = grad_mask_.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    if (o[i] > 0.0f) {
      m[i] = 1.0f;
    } else {
      o[i] *= slope_;
      m[i] = slope_;
    }
  }
  if (probe_) cached_output_ = out;
  return out;
}

tensor leaky_relu::backward(const tensor& grad_out) {
  if (!grad_out.same_shape(grad_mask_)) {
    throw std::invalid_argument{"leaky_relu::backward: shape mismatch"};
  }
  tensor grad_in = grad_out;
  grad_in.mul_elem(grad_mask_);
  return grad_in;
}

std::string leaky_relu::describe() const {
  std::ostringstream out;
  out << "leaky_relu(slope=" << slope_ << ")";
  return out.str();
}

tensor sigmoid::forward(const tensor& x, bool /*training*/) {
  tensor out = x;
  float* o = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    o[i] = 1.0f / (1.0f + std::exp(-o[i]));
  }
  output_ = out;
  if (probe_) cached_output_ = out;
  return out;
}

tensor sigmoid::backward(const tensor& grad_out) {
  if (!grad_out.same_shape(output_)) {
    throw std::invalid_argument{"sigmoid::backward: shape mismatch"};
  }
  tensor grad_in = grad_out;
  for (std::int64_t i = 0; i < grad_in.numel(); ++i) {
    const float y = output_[i];
    grad_in[i] *= y * (1.0f - y);
  }
  return grad_in;
}

tensor tanh_layer::forward(const tensor& x, bool /*training*/) {
  tensor out = x;
  float* o = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) o[i] = std::tanh(o[i]);
  output_ = out;
  if (probe_) cached_output_ = out;
  return out;
}

tensor tanh_layer::backward(const tensor& grad_out) {
  if (!grad_out.same_shape(output_)) {
    throw std::invalid_argument{"tanh_layer::backward: shape mismatch"};
  }
  tensor grad_in = grad_out;
  for (std::int64_t i = 0; i < grad_in.numel(); ++i) {
    const float y = output_[i];
    grad_in[i] *= 1.0f - y * y;
  }
  return grad_in;
}

}  // namespace dv
