// First-order optimizers over a model's parameter set.
//
// Adadelta (Zeiler 2012) is the paper's training optimizer (lr 1.0,
// rho 0.95); SGD-with-momentum and Adam are provided for the test suite,
// ablations, and the CW attacks' inner optimization loop.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace dv {

class optimizer {
 public:
  explicit optimizer(std::vector<param_ref> params)
      : params_{std::move(params)} {}
  virtual ~optimizer() = default;
  optimizer(const optimizer&) = delete;
  optimizer& operator=(const optimizer&) = delete;

  /// Applies one update from the currently accumulated gradients.
  virtual void step() = 0;

  /// Zeroes all tracked gradients.
  void zero_grad();

 protected:
  std::vector<param_ref> params_;
};

class sgd : public optimizer {
 public:
  sgd(std::vector<param_ref> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void step() override;

 private:
  float lr_, momentum_, weight_decay_;
  std::vector<tensor> velocity_;
};

class adadelta : public optimizer {
 public:
  adadelta(std::vector<param_ref> params, float lr = 1.0f, float rho = 0.95f,
           float eps = 1e-6f);
  void step() override;

  /// Multiplies the learning rate by `factor` (the paper decays by 0.95).
  void decay_lr(float factor) { lr_ *= factor; }
  float learning_rate() const { return lr_; }

 private:
  float lr_, rho_, eps_;
  std::vector<tensor> accum_grad_, accum_update_;
};

class adam : public optimizer {
 public:
  adam(std::vector<param_ref> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::int64_t t_{0};
  std::vector<tensor> m_, v_;
};

}  // namespace dv
