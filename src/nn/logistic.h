// Binary logistic regression on small dense feature vectors.
//
// Used as the combiner for multi-layer detector scores: the LID baseline
// (Ma et al., 2018) trains a logistic regression over per-layer LID
// estimates, and the weighted-joint-validator extension (paper §III-B2,
// "better combination can lead to more precise estimation") learns
// per-layer weights for the Deep Validation discrepancies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dv {

struct logistic_config {
  int epochs{300};
  double learning_rate{0.1};
  double l2{1e-4};
  /// Features are standardized internally; weights reported in raw space.
  bool standardize{true};
};

class logistic_regression {
 public:
  /// Fits on rows of `features` (n x d, row-major) with binary labels.
  /// Requires at least one positive and one negative example.
  void fit(const std::vector<std::vector<double>>& features,
           const std::vector<int>& labels, const logistic_config& config = {});

  /// P(y = 1 | x).
  double probability(std::span<const double> x) const;
  /// Linear score w^T x + b (monotone in probability).
  double decision(std::span<const double> x) const;

  bool fitted() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::vector<double> weights_;
  double bias_{0.0};
};

}  // namespace dv
