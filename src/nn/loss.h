// Classification losses.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace dv {

/// Mean softmax cross-entropy over a batch.
/// `logits` is [N, C]; `labels` holds N class indices.
/// Returns the scalar loss and writes d(loss)/d(logits) into `grad`
/// (allocated/resized by the callee).
float softmax_cross_entropy(const tensor& logits,
                            std::span<const std::int64_t> labels,
                            tensor& grad);

/// Cross-entropy of explicit target probabilities (used by attacks that
/// optimize toward a target class); same contract as above.
float softmax_cross_entropy_target(const tensor& logits,
                                   std::int64_t target_class, tensor& grad);

/// Reverse cross-entropy (Pang et al., NeurIPS 2018 — cited by the paper as
/// an enhancer for kernel-density detection): the target distribution puts
/// zero mass on the true class and uniform mass 1/(K-1) on the others, which
/// pushes non-true logits toward a flat profile and sharpens the feature
/// statistics detectors rely on. Same contract as softmax_cross_entropy.
float reverse_cross_entropy(const tensor& logits,
                            std::span<const std::int64_t> labels,
                            tensor& grad);

}  // namespace dv
