// Concrete layer types of the neural-network substrate.
#pragma once

#include <cstdint>

#include "nn/layer.h"
#include "util/rng.h"

namespace dv {

// -- Activation / shape layers -------------------------------------------------

/// Rectified linear unit, elementwise max(0, x).
class relu : public layer {
 public:
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::string name() const override { return "relu"; }

 private:
  tensor mask_;  // 1 where input > 0
};

/// Leaky ReLU: x for x > 0, slope * x otherwise.
class leaky_relu : public layer {
 public:
  explicit leaky_relu(float slope = 0.01f);
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::string name() const override { return "leaky_relu"; }
  std::string describe() const override;

 private:
  float slope_;
  tensor grad_mask_;  // 1 or slope per element
};

/// Elementwise logistic sigmoid.
class sigmoid : public layer {
 public:
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::string name() const override { return "sigmoid"; }

 private:
  tensor output_;
};

/// Elementwise hyperbolic tangent.
class tanh_layer : public layer {
 public:
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::string name() const override { return "tanh"; }

 private:
  tensor output_;
};

/// Inverted dropout: scales kept units by 1/(1-p) at train time, identity at
/// inference time.
class dropout : public layer {
 public:
  dropout(double p, std::uint64_t seed);
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::string name() const override { return "dropout"; }
  std::string describe() const override;

 private:
  double p_;
  rng gen_;
  tensor mask_;
  bool last_training_{false};
};

/// Flattens [N, C, H, W] to [N, C*H*W].
class flatten : public layer {
 public:
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::string name() const override { return "flatten"; }

 private:
  std::vector<std::int64_t> input_shape_;
};

// -- Convolution -----------------------------------------------------------------

/// 2-D convolution with square kernels, implemented as im2col + GEMM.
/// Weight layout: [out_c, in_c * k * k]; bias: [out_c].
class conv2d : public layer {
 public:
  /// He-normal weight initialization from `gen`.
  conv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
         std::int64_t stride, std::int64_t pad, rng& gen, bool bias = true);

  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::vector<param_ref> params() override;
  std::string name() const override { return "conv2d"; }
  std::string describe() const override;

  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }

 private:
  std::int64_t in_c_, out_c_, kernel_, stride_, pad_;
  bool has_bias_;
  tensor weight_, bias_, dweight_, dbias_;
  tensor input_;  // cached forward input
  // Per-thread im2col scratch buffers, indexed by pool rank and reused
  // across calls when the [col_rows, col_cols] shape still matches.
  std::vector<tensor> col_scratch_;
  std::vector<tensor> dcol_scratch_;
};

// -- Fully connected -----------------------------------------------------------

/// Affine layer y = x W^T + b on 2-D inputs [N, in_f].
/// Weight layout: [out_f, in_f]; bias: [out_f].
class dense : public layer {
 public:
  dense(std::int64_t in_f, std::int64_t out_f, rng& gen, bool bias = true);

  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::vector<param_ref> params() override;
  std::string name() const override { return "dense"; }
  std::string describe() const override;

  std::int64_t in_features() const { return in_f_; }
  std::int64_t out_features() const { return out_f_; }

 private:
  std::int64_t in_f_, out_f_;
  bool has_bias_;
  tensor weight_, bias_, dweight_, dbias_;
  tensor input_;
};

// -- Pooling ------------------------------------------------------------------

/// Max pooling with a square window; window == stride (non-overlapping).
class max_pool2d : public layer {
 public:
  explicit max_pool2d(std::int64_t window);
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::string name() const override { return "max_pool2d"; }
  std::string describe() const override;

 private:
  std::int64_t window_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
  std::vector<std::int64_t> input_shape_;
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class global_avg_pool : public layer {
 public:
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::string name() const override { return "global_avg_pool"; }

 private:
  std::vector<std::int64_t> input_shape_;
};

/// Spatial average pooling with a square window; window == stride.
class avg_pool2d : public layer {
 public:
  explicit avg_pool2d(std::int64_t window);
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::string name() const override { return "avg_pool2d"; }
  std::string describe() const override;

 private:
  std::int64_t window_;
  std::vector<std::int64_t> input_shape_;
};

// -- Batch normalization ---------------------------------------------------------

/// Per-channel batch normalization over [N, C, H, W] (spatial) or per-feature
/// over [N, F]. Tracks running statistics for inference.
class batch_norm : public layer {
 public:
  explicit batch_norm(std::int64_t channels, double momentum = 0.9,
                      double eps = 1e-5);

  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad_out) override;
  std::vector<param_ref> params() override;
  std::vector<tensor*> state() override {
    return {&running_mean_, &running_var_};
  }
  std::string name() const override { return "batch_norm"; }
  std::string describe() const override;

  /// Running statistics participate in serialization as extra state.
  tensor& running_mean() { return running_mean_; }
  tensor& running_var() { return running_var_; }

 private:
  std::int64_t channels_;
  double momentum_, eps_;
  tensor gamma_, beta_, dgamma_, dbeta_;
  tensor running_mean_, running_var_;
  // Forward caches for backward.
  tensor x_hat_;
  std::vector<float> batch_mean_, batch_inv_std_;
  std::vector<std::int64_t> input_shape_;
  bool last_training_{false};
};

}  // namespace dv
