#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace dv {

float softmax_cross_entropy(const tensor& logits,
                            std::span<const std::int64_t> labels,
                            tensor& grad) {
  if (logits.dim() != 2) {
    throw std::invalid_argument{"softmax_cross_entropy: logits must be 2-D"};
  }
  const std::int64_t n = logits.extent(0);
  const std::int64_t c = logits.extent(1);
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument{"softmax_cross_entropy: label count mismatch"};
  }
  grad = logits;
  softmax_rows(grad);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= c) {
      throw std::invalid_argument{"softmax_cross_entropy: label out of range"};
    }
    float* row = grad.data() + i * c;
    loss -= std::log(static_cast<double>(row[y]) + 1e-12);
    row[y] -= 1.0f;
    for (std::int64_t j = 0; j < c; ++j) row[j] *= inv_n;
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

float softmax_cross_entropy_target(const tensor& logits,
                                   std::int64_t target_class, tensor& grad) {
  const std::int64_t labels[1] = {target_class};
  return softmax_cross_entropy(logits, std::span<const std::int64_t>{labels, 1},
                               grad);
}

float reverse_cross_entropy(const tensor& logits,
                            std::span<const std::int64_t> labels,
                            tensor& grad) {
  if (logits.dim() != 2) {
    throw std::invalid_argument{"reverse_cross_entropy: logits must be 2-D"};
  }
  const std::int64_t n = logits.extent(0);
  const std::int64_t c = logits.extent(1);
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument{"reverse_cross_entropy: label count mismatch"};
  }
  if (c < 2) {
    throw std::invalid_argument{"reverse_cross_entropy: needs >= 2 classes"};
  }
  grad = logits;
  softmax_rows(grad);
  const float off_mass = 1.0f / static_cast<float>(c - 1);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= c) {
      throw std::invalid_argument{"reverse_cross_entropy: label out of range"};
    }
    float* row = grad.data() + i * c;
    for (std::int64_t j = 0; j < c; ++j) {
      const float target = j == y ? 0.0f : off_mass;
      if (target > 0.0f) {
        loss -= target * std::log(static_cast<double>(row[j]) + 1e-12);
      }
      row[j] = (row[j] - target) * inv_n;  // softmax-CE gradient: p - r
    }
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

}  // namespace dv
