#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/layers.h"

namespace dv {

batch_norm::batch_norm(std::int64_t channels, double momentum, double eps)
    : channels_{channels}, momentum_{momentum}, eps_{eps} {
  if (channels <= 0) throw std::invalid_argument{"batch_norm: channels"};
  gamma_ = tensor::full({channels}, 1.0f);
  beta_ = tensor::zeros({channels});
  dgamma_ = tensor::zeros({channels});
  dbeta_ = tensor::zeros({channels});
  running_mean_ = tensor::zeros({channels});
  running_var_ = tensor::full({channels}, 1.0f);
}

tensor batch_norm::forward(const tensor& x, bool training) {
  const bool spatial = x.dim() == 4;
  if (!spatial && x.dim() != 2) {
    throw std::invalid_argument{"batch_norm: expected 2-D or 4-D input"};
  }
  if (x.extent(1) != channels_) {
    throw std::invalid_argument{"batch_norm: channel mismatch"};
  }
  input_shape_ = x.shape();
  last_training_ = training;
  const std::int64_t n = x.extent(0);
  const std::int64_t plane = spatial ? x.extent(2) * x.extent(3) : 1;
  const std::int64_t m = n * plane;  // elements per channel

  batch_mean_.assign(static_cast<std::size_t>(channels_), 0.0f);
  batch_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);

  tensor out{x.shape()};
  x_hat_ = tensor{x.shape()};

  for (std::int64_t c = 0; c < channels_; ++c) {
    double mean, var;
    if (training) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) acc += p[j];
      }
      mean = acc / static_cast<double>(m);
      double vacc = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          const double d = p[j] - mean;
          vacc += d * d;
        }
      }
      var = vacc / static_cast<double>(m);
      running_mean_[c] = static_cast<float>(momentum_ * running_mean_[c] +
                                            (1.0 - momentum_) * mean);
      running_var_[c] = static_cast<float>(momentum_ * running_var_[c] +
                                           (1.0 - momentum_) * var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const double inv_std = 1.0 / std::sqrt(var + eps_);
    batch_mean_[static_cast<std::size_t>(c)] = static_cast<float>(mean);
    batch_inv_std_[static_cast<std::size_t>(c)] = static_cast<float>(inv_std);
    const float g = gamma_[c], b = beta_[c];
    const float fm = static_cast<float>(mean), fs = static_cast<float>(inv_std);
    for (std::int64_t i = 0; i < n; ++i) {
      const float* p = x.data() + (i * channels_ + c) * plane;
      float* xh = x_hat_.data() + (i * channels_ + c) * plane;
      float* o = out.data() + (i * channels_ + c) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        xh[j] = (p[j] - fm) * fs;
        o[j] = g * xh[j] + b;
      }
    }
  }
  if (probe_) cached_output_ = out;
  return out;
}

tensor batch_norm::backward(const tensor& grad_out) {
  if (grad_out.shape() != input_shape_) {
    throw std::invalid_argument{"batch_norm::backward: shape mismatch"};
  }
  const bool spatial = input_shape_.size() == 4;
  const std::int64_t n = input_shape_[0];
  const std::int64_t plane = spatial ? input_shape_[2] * input_shape_[3] : 1;
  const std::int64_t m = n * plane;
  tensor grad_in{input_shape_};

  for (std::int64_t c = 0; c < channels_; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* dy = grad_out.data() + (i * channels_ + c) * plane;
      const float* xh = x_hat_.data() + (i * channels_ + c) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        sum_dy += dy[j];
        sum_dy_xhat += static_cast<double>(dy[j]) * xh[j];
      }
    }
    dgamma_[c] += static_cast<float>(sum_dy_xhat);
    dbeta_[c] += static_cast<float>(sum_dy);

    const float inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
    const float g = gamma_[c];
    if (last_training_) {
      const float k = g * inv_std / static_cast<float>(m);
      const float fsum_dy = static_cast<float>(sum_dy);
      const float fsum_dy_xhat = static_cast<float>(sum_dy_xhat);
      for (std::int64_t i = 0; i < n; ++i) {
        const float* dy = grad_out.data() + (i * channels_ + c) * plane;
        const float* xh = x_hat_.data() + (i * channels_ + c) * plane;
        float* dx = grad_in.data() + (i * channels_ + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          dx[j] = k * (static_cast<float>(m) * dy[j] - fsum_dy -
                       xh[j] * fsum_dy_xhat);
        }
      }
    } else {
      // At inference statistics are constants, so the Jacobian is diagonal.
      const float k = g * inv_std;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* dy = grad_out.data() + (i * channels_ + c) * plane;
        float* dx = grad_in.data() + (i * channels_ + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) dx[j] = k * dy[j];
      }
    }
  }
  return grad_in;
}

std::vector<param_ref> batch_norm::params() {
  return {{&gamma_, &dgamma_, "gamma"}, {&beta_, &dbeta_, "beta"}};
}

std::string batch_norm::describe() const {
  std::ostringstream out;
  out << "batch_norm(" << channels_ << ")";
  return out.str();
}

}  // namespace dv
