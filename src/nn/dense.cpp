#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/layers.h"
#include "tensor/ops.h"
#include "util/trace.h"

namespace dv {

dense::dense(std::int64_t in_f, std::int64_t out_f, rng& gen, bool bias)
    : in_f_{in_f}, out_f_{out_f}, has_bias_{bias} {
  if (in_f <= 0 || out_f <= 0) {
    throw std::invalid_argument{"dense: invalid dimensions"};
  }
  const float std = std::sqrt(2.0f / static_cast<float>(in_f));
  weight_ = tensor::randn({out_f, in_f}, gen, std);
  dweight_ = tensor::zeros({out_f, in_f});
  if (has_bias_) {
    bias_ = tensor::zeros({out_f});
    dbias_ = tensor::zeros({out_f});
  }
}

tensor dense::forward(const tensor& x, bool /*training*/) {
  trace_span span{"nn.dense.forward"};
  if (x.dim() != 2 || x.extent(1) != in_f_) {
    throw std::invalid_argument{"dense::forward: expected [N," +
                                std::to_string(in_f_) + "], got " +
                                x.shape_string()};
  }
  input_ = x;
  const std::int64_t n = x.extent(0);
  tensor out{{n, out_f_}};
  // out[N, out_f] = x[N, in_f] * W[out_f, in_f]^T
  gemm_nt(n, out_f_, in_f_, 1.0f, x.data(), weight_.data(), 0.0f, out.data());
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      float* row = out.data() + i * out_f_;
      for (std::int64_t j = 0; j < out_f_; ++j) row[j] += bias_[j];
    }
  }
  if (probe_) cached_output_ = out;
  return out;
}

tensor dense::backward(const tensor& grad_out) {
  trace_span span{"nn.dense.backward"};
  const std::int64_t n = input_.extent(0);
  if (grad_out.dim() != 2 || grad_out.extent(0) != n ||
      grad_out.extent(1) != out_f_) {
    throw std::invalid_argument{"dense::backward: grad shape mismatch"};
  }
  // dW[out_f, in_f] += dY[N, out_f]^T * X[N, in_f]
  gemm_tn(out_f_, in_f_, n, 1.0f, grad_out.data(), input_.data(), 1.0f,
          dweight_.data());
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float* row = grad_out.data() + i * out_f_;
      for (std::int64_t j = 0; j < out_f_; ++j) dbias_[j] += row[j];
    }
  }
  // dX[N, in_f] = dY[N, out_f] * W[out_f, in_f]
  tensor grad_in{{n, in_f_}};
  gemm_nn(n, in_f_, out_f_, 1.0f, grad_out.data(), weight_.data(), 0.0f,
          grad_in.data());
  return grad_in;
}

std::vector<param_ref> dense::params() {
  std::vector<param_ref> out{{&weight_, &dweight_, "weight"}};
  if (has_bias_) out.push_back({&bias_, &dbias_, "bias"});
  return out;
}

std::string dense::describe() const {
  std::ostringstream out;
  out << "dense(" << in_f_ << " -> " << out_f_ << ")";
  return out.str();
}

}  // namespace dv
