// Jacobian-based saliency map attack (Papernot et al., EuroS&P 2016).
//
// Targeted: greedily increases pixel pairs that jointly raise the target
// logit while lowering the others, up to a budget of gamma * |pixels|
// modified features. This is the increasing-pixel variant with theta = 1.
#pragma once

#include "attack/attack.h"

namespace dv {

class jsma_attack : public attack {
 public:
  /// `gamma` is the maximum fraction of features modified.
  jsma_attack(float gamma = 0.14f, float theta = 1.0f)
      : gamma_{gamma}, theta_{theta} {}

  attack_result run(sequential& model, const tensor& image,
                    std::int64_t true_label,
                    std::int64_t target_label) override;
  std::string name() const override { return "JSMA"; }
  bool targeted() const override { return true; }

 private:
  float gamma_;
  float theta_;
};

}  // namespace dv
