#include "attack/fgsm.h"

namespace dv {

attack_result fgsm_attack::run(sequential& model, const tensor& image,
                               std::int64_t true_label,
                               std::int64_t target_label) {
  const tensor grad = input_gradient(model, image, true_label);
  attack_result out;
  out.adversarial = image;
  for (std::int64_t i = 0; i < image.numel(); ++i) {
    const float sign = grad[i] > 0.0f ? 1.0f : (grad[i] < 0.0f ? -1.0f : 0.0f);
    out.adversarial[i] += epsilon_ * sign;
  }
  out.adversarial.clamp(0.0f, 1.0f);
  out.iterations = 1;
  finalize_attack_result(model, image, true_label, target_label, out);
  return out;
}

}  // namespace dv
