#include "attack/pgd.h"

#include <algorithm>

namespace dv {

attack_result pgd_attack::run(sequential& model, const tensor& image,
                              std::int64_t true_label,
                              std::int64_t target_label) {
  attack_result best;
  best.adversarial = image;
  int total_iterations = 0;

  for (int restart = 0; restart < std::max(1, restarts_); ++restart) {
    tensor x = image;
    // Random start inside the epsilon ball (projected to the pixel box).
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x[i] += static_cast<float>(gen_.uniform(-epsilon_, epsilon_));
    }
    x.clamp(0.0f, 1.0f);

    bool success = false;
    for (int it = 0; it < iterations_; ++it) {
      const tensor grad = input_gradient(model, x, true_label);
      for (std::int64_t i = 0; i < x.numel(); ++i) {
        const float sign =
            grad[i] > 0.0f ? 1.0f : (grad[i] < 0.0f ? -1.0f : 0.0f);
        float v = x[i] + alpha_ * sign;
        v = std::clamp(v, image[i] - epsilon_, image[i] + epsilon_);
        x[i] = std::clamp(v, 0.0f, 1.0f);
      }
      ++total_iterations;
      const auto preds = model.predict(x.reshaped(
          {1, image.extent(0), image.extent(1), image.extent(2)}));
      if (preds.front() != true_label) {
        success = true;
        break;
      }
    }
    if (success) {
      best.adversarial = std::move(x);
      break;
    }
    if (restart == 0) best.adversarial = x;  // keep something plausible
  }
  best.iterations = total_iterations;
  finalize_attack_result(model, image, true_label, target_label, best);
  return best;
}

}  // namespace dv
