#include "attack/deepfool.h"

#include <cmath>
#include <limits>
#include <vector>

namespace dv {

attack_result deepfool_attack::run(sequential& model, const tensor& image,
                                   std::int64_t true_label,
                                   std::int64_t target_label) {
  attack_result out;
  out.adversarial = image;
  const std::int64_t p = image.numel();

  for (int it = 0; it < max_iterations_; ++it) {
    const tensor batch = out.adversarial.reshaped(
        {1, image.extent(0), image.extent(1), image.extent(2)});
    tensor logits = model.forward(batch, false);
    const std::int64_t c = logits.extent(1);
    const std::int64_t pred = logits.argmax();
    if (pred != true_label) break;  // already across the boundary

    // Gradient of the predicted logit (shared by every margin below).
    std::vector<float> coeff(static_cast<std::size_t>(c), 0.0f);
    coeff[static_cast<std::size_t>(pred)] = 1.0f;
    const tensor grad_pred =
        logit_combination_gradient(model, out.adversarial, coeff);

    // Nearest linearized boundary over all other classes.
    double best_ratio = std::numeric_limits<double>::infinity();
    tensor best_w;
    for (std::int64_t k = 0; k < c; ++k) {
      if (k == pred) continue;
      std::vector<float> ck(static_cast<std::size_t>(c), 0.0f);
      ck[static_cast<std::size_t>(k)] = 1.0f;
      tensor w = logit_combination_gradient(model, out.adversarial, ck);
      w -= grad_pred;
      const double f = static_cast<double>(logits[k]) - logits[pred];
      const double norm = std::max(1e-12, static_cast<double>(w.norm2()));
      const double ratio = std::abs(f) / norm;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best_w = std::move(w);
      }
    }
    if (best_w.empty()) break;

    // Step just past the boundary: delta = (|f| / ||w||^2) * w * (1 + os).
    const double norm2 =
        std::max(1e-12, static_cast<double>(best_w.norm2()));
    const float scale = static_cast<float>(
        (best_ratio / norm2) * (1.0 + overshoot_));
    for (std::int64_t i = 0; i < p; ++i) {
      out.adversarial[i] += scale * best_w[i];
    }
    out.adversarial.clamp(0.0f, 1.0f);
    ++out.iterations;
  }
  finalize_attack_result(model, image, true_label, target_label, out);
  return out;
}

}  // namespace dv
