// Basic iterative method (Kurakin et al., 2017): iterated FGSM with per-step
// size alpha, projected into the epsilon L-infinity ball, untargeted.
#pragma once

#include "attack/attack.h"

namespace dv {

class bim_attack : public attack {
 public:
  bim_attack(float epsilon = 0.3f, float alpha = 0.03f, int iterations = 20)
      : epsilon_{epsilon}, alpha_{alpha}, iterations_{iterations} {}

  attack_result run(sequential& model, const tensor& image,
                    std::int64_t true_label,
                    std::int64_t target_label) override;
  std::string name() const override { return "BIM"; }
  bool targeted() const override { return false; }

 private:
  float epsilon_;
  float alpha_;
  int iterations_;
};

}  // namespace dv
