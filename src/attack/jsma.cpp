#include "attack/jsma.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace dv {

attack_result jsma_attack::run(sequential& model, const tensor& image,
                               std::int64_t true_label,
                               std::int64_t target_label) {
  if (target_label < 0) {
    throw std::invalid_argument{"jsma_attack: requires a target label"};
  }
  const std::int64_t p = image.numel();
  attack_result out;
  out.adversarial = image;

  // Number of classes from one forward pass.
  const tensor probs0 = model.probabilities(image.reshaped(
      {1, image.extent(0), image.extent(1), image.extent(2)}));
  const std::int64_t num_classes = probs0.extent(1);

  const auto max_pairs =
      static_cast<int>(gamma_ * static_cast<float>(p) / 2.0f);
  std::vector<unsigned char> saturated(static_cast<std::size_t>(p), 0);

  for (int it = 0; it < max_pairs; ++it) {
    // alpha_i = dZ_t/dx_i ; beta_i = d(sum_{j != t} Z_j)/dx_i.
    std::vector<float> target_coeff(static_cast<std::size_t>(num_classes), 0.0f);
    target_coeff[static_cast<std::size_t>(target_label)] = 1.0f;
    const tensor alpha =
        logit_combination_gradient(model, out.adversarial, target_coeff);
    std::vector<float> other_coeff(static_cast<std::size_t>(num_classes), 1.0f);
    other_coeff[static_cast<std::size_t>(target_label)] = 0.0f;
    const tensor beta =
        logit_combination_gradient(model, out.adversarial, other_coeff);

    // Greedy pixel-pair selection by the saliency criterion:
    // alpha_p + alpha_q > 0, beta_p + beta_q < 0, maximize -product.
    std::int64_t best_a = -1, best_b = -1;
    double best_score = 0.0;
    // Restrict the O(p^2) pair search to the top-K most promising pixels.
    constexpr std::size_t k_top = 48;
    std::vector<std::int64_t> candidates;
    candidates.reserve(static_cast<std::size_t>(p));
    for (std::int64_t i = 0; i < p; ++i) {
      if (!saturated[static_cast<std::size_t>(i)]) candidates.push_back(i);
    }
    if (candidates.size() > k_top) {
      std::partial_sort(candidates.begin(),
                        candidates.begin() + static_cast<std::ptrdiff_t>(k_top),
                        candidates.end(),
                        [&](std::int64_t a, std::int64_t b) {
                          return alpha[a] - beta[a] > alpha[b] - beta[b];
                        });
      candidates.resize(k_top);
    }
    for (std::size_t x = 0; x < candidates.size(); ++x) {
      for (std::size_t y = x + 1; y < candidates.size(); ++y) {
        const std::int64_t a = candidates[x], b = candidates[y];
        const double sa = static_cast<double>(alpha[a]) + alpha[b];
        const double sb = static_cast<double>(beta[a]) + beta[b];
        if (sa > 0.0 && sb < 0.0) {
          const double score = -sa * sb;
          if (score > best_score) {
            best_score = score;
            best_a = a;
            best_b = b;
          }
        }
      }
    }
    if (best_a < 0) break;  // no admissible pair left

    for (const std::int64_t idx : {best_a, best_b}) {
      out.adversarial[idx] =
          std::min(1.0f, out.adversarial[idx] + theta_);
      if (out.adversarial[idx] >= 1.0f) {
        saturated[static_cast<std::size_t>(idx)] = 1;
      }
    }
    ++out.iterations;

    const auto preds = model.predict(out.adversarial.reshaped(
        {1, image.extent(0), image.extent(1), image.extent(2)}));
    if (preds.front() == target_label) break;
  }
  finalize_attack_result(model, image, true_label, target_label, out);
  return out;
}

}  // namespace dv
