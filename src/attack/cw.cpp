#include "attack/cw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>


namespace dv {

namespace {

tensor as_batch(const tensor& image) {
  return image.reshaped({1, image.extent(0), image.extent(1), image.extent(2)});
}

/// Forward pass + margin objective f and its input gradient.
/// Returns f = max_{j != t} Z_j - Z_t (not clamped by kappa); the caller
/// decides whether the penalty is active. `grad` is d f / d x.
double margin_and_gradient(sequential& model, const tensor& image,
                           std::int64_t target, tensor& grad) {
  tensor logits = model.forward(as_batch(image), false);
  const std::int64_t c = logits.extent(1);
  std::int64_t jmax = -1;
  float best = -std::numeric_limits<float>::infinity();
  for (std::int64_t j = 0; j < c; ++j) {
    if (j == target) continue;
    if (logits[j] > best) {
      best = logits[j];
      jmax = j;
    }
  }
  const double f = static_cast<double>(best) - logits[target];
  tensor grad_logits{{1, c}};
  grad_logits[jmax] = 1.0f;
  grad_logits[target] = -1.0f;
  model.zero_grad();
  grad = model.backward(grad_logits)
             .reshape({image.extent(0), image.extent(1), image.extent(2)});
  return f;
}

/// Minimal Adam state over a flat float vector.
struct adam_state {
  std::vector<float> m, v;
  int t{0};
  float lr, b1{0.9f}, b2{0.999f}, eps{1e-8f};

  explicit adam_state(std::size_t n, float learning_rate)
      : m(n, 0.0f), v(n, 0.0f), lr{learning_rate} {}

  void step(std::span<float> x, std::span<const float> g) {
    ++t;
    const float bc1 = 1.0f - std::pow(b1, static_cast<float>(t));
    const float bc2 = 1.0f - std::pow(b2, static_cast<float>(t));
    for (std::size_t i = 0; i < x.size(); ++i) {
      m[i] = b1 * m[i] + (1.0f - b1) * g[i];
      v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
      x[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
    }
  }
};

float atanh_clamped(float x) {
  const float c = std::clamp(x, -0.999999f, 0.999999f);
  return 0.5f * std::log((1.0f + c) / (1.0f - c));
}

/// CW-L2 core, restricted to pixels where mask != 0 (all pixels when mask is
/// empty). Returns the best successful adversarial image, or the last
/// iterate if never successful (success flag false).
attack_result cw2_core(sequential& model, const tensor& image,
                       std::int64_t true_label, std::int64_t target,
                       const cw_config& config,
                       const std::vector<unsigned char>& mask) {
  const std::int64_t p = image.numel();
  attack_result out;
  out.adversarial = image;

  tensor best{};
  double best_l2 = std::numeric_limits<double>::infinity();

  for (const float c_const : config.c_schedule) {
    // Optimize w with x' = 0.5 (tanh w + 1); masked pixels stay untouched.
    std::vector<float> w(static_cast<std::size_t>(p));
    for (std::int64_t i = 0; i < p; ++i) {
      w[static_cast<std::size_t>(i)] = atanh_clamped(2.0f * image[i] - 1.0f);
    }
    adam_state opt{w.size(), config.learning_rate};
    std::vector<float> grad_w(w.size(), 0.0f);
    tensor x_adv = image;

    for (int it = 0; it < config.iterations; ++it) {
      for (std::int64_t i = 0; i < p; ++i) {
        const bool frozen =
            !mask.empty() && mask[static_cast<std::size_t>(i)] == 0;
        x_adv[i] = frozen
                       ? image[i]
                       : 0.5f * (std::tanh(w[static_cast<std::size_t>(i)]) + 1.0f);
      }
      tensor grad_f;
      const double f = margin_and_gradient(model, x_adv, target, grad_f);
      ++out.iterations;

      if (f < -config.confidence) {
        // Success at this iterate; keep the smallest-distortion success.
        double l2 = 0.0;
        for (std::int64_t i = 0; i < p; ++i) {
          const double d = static_cast<double>(x_adv[i]) - image[i];
          l2 += d * d;
        }
        if (l2 < best_l2) {
          best_l2 = l2;
          best = x_adv;
        }
      }
      const bool penalty_active = f > -config.confidence;
      for (std::int64_t i = 0; i < p; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        if (!mask.empty() && mask[ui] == 0) {
          grad_w[ui] = 0.0f;
          continue;
        }
        const float dl_dx =
            2.0f * (x_adv[i] - image[i]) +
            (penalty_active ? c_const * grad_f[i] : 0.0f);
        const float th = std::tanh(w[ui]);
        grad_w[ui] = dl_dx * 0.5f * (1.0f - th * th);
      }
      opt.step(w, grad_w);
    }
    if (!best.empty()) break;  // success with the smallest c tried
  }

  out.adversarial = best.empty() ? std::move(out.adversarial) : best;
  finalize_attack_result(model, image, true_label, target, out);
  return out;
}

}  // namespace

attack_result cw2_attack::run(sequential& model, const tensor& image,
                              std::int64_t true_label,
                              std::int64_t target_label) {
  if (target_label < 0) {
    throw std::invalid_argument{"cw2_attack: requires a target label"};
  }
  return cw2_core(model, image, true_label, target_label, config_, {});
}

attack_result cwinf_attack::run(sequential& model, const tensor& image,
                                std::int64_t true_label,
                                std::int64_t target_label) {
  if (target_label < 0) {
    throw std::invalid_argument{"cwinf_attack: requires a target label"};
  }
  const std::int64_t p = image.numel();
  attack_result out;
  out.adversarial = image;
  tensor best{};
  double best_linf = std::numeric_limits<double>::infinity();

  const float c_const = config_.c_schedule.back();
  float tau = 1.0f;
  tensor x_adv = image;
  adam_state opt{static_cast<std::size_t>(p), config_.learning_rate};
  std::vector<float> grad(static_cast<std::size_t>(p), 0.0f);

  for (int round = 0; round < 10; ++round) {
    for (int it = 0; it < config_.iterations / 2; ++it) {
      tensor grad_f;
      const double f = margin_and_gradient(model, x_adv, target_label, grad_f);
      ++out.iterations;
      const bool penalty_active = f > -config_.confidence;
      for (std::int64_t i = 0; i < p; ++i) {
        const float delta = x_adv[i] - image[i];
        float g = penalty_active ? c_const * grad_f[i] : 0.0f;
        if (std::abs(delta) > tau) g += delta > 0.0f ? 1.0f : -1.0f;
        grad[static_cast<std::size_t>(i)] = g;
      }
      opt.step({x_adv.data(), static_cast<std::size_t>(p)}, grad);
      x_adv.clamp(0.0f, 1.0f);
    }
    // Check success and record; then shrink tau toward the achieved Linf.
    const auto preds = model.predict(as_batch(x_adv));
    if (preds.front() == target_label) {
      double linf = 0.0;
      for (std::int64_t i = 0; i < p; ++i) {
        linf = std::max(linf,
                        std::abs(static_cast<double>(x_adv[i]) - image[i]));
      }
      if (linf < best_linf) {
        best_linf = linf;
        best = x_adv;
      }
      tau = static_cast<float>(std::min<double>(tau, linf)) * 0.9f;
      if (tau < 1.0f / 255.0f) break;
    } else if (!best.empty()) {
      break;  // further shrinking failed; keep the best success
    }
  }
  out.adversarial = best.empty() ? std::move(x_adv) : best;
  finalize_attack_result(model, image, true_label, target_label, out);
  return out;
}

attack_result cw0_attack::run(sequential& model, const tensor& image,
                              std::int64_t true_label,
                              std::int64_t target_label) {
  if (target_label < 0) {
    throw std::invalid_argument{"cw0_attack: requires a target label"};
  }
  const std::int64_t p = image.numel();
  std::vector<unsigned char> mask(static_cast<std::size_t>(p), 1);
  attack_result last_success;
  bool have_success = false;
  int total_iterations = 0;

  cw_config inner = config_;
  inner.iterations = std::max(40, config_.iterations / 2);

  for (int round = 0; round < 8; ++round) {
    attack_result res =
        cw2_core(model, image, true_label, target_label, inner, mask);
    total_iterations += res.iterations;
    if (!res.hit_target) break;
    last_success = std::move(res);
    have_success = true;

    // Freeze the 20 % of still-active pixels with the smallest contribution
    // |delta_i| * |grad_i| to the attack.
    tensor grad_f;
    (void)margin_and_gradient(model, last_success.adversarial, target_label,
                              grad_f);
    std::vector<std::pair<float, std::int64_t>> importance;
    for (std::int64_t i = 0; i < p; ++i) {
      if (mask[static_cast<std::size_t>(i)] == 0) continue;
      const float delta = std::abs(last_success.adversarial[i] - image[i]);
      importance.emplace_back(delta * std::abs(grad_f[i]), i);
    }
    if (importance.size() < 8) break;
    const auto freeze_count = importance.size() / 5;
    std::nth_element(
        importance.begin(),
        importance.begin() + static_cast<std::ptrdiff_t>(freeze_count),
        importance.end());
    for (std::size_t k = 0; k < freeze_count; ++k) {
      mask[static_cast<std::size_t>(importance[k].second)] = 0;
    }
  }

  if (!have_success) {
    attack_result res =
        cw2_core(model, image, true_label, target_label, config_, {});
    res.iterations += total_iterations;
    return res;
  }
  last_success.iterations = total_iterations;
  finalize_attack_result(model, image, true_label, target_label, last_success);
  return last_success;
}

}  // namespace dv
