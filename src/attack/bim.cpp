#include "attack/bim.h"

#include <algorithm>

namespace dv {

attack_result bim_attack::run(sequential& model, const tensor& image,
                              std::int64_t true_label,
                              std::int64_t target_label) {
  attack_result out;
  out.adversarial = image;
  for (int it = 0; it < iterations_; ++it) {
    const tensor grad = input_gradient(model, out.adversarial, true_label);
    for (std::int64_t i = 0; i < image.numel(); ++i) {
      const float sign =
          grad[i] > 0.0f ? 1.0f : (grad[i] < 0.0f ? -1.0f : 0.0f);
      float v = out.adversarial[i] + alpha_ * sign;
      // Project into the epsilon ball around the original and the pixel box.
      v = std::clamp(v, image[i] - epsilon_, image[i] + epsilon_);
      out.adversarial[i] = std::clamp(v, 0.0f, 1.0f);
    }
    ++out.iterations;
    // Early exit once misclassification is achieved.
    const auto preds = model.predict(out.adversarial.reshaped(
        {1, image.extent(0), image.extent(1), image.extent(2)}));
    if (preds.front() != true_label) break;
  }
  finalize_attack_result(model, image, true_label, target_label, out);
  return out;
}

}  // namespace dv
