#include "attack/attack.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/loss.h"

namespace dv {

namespace {
tensor as_batch(const tensor& image) {
  if (image.dim() != 3) {
    throw std::invalid_argument{"attack: expected a [C,H,W] image"};
  }
  return image.reshaped({1, image.extent(0), image.extent(1), image.extent(2)});
}
}  // namespace

const char* attack_target_name(attack_target t) {
  switch (t) {
    case attack_target::untargeted: return "untargeted";
    case attack_target::next_class: return "next";
    case attack_target::least_likely: return "LL";
  }
  throw std::invalid_argument{"attack_target_name: bad target"};
}

std::int64_t select_target(sequential& model, const tensor& image,
                           std::int64_t true_label, attack_target mode) {
  switch (mode) {
    case attack_target::untargeted:
      return -1;
    case attack_target::next_class: {
      tensor probs = model.probabilities(as_batch(image));
      return (true_label + 1) % probs.extent(1);
    }
    case attack_target::least_likely: {
      tensor probs = model.probabilities(as_batch(image));
      const float* row = probs.data();
      return std::min_element(row, row + probs.extent(1)) - row;
    }
  }
  throw std::invalid_argument{"select_target: bad mode"};
}

tensor input_gradient(sequential& model, const tensor& image,
                      std::int64_t label) {
  tensor logits = model.forward(as_batch(image), false);
  tensor grad_logits;
  (void)softmax_cross_entropy_target(logits, label, grad_logits);
  model.zero_grad();
  tensor g = model.backward(grad_logits);
  return g.reshape({image.extent(0), image.extent(1), image.extent(2)});
}

tensor logit_combination_gradient(sequential& model, const tensor& image,
                                  const std::vector<float>& coeffs) {
  tensor logits = model.forward(as_batch(image), false);
  if (static_cast<std::int64_t>(coeffs.size()) != logits.extent(1)) {
    throw std::invalid_argument{"logit_combination_gradient: coeff size"};
  }
  tensor grad_logits{{1, logits.extent(1)}};
  for (std::int64_t j = 0; j < logits.extent(1); ++j) {
    grad_logits[j] = coeffs[static_cast<std::size_t>(j)];
  }
  model.zero_grad();
  tensor g = model.backward(grad_logits);
  return g.reshape({image.extent(0), image.extent(1), image.extent(2)});
}

void finalize_attack_result(sequential& model, const tensor& original,
                            std::int64_t true_label, std::int64_t target_label,
                            attack_result& result) {
  const auto preds = model.predict(as_batch(result.adversarial));
  result.prediction = preds.front();
  result.success = result.prediction != true_label;
  result.hit_target =
      target_label >= 0 && result.prediction == target_label;
  double l2 = 0.0, linf = 0.0;
  std::int64_t l0 = 0;
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    const double d = static_cast<double>(result.adversarial[i]) - original[i];
    l2 += d * d;
    linf = std::max(linf, std::abs(d));
    l0 += std::abs(d) > 1e-6 ? 1 : 0;
  }
  result.distortion_l2 = std::sqrt(l2);
  result.distortion_linf = linf;
  result.distortion_l0 = l0;
}

}  // namespace dv
