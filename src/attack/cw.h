// Carlini & Wagner attacks (IEEE S&P 2017): the L2, L-infinity, and L0
// variants, all targeted, all built on the logit-margin objective
//   f(x') = max( max_{j != t} Z_j(x') - Z_t(x'), -kappa ).
#pragma once

#include "attack/attack.h"

namespace dv {

struct cw_config {
  int iterations{120};
  float learning_rate{0.08f};
  float confidence{0.0f};  // kappa
  /// Constant schedule tried in order until the attack succeeds.
  std::vector<float> c_schedule{1.0f, 10.0f, 100.0f};
};

/// CW-L2: optimizes in tanh space with Adam, minimizing squared distortion
/// plus c * f.
class cw2_attack : public attack {
 public:
  explicit cw2_attack(cw_config config = {}) : config_{std::move(config)} {}
  attack_result run(sequential& model, const tensor& image,
                    std::int64_t true_label,
                    std::int64_t target_label) override;
  std::string name() const override { return "CW2"; }
  bool targeted() const override { return true; }

 private:
  cw_config config_;
};

/// CW-Linf: gradient descent on c * f + sum_i max(0, |delta_i| - tau) with a
/// shrinking tau.
class cwinf_attack : public attack {
 public:
  explicit cwinf_attack(cw_config config = {}) : config_{std::move(config)} {}
  attack_result run(sequential& model, const tensor& image,
                    std::int64_t true_label,
                    std::int64_t target_label) override;
  std::string name() const override { return "CWinf"; }
  bool targeted() const override { return true; }

 private:
  cw_config config_;
};

/// CW-L0: repeatedly runs CW-L2 on a shrinking set of modifiable pixels,
/// freezing the least-important pixels after each successful round.
class cw0_attack : public attack {
 public:
  explicit cw0_attack(cw_config config = {}) : config_{std::move(config)} {}
  attack_result run(sequential& model, const tensor& image,
                    std::int64_t true_label,
                    std::int64_t target_label) override;
  std::string name() const override { return "CW0"; }
  bool targeted() const override { return true; }

 private:
  cw_config config_;
};

}  // namespace dv
