// DeepFool (Moosavi-Dezfooli et al., CVPR 2016): untargeted minimal-norm
// attack that iteratively steps to the nearest linearized decision boundary.
#pragma once

#include "attack/attack.h"

namespace dv {

class deepfool_attack : public attack {
 public:
  deepfool_attack(int max_iterations = 30, float overshoot = 0.02f)
      : max_iterations_{max_iterations}, overshoot_{overshoot} {}

  attack_result run(sequential& model, const tensor& image,
                    std::int64_t true_label,
                    std::int64_t target_label) override;
  std::string name() const override { return "DeepFool"; }
  bool targeted() const override { return false; }

 private:
  int max_iterations_;
  float overshoot_;
};

}  // namespace dv
