// White-box adversarial attacks (paper §IV-D5, Table VIII).
//
// All attacks operate on a single [C,H,W] image with pixel box [0,1] and
// full gradient access to the victim model. Targeting follows Xu et al.:
// "next" is (true label + 1) mod N, "LL" is the least-likely class of the
// model's prediction on the clean image.
#pragma once

#include <cstdint>
#include <string>

#include "nn/model.h"

namespace dv {

enum class attack_target { untargeted, next_class, least_likely };

const char* attack_target_name(attack_target t);

struct attack_result {
  tensor adversarial;          // [C,H,W]
  bool success{false};         // model misclassifies (defender's view)
  bool hit_target{false};      // targeted attacks: reached the target class
  std::int64_t prediction{-1};
  int iterations{0};
  double distortion_l2{0.0};
  double distortion_linf{0.0};
  std::int64_t distortion_l0{0};
};

class attack {
 public:
  virtual ~attack() = default;
  attack() = default;
  attack(const attack&) = delete;
  attack& operator=(const attack&) = delete;

  /// Runs the attack. `target_label` is ignored for untargeted attacks; use
  /// select_target to derive it from an attack_target mode.
  virtual attack_result run(sequential& model, const tensor& image,
                            std::int64_t true_label,
                            std::int64_t target_label) = 0;
  virtual std::string name() const = 0;
  virtual bool targeted() const = 0;
};

/// Resolves a target label for the given mode (-1 for untargeted).
std::int64_t select_target(sequential& model, const tensor& image,
                           std::int64_t true_label, attack_target mode);

/// Gradient of the cross-entropy loss w.r.t. the input image, for `label`.
tensor input_gradient(sequential& model, const tensor& image,
                      std::int64_t label);

/// Gradient of a linear combination of logits w.r.t. the input image:
/// d(sum_k coeff[k] * Z_k)/dx.
tensor logit_combination_gradient(sequential& model, const tensor& image,
                                  const std::vector<float>& coeffs);

/// Fills in prediction/success/distortion fields of `result` by evaluating
/// the adversarial image against the model.
void finalize_attack_result(sequential& model, const tensor& original,
                            std::int64_t true_label, std::int64_t target_label,
                            attack_result& result);

}  // namespace dv
