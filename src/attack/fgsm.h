// Fast gradient sign method (Goodfellow et al., 2014): one signed gradient
// step of size epsilon, untargeted.
#pragma once

#include "attack/attack.h"

namespace dv {

class fgsm_attack : public attack {
 public:
  explicit fgsm_attack(float epsilon = 0.3f) : epsilon_{epsilon} {}

  attack_result run(sequential& model, const tensor& image,
                    std::int64_t true_label,
                    std::int64_t target_label) override;
  std::string name() const override { return "FGSM"; }
  bool targeted() const override { return false; }

 private:
  float epsilon_;
};

}  // namespace dv
