// Projected gradient descent (Madry et al., ICLR 2018): BIM with a random
// start inside the epsilon ball and optional restarts — the canonical
// first-order L-infinity adversary.
#pragma once

#include "attack/attack.h"
#include "util/rng.h"

namespace dv {

class pgd_attack : public attack {
 public:
  pgd_attack(float epsilon = 0.3f, float alpha = 0.03f, int iterations = 20,
             int restarts = 2, std::uint64_t seed = 4242)
      : epsilon_{epsilon},
        alpha_{alpha},
        iterations_{iterations},
        restarts_{restarts},
        gen_{seed} {}

  attack_result run(sequential& model, const tensor& image,
                    std::int64_t true_label,
                    std::int64_t target_label) override;
  std::string name() const override { return "PGD"; }
  bool targeted() const override { return false; }

 private:
  float epsilon_;
  float alpha_;
  int iterations_;
  int restarts_;
  rng gen_;
};

}  // namespace dv
