// Metamorphic corner-case generation (paper §III-A2, Tables IV and V).
//
// The search applies a transformation with growing distortion to a fixed
// seed set of correctly classified test images, monitoring the classifier's
// accuracy. It stops when the success rate (1 - accuracy on transformed
// seeds) reaches a target (~60 % in the paper); transformations that never
// exceed a minimum success rate (30 %) are discarded as unusable.
//
// Two-parameter transformations are searched along a diagonal schedule of
// increasing distortion (the paper's grid search in lockstep form); the
// exact step sizes are configurable and default to coarser steps than the
// paper's Table IV to fit a single-core CPU budget — the schedule printed by
// the benches records what was actually used.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "augment/transforms.h"
#include "data/dataset.h"
#include "data/factory.h"
#include "nn/model.h"

namespace dv {

/// A precomputed schedule of parameter values with increasing distortion.
struct corner_search_space {
  transform_kind kind{transform_kind::brightness};
  std::vector<transform_step> schedule;
  std::string range_description;  // human-readable Table IV row
};

/// The standard search space for a transformation on a dataset kind
/// (complement only applies to greyscale, i.e. `digits`).
corner_search_space standard_search_space(transform_kind kind,
                                          dataset_kind data);

/// All transformations applicable to a dataset kind, in Table V order.
std::vector<transform_kind> applicable_transforms(dataset_kind data);

/// The paper's per-dataset combined transformation (two components); the
/// component parameters are taken from the single-transform search results.
transform_chain combined_transform(dataset_kind data,
                                   const std::vector<transform_chain>&
                                       chosen_singles);

struct corner_search_result {
  bool usable{false};
  transform_chain chosen;          // empty when !usable
  double success_rate{0.0};        // 1 - accuracy on transformed seeds
  double mean_confidence{0.0};     // mean top-1 confidence on transformed seeds
  dataset corner_cases;            // transformed seeds at the chosen params
  /// Per corner case: true if the model misclassifies it (an SCC).
  std::vector<unsigned char> misclassified;
  int steps_evaluated{0};
};

/// Runs the stopping-rule search over `space` using `seeds` (all of which
/// must be correctly classified by `model`).
corner_search_result search_corner_cases(sequential& model,
                                         const dataset& seeds,
                                         const corner_search_space& space,
                                         double target_success = 0.6,
                                         double min_success = 0.3);

/// Evaluates a fixed chain (used for combined transformations and sweeps).
corner_search_result evaluate_chain(sequential& model, const dataset& seeds,
                                    const transform_chain& chain);

/// Selects `count` seeds from `test` that the model classifies correctly.
dataset select_seeds(sequential& model, const dataset& test,
                     std::int64_t count, std::uint64_t seed);

}  // namespace dv
