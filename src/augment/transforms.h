// Natural image transformations used for metamorphic corner-case synthesis
// (paper §III-A1, Tables I and IV).
//
// Every transformation preserves the semantic label of the image for the
// parameter ranges the search explores; they model environment changes —
// illumination (brightness/contrast), camera pose (rotation/shear/scale/
// translation), and sensor inversion (complement, greyscale only).
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace dv {

enum class transform_kind {
  brightness,   // add bias beta, clamp to [0,1]
  contrast,     // multiply by gain alpha, clamp to [0,1]
  rotation,     // rotate about center by p1 degrees
  shear,        // shear ratios (p1 horizontal, p2 vertical)
  scale,        // scale ratios (p1 x, p2 y)
  translation,  // shift by (p1, p2) pixels
  complement,   // x -> 1 - x (maximum pixel value 1.0)
  // Extension transformations from the paper's cited DeepTest family
  // (Tian et al. [67]): not part of the paper's Table IV suite, but the
  // same metamorphic machinery applies to them.
  blur,         // Gaussian blur, p1 = sigma in pixels
  noise,        // additive Gaussian sensor noise, p1 = stddev, p2 = seed tag
  occlusion,    // dark square patch, p1 = size fraction, p2 = position tag
};

const char* transform_kind_name(transform_kind kind);

/// One parameterized transformation step.
/// Parameter meaning by kind: brightness p1=beta; contrast p1=alpha;
/// rotation p1=degrees; shear p1=s_h, p2=s_v; scale p1=s_x, p2=s_y;
/// translation p1=T_x, p2=T_y; complement ignores both.
struct transform_step {
  transform_kind kind{transform_kind::brightness};
  float p1{0.0f};
  float p2{0.0f};

  std::string describe() const;
};

/// An ordered list of steps; "combined transformations" are chains of two.
using transform_chain = std::vector<transform_step>;

std::string describe_chain(const transform_chain& chain);

/// Applies one step to a [C,H,W] image in [0,1]. Returns a new image.
tensor apply_step(const tensor& image, const transform_step& step);

/// Separable Gaussian blur with the given sigma (pixels), edge-replicated.
tensor gaussian_blur(const tensor& image, float sigma);

/// Applies a chain left-to-right.
tensor apply_chain(const tensor& image, const transform_chain& chain);

/// Transforms every image of a dataset (labels preserved).
dataset transform_dataset(const dataset& input, const transform_chain& chain);

}  // namespace dv
