// 2-D affine transforms in homogeneous coordinates (paper Table I).
//
// A transform is a 3x3 matrix acting on column vectors (x, y, 1)^T. Images
// are resampled by *inverse* mapping with bilinear interpolation: for every
// output pixel we invert the transform to find the source location, which
// avoids holes. All transforms are taken about the image center, matching
// how rotation/scale/shear of a camera frame behave.
#pragma once

#include <array>

#include "tensor/tensor.h"

namespace dv {

/// Row-major 3x3 homogeneous transform matrix.
struct affine_matrix {
  std::array<float, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};

  static affine_matrix identity();
  static affine_matrix rotation(float radians);
  static affine_matrix shear(float sh, float sv);
  static affine_matrix scale(float sx, float sy);
  static affine_matrix translation(float tx, float ty);

  /// Matrix product: (*this) ∘ other — other applies first.
  affine_matrix compose(const affine_matrix& other) const;

  /// Inverse; throws std::domain_error if singular.
  affine_matrix inverse() const;

  /// Applies to a point.
  std::pair<float, float> apply(float x, float y) const;
};

/// Resamples a CHW image through `transform` (a forward map on pixel
/// coordinates about the image center). Out-of-bounds source pixels read as
/// `fill`. The input must be 3-D [C, H, W].
tensor warp_affine(const tensor& image, const affine_matrix& transform,
                   float fill = 0.0f);

}  // namespace dv
