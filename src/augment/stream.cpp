#include "augment/stream.h"

#include <algorithm>
#include <stdexcept>

namespace dv {

transform_chain environment_state::as_chain() const {
  transform_chain chain;
  if (brightness_bias != 0.0f) {
    chain.push_back({transform_kind::brightness, brightness_bias, 0.0f});
  }
  if (contrast_gain != 1.0f) {
    chain.push_back({transform_kind::contrast, contrast_gain, 0.0f});
  }
  if (rotation_deg != 0.0f) {
    chain.push_back({transform_kind::rotation, rotation_deg, 0.0f});
  }
  if (translate_x != 0.0f || translate_y != 0.0f) {
    chain.push_back({transform_kind::translation, translate_x, translate_y});
  }
  return chain;
}

environment_stream::environment_stream(const dataset& source,
                                       stream_config config)
    : source_{source}, config_{config}, gen_{config.seed} {
  if (source_.size() == 0) {
    throw std::invalid_argument{"environment_stream: empty source dataset"};
  }
}

void environment_stream::advance() {
  auto walk = [&](float value, float drift, float stddev) {
    return value + drift +
           (stddev > 0.0f
                ? static_cast<float>(gen_.normal(0.0, stddev))
                : 0.0f);
  };
  state_.brightness_bias =
      std::clamp(walk(state_.brightness_bias, config_.drift.brightness_bias,
                      config_.walk_stddev.brightness_bias),
                 -config_.max_brightness, config_.max_brightness);
  state_.contrast_gain =
      std::clamp(walk(state_.contrast_gain, config_.drift.contrast_gain,
                      config_.walk_stddev.contrast_gain),
                 config_.min_contrast, config_.max_contrast);
  state_.rotation_deg =
      std::clamp(walk(state_.rotation_deg, config_.drift.rotation_deg,
                      config_.walk_stddev.rotation_deg),
                 -config_.max_rotation, config_.max_rotation);
  state_.translate_x =
      std::clamp(walk(state_.translate_x, config_.drift.translate_x,
                      config_.walk_stddev.translate_x),
                 -config_.max_translation, config_.max_translation);
  state_.translate_y =
      std::clamp(walk(state_.translate_y, config_.drift.translate_y,
                      config_.walk_stddev.translate_y),
                 -config_.max_translation, config_.max_translation);
}

stream_frame environment_stream::next() {
  const std::int64_t row = index_ % source_.size();
  stream_frame frame;
  frame.index = index_;
  frame.label = source_.labels[static_cast<std::size_t>(row)];
  frame.environment = state_;
  frame.image = apply_chain(source_.images.sample(row), state_.as_chain());
  ++index_;
  advance();
  return frame;
}

}  // namespace dv
