#include "augment/affine.h"

#include <cmath>
#include <stdexcept>

namespace dv {

affine_matrix affine_matrix::identity() { return {}; }

affine_matrix affine_matrix::rotation(float radians) {
  const float c = std::cos(radians), s = std::sin(radians);
  affine_matrix out;
  out.m = {c, s, 0, -s, c, 0, 0, 0, 1};
  return out;
}

affine_matrix affine_matrix::shear(float sh, float sv) {
  affine_matrix out;
  out.m = {1, sh, 0, sv, 1, 0, 0, 0, 1};
  return out;
}

affine_matrix affine_matrix::scale(float sx, float sy) {
  affine_matrix out;
  out.m = {sx, 0, 0, 0, sy, 0, 0, 0, 1};
  return out;
}

affine_matrix affine_matrix::translation(float tx, float ty) {
  affine_matrix out;
  out.m = {1, 0, tx, 0, 1, ty, 0, 0, 1};
  return out;
}

affine_matrix affine_matrix::compose(const affine_matrix& other) const {
  affine_matrix out;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 3; ++k) acc += m[i * 3 + k] * other.m[k * 3 + j];
      out.m[i * 3 + j] = acc;
    }
  }
  return out;
}

affine_matrix affine_matrix::inverse() const {
  const auto& a = m;
  const float det = a[0] * (a[4] * a[8] - a[5] * a[7]) -
                    a[1] * (a[3] * a[8] - a[5] * a[6]) +
                    a[2] * (a[3] * a[7] - a[4] * a[6]);
  if (std::abs(det) < 1e-12f) {
    throw std::domain_error{"affine_matrix::inverse: singular matrix"};
  }
  const float inv = 1.0f / det;
  affine_matrix out;
  out.m[0] = (a[4] * a[8] - a[5] * a[7]) * inv;
  out.m[1] = (a[2] * a[7] - a[1] * a[8]) * inv;
  out.m[2] = (a[1] * a[5] - a[2] * a[4]) * inv;
  out.m[3] = (a[5] * a[6] - a[3] * a[8]) * inv;
  out.m[4] = (a[0] * a[8] - a[2] * a[6]) * inv;
  out.m[5] = (a[2] * a[3] - a[0] * a[5]) * inv;
  out.m[6] = (a[3] * a[7] - a[4] * a[6]) * inv;
  out.m[7] = (a[1] * a[6] - a[0] * a[7]) * inv;
  out.m[8] = (a[0] * a[4] - a[1] * a[3]) * inv;
  return out;
}

std::pair<float, float> affine_matrix::apply(float x, float y) const {
  return {m[0] * x + m[1] * y + m[2], m[3] * x + m[4] * y + m[5]};
}

tensor warp_affine(const tensor& image, const affine_matrix& transform,
                   float fill) {
  if (image.dim() != 3) {
    throw std::invalid_argument{"warp_affine: expected [C,H,W]"};
  }
  const std::int64_t c = image.extent(0), h = image.extent(1),
                     w = image.extent(2);
  const float cx = 0.5f * static_cast<float>(w - 1);
  const float cy = 0.5f * static_cast<float>(h - 1);
  const affine_matrix inv = transform.inverse();

  tensor out{{c, h, w}};
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      // Inverse-map the centered output coordinate to the source frame.
      const auto [sx, sy] =
          inv.apply(static_cast<float>(x) - cx, static_cast<float>(y) - cy);
      const float fx = sx + cx;
      const float fy = sy + cy;
      const auto x0 = static_cast<std::int64_t>(std::floor(fx));
      const auto y0 = static_cast<std::int64_t>(std::floor(fy));
      const float tx = fx - static_cast<float>(x0);
      const float ty = fy - static_cast<float>(y0);
      for (std::int64_t ch = 0; ch < c; ++ch) {
        auto sample = [&](std::int64_t yy, std::int64_t xx) {
          if (yy < 0 || yy >= h || xx < 0 || xx >= w) return fill;
          return image.at3(ch, yy, xx);
        };
        const float v00 = sample(y0, x0);
        const float v01 = sample(y0, x0 + 1);
        const float v10 = sample(y0 + 1, x0);
        const float v11 = sample(y0 + 1, x0 + 1);
        out.at3(ch, y, x) = (1 - ty) * ((1 - tx) * v00 + tx * v01) +
                            ty * ((1 - tx) * v10 + tx * v11);
      }
    }
  }
  return out;
}

}  // namespace dv
