#include "augment/transforms.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "augment/affine.h"
#include "util/rng.h"

namespace dv {

tensor gaussian_blur(const tensor& image, float sigma) {
  if (image.dim() != 3) {
    throw std::invalid_argument{"gaussian_blur: expected [C,H,W]"};
  }
  if (sigma <= 0.0f) throw std::invalid_argument{"gaussian_blur: sigma > 0"};
  // Separable kernel with radius 3 sigma (clamped to a sane maximum).
  const int radius =
      std::min(7, std::max(1, static_cast<int>(std::ceil(3.0f * sigma))));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float norm = 0.0f;
  for (int k = -radius; k <= radius; ++k) {
    const float v = std::exp(-0.5f * static_cast<float>(k * k) / (sigma * sigma));
    kernel[static_cast<std::size_t>(k + radius)] = v;
    norm += v;
  }
  for (auto& v : kernel) v /= norm;

  const std::int64_t c = image.extent(0), h = image.extent(1),
                     w = image.extent(2);
  tensor horizontal{image.shape()};
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        float acc = 0.0f;
        for (int k = -radius; k <= radius; ++k) {
          const std::int64_t xx = std::clamp<std::int64_t>(x + k, 0, w - 1);
          acc += kernel[static_cast<std::size_t>(k + radius)] *
                 image.at3(ch, y, xx);
        }
        horizontal.at3(ch, y, x) = acc;
      }
    }
  }
  tensor out{image.shape()};
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        float acc = 0.0f;
        for (int k = -radius; k <= radius; ++k) {
          const std::int64_t yy = std::clamp<std::int64_t>(y + k, 0, h - 1);
          acc += kernel[static_cast<std::size_t>(k + radius)] *
                 horizontal.at3(ch, yy, x);
        }
        out.at3(ch, y, x) = acc;
      }
    }
  }
  return out;
}

const char* transform_kind_name(transform_kind kind) {
  switch (kind) {
    case transform_kind::brightness: return "brightness";
    case transform_kind::contrast: return "contrast";
    case transform_kind::rotation: return "rotation";
    case transform_kind::shear: return "shear";
    case transform_kind::scale: return "scale";
    case transform_kind::translation: return "translation";
    case transform_kind::complement: return "complement";
    case transform_kind::blur: return "blur";
    case transform_kind::noise: return "noise";
    case transform_kind::occlusion: return "occlusion";
  }
  throw std::invalid_argument{"transform_kind_name: bad kind"};
}

std::string transform_step::describe() const {
  std::ostringstream out;
  switch (kind) {
    case transform_kind::brightness:
      out << "brightness(beta=" << p1 << ")";
      break;
    case transform_kind::contrast:
      out << "contrast(alpha=" << p1 << ")";
      break;
    case transform_kind::rotation:
      out << "rotation(theta=" << p1 << " deg)";
      break;
    case transform_kind::shear:
      out << "shear(sh=" << p1 << ", sv=" << p2 << ")";
      break;
    case transform_kind::scale:
      out << "scale(sx=" << p1 << ", sy=" << p2 << ")";
      break;
    case transform_kind::translation:
      out << "translation(Tx=" << p1 << ", Ty=" << p2 << ")";
      break;
    case transform_kind::complement:
      out << "complement";
      break;
    case transform_kind::blur:
      out << "blur(sigma=" << p1 << ")";
      break;
    case transform_kind::noise:
      out << "noise(stddev=" << p1 << ")";
      break;
    case transform_kind::occlusion:
      out << "occlusion(size=" << p1 << ")";
      break;
  }
  return out.str();
}

std::string describe_chain(const transform_chain& chain) {
  std::ostringstream out;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i > 0) out << " + ";
    out << chain[i].describe();
  }
  return out.str();
}

tensor apply_step(const tensor& image, const transform_step& step) {
  if (image.dim() != 3) {
    throw std::invalid_argument{"apply_step: expected [C,H,W]"};
  }
  switch (step.kind) {
    case transform_kind::brightness: {
      tensor out = image;
      for (std::int64_t i = 0; i < out.numel(); ++i) out[i] += step.p1;
      out.clamp(0.0f, 1.0f);
      return out;
    }
    case transform_kind::contrast: {
      tensor out = image;
      out *= step.p1;
      out.clamp(0.0f, 1.0f);
      return out;
    }
    case transform_kind::rotation: {
      const float rad =
          step.p1 * std::numbers::pi_v<float> / 180.0f;
      return warp_affine(image, affine_matrix::rotation(rad));
    }
    case transform_kind::shear:
      return warp_affine(image, affine_matrix::shear(step.p1, step.p2));
    case transform_kind::scale: {
      if (step.p1 <= 0.0f || step.p2 <= 0.0f) {
        throw std::invalid_argument{"apply_step: scale ratios must be > 0"};
      }
      return warp_affine(image, affine_matrix::scale(step.p1, step.p2));
    }
    case transform_kind::translation:
      return warp_affine(image, affine_matrix::translation(step.p1, step.p2));
    case transform_kind::complement: {
      tensor out = image;
      for (std::int64_t i = 0; i < out.numel(); ++i) out[i] = 1.0f - out[i];
      return out;
    }
    case transform_kind::blur:
      return gaussian_blur(image, step.p1);
    case transform_kind::noise: {
      if (step.p1 < 0.0f) {
        throw std::invalid_argument{"apply_step: noise stddev must be >= 0"};
      }
      tensor out = image;
      // Deterministic per (image content is not hashed; the seed tag p2
      // selects the noise realization so experiments stay reproducible).
      rng gen{0x9e3779b9u ^ static_cast<std::uint64_t>(step.p2 * 977.0f)};
      for (std::int64_t i = 0; i < out.numel(); ++i) {
        out[i] += static_cast<float>(gen.normal(0.0, step.p1));
      }
      out.clamp(0.0f, 1.0f);
      return out;
    }
    case transform_kind::occlusion: {
      if (step.p1 <= 0.0f || step.p1 > 1.0f) {
        throw std::invalid_argument{"apply_step: occlusion size in (0, 1]"};
      }
      tensor out = image;
      const std::int64_t h = image.extent(1), w = image.extent(2);
      const auto side = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(step.p1 * static_cast<float>(std::min(h, w))));
      // Position tag p2 in [0, 1) x-major walks the patch across the image.
      rng gen{0x51ed270bu ^ static_cast<std::uint64_t>(step.p2 * 7919.0f)};
      const auto y0 = static_cast<std::int64_t>(gen.uniform(0.0, 1.0) *
                                                static_cast<double>(h - side));
      const auto x0 = static_cast<std::int64_t>(gen.uniform(0.0, 1.0) *
                                                static_cast<double>(w - side));
      for (std::int64_t c = 0; c < image.extent(0); ++c) {
        for (std::int64_t y = y0; y < y0 + side; ++y) {
          for (std::int64_t x = x0; x < x0 + side; ++x) {
            out.at3(c, y, x) = 0.0f;
          }
        }
      }
      return out;
    }
  }
  throw std::invalid_argument{"apply_step: bad kind"};
}

tensor apply_chain(const tensor& image, const transform_chain& chain) {
  tensor out = image;
  for (const auto& step : chain) out = apply_step(out, step);
  return out;
}

dataset transform_dataset(const dataset& input, const transform_chain& chain) {
  dataset out;
  out.num_classes = input.num_classes;
  out.name = input.name + "+" + describe_chain(chain);
  out.labels = input.labels;
  out.images = tensor{input.images.shape()};
  for (std::int64_t i = 0; i < input.size(); ++i) {
    out.images.set_sample(i, apply_chain(input.images.sample(i), chain));
  }
  return out;
}

}  // namespace dv
