// Environment-drift stream simulator.
//
// Substitution (DESIGN.md §3) for the real-world camera feeds that motivate
// the paper (Tesla bright-sky, Uber night scenes): a frame source that draws
// clean images from a dataset and passes them through an environment whose
// parameters — illumination bias, contrast gain, camera rotation, and
// translation jitter — evolve over time as a bounded random walk with an
// optional deterministic drift. Drives the runtime_monitor example and the
// fail-safe integration tests.
#pragma once

#include <cstdint>

#include "augment/transforms.h"
#include "data/dataset.h"

namespace dv {

/// Instantaneous environment state applied to every frame.
struct environment_state {
  float brightness_bias{0.0f};
  float contrast_gain{1.0f};
  float rotation_deg{0.0f};
  float translate_x{0.0f};
  float translate_y{0.0f};

  transform_chain as_chain() const;
};

/// Per-frame parameter deltas (all additive; zero means "no change").
struct environment_delta {
  float brightness_bias{0.0f};
  float contrast_gain{0.0f};
  float rotation_deg{0.0f};
  float translate_x{0.0f};
  float translate_y{0.0f};
};

struct stream_config {
  /// Deterministic per-frame drift added to each parameter.
  environment_delta drift{};
  /// Standard deviation of the per-frame random-walk step per parameter.
  environment_delta walk_stddev{};
  /// Hard bounds (absolute value) on the walked parameters.
  float max_brightness{0.95f};
  float max_rotation{80.0f};
  float max_translation{12.0f};
  float min_contrast{0.2f};
  float max_contrast{5.0f};
  std::uint64_t seed{33};
};

/// One simulated frame with its ground truth.
struct stream_frame {
  tensor image;
  std::int64_t label{-1};
  environment_state environment;
  std::int64_t index{0};
};

class environment_stream {
 public:
  /// `source` provides the clean frames (cycled in order).
  environment_stream(const dataset& source, stream_config config = {});

  /// Produces the next frame under the current (then advanced) environment.
  stream_frame next();

  const environment_state& state() const { return state_; }
  std::int64_t frames_emitted() const { return index_; }

 private:
  void advance();

  const dataset& source_;
  stream_config config_;
  environment_state state_{};
  rng gen_;
  std::int64_t index_{0};
};

}  // namespace dv
