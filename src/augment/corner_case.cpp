#include "augment/corner_case.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "nn/trainer.h"
#include "util/logging.h"

namespace dv {

namespace {

/// Builds a diagonal schedule for a two-parameter transform.
std::vector<transform_step> diagonal_schedule(transform_kind kind, float begin,
                                              float end, float step) {
  std::vector<transform_step> out;
  const int n = static_cast<int>(std::abs(end - begin) / step + 0.5f);
  const float dir = end >= begin ? 1.0f : -1.0f;
  for (int i = 1; i <= n; ++i) {
    const float v = begin + dir * step * static_cast<float>(i);
    out.push_back({kind, v, v});
  }
  return out;
}

std::string range_text(float begin, float end, float step) {
  std::ostringstream out;
  out << begin << " through " << end << ", step " << step;
  return out.str();
}

}  // namespace

corner_search_space standard_search_space(transform_kind kind,
                                          dataset_kind data) {
  corner_search_space out;
  out.kind = kind;
  switch (kind) {
    case transform_kind::brightness: {
      // Paper: beta 0 through 0.95 step 0.004; coarsened for CPU budget.
      const float step = 0.025f;
      for (float b = step; b <= 0.95f + 1e-4f; b += step) {
        out.schedule.push_back({kind, b, 0.0f});
      }
      out.range_description = range_text(0.0f, 0.95f, step);
      break;
    }
    case transform_kind::contrast: {
      // Paper: alpha 0 through 5.0 step 0.1; we sweep upward from 1.
      const float step = 0.2f;
      for (float a = 1.0f + step; a <= 5.0f + 1e-4f; a += step) {
        out.schedule.push_back({kind, a, 0.0f});
      }
      out.range_description = range_text(1.0f, 5.0f, step);
      break;
    }
    case transform_kind::rotation: {
      // Paper: theta 1 through 70 deg step 1; coarsened to 2 deg.
      const float step = 2.0f;
      for (float t = step; t <= 70.0f + 1e-4f; t += step) {
        out.schedule.push_back({kind, t, 0.0f});
      }
      out.range_description = "1 deg through 70 deg, step 2 deg";
      break;
    }
    case transform_kind::shear:
      // Paper: (0,0) through (0.5,0.5) step (0.1,0.1); refined to 0.05.
      out.schedule = diagonal_schedule(kind, 0.0f, 0.6f, 0.05f);
      out.range_description = "(0,0) through (0.6,0.6), step (0.05,0.05)";
      break;
    case transform_kind::scale:
      // Paper: (1,1) through (0.4,0.4) step (0.1,0.1); refined to 0.05.
      out.schedule = diagonal_schedule(kind, 1.0f, 0.4f, 0.05f);
      out.range_description = "(1,1) through (0.4,0.4), step (0.05,0.05)";
      break;
    case transform_kind::translation: {
      // Paper: (0,0) through (18,18) step (1,1).
      const int limit = data == dataset_kind::digits ? 14 : 16;
      out.schedule = diagonal_schedule(kind, 0.0f, static_cast<float>(limit),
                                       1.0f);
      out.range_description =
          "(0,0) through (" + std::to_string(limit) + "," +
          std::to_string(limit) + "), step (1,1)";
      break;
    }
    case transform_kind::complement:
      if (data != dataset_kind::digits) {
        throw std::invalid_argument{
            "complement only applies to greyscale datasets"};
      }
      out.schedule.push_back({kind, 0.0f, 0.0f});
      out.range_description = "maximum pixel value 1.0";
      break;
    case transform_kind::blur: {
      const float step = 0.25f;
      for (float s = step; s <= 4.0f + 1e-4f; s += step) {
        out.schedule.push_back({kind, s, 0.0f});
      }
      out.range_description = "sigma " + range_text(0.0f, 4.0f, step);
      break;
    }
    case transform_kind::noise: {
      const float step = 0.02f;
      for (float s = step; s <= 0.5f + 1e-4f; s += step) {
        out.schedule.push_back({kind, s, 0.0f});
      }
      out.range_description = "stddev " + range_text(0.0f, 0.5f, step);
      break;
    }
    case transform_kind::occlusion: {
      const float step = 0.05f;
      for (float s = step; s <= 0.6f + 1e-4f; s += step) {
        out.schedule.push_back({kind, s, 0.0f});
      }
      out.range_description = "patch fraction " + range_text(0.0f, 0.6f, step);
      break;
    }
  }
  return out;
}

std::vector<transform_kind> applicable_transforms(dataset_kind data) {
  std::vector<transform_kind> out{
      transform_kind::brightness, transform_kind::contrast,
      transform_kind::rotation,   transform_kind::shear,
      transform_kind::scale,      transform_kind::translation};
  if (data == dataset_kind::digits) {
    out.push_back(transform_kind::complement);
  }
  return out;
}

transform_chain combined_transform(
    dataset_kind data, const std::vector<transform_chain>& chosen_singles) {
  auto find = [&](transform_kind kind) -> const transform_step* {
    for (const auto& chain : chosen_singles) {
      if (chain.size() == 1 && chain[0].kind == kind) return &chain[0];
    }
    return nullptr;
  };
  // Paper Table V: MNIST combines complement with scale; CIFAR-10 and SVHN
  // combine brightness adjustment with scale. When a canonical component
  // was unusable on this model, fall back to the first two usable singles.
  const transform_step* first =
      find(data == dataset_kind::digits ? transform_kind::complement
                                        : transform_kind::brightness);
  const transform_step* second = find(transform_kind::scale);
  if (first != nullptr && second != nullptr) return {*first, *second};
  if (chosen_singles.size() < 2) {
    throw std::invalid_argument{
        "combined_transform: fewer than two usable single transformations"};
  }
  transform_chain out{chosen_singles[0][0], chosen_singles[1][0]};
  return out;
}

corner_search_result evaluate_chain(sequential& model, const dataset& seeds,
                                    const transform_chain& chain) {
  corner_search_result out;
  out.chosen = chain;
  out.corner_cases = transform_dataset(seeds, chain);
  tensor probs =
      batched_probabilities(model, out.corner_cases.images, /*batch=*/128);
  const std::int64_t n = probs.extent(0);
  const std::int64_t c = probs.extent(1);
  out.misclassified.resize(static_cast<std::size_t>(n));
  std::int64_t wrong = 0;
  double conf_sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = probs.data() + i * c;
    const auto pred = std::max_element(row, row + c) - row;
    conf_sum += row[pred];
    const bool miss = pred != seeds.labels[static_cast<std::size_t>(i)];
    out.misclassified[static_cast<std::size_t>(i)] = miss ? 1 : 0;
    wrong += miss ? 1 : 0;
  }
  out.success_rate = static_cast<double>(wrong) / static_cast<double>(n);
  out.mean_confidence = conf_sum / static_cast<double>(n);
  out.usable = true;
  out.steps_evaluated = 1;
  return out;
}

corner_search_result search_corner_cases(sequential& model,
                                         const dataset& seeds,
                                         const corner_search_space& space,
                                         double target_success,
                                         double min_success) {
  corner_search_result best;
  int evaluated = 0;
  for (const auto& step : space.schedule) {
    corner_search_result cur = evaluate_chain(model, seeds, {step});
    ++evaluated;
    log_debug() << "search " << step.describe() << " -> success "
                << cur.success_rate;
    // Keep the strongest configuration seen so far; the schedule is ordered
    // by increasing distortion, so the first crossing of the target is the
    // minimal distortion achieving it.
    if (cur.success_rate >= best.success_rate || best.chosen.empty()) {
      best = std::move(cur);
    }
    if (best.success_rate >= target_success) break;
  }
  best.steps_evaluated = evaluated;
  best.usable = best.success_rate >= min_success;
  if (!best.usable) {
    log_info() << transform_kind_name(space.kind)
               << ": max success rate " << best.success_rate
               << " < " << min_success << ", discarded";
  }
  return best;
}

dataset select_seeds(sequential& model, const dataset& test,
                     std::int64_t count, std::uint64_t seed) {
  const auto preds = [&] {
    std::vector<std::int64_t> out;
    out.reserve(static_cast<std::size_t>(test.size()));
    constexpr std::int64_t batch = 128;
    for (std::int64_t begin = 0; begin < test.size(); begin += batch) {
      const std::int64_t end = std::min(test.size(), begin + batch);
      const auto p = model.predict(test.images.slice_rows(begin, end));
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }();
  std::vector<std::int64_t> correct;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    if (preds[static_cast<std::size_t>(i)] ==
        test.labels[static_cast<std::size_t>(i)]) {
      correct.push_back(i);
    }
  }
  if (static_cast<std::int64_t>(correct.size()) < count) {
    throw std::runtime_error{
        "select_seeds: not enough correctly classified test images"};
  }
  rng gen{seed};
  gen.shuffle_indices(correct.size(), [&](std::size_t a, std::size_t b) {
    std::swap(correct[a], correct[b]);
  });
  correct.resize(static_cast<std::size_t>(count));
  dataset out = test.subset(correct);
  out.name = test.name + ":seeds";
  return out;
}

}  // namespace dv
