#include "core/weighted_joint.h"

#include <stdexcept>

#include "util/flat_snapshot.h"

namespace dv {

namespace {
std::vector<std::vector<double>> per_layer_rows(
    const deep_validator::scores& s) {
  const std::size_t layers = s.per_layer.size();
  const std::size_t n = s.joint.size();
  std::vector<std::vector<double>> rows(n, std::vector<double>(layers));
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t i = 0; i < n; ++i) rows[i][l] = s.per_layer[l][i];
  }
  return rows;
}
}  // namespace

void weighted_joint_validator::fit(sequential& model,
                                   const deep_validator& base,
                                   const tensor& clean,
                                   const tensor& outliers) {
  if (!base.fitted()) {
    throw std::logic_error{"weighted_joint_validator: base not fitted"};
  }
  const auto neg = per_layer_rows(base.evaluate(model, clean));
  const auto pos = per_layer_rows(base.evaluate(model, outliers));
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  x.reserve(neg.size() + pos.size());
  for (const auto& row : pos) {
    x.push_back(row);
    y.push_back(1);
  }
  for (const auto& row : neg) {
    x.push_back(row);
    y.push_back(0);
  }
  combiner_.fit(x, y);
}

weighted_joint_view weighted_joint_validator::view() const {
  if (!fitted()) {
    throw std::logic_error{"weighted_joint_validator: not fitted"};
  }
  return weighted_joint_view{combiner_.weights(), combiner_.bias()};
}

std::vector<double> weighted_joint_validator::score_batch(
    sequential& model, const deep_validator& base,
    const tensor& images) const {
  if (!fitted()) {
    throw std::logic_error{"weighted_joint_validator: not fitted"};
  }
  // Delegate per-row scoring to the view so the fitted path and the
  // snapshot-backed path (validator_bank_view::weighted) are one code
  // path: weighted_joint_view::decision replays the exact
  // logistic_regression::decision accumulation order.
  const weighted_joint_view v = view();
  const auto rows = per_layer_rows(base.evaluate(model, images));
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(v.decision(row));
  return out;
}

std::vector<double> weighted_joint_validator::score_batch(
    const deep_validator& base, const activation_batch& acts) const {
  if (!fitted()) {
    throw std::logic_error{"weighted_joint_validator: not fitted"};
  }
  const weighted_joint_view v = view();
  const auto rows = per_layer_rows(base.evaluate(acts));
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(v.decision(row));
  return out;
}

void weighted_joint_validator::save_snapshot(snapshot_writer& w,
                                             const std::string& prefix) const {
  if (!fitted()) {
    throw std::logic_error{"weighted_joint_validator: not fitted"};
  }
  w.add_f64(prefix + "weights", combiner_.weights());
  w.add_f64_scalar(prefix + "bias", combiner_.bias());
}

tensor weighted_joint_validator::make_noise_outliers(
    const std::vector<std::int64_t>& shape, std::uint64_t seed) {
  rng gen{seed};
  return tensor::uniform(shape, gen, 0.0f, 1.0f);
}

}  // namespace dv
