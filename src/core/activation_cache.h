// Strong-hash frame cache in front of extract_activations
// (docs/CACHING.md). Real camera feeds are temporally redundant: a
// parked car, a static scene, a duplicated keyframe all resubmit the
// same tensor bytes. The cache keys each frame by the 128-bit strong
// hash of its raw bytes and stores the full per-frame forward-pass
// product (logits, prediction, every probe activation), so a repeated
// frame skips the model entirely.
//
// Transparency: the model's forward pass is batch-invariant (each row's
// result is independent of which other rows share the batch — DESIGN.md
// §8), so scoring a sub-batch of cache misses and splicing cached rows
// back in is bitwise identical to scoring the full batch. Enforced by
// tests/test_cache.cpp across DV_THREADS × DV_SIMD × cache on/off.
#pragma once

#include <cstdint>
#include <vector>

#include "core/activation_batch.h"
#include "util/strong_lru.h"

namespace dv {

/// The per-frame slice of an activation_batch, as stored in the cache.
struct cached_frame_activations {
  std::vector<float> logits;
  std::int64_t prediction{0};
  /// One [1, ...] tensor per probe layer, network order.
  std::vector<tensor> probes;
};

/// Fixed-capacity LRU over cached_frame_activations, labeled
/// "activation" in the dv_cache_* metric series. Owned by one scorer
/// and mutated only from its (serialized) scoring path.
class activation_cache {
 public:
  /// Capacity defaults to the process-wide DV_CACHE_CAPACITY knob.
  activation_cache();
  explicit activation_cache(std::size_t capacity);

  strong_lru_cache<cached_frame_activations>& lru() { return lru_; }
  const strong_lru_cache<cached_frame_activations>& lru() const {
    return lru_;
  }

 private:
  strong_lru_cache<cached_frame_activations> lru_;
};

/// extract_activations with a frame cache: hashes every row of `images`,
/// runs the forward pass only over the rows the cache does not hold, and
/// splices cached rows into the result. With `cache == nullptr` or
/// caching disabled it is exactly extract_activations.
activation_batch extract_activations_cached(sequential& model, tensor images,
                                            activation_cache* cache);

}  // namespace dv
