// The single batching knob shared by every component that chunks images
// through the model: deep_validator::fit / ::evaluate, the statistical
// detectors, and the serving layer's micro-batcher. One struct instead of
// per-component `eval_batch` ints, so the batch size cannot silently
// diverge between fitting, evaluation, and serving. Batch size never
// affects scores: every kernel in the forward path is per-row independent
// (DESIGN.md §8), so chunking is purely a memory/throughput trade-off.
#pragma once

namespace dv {

struct batch_config {
  /// Maximum images per forward pass (and per coalesced serving batch).
  int max_batch{128};
};

}  // namespace dv
