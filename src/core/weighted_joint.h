// Weighted joint validator — the paper's stated extension (§III-B2: "we can
// further explore it since better combination can lead to more precise
// estimation", §IV-D3: "can be improved via carefully assigning different
// weights to different single validators").
//
// Learns per-layer weights for the discrepancy combination with a logistic
// regression. To stay scenario-agnostic (the paper's core design rule), the
// positive class defaults to uniform-noise outlier images, which require no
// knowledge of any corner-case scenario.
//
// Scoring delegates to core/validator_bank.h's weighted_joint_view (the
// read-only half, also constructible zero-copy from a snapshot), so fitted
// and snapshot-backed weighted scores share one code path.
#pragma once

#include "core/deep_validator.h"
#include "nn/logistic.h"

namespace dv {

class weighted_joint_validator {
 public:
  /// Fits weights from the per-layer discrepancies of `clean` (negatives)
  /// and `outliers` (positives) under the fitted `base` validator.
  void fit(sequential& model, const deep_validator& base, const tensor& clean,
           const tensor& outliers);

  /// Weighted joint discrepancy scores for a batch.
  std::vector<double> score_batch(sequential& model,
                                  const deep_validator& base,
                                  const tensor& images) const;

  /// Batch-first variant over pre-extracted activations (no forward
  /// pass); bitwise identical to score_batch(model, base, images) for
  /// the same rows.
  std::vector<double> score_batch(const deep_validator& base,
                                  const activation_batch& acts) const;

  /// Read-only view over the learned weights; valid while this object is
  /// alive and unmodified. Requires a fitted combiner.
  weighted_joint_view view() const;

  bool fitted() const { return combiner_.fitted(); }
  /// Learned per-layer weights (one per validated layer).
  const std::vector<double>& weights() const { return combiner_.weights(); }
  double bias() const { return combiner_.bias(); }

  /// Writes the learned weights as snapshot sections named `prefix` +
  /// {weights, bias} (docs/SNAPSHOTS.md); read back zero-copy by
  /// weighted_joint_view::from_snapshot.
  void save_snapshot(snapshot_writer& w, const std::string& prefix) const;

  /// Generates scenario-agnostic outliers: uniform-noise images of the
  /// given shape.
  static tensor make_noise_outliers(const std::vector<std::int64_t>& shape,
                                    std::uint64_t seed);

 private:
  logistic_regression combiner_;
};

}  // namespace dv
