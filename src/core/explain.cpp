#include "core/explain.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dv {

int validation_report::dominant_layer() const {
  if (layers.empty()) return -1;
  const auto it = std::max_element(
      layers.begin(), layers.end(),
      [](const layer_contribution& a, const layer_contribution& b) {
        return a.discrepancy < b.discrepancy;
      });
  return it->probe_index;
}

validation_report explain_validation(sequential& model,
                                     const deep_validator& validator,
                                     const tensor& image) {
  if (!validator.fitted()) {
    throw std::logic_error{"explain_validation: validator not fitted"};
  }
  tensor batch = image;
  if (batch.dim() == 3) {
    batch.reshape({1, image.extent(0), image.extent(1), image.extent(2)});
  }
  const auto scores = validator.evaluate(model, batch);

  validation_report report;
  report.prediction = scores.predictions.front();
  report.joint_discrepancy = scores.joint.front();
  report.flagged = validator.flags_invalid(report.joint_discrepancy);

  double abs_sum = 0.0;
  for (int v = 0; v < validator.validated_layers(); ++v) {
    abs_sum += std::abs(scores.per_layer[static_cast<std::size_t>(v)].front());
  }
  for (int v = 0; v < validator.validated_layers(); ++v) {
    const double d = scores.per_layer[static_cast<std::size_t>(v)].front();
    report.layers.push_back(
        {validator.probe_index(v), d,
         abs_sum > 0.0 ? std::abs(d) / abs_sum : 0.0});
  }
  return report;
}

std::string format_report(const validation_report& report) {
  std::ostringstream out;
  out << "prediction " << report.prediction << " | joint discrepancy "
      << report.joint_discrepancy << " | "
      << (report.flagged ? "INVALID" : "valid") << "\n";
  for (const auto& layer : report.layers) {
    const int bars = static_cast<int>(layer.share * 40.0 + 0.5);
    out << "  layer " << (layer.probe_index + 1) << "  "
        << (layer.discrepancy >= 0 ? "+" : "") << layer.discrepancy << "  ";
    for (int b = 0; b < bars; ++b) out << '#';
    out << "\n";
  }
  if (!report.layers.empty()) {
    out << "  dominant layer: " << (report.dominant_layer() + 1) << "\n";
  }
  return out.str();
}

}  // namespace dv
