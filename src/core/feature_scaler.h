// Per-dimension standardization of probe features.
//
// Fitted on the training features of one layer; applied to every test
// feature before the SVM kernel so that the RBF width heuristic is
// well-conditioned across layers with very different activation scales.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace dv {

class binary_reader;
class binary_writer;

class feature_scaler {
 public:
  /// Computes mean and standard deviation per column of [n, d].
  void fit(const tensor& features);

  /// Standardizes a matrix in place.
  void transform(tensor& features) const;

  /// Standardizes one row vector in place.
  void transform_row(std::span<float> row) const;

  bool fitted() const { return !mean_.empty(); }
  std::int64_t dimension() const {
    return static_cast<std::int64_t>(mean_.size());
  }

  void save(binary_writer& w) const;
  static feature_scaler load(binary_reader& r);

 private:
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

}  // namespace dv
