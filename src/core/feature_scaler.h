// Per-dimension standardization of probe features.
//
// Fitted on the training features of one layer; applied to every test
// feature before the SVM kernel so that the RBF width heuristic is
// well-conditioned across layers with very different activation scales.
//
// Split into builder and view (DESIGN.md §16): `feature_scaler` owns the
// fitted statistics; `scaler_view` borrows them — from the builder or from
// a mapped snapshot (util/flat_snapshot.h) — and carries the single
// transform implementation both paths share.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace dv {

class binary_reader;
class binary_writer;
class snapshot_view;
class snapshot_writer;

/// Read-only standardization over borrowed mean / inverse-std rows; valid
/// while the owner (a feature_scaler or an open snapshot_view) is alive.
class scaler_view {
 public:
  scaler_view() = default;
  /// Borrows `mean` and `inv_std` (equal length d).
  scaler_view(std::span<const float> mean, std::span<const float> inv_std);

  /// Reads the sections written by feature_scaler::save_snapshot under
  /// `prefix`; spans stay inside the snapshot (zero copy).
  static scaler_view from_snapshot(const snapshot_view& snap,
                                   const std::string& prefix);

  /// Standardizes a matrix in place.
  void transform(tensor& features) const;
  /// Standardizes one row vector in place.
  void transform_row(std::span<float> row) const;

  bool valid() const { return !mean_.empty(); }
  std::int64_t dimension() const {
    return static_cast<std::int64_t>(mean_.size());
  }
  std::span<const float> mean() const { return mean_; }
  std::span<const float> inv_std() const { return inv_std_; }

 private:
  std::span<const float> mean_;
  std::span<const float> inv_std_;
};

class feature_scaler {
 public:
  /// Computes mean and standard deviation per column of [n, d].
  void fit(const tensor& features);

  /// Standardizes a matrix in place.
  void transform(tensor& features) const;

  /// Standardizes one row vector in place.
  void transform_row(std::span<float> row) const;

  /// Read-only view over the owned statistics; valid while this object is
  /// alive and unmodified.
  scaler_view view() const { return scaler_view{mean_, inv_std_}; }

  bool fitted() const { return !mean_.empty(); }
  std::int64_t dimension() const {
    return static_cast<std::int64_t>(mean_.size());
  }

  void save(binary_writer& w) const;
  static feature_scaler load(binary_reader& r);

  /// Writes the fitted statistics as snapshot sections named `prefix` +
  /// {mean, istd} (docs/SNAPSHOTS.md).
  void save_snapshot(snapshot_writer& w, const std::string& prefix) const;
  /// Materializes an owned scaler from snapshot sections.
  static feature_scaler load_snapshot(const snapshot_view& snap,
                                      const std::string& prefix);

 private:
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

}  // namespace dv
