// Runtime fail-safe monitor built on Deep Validation.
//
// The paper's deployment story (§I, §VI): a running DNN-based system
// validates every input and "actively calls for human intervention when the
// system is perceived working incorrectly". This component wraps a fitted
// deep_validator with an alarm policy suitable for streams:
//  - per-frame verdicts from the joint-discrepancy threshold epsilon,
//  - a sliding window of recent verdicts,
//  - hysteresis: the alarm latches after `trigger_count` invalid frames in
//    the window and releases only after `release_count` consecutive valid
//    frames, avoiding alarm flapping on borderline inputs.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/deep_validator.h"

namespace dv {

struct monitor_config {
  /// Sliding-window length in frames.
  int window{8};
  /// Invalid frames within the window that latch the alarm.
  int trigger_count{3};
  /// Consecutive valid frames that release a latched alarm.
  int release_count{4};
};

/// Per-frame monitoring outcome.
struct monitor_verdict {
  double discrepancy{0.0};
  std::int64_t prediction{-1};
  bool frame_invalid{false};
  bool alarm{false};  // latched state after this frame
};

/// One scored frame as produced by the batch path: the joint discrepancy
/// and the model prediction. The monitor's hysteresis state machine is
/// fed these — it never runs the model itself on this path.
struct frame_score {
  double discrepancy{0.0};
  std::int64_t prediction{-1};
};

class runtime_monitor {
 public:
  /// `model` and `validator` must outlive the monitor; the validator's
  /// threshold must already be set.
  runtime_monitor(sequential& model, const deep_validator& validator,
                  monitor_config config = {});

  /// Pure state-machine step: folds one scored frame into the sliding
  /// window, updates the hysteresis latch, and returns the verdict. Not
  /// thread-safe — callers (the serving worker, observe) apply scores in
  /// stream order.
  monitor_verdict apply(const frame_score& score);

  /// Feeds one [C,H,W] frame; returns the verdict and updates alarm state.
  /// Thin wrapper: one-frame evaluate + apply().
  monitor_verdict observe(const tensor& frame);

  /// Feeds a [N,C,H,W] batch of consecutive stream frames with shared
  /// activation extraction; verdicts are applied in row order and are
  /// bitwise identical to calling observe() per frame.
  std::vector<monitor_verdict> observe_batch(const tensor& frames);

  /// The validator whose threshold defines per-frame validity.
  const deep_validator& validator() const { return validator_; }

  bool alarmed() const { return alarmed_; }
  /// Fraction of invalid frames in the current window.
  double window_invalid_fraction() const;
  /// Frames observed so far.
  std::int64_t frames_seen() const { return frames_seen_; }
  /// Resets window, alarm latch, and counters.
  void reset();

 private:
  sequential& model_;
  const deep_validator& validator_;
  monitor_config config_;
  std::deque<bool> window_;
  bool alarmed_{false};
  int consecutive_valid_{0};
  std::int64_t frames_seen_{0};
};

}  // namespace dv
