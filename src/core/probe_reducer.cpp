#include "core/probe_reducer.h"

#include <algorithm>
#include <stdexcept>

#include "tensor/ops.h"

namespace dv {

tensor reduce_probe(const tensor& probe, int spatial) {
  if (spatial < 1) throw std::invalid_argument{"reduce_probe: spatial >= 1"};
  if (probe.dim() == 2) return probe;
  if (probe.dim() != 4) {
    throw std::invalid_argument{"reduce_probe: expected 2-D or 4-D probe"};
  }
  const std::int64_t n = probe.extent(0), c = probe.extent(1),
                     h = probe.extent(2), w = probe.extent(3);
  const std::int64_t s =
      std::min<std::int64_t>(spatial, std::min(h, w));
  tensor out{{n, c * s * s}};
  for (std::int64_t i = 0; i < n; ++i) {
    float* dst = out.data() + i * c * s * s;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = probe.data() + (i * c + ch) * h * w;
      for (std::int64_t by = 0; by < s; ++by) {
        const std::int64_t y0 = by * h / s;
        const std::int64_t y1 = (by + 1) * h / s;
        for (std::int64_t bx = 0; bx < s; ++bx) {
          const std::int64_t x0 = bx * w / s;
          const std::int64_t x1 = (bx + 1) * w / s;
          // Row sums batch through the SIMD kernel; the y fold stays
          // sequential, so the block mean is deterministic per level.
          double acc = 0.0;
          for (std::int64_t y = y0; y < y1; ++y) {
            acc += array_sum(plane + y * w + x0, x1 - x0);
          }
          const auto count = static_cast<double>((y1 - y0) * (x1 - x0));
          dst[(ch * s + by) * s + bx] =
              static_cast<float>(count > 0 ? acc / count : 0.0);
        }
      }
    }
  }
  return out;
}

std::int64_t reduced_dimension(const std::vector<std::int64_t>& probe_shape,
                               int spatial) {
  if (probe_shape.size() == 2) return probe_shape[1];
  if (probe_shape.size() != 4) {
    throw std::invalid_argument{"reduced_dimension: bad probe shape"};
  }
  const std::int64_t s = std::min<std::int64_t>(
      spatial, std::min(probe_shape[2], probe_shape[3]));
  return probe_shape[1] * s * s;
}

}  // namespace dv
