#include "core/activation_batch.h"

#include <stdexcept>

#include "core/probe_reducer.h"
#include "tensor/ops.h"

namespace dv {

tensor activation_batch::probe_features(int p, int spatial) const {
  return reduce_probe(probes[static_cast<std::size_t>(p)], spatial);
}

tensor activation_batch::last_probe_features() const {
  if (probes.empty()) {
    throw std::logic_error{"activation_batch: model has no probes"};
  }
  tensor feat = probes.back();
  return feat.reshape({feat.extent(0), feat.numel() / feat.extent(0)});
}

activation_batch extract_activations(sequential& model, tensor images) {
  if (images.dim() == 3) {
    images.reshape(
        {1, images.extent(0), images.extent(1), images.extent(2)});
  }
  if (images.dim() != 4) {
    throw std::invalid_argument{
        "extract_activations: expected [N,C,H,W] images"};
  }
  activation_batch out;
  out.logits = model.forward(images, false);
  out.predictions = argmax_rows(out.logits);
  const auto probes = model.probes();
  out.probes.reserve(probes.size());
  for (const tensor* p : probes) out.probes.push_back(*p);
  out.images = std::move(images);
  return out;
}

}  // namespace dv
