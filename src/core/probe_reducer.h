// Probe reduction: hidden representation -> fixed-size feature vector.
//
// The paper feeds raw hidden representations to the one-class SVMs. Raw
// convolutional feature maps are infeasibly high-dimensional for kernel
// methods on a single CPU core, so convolutional probes are reduced by
// adaptive spatial average pooling to an s x s grid per channel (s = 1 is
// global average pooling). Fully connected probes pass through unchanged.
// This substitution is recorded in DESIGN.md §3 and ablated in
// bench_perf_validation.
#pragma once

#include "tensor/tensor.h"

namespace dv {

/// Reduces a batched probe output to a 2-D feature matrix [N, d].
/// 4-D probes [N, C, H, W] are adaptively average-pooled to [N, C*s*s];
/// 2-D probes pass through. `spatial` must be >= 1.
tensor reduce_probe(const tensor& probe, int spatial);

/// The feature dimension reduce_probe would produce for a probe shape.
std::int64_t reduced_dimension(const std::vector<std::int64_t>& probe_shape,
                               int spatial);

}  // namespace dv
