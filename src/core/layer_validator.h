// Single validator: the set of per-class one-class SVMs of one probe layer
// (paper §III-B2, Algorithm 1 inner loop, and the "Single Validator" rows of
// Table VI).
//
// Split into builder and view (DESIGN.md §16): `layer_validator` owns the
// fitted scaler and SVMs; `layer_validator_view` borrows their storage —
// from the builder or from a mapped snapshot — and carries the single
// discrepancy implementation both paths share.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/feature_scaler.h"
#include "svm/one_class_svm.h"

namespace dv {

/// Read-only discrepancy scoring over one probe layer: a scaler view plus
/// one SVM view per class. Valid while the owner (a layer_validator or an
/// open snapshot_view) is alive.
class layer_validator_view {
 public:
  layer_validator_view() = default;
  layer_validator_view(scaler_view scaler,
                       std::vector<one_class_svm_view> svms);

  /// Reads the sections written by layer_validator::save_snapshot under
  /// `prefix`; SVM matrices stay inside the snapshot (zero copy).
  static layer_validator_view from_snapshot(const snapshot_view& snap,
                                            const std::string& prefix);

  /// Discrepancy d_i = -t_{y'}(feature) (Equation 2). `feature` is the raw
  /// (reduced, unscaled) probe vector; scaling happens internally.
  double discrepancy(std::int64_t predicted_class,
                     std::span<const float> feature) const;

  /// Discrepancies for all rows of `features` [n, d] with per-row
  /// predicted classes — bit-identical to calling discrepancy() per row.
  /// Rows are grouped by predicted class and scored through
  /// one_class_svm_view::decision_batch; see that method for the
  /// parallelism and caching contract.
  std::vector<double> discrepancy_batch(
      const std::vector<std::int64_t>& predicted_classes,
      const tensor& features) const;

  bool valid() const { return !svms_.empty(); }
  int num_classes() const { return static_cast<int>(svms_.size()); }
  std::int64_t dimension() const { return scaler_.dimension(); }
  const scaler_view& scaler() const { return scaler_; }
  const std::vector<one_class_svm_view>& svms() const { return svms_; }

 private:
  scaler_view scaler_;
  std::vector<one_class_svm_view> svms_;
};

class layer_validator {
 public:
  /// Fits one SVM per class on the rows of `features` [n, d] whose label in
  /// `labels` equals that class. Every class must have at least 2 samples.
  void fit(const tensor& features, const std::vector<std::int64_t>& labels,
           int num_classes, const one_class_svm_config& config);

  /// Discrepancy d_i = -t_{y'}(feature) (Equation 2). `feature` is the raw
  /// (reduced, unscaled) probe vector; scaling happens internally.
  /// Thread-safe: concurrent calls on one fitted validator are allowed.
  double discrepancy(std::int64_t predicted_class,
                     std::span<const float> feature) const;

  /// Discrepancies for all rows of `features` [n, d] with per-row
  /// predicted classes — bit-identical to calling discrepancy() per row.
  /// Rows are grouped by predicted class and scored through
  /// one_class_svm::decision_batch, which parallelizes internally and
  /// serves repeated rows from the decision cache when caching is on
  /// (docs/CACHING.md). Like decision_batch, concurrent calls on the
  /// SAME instance are forbidden while caching is enabled.
  std::vector<double> discrepancy_batch(
      const std::vector<std::int64_t>& predicted_classes,
      const tensor& features) const;

  /// Read-only view over the owned storage, with each SVM view bound to
  /// that SVM's decision cache. Valid while this object is alive and
  /// unmodified; requires a fitted validator.
  layer_validator_view view() const;

  bool fitted() const { return !svms_.empty(); }
  int num_classes() const { return static_cast<int>(svms_.size()); }
  std::int64_t dimension() const { return scaler_.dimension(); }

  void save(binary_writer& w) const;
  static layer_validator load(binary_reader& r);

  /// Writes the fitted state as snapshot sections under `prefix`:
  /// scaler/{mean,istd}, meta_i, and c<k>/... per class
  /// (docs/SNAPSHOTS.md).
  void save_snapshot(snapshot_writer& w, const std::string& prefix) const;
  /// Materializes an owned (refit-able) validator from snapshot sections.
  static layer_validator load_snapshot(const snapshot_view& snap,
                                       const std::string& prefix);

 private:
  feature_scaler scaler_;
  std::vector<one_class_svm> svms_;
};

}  // namespace dv
