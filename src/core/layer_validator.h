// Single validator: the set of per-class one-class SVMs of one probe layer
// (paper §III-B2, Algorithm 1 inner loop, and the "Single Validator" rows of
// Table VI).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/feature_scaler.h"
#include "svm/one_class_svm.h"

namespace dv {

class layer_validator {
 public:
  /// Fits one SVM per class on the rows of `features` [n, d] whose label in
  /// `labels` equals that class. Every class must have at least 2 samples.
  void fit(const tensor& features, const std::vector<std::int64_t>& labels,
           int num_classes, const one_class_svm_config& config);

  /// Discrepancy d_i = -t_{y'}(feature) (Equation 2). `feature` is the raw
  /// (reduced, unscaled) probe vector; scaling happens internally.
  /// Thread-safe: concurrent calls on one fitted validator are allowed.
  double discrepancy(std::int64_t predicted_class,
                     std::span<const float> feature) const;

  /// Discrepancies for all rows of `features` [n, d] with per-row
  /// predicted classes — bit-identical to calling discrepancy() per row.
  /// Rows are grouped by predicted class and scored through
  /// one_class_svm::decision_batch, which parallelizes internally and
  /// serves repeated rows from the decision cache when caching is on
  /// (docs/CACHING.md). Like decision_batch, concurrent calls on the
  /// SAME instance are forbidden while caching is enabled.
  std::vector<double> discrepancy_batch(
      const std::vector<std::int64_t>& predicted_classes,
      const tensor& features) const;

  bool fitted() const { return !svms_.empty(); }
  int num_classes() const { return static_cast<int>(svms_.size()); }
  std::int64_t dimension() const { return scaler_.dimension(); }

  void save(binary_writer& w) const;
  static layer_validator load(binary_reader& r);

 private:
  feature_scaler scaler_;
  std::vector<one_class_svm> svms_;
};

}  // namespace dv
