// Deep Validation: the paper's primary contribution (Figure 1, Algorithms 1
// and 2).
//
// A deep_validator attaches probes to every hidden layer of a trained CNN,
// models the per-(layer, class) reference distributions of training hidden
// representations with one-class SVMs, and at inference time scores a test
// image by its joint discrepancy d = sum_i d_i across validated layers.
// Inputs whose joint discrepancy exceeds a threshold epsilon are flagged as
// error-inducing corner cases.
//
// deep_validator is the mutable BUILDER (fit/refit/threshold); scoring is
// implemented once in core/validator_bank.h's validator_bank_view, which
// this class delegates to via bank(). save_snapshot()/load_snapshot()
// round-trip through the flat snapshot format (docs/SNAPSHOTS.md); the
// legacy binary_writer save()/load() remain for old artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/activation_batch.h"
#include "core/batch_config.h"
#include "core/layer_validator.h"
#include "core/validator_bank.h"
#include "data/dataset.h"
#include "nn/model.h"

namespace dv {

class weighted_joint_validator;

struct deep_validator_config {
  one_class_svm_config svm;
  /// Spatial resolution of the convolutional probe reducer (1 = GAP).
  int spatial{1};
  /// If > 0, validate only the last `last_probes` probe layers (the paper's
  /// DenseNet configuration validates the last six).
  int last_probes{0};
  /// Per-class cap on SVM training samples (subsampled deterministically).
  std::int64_t max_train_per_class{500};
  std::uint64_t seed{7};
  /// Shared batching knob for fit and evaluate (core/batch_config.h).
  batch_config batch{};
};

class deep_validator {
 public:
  deep_validator() = default;

  /// Algorithm 1: removes misclassified training images, extracts hidden
  /// representations per validated layer, and fits per-class one-class SVMs.
  void fit(sequential& model, const dataset& train,
           const deep_validator_config& config);

  /// Per-image evaluation outputs (see core/validator_bank.h).
  using scores = validation_scores;

  /// Algorithm 2 over a batch of images: chunks by the configured batch
  /// size, extracting activations once per chunk.
  scores evaluate(sequential& model, const tensor& images) const;

  /// Algorithm 2 over pre-extracted activations — the batch-first entry
  /// point shared with the detectors and the serving layer. No forward
  /// pass; scores are bitwise identical to evaluate(model, images) for
  /// the same rows (per-row kernels, DESIGN.md §8).
  scores evaluate(const activation_batch& acts) const;

  /// Joint discrepancy of a single [C,H,W] image.
  double joint_discrepancy(sequential& model, const tensor& image) const;

  /// Read-only bank view over the owned storage — the scoring surface
  /// this class delegates to. Valid while this object is alive and
  /// unmodified; requires a fitted validator.
  validator_bank_view bank() const;

  /// Batching configuration captured at fit time.
  const batch_config& batching() const { return batch_; }

  /// Number of validated layers.
  int validated_layers() const {
    return static_cast<int>(validators_.size());
  }
  /// Global probe index (0-based, network order) of validated layer `i`.
  int probe_index(int i) const {
    return probe_indices_[static_cast<std::size_t>(i)];
  }

  /// Decision threshold epsilon; images with joint discrepancy > epsilon are
  /// flagged invalid.
  void set_threshold(double epsilon) { threshold_ = epsilon; }
  double threshold() const { return threshold_; }
  bool flags_invalid(double joint_d) const { return joint_d > threshold_; }

  bool fitted() const { return !validators_.empty(); }

  void save(const std::string& path) const;
  static deep_validator load(const std::string& path);

  /// Writes the fitted bank as a flat snapshot (docs/SNAPSHOTS.md).
  /// `weighted`, when non-null and fitted, embeds the weighted-joint
  /// combiner so snapshot-backed banks can serve weighted scores.
  void save_snapshot(const std::string& path,
                     const weighted_joint_validator* weighted = nullptr) const;
  /// Materializes an owned (refit-able) validator from a snapshot file.
  /// For zero-copy serving use validator_bank_view::from_snapshot.
  static deep_validator load_snapshot(const std::string& path);

 private:
  std::vector<layer_validator> validators_;
  std::vector<int> probe_indices_;
  int spatial_{1};
  batch_config batch_{};
  double threshold_{0.0};
};

}  // namespace dv
