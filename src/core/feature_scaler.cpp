#include "core/feature_scaler.h"

#include <cmath>
#include <stdexcept>

#include "util/flat_snapshot.h"
#include "util/serialize.h"

namespace dv {

void feature_scaler::fit(const tensor& features) {
  if (features.dim() != 2 || features.extent(0) < 1) {
    throw std::invalid_argument{"feature_scaler::fit: need [n>=1, d]"};
  }
  const std::int64_t n = features.extent(0);
  const std::int64_t d = features.extent(1);
  mean_.assign(static_cast<std::size_t>(d), 0.0f);
  inv_std_.assign(static_cast<std::size_t>(d), 1.0f);
  std::vector<double> sum(static_cast<std::size_t>(d), 0.0);
  std::vector<double> sum2(static_cast<std::size_t>(d), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = features.data() + i * d;
    for (std::int64_t j = 0; j < d; ++j) {
      sum[static_cast<std::size_t>(j)] += row[j];
      sum2[static_cast<std::size_t>(j)] += static_cast<double>(row[j]) * row[j];
    }
  }
  for (std::int64_t j = 0; j < d; ++j) {
    const double m = sum[static_cast<std::size_t>(j)] / static_cast<double>(n);
    const double var =
        sum2[static_cast<std::size_t>(j)] / static_cast<double>(n) - m * m;
    mean_[static_cast<std::size_t>(j)] = static_cast<float>(m);
    inv_std_[static_cast<std::size_t>(j)] =
        var > 1e-10 ? static_cast<float>(1.0 / std::sqrt(var)) : 1.0f;
  }
}

void feature_scaler::transform(tensor& features) const {
  if (!fitted()) throw std::logic_error{"feature_scaler: not fitted"};
  view().transform(features);
}

void feature_scaler::transform_row(std::span<float> row) const {
  if (!fitted()) throw std::logic_error{"feature_scaler: not fitted"};
  view().transform_row(row);
}

// ---------------------------------------------------------------------------
// scaler_view — the single transform implementation (the builder delegates
// through view(), so owned and snapshot-backed scaling are one code path).

scaler_view::scaler_view(std::span<const float> mean,
                         std::span<const float> inv_std)
    : mean_{mean}, inv_std_{inv_std} {
  if (mean_.size() != inv_std_.size()) {
    throw std::invalid_argument{"scaler_view: mean/inv_std length mismatch"};
  }
}

void scaler_view::transform(tensor& features) const {
  if (!valid()) throw std::logic_error{"feature_scaler: not fitted"};
  const std::int64_t n = features.extent(0);
  const std::int64_t d = features.extent(1);
  if (d != dimension()) {
    throw std::invalid_argument{"feature_scaler::transform: dim mismatch"};
  }
  for (std::int64_t i = 0; i < n; ++i) {
    transform_row({features.data() + i * d, static_cast<std::size_t>(d)});
  }
}

void scaler_view::transform_row(std::span<float> row) const {
  if (static_cast<std::int64_t>(row.size()) != dimension()) {
    throw std::invalid_argument{"feature_scaler::transform_row: dim mismatch"};
  }
  for (std::size_t j = 0; j < row.size(); ++j) {
    row[j] = (row[j] - mean_[j]) * inv_std_[j];
  }
}

// ---------------------------------------------------------------------------
// Serialization: legacy binary stream + flat snapshot sections.

void feature_scaler::save(binary_writer& w) const {
  w.write_f32_vector(mean_);
  w.write_f32_vector(inv_std_);
}

feature_scaler feature_scaler::load(binary_reader& r) {
  feature_scaler out;
  out.mean_ = r.read_f32_vector();
  out.inv_std_ = r.read_f32_vector();
  if (out.mean_.size() != out.inv_std_.size()) {
    throw serialize_error{"feature_scaler::load: inconsistent artifact"};
  }
  return out;
}

void feature_scaler::save_snapshot(snapshot_writer& w,
                                   const std::string& prefix) const {
  if (!fitted()) {
    throw std::logic_error{"feature_scaler::save_snapshot: not fitted"};
  }
  w.add_f32(prefix + "mean", mean_);
  w.add_f32(prefix + "istd", inv_std_);
}

scaler_view scaler_view::from_snapshot(const snapshot_view& snap,
                                       const std::string& prefix) {
  const auto mean = snap.f32(prefix + "mean");
  const auto istd = snap.f32(prefix + "istd");
  if (mean.empty() || mean.size() != istd.size()) {
    throw serialize_error{"snapshot scaler '" + prefix +
                          "': inconsistent shape"};
  }
  return scaler_view{mean, istd};
}

feature_scaler feature_scaler::load_snapshot(const snapshot_view& snap,
                                             const std::string& prefix) {
  const scaler_view v = scaler_view::from_snapshot(snap, prefix);
  feature_scaler out;
  out.mean_.assign(v.mean().begin(), v.mean().end());
  out.inv_std_.assign(v.inv_std().begin(), v.inv_std().end());
  return out;
}

}  // namespace dv
