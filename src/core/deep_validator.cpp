#include "core/deep_validator.h"

#include <algorithm>
#include <stdexcept>

#include "core/weighted_joint.h"
#include "util/flat_snapshot.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace dv {

namespace {
constexpr const char* k_dv_magic = "dv-validator-v1";

/// Appends the rows of `block` to `dst` (allocating on first use).
void append_rows(tensor& dst, const tensor& block, std::int64_t total_rows,
                 std::int64_t& cursor) {
  const std::int64_t d = block.extent(1);
  if (dst.empty()) {
    dst = tensor{{total_rows, d}};
  }
  std::copy_n(block.data(), block.numel(), dst.data() + cursor * d);
  cursor += block.extent(0);
}
}  // namespace

void deep_validator::fit(sequential& model, const dataset& train,
                         const deep_validator_config& config) {
  stopwatch timer;
  trace_span fit_span{"validator.fit"};
  spatial_ = config.spatial;
  batch_ = config.batch;

  // Algorithm 1, line 2: keep only correctly classified training images.
  std::vector<std::int64_t> kept;
  {
    constexpr std::int64_t batch = 128;
    for (std::int64_t begin = 0; begin < train.size(); begin += batch) {
      const std::int64_t end = std::min(train.size(), begin + batch);
      const auto preds = model.predict(train.images.slice_rows(begin, end));
      for (std::int64_t i = begin; i < end; ++i) {
        if (preds[static_cast<std::size_t>(i - begin)] ==
            train.labels[static_cast<std::size_t>(i)]) {
          kept.push_back(i);
        }
      }
    }
  }
  log_info() << "deep_validator::fit: " << kept.size() << "/" << train.size()
             << " training images correctly classified";

  // Per-class subsampling to the configured cap (keeps SVM training cheap
  // and classes balanced).
  {
    rng gen{config.seed};
    std::vector<std::vector<std::int64_t>> per_class(
        static_cast<std::size_t>(train.num_classes));
    for (const auto i : kept) {
      per_class[static_cast<std::size_t>(
                    train.labels[static_cast<std::size_t>(i)])]
          .push_back(i);
    }
    kept.clear();
    for (auto& rows : per_class) {
      gen.shuffle_indices(rows.size(), [&](std::size_t a, std::size_t b) {
        std::swap(rows[a], rows[b]);
      });
      const auto cap = static_cast<std::size_t>(config.max_train_per_class);
      if (config.max_train_per_class > 0 && rows.size() > cap) {
        rows.resize(cap);
      }
      kept.insert(kept.end(), rows.begin(), rows.end());
    }
    std::sort(kept.begin(), kept.end());
  }

  const dataset fit_set = train.subset(kept);
  const auto n = fit_set.size();

  // Decide which probes to validate.
  const int total_probes = model.probe_count();
  if (total_probes == 0) {
    throw std::invalid_argument{"deep_validator::fit: model has no probes"};
  }
  const int first_probe =
      config.last_probes > 0 && config.last_probes < total_probes
          ? total_probes - config.last_probes
          : 0;
  probe_indices_.clear();
  for (int p = first_probe; p < total_probes; ++p) probe_indices_.push_back(p);

  // Extract reduced features for every validated probe, in batches.
  std::vector<tensor> features(probe_indices_.size());
  std::vector<std::int64_t> cursors(probe_indices_.size(), 0);
  for (std::int64_t begin = 0; begin < n; begin += batch_.max_batch) {
    const std::int64_t end = std::min<std::int64_t>(n, begin + batch_.max_batch);
    const activation_batch acts =
        extract_activations(model, fit_set.images.slice_rows(begin, end));
    if (acts.probe_count() != total_probes) {
      throw std::logic_error{"deep_validator::fit: probe count changed"};
    }
    for (std::size_t v = 0; v < probe_indices_.size(); ++v) {
      const tensor reduced =
          acts.probe_features(probe_indices_[v], spatial_);
      append_rows(features[v], reduced, n, cursors[v]);
    }
  }

  // Algorithm 1 main loop: one SVM per (layer, class).
  validators_.clear();
  validators_.resize(probe_indices_.size());
  metrics::histogram* layer_fit_seconds = metrics::get_histogram(
      "dv_validator_layer_fit_seconds", metrics::histogram_options::latency());
  for (std::size_t v = 0; v < validators_.size(); ++v) {
    trace_span layer_span{"validator.fit_layer"};
    const std::int64_t layer_start_ns = metrics::now_ns();
    validators_[v].fit(features[v], fit_set.labels, fit_set.num_classes,
                       config.svm);
    if (layer_fit_seconds != nullptr) {
      layer_fit_seconds->observe(
          static_cast<double>(metrics::now_ns() - layer_start_ns) * 1e-9);
      metrics::count("dv_validator_layers_fitted_total");
    }
    log_info() << "deep_validator::fit: layer " << probe_indices_[v]
               << " (dim " << features[v].extent(1) << ") fitted "
               << fit_set.num_classes << " SVMs";
  }
  log_info() << "deep_validator::fit: done in " << timer.seconds() << "s";
}

validator_bank_view deep_validator::bank() const {
  if (!fitted()) throw std::logic_error{"deep_validator: not fitted"};
  std::vector<layer_validator_view> layers;
  layers.reserve(validators_.size());
  for (const auto& v : validators_) layers.push_back(v.view());
  return validator_bank_view{std::move(layers), probe_indices_, spatial_,
                             batch_, threshold_};
}

deep_validator::scores deep_validator::evaluate(sequential& model,
                                                const tensor& images) const {
  if (!fitted()) throw std::logic_error{"deep_validator: not fitted"};
  return bank().evaluate(model, images);
}

deep_validator::scores deep_validator::evaluate(
    const activation_batch& acts) const {
  if (!fitted()) throw std::logic_error{"deep_validator: not fitted"};
  return bank().evaluate(acts);
}

double deep_validator::joint_discrepancy(sequential& model,
                                         const tensor& image) const {
  tensor batch = image;
  if (batch.dim() == 3) {
    batch.reshape({1, image.extent(0), image.extent(1), image.extent(2)});
  }
  if (batch.dim() != 4 || batch.extent(0) != 1) {
    throw std::invalid_argument{"joint_discrepancy: expected one image"};
  }
  return evaluate(model, batch).joint.front();
}

void deep_validator::save(const std::string& path) const {
  if (!fitted()) throw std::logic_error{"deep_validator::save: not fitted"};
  binary_writer w{path, k_dv_magic};
  w.write_i32(spatial_);
  w.write_i32(batch_.max_batch);
  w.write_f64(threshold_);
  w.write_i32_vector(probe_indices_);
  w.write_u64(validators_.size());
  for (const auto& v : validators_) v.save(w);
  w.finish();
}

deep_validator deep_validator::load(const std::string& path) {
  binary_reader r{path, k_dv_magic};
  deep_validator out;
  out.spatial_ = r.read_i32();
  out.batch_.max_batch = r.read_i32();
  out.threshold_ = r.read_f64();
  out.probe_indices_ = r.read_i32_vector();
  const auto n = r.read_u64();
  if (n != out.probe_indices_.size()) {
    throw serialize_error{"deep_validator::load: inconsistent artifact"};
  }
  out.validators_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.validators_.push_back(layer_validator::load(r));
  }
  return out;
}

void deep_validator::save_snapshot(
    const std::string& path, const weighted_joint_validator* weighted) const {
  if (!fitted()) {
    throw std::logic_error{"deep_validator::save_snapshot: not fitted"};
  }
  snapshot_writer w;
  w.add_i64_scalar("bank/format", 1);
  const std::int64_t meta_i[3] = {
      spatial_, batch_.max_batch,
      static_cast<std::int64_t>(validators_.size())};
  const double meta_f[1] = {threshold_};
  w.add_i64("bank/meta_i", meta_i);
  w.add_f64("bank/meta_f", meta_f);
  std::vector<std::int32_t> probes(probe_indices_.begin(),
                                   probe_indices_.end());
  w.add_i32("bank/probes", probes);
  for (std::size_t v = 0; v < validators_.size(); ++v) {
    validators_[v].save_snapshot(w, "bank/L" + std::to_string(v) + "/");
  }
  if (weighted != nullptr && weighted->fitted()) {
    weighted->save_snapshot(w, "bank/weighted/");
  }
  w.finish(path);
}

deep_validator deep_validator::load_snapshot(const std::string& path) {
  const auto snap = snapshot_view::open(path);
  if (snap->i64_scalar("bank/format") != 1) {
    throw serialize_error{"snapshot bank: unsupported bank format"};
  }
  const auto meta_i = snap->i64("bank/meta_i");
  const auto meta_f = snap->f64("bank/meta_f");
  if (meta_i.size() != 3 || meta_f.size() != 1) {
    throw serialize_error{"snapshot bank: bad metadata"};
  }
  deep_validator out;
  out.spatial_ = static_cast<int>(meta_i[0]);
  out.batch_.max_batch = static_cast<int>(meta_i[1]);
  out.threshold_ = meta_f[0];
  const auto layer_count = meta_i[2];
  const auto probes = snap->i32("bank/probes");
  if (layer_count < 1 ||
      probes.size() != static_cast<std::size_t>(layer_count)) {
    throw serialize_error{"snapshot bank: probe/layer count mismatch"};
  }
  out.probe_indices_.assign(probes.begin(), probes.end());
  out.validators_.reserve(static_cast<std::size_t>(layer_count));
  for (std::int64_t v = 0; v < layer_count; ++v) {
    out.validators_.push_back(layer_validator::load_snapshot(
        *snap, "bank/L" + std::to_string(v) + "/"));
  }
  return out;
}

}  // namespace dv
