#include "core/layer_validator.h"

#include <algorithm>
#include <stdexcept>

#include "util/flat_snapshot.h"
#include "util/metrics.h"
#include "util/serialize.h"

namespace dv {

void layer_validator::fit(const tensor& features,
                          const std::vector<std::int64_t>& labels,
                          int num_classes,
                          const one_class_svm_config& config) {
  if (features.dim() != 2 ||
      static_cast<std::size_t>(features.extent(0)) != labels.size()) {
    throw std::invalid_argument{"layer_validator::fit: bad inputs"};
  }
  scaler_.fit(features);
  tensor scaled = features;
  scaler_.transform(scaled);

  const std::int64_t d = scaled.extent(1);
  metrics::counter* svms_fitted = metrics::get_counter("dv_validator_svms_fitted_total");
  metrics::histogram* svm_fit_seconds = metrics::get_histogram(
      "dv_validator_svm_fit_seconds", metrics::histogram_options::latency());
  svms_.clear();
  svms_.resize(static_cast<std::size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    std::vector<std::int64_t> rows;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == k) rows.push_back(static_cast<std::int64_t>(i));
    }
    if (rows.size() < 2) {
      throw std::invalid_argument{
          "layer_validator::fit: class " + std::to_string(k) +
          " has fewer than 2 samples"};
    }
    tensor subset{{static_cast<std::int64_t>(rows.size()), d}};
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::copy_n(scaled.data() + rows[i] * d, d,
                  subset.data() + static_cast<std::int64_t>(i) * d);
    }
    const std::int64_t svm_start_ns =
        svm_fit_seconds != nullptr ? metrics::now_ns() : 0;
    svms_[static_cast<std::size_t>(k)].fit(subset, config);
    if (svm_fit_seconds != nullptr) {
      svm_fit_seconds->observe(
          static_cast<double>(metrics::now_ns() - svm_start_ns) * 1e-9);
      svms_fitted->add();
    }
  }
}

layer_validator_view layer_validator::view() const {
  if (!fitted()) throw std::logic_error{"layer_validator: not fitted"};
  std::vector<one_class_svm_view> views;
  views.reserve(svms_.size());
  for (const auto& svm : svms_) views.push_back(svm.view());
  return layer_validator_view{scaler_.view(), std::move(views)};
}

double layer_validator::discrepancy(std::int64_t predicted_class,
                                    std::span<const float> feature) const {
  if (!fitted()) throw std::logic_error{"layer_validator: not fitted"};
  return view().discrepancy(predicted_class, feature);
}

std::vector<double> layer_validator::discrepancy_batch(
    const std::vector<std::int64_t>& predicted_classes,
    const tensor& features) const {
  if (!fitted()) throw std::logic_error{"layer_validator: not fitted"};
  return view().discrepancy_batch(predicted_classes, features);
}

// ---------------------------------------------------------------------------
// layer_validator_view — the single discrepancy implementation (builder
// delegates through view(), so owned and snapshot-backed paths share it).

layer_validator_view::layer_validator_view(
    scaler_view scaler, std::vector<one_class_svm_view> svms)
    : scaler_{scaler}, svms_{std::move(svms)} {}

double layer_validator_view::discrepancy(std::int64_t predicted_class,
                                         std::span<const float> feature) const {
  if (!valid()) throw std::logic_error{"layer_validator: not fitted"};
  if (predicted_class < 0 ||
      predicted_class >= static_cast<std::int64_t>(svms_.size())) {
    throw std::out_of_range{"layer_validator::discrepancy: class"};
  }
  // Local scaled copy rather than a member scratch buffer: evaluate() in
  // deep_validator scores images concurrently through this method.
  std::vector<float> scaled(feature.begin(), feature.end());
  scaler_.transform_row(scaled);
  return -svms_[static_cast<std::size_t>(predicted_class)].decision(scaled);
}

std::vector<double> layer_validator_view::discrepancy_batch(
    const std::vector<std::int64_t>& predicted_classes,
    const tensor& features) const {
  if (!valid()) throw std::logic_error{"layer_validator: not fitted"};
  if (features.dim() != 2 ||
      static_cast<std::size_t>(features.extent(0)) !=
          predicted_classes.size()) {
    throw std::invalid_argument{"layer_validator::discrepancy_batch: bad inputs"};
  }
  const std::int64_t n = features.extent(0);
  const std::int64_t d = features.extent(1);
  // Batch scale, then group rows by predicted class so each class's SVM
  // sees one decision_batch call. scaler_view::transform applies
  // transform_row per row and decision_batch applies decision() per row,
  // so every output matches the per-row discrepancy() path bitwise.
  tensor scaled = features;
  scaler_.transform(scaled);
  std::vector<std::vector<std::int64_t>> per_class(svms_.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t pred = predicted_classes[static_cast<std::size_t>(i)];
    if (pred < 0 || pred >= static_cast<std::int64_t>(svms_.size())) {
      throw std::out_of_range{"layer_validator::discrepancy_batch: class"};
    }
    per_class[static_cast<std::size_t>(pred)].push_back(i);
  }
  std::vector<double> out(static_cast<std::size_t>(n));
  for (std::size_t k = 0; k < svms_.size(); ++k) {
    const auto& rows = per_class[k];
    if (rows.empty()) continue;
    tensor subset{{static_cast<std::int64_t>(rows.size()), d}};
    for (std::size_t j = 0; j < rows.size(); ++j) {
      std::copy_n(scaled.data() + rows[j] * d, d,
                  subset.data() + static_cast<std::int64_t>(j) * d);
    }
    const std::vector<double> dec = svms_[k].decision_batch(subset);
    for (std::size_t j = 0; j < rows.size(); ++j) {
      out[static_cast<std::size_t>(rows[j])] = -dec[j];
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Serialization: legacy binary stream + flat snapshot sections.

void layer_validator::save(binary_writer& w) const {
  scaler_.save(w);
  w.write_u64(svms_.size());
  for (const auto& svm : svms_) svm.save(w);
}

layer_validator layer_validator::load(binary_reader& r) {
  layer_validator out;
  out.scaler_ = feature_scaler::load(r);
  const auto n = r.read_u64();
  out.svms_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.svms_.push_back(one_class_svm::load(r));
  }
  return out;
}

void layer_validator::save_snapshot(snapshot_writer& w,
                                    const std::string& prefix) const {
  if (!fitted()) {
    throw std::logic_error{"layer_validator::save_snapshot: not fitted"};
  }
  const std::int64_t meta_i[1] = {static_cast<std::int64_t>(svms_.size())};
  w.add_i64(prefix + "meta_i", meta_i);
  scaler_.save_snapshot(w, prefix + "scaler/");
  for (std::size_t k = 0; k < svms_.size(); ++k) {
    svms_[k].save_snapshot(w, prefix + "c" + std::to_string(k) + "/");
  }
}

layer_validator_view layer_validator_view::from_snapshot(
    const snapshot_view& snap, const std::string& prefix) {
  const auto meta_i = snap.i64(prefix + "meta_i");
  if (meta_i.size() != 1 || meta_i[0] < 1) {
    throw serialize_error{"snapshot layer '" + prefix + "': bad metadata"};
  }
  const auto classes = static_cast<std::size_t>(meta_i[0]);
  const scaler_view scaler =
      scaler_view::from_snapshot(snap, prefix + "scaler/");
  std::vector<one_class_svm_view> svms;
  svms.reserve(classes);
  for (std::size_t k = 0; k < classes; ++k) {
    svms.push_back(one_class_svm_view::from_snapshot(
        snap, prefix + "c" + std::to_string(k) + "/"));
  }
  return layer_validator_view{scaler, std::move(svms)};
}

layer_validator layer_validator::load_snapshot(const snapshot_view& snap,
                                               const std::string& prefix) {
  const auto meta_i = snap.i64(prefix + "meta_i");
  if (meta_i.size() != 1 || meta_i[0] < 1) {
    throw serialize_error{"snapshot layer '" + prefix + "': bad metadata"};
  }
  const auto classes = static_cast<std::size_t>(meta_i[0]);
  layer_validator out;
  out.scaler_ = feature_scaler::load_snapshot(snap, prefix + "scaler/");
  out.svms_.reserve(classes);
  for (std::size_t k = 0; k < classes; ++k) {
    out.svms_.push_back(one_class_svm::load_snapshot(
        snap, prefix + "c" + std::to_string(k) + "/"));
  }
  return out;
}

}  // namespace dv
