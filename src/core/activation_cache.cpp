#include "core/activation_cache.h"

#include <cstring>
#include <map>
#include <utility>

namespace dv {

namespace {

std::size_t frame_value_bytes(const cached_frame_activations& v) {
  std::size_t bytes = v.logits.size() * sizeof(float);
  for (const tensor& p : v.probes) {
    bytes += static_cast<std::size_t>(p.numel()) * sizeof(float);
  }
  return bytes;
}

/// Shape of the full [N, ...] output tensor given one frame's [1, ...]
/// slice and the batch size.
std::vector<std::int64_t> batched_shape(const tensor& frame_slice,
                                        std::int64_t n) {
  std::vector<std::int64_t> shape = frame_slice.shape();
  shape[0] = n;
  return shape;
}

}  // namespace

activation_cache::activation_cache() : activation_cache(cache_capacity()) {}

activation_cache::activation_cache(std::size_t capacity)
    : lru_{capacity, "activation"} {}

activation_batch extract_activations_cached(sequential& model, tensor images,
                                            activation_cache* cache) {
  if (cache == nullptr || !cache_enabled() || cache->lru().capacity() == 0) {
    return extract_activations(model, std::move(images));
  }
  if (images.dim() == 3) {
    images.reshape(
        {1, images.extent(0), images.extent(1), images.extent(2)});
  }
  if (images.dim() != 4) {
    throw std::invalid_argument{
        "extract_activations_cached: expected [N,C,H,W] images"};
  }
  const std::int64_t n = images.extent(0);
  const std::int64_t frame_elems = n > 0 ? images.numel() / n : 0;

  // Pass 1 (sequential): hash every frame and probe the cache. Probe
  // order is the row order, so hit/miss counts and LRU refreshes are a
  // pure function of the stream — identical at any DV_THREADS. Hit
  // pointers stay valid until the first insert below; every copy-out
  // happens before that. Missed rows dedup by hash within the batch —
  // a near-static camera fills a whole batch with one frame, which must
  // cost one forward row, not max_batch of them. Identical bytes produce
  // identical outputs (all kernels are deterministic), so fanning one
  // computed row out to its duplicates is bitwise exact.
  auto& lru = cache->lru();
  std::vector<strong_hash> hashes(static_cast<std::size_t>(n));
  std::vector<cached_frame_activations*> hits(static_cast<std::size_t>(n),
                                              nullptr);
  std::vector<std::int64_t> miss_rows;    // first row per distinct missed hash
  std::vector<std::int64_t> miss_index(static_cast<std::size_t>(n), -1);
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::int64_t> seen;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& h = hashes[static_cast<std::size_t>(i)] =
        strong_hash::of_bytes(
            images.data() + i * frame_elems,
            static_cast<std::size_t>(frame_elems) * sizeof(float));
    hits[static_cast<std::size_t>(i)] = lru.find(h);
    if (hits[static_cast<std::size_t>(i)] != nullptr) continue;
    const auto [it, inserted] = seen.emplace(
        std::make_pair(h.hi, h.lo),
        static_cast<std::int64_t>(miss_rows.size()));
    if (inserted) miss_rows.push_back(i);
    miss_index[static_cast<std::size_t>(i)] = it->second;
  }

  // One forward pass over just the distinct missed rows.
  activation_batch fresh;
  if (!miss_rows.empty()) {
    std::vector<std::int64_t> shape = images.shape();
    shape[0] = static_cast<std::int64_t>(miss_rows.size());
    tensor miss_images{shape};
    for (std::size_t m = 0; m < miss_rows.size(); ++m) {
      std::memcpy(miss_images.data() +
                      static_cast<std::int64_t>(m) * frame_elems,
                  images.data() + miss_rows[m] * frame_elems,
                  static_cast<std::size_t>(frame_elems) * sizeof(float));
    }
    fresh = extract_activations(model, std::move(miss_images));
  }

  // Allocate the output from whichever side knows the shapes.
  activation_batch out;
  const cached_frame_activations* shape_source = nullptr;
  for (std::int64_t i = 0; i < n && shape_source == nullptr; ++i) {
    shape_source = hits[static_cast<std::size_t>(i)];
  }
  if (!miss_rows.empty()) {
    out.logits = tensor{batched_shape(fresh.logits, n)};
    out.probes.reserve(fresh.probes.size());
    for (const tensor& p : fresh.probes) {
      out.probes.push_back(tensor{batched_shape(p, n)});
    }
  } else if (shape_source != nullptr) {
    out.logits = tensor{
        {n, static_cast<std::int64_t>(shape_source->logits.size())}};
    out.probes.reserve(shape_source->probes.size());
    for (const tensor& p : shape_source->probes) {
      out.probes.push_back(tensor{batched_shape(p, n)});
    }
  }
  out.predictions.assign(static_cast<std::size_t>(n), 0);

  // Copy cached rows first (hit pointers die at the first insert).
  const std::int64_t classes = out.logits.dim() == 2 ? out.logits.extent(1) : 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const cached_frame_activations* hit = hits[static_cast<std::size_t>(i)];
    if (hit == nullptr) continue;
    std::memcpy(out.logits.data() + i * classes, hit->logits.data(),
                hit->logits.size() * sizeof(float));
    out.predictions[static_cast<std::size_t>(i)] = hit->prediction;
    for (std::size_t p = 0; p < out.probes.size(); ++p) {
      tensor& dst = out.probes[p];
      const tensor& src = hit->probes[p];
      const std::int64_t row_elems = dst.numel() / n;
      std::memcpy(dst.data() + i * row_elems, src.data(),
                  static_cast<std::size_t>(row_elems) * sizeof(float));
    }
  }

  // Copy fresh rows out — in-batch duplicates share one computed row —
  // then insert each distinct frame once, in first-occurrence order.
  const std::int64_t unique = static_cast<std::int64_t>(miss_rows.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t f = miss_index[static_cast<std::size_t>(i)];
    if (f < 0) continue;
    std::memcpy(out.logits.data() + i * classes,
                fresh.logits.data() + f * classes,
                static_cast<std::size_t>(classes) * sizeof(float));
    out.predictions[static_cast<std::size_t>(i)] =
        fresh.predictions[static_cast<std::size_t>(f)];
    for (std::size_t p = 0; p < out.probes.size(); ++p) {
      const tensor& src = fresh.probes[p];
      const std::int64_t row_elems = src.numel() / unique;
      std::memcpy(out.probes[p].data() + i * row_elems,
                  src.data() + f * row_elems,
                  static_cast<std::size_t>(row_elems) * sizeof(float));
    }
  }
  for (std::size_t m = 0; m < miss_rows.size(); ++m) {
    const std::int64_t f = static_cast<std::int64_t>(m);
    cached_frame_activations value;
    value.logits.resize(static_cast<std::size_t>(classes));
    std::memcpy(value.logits.data(), fresh.logits.data() + f * classes,
                static_cast<std::size_t>(classes) * sizeof(float));
    value.prediction = fresh.predictions[m];
    value.probes.reserve(fresh.probes.size());
    for (std::size_t p = 0; p < fresh.probes.size(); ++p) {
      const tensor& src = fresh.probes[p];
      const std::int64_t row_elems = src.numel() / unique;
      tensor slice{batched_shape(src, 1)};
      std::memcpy(slice.data(), src.data() + f * row_elems,
                  static_cast<std::size_t>(row_elems) * sizeof(float));
      value.probes.push_back(std::move(slice));
    }
    const std::size_t bytes = frame_value_bytes(value);
    lru.insert(hashes[static_cast<std::size_t>(miss_rows[m])],
               std::move(value), bytes);
  }

  out.images = std::move(images);
  return out;
}

}  // namespace dv
