#include "core/validator_bank.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/metrics.h"
#include "util/trace.h"

namespace dv {

// ---------------------------------------------------------------------------
// weighted_joint_view

weighted_joint_view::weighted_joint_view(std::span<const double> weights,
                                         double bias)
    : weights_{weights}, bias_{bias} {}

double weighted_joint_view::decision(
    std::span<const double> per_layer_row) const {
  if (!valid()) throw std::logic_error{"weighted_joint_view: no weights"};
  if (per_layer_row.size() != weights_.size()) {
    throw std::invalid_argument{"weighted_joint_view: dimension mismatch"};
  }
  // Same accumulation order as logistic_regression::decision, so the
  // builder path (which delegates here) and the snapshot path agree
  // bitwise.
  double z = bias_;
  for (std::size_t j = 0; j < per_layer_row.size(); ++j) {
    z += weights_[j] * per_layer_row[j];
  }
  return z;
}

weighted_joint_view weighted_joint_view::from_snapshot(
    const snapshot_view& snap, const std::string& prefix) {
  const auto weights = snap.f64(prefix + "weights");
  const double bias = snap.f64_scalar(prefix + "bias");
  if (weights.empty()) {
    throw serialize_error{"snapshot weighted '" + prefix + "': empty weights"};
  }
  return weighted_joint_view{weights, bias};
}

// ---------------------------------------------------------------------------
// validator_bank_view

validator_bank_view::validator_bank_view(
    std::vector<layer_validator_view> layers, std::vector<int> probe_indices,
    int spatial, batch_config batch, double threshold,
    weighted_joint_view weighted, std::shared_ptr<const snapshot_view> snap)
    : layers_{std::move(layers)},
      probe_indices_{std::move(probe_indices)},
      spatial_{spatial},
      batch_{batch},
      threshold_{threshold},
      weighted_{weighted},
      snap_{std::move(snap)} {
  if (layers_.size() != probe_indices_.size()) {
    throw std::invalid_argument{
        "validator_bank_view: layer/probe count mismatch"};
  }
  if (weighted_.valid() && weighted_.weights().size() != layers_.size()) {
    throw std::invalid_argument{
        "validator_bank_view: weight/layer count mismatch"};
  }
}

validator_bank_view validator_bank_view::from_snapshot(
    std::shared_ptr<const snapshot_view> snap) {
  if (snap == nullptr) {
    throw std::invalid_argument{"validator_bank_view: null snapshot"};
  }
  if (snap->i64_scalar("bank/format") != 1) {
    throw serialize_error{"snapshot bank: unsupported bank format"};
  }
  const auto meta_i = snap->i64("bank/meta_i");
  const auto meta_f = snap->f64("bank/meta_f");
  if (meta_i.size() != 3 || meta_f.size() != 1) {
    throw serialize_error{"snapshot bank: bad metadata"};
  }
  const int spatial = static_cast<int>(meta_i[0]);
  batch_config batch;
  batch.max_batch = static_cast<int>(meta_i[1]);
  const auto layer_count = meta_i[2];
  const double threshold = meta_f[0];
  if (spatial < 1 || batch.max_batch < 1 || layer_count < 1) {
    throw serialize_error{"snapshot bank: bad metadata"};
  }
  const auto probes_span = snap->i32("bank/probes");
  if (probes_span.size() != static_cast<std::size_t>(layer_count)) {
    throw serialize_error{"snapshot bank: probe/layer count mismatch"};
  }
  std::vector<int> probes(probes_span.begin(), probes_span.end());
  std::vector<layer_validator_view> layers;
  layers.reserve(static_cast<std::size_t>(layer_count));
  for (std::int64_t v = 0; v < layer_count; ++v) {
    layers.push_back(layer_validator_view::from_snapshot(
        *snap, "bank/L" + std::to_string(v) + "/"));
  }
  weighted_joint_view weighted;
  if (snap->has("bank/weighted/weights")) {
    weighted = weighted_joint_view::from_snapshot(*snap, "bank/weighted/");
    if (weighted.weights().size() != layers.size()) {
      throw serialize_error{"snapshot bank: weight/layer count mismatch"};
    }
  }
  return validator_bank_view{std::move(layers), std::move(probes), spatial,
                             batch, threshold, weighted, std::move(snap)};
}

validation_scores validator_bank_view::evaluate(
    const activation_batch& acts) const {
  if (!valid()) throw std::logic_error{"deep_validator: not fitted"};
  trace_span eval_span{"validator.evaluate"};
  const auto n = static_cast<std::size_t>(acts.size());
  validation_scores out;
  out.per_layer.assign(layers_.size(), std::vector<double>(n));
  out.joint.assign(n, 0.0);
  out.predictions.assign(n, 0);
  score_into(acts, out, 0);
  return out;
}

validation_scores validator_bank_view::evaluate(sequential& model,
                                                const tensor& images) const {
  if (!valid()) throw std::logic_error{"deep_validator: not fitted"};
  trace_span eval_span{"validator.evaluate"};
  const std::int64_t n = images.extent(0);
  validation_scores out;
  out.per_layer.assign(layers_.size(),
                       std::vector<double>(static_cast<std::size_t>(n)));
  out.joint.assign(static_cast<std::size_t>(n), 0.0);
  out.predictions.assign(static_cast<std::size_t>(n), 0);

  for (std::int64_t begin = 0; begin < n; begin += batch_.max_batch) {
    const std::int64_t end = std::min<std::int64_t>(n, begin + batch_.max_batch);
    const activation_batch acts =
        extract_activations(model, images.slice_rows(begin, end));
    score_into(acts, out, begin);
  }
  return out;
}

void validator_bank_view::score_into(const activation_batch& acts,
                                     validation_scores& out,
                                     std::int64_t base) const {
  metrics::counter* images_scored =
      metrics::get_counter("dv_validator_images_scored_total");
  metrics::histogram* score_seconds = metrics::get_histogram(
      "dv_validator_score_seconds", metrics::histogram_options::latency());
  if (!probe_indices_.empty() &&
      probe_indices_.back() >= acts.probe_count()) {
    throw std::logic_error{"deep_validator::evaluate: probe count changed"};
  }
  const std::int64_t count = acts.size();
  const auto& preds = acts.predictions;
  // Reduce each validated probe once for the whole mini-batch.
  std::vector<tensor> reduced(layers_.size());
  for (std::size_t v = 0; v < layers_.size(); ++v) {
    reduced[v] = acts.probe_features(probe_indices_[v], spatial_);
  }
  // Score one layer at a time through discrepancy_batch: the rows group
  // by predicted class into one decision_batch per (layer, class) SVM,
  // which parallelizes over rows internally and serves repeated probe
  // activations from the decision cache when caching is on
  // (docs/CACHING.md). Per-image math is unchanged — each row's value is
  // the same discrepancy() computation, and the joint sum below folds
  // the layers in the same ascending order as before — so scores are
  // bit-identical to the per-image path for any DV_THREADS and cache
  // setting. dv_validator_score_seconds observes one batched layer
  // evaluation per sample (docs/OBSERVABILITY.md).
  for (std::size_t v = 0; v < layers_.size(); ++v) {
    const std::int64_t layer_start_ns =
        score_seconds != nullptr ? metrics::now_ns() : 0;
    const std::vector<double> disc =
        layers_[v].discrepancy_batch(preds, reduced[v]);
    for (std::int64_t i = 0; i < count; ++i) {
      out.per_layer[v][static_cast<std::size_t>(base + i)] =
          disc[static_cast<std::size_t>(i)];
    }
    if (score_seconds != nullptr) {
      score_seconds->observe(
          static_cast<double>(metrics::now_ns() - layer_start_ns) * 1e-9);
    }
  }
  for (std::int64_t i = 0; i < count; ++i) {
    const auto slot = static_cast<std::size_t>(base + i);
    double joint = 0.0;
    for (std::size_t v = 0; v < layers_.size(); ++v) {
      joint += out.per_layer[v][slot];
    }
    out.joint[slot] = joint;
    out.predictions[slot] = preds[static_cast<std::size_t>(i)];
  }
  if (images_scored != nullptr) {
    images_scored->add(static_cast<std::uint64_t>(count));
  }
}

}  // namespace dv
