// Shared activation-extraction entry point for the batch-first scoring
// path (docs/SERVING.md). One probe forward pass per batch produces an
// activation_batch; the deep validator, the weighted joint validator, and
// every anomaly detector then score from it without re-running the model.
//
// The probe tensors are deep copies: sequential::probes() returns
// pointers that are only valid until the next forward pass, while a
// served batch fans out to N consumers that each may trigger further
// forwards (e.g. feature squeezing).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"
#include "tensor/tensor.h"

namespace dv {

struct activation_batch {
  /// The input images [N,C,H,W] (kept for consumers that need extra
  /// forward passes, e.g. squeezed variants).
  tensor images;
  /// Raw model outputs [N, classes].
  tensor logits;
  /// argmax of `logits` per row.
  std::vector<std::int64_t> predictions;
  /// One copied tensor per probe layer, network order.
  std::vector<tensor> probes;

  std::int64_t size() const { return logits.extent(0); }
  int probe_count() const { return static_cast<int>(probes.size()); }

  /// Reduced features of probe `p` at the given spatial resolution,
  /// [N, d] (see core/probe_reducer.h).
  tensor probe_features(int p, int spatial) const;
  /// Last (penultimate-layer) probe flattened to [N, d] — the feature
  /// space of the KDE and Mahalanobis detectors.
  tensor last_probe_features() const;
};

/// Runs ONE forward pass over `images` ([N,C,H,W] or a single [C,H,W]
/// frame) and captures logits, predictions, and all probe activations.
/// The caller is responsible for chunking to its batch_config.
activation_batch extract_activations(sequential& model, tensor images);

}  // namespace dv
