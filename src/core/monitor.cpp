#include "core/monitor.h"

#include <stdexcept>

#include "util/metrics.h"
#include "util/trace.h"

namespace dv {

namespace {
/// Joint discrepancies in practice sit in [-0.5, 2]; valid frames are
/// negative, corner cases positive (see EXPERIMENTS.md), so linear
/// buckets across that range separate the two populations. Values are
/// deterministic model outputs — with 2^20 fixed-point resolution the
/// histogram sum is bitwise stable across thread counts.
metrics::histogram_options discrepancy_buckets() {
  return metrics::histogram_options::linear(-0.5, 2.0, 10, /*scale=*/1048576.0);
}
}  // namespace

runtime_monitor::runtime_monitor(sequential& model,
                                 const deep_validator& validator,
                                 monitor_config config)
    : model_{model}, validator_{validator}, config_{config} {
  if (config_.window < 1 || config_.trigger_count < 1 ||
      config_.trigger_count > config_.window || config_.release_count < 1) {
    throw std::invalid_argument{"runtime_monitor: bad configuration"};
  }
  if (!validator_.fitted()) {
    throw std::logic_error{"runtime_monitor: validator not fitted"};
  }
}

monitor_verdict runtime_monitor::apply(const frame_score& score) {
  monitor_verdict v;
  v.discrepancy = score.discrepancy;
  v.prediction = score.prediction;
  v.frame_invalid = validator_.flags_invalid(v.discrepancy);

  window_.push_back(v.frame_invalid);
  if (static_cast<int>(window_.size()) > config_.window) window_.pop_front();
  ++frames_seen_;

  int invalid_in_window = 0;
  for (const bool b : window_) invalid_in_window += b ? 1 : 0;

  if (v.frame_invalid) {
    consecutive_valid_ = 0;
  } else {
    ++consecutive_valid_;
  }
  bool latched = false;
  bool released = false;
  if (!alarmed_ && invalid_in_window >= config_.trigger_count) {
    alarmed_ = true;
    latched = true;
  } else if (alarmed_ && consecutive_valid_ >= config_.release_count) {
    alarmed_ = false;
    released = true;
  }
  v.alarm = alarmed_;

  if (metrics::enabled()) {
    metrics::count("dv_monitor_frames_total");
    if (v.frame_invalid) metrics::count("dv_monitor_frames_invalid_total");
    if (v.alarm) metrics::count("dv_monitor_alarm_frames_total");
    if (latched) metrics::count("dv_monitor_alarm_latch_total");
    if (released) metrics::count("dv_monitor_alarm_release_total");
    metrics::observe("dv_monitor_discrepancy", discrepancy_buckets(),
                   v.discrepancy);
    metrics::set("dv_monitor_window_invalid_fraction",
               static_cast<double>(invalid_in_window) /
                   static_cast<double>(window_.size()));
  }
  return v;
}

monitor_verdict runtime_monitor::observe(const tensor& frame) {
  trace_span span{"monitor.observe"};
  tensor batch = frame;
  if (batch.dim() == 3) {
    batch.reshape({1, frame.extent(0), frame.extent(1), frame.extent(2)});
  }
  const auto scores = validator_.evaluate(model_, batch);
  return apply({scores.joint.front(), scores.predictions.front()});
}

std::vector<monitor_verdict> runtime_monitor::observe_batch(
    const tensor& frames) {
  trace_span span{"monitor.observe_batch"};
  const auto scores = validator_.evaluate(model_, frames);
  std::vector<monitor_verdict> out;
  out.reserve(scores.joint.size());
  for (std::size_t i = 0; i < scores.joint.size(); ++i) {
    out.push_back(apply({scores.joint[i], scores.predictions[i]}));
  }
  return out;
}

double runtime_monitor::window_invalid_fraction() const {
  if (window_.empty()) return 0.0;
  int invalid = 0;
  for (const bool b : window_) invalid += b ? 1 : 0;
  return static_cast<double>(invalid) / static_cast<double>(window_.size());
}

void runtime_monitor::reset() {
  window_.clear();
  alarmed_ = false;
  consecutive_valid_ = 0;
  frames_seen_ = 0;
}

}  // namespace dv
