#include "core/monitor.h"

#include <stdexcept>

namespace dv {

runtime_monitor::runtime_monitor(sequential& model,
                                 const deep_validator& validator,
                                 monitor_config config)
    : model_{model}, validator_{validator}, config_{config} {
  if (config_.window < 1 || config_.trigger_count < 1 ||
      config_.trigger_count > config_.window || config_.release_count < 1) {
    throw std::invalid_argument{"runtime_monitor: bad configuration"};
  }
  if (!validator_.fitted()) {
    throw std::logic_error{"runtime_monitor: validator not fitted"};
  }
}

monitor_verdict runtime_monitor::observe(const tensor& frame) {
  tensor batch = frame;
  if (batch.dim() == 3) {
    batch.reshape({1, frame.extent(0), frame.extent(1), frame.extent(2)});
  }
  const auto scores = validator_.evaluate(model_, batch);

  monitor_verdict v;
  v.discrepancy = scores.joint.front();
  v.prediction = scores.predictions.front();
  v.frame_invalid = validator_.flags_invalid(v.discrepancy);

  window_.push_back(v.frame_invalid);
  if (static_cast<int>(window_.size()) > config_.window) window_.pop_front();
  ++frames_seen_;

  int invalid_in_window = 0;
  for (const bool b : window_) invalid_in_window += b ? 1 : 0;

  if (v.frame_invalid) {
    consecutive_valid_ = 0;
  } else {
    ++consecutive_valid_;
  }
  if (!alarmed_ && invalid_in_window >= config_.trigger_count) {
    alarmed_ = true;
  } else if (alarmed_ && consecutive_valid_ >= config_.release_count) {
    alarmed_ = false;
  }
  v.alarm = alarmed_;
  return v;
}

double runtime_monitor::window_invalid_fraction() const {
  if (window_.empty()) return 0.0;
  int invalid = 0;
  for (const bool b : window_) invalid += b ? 1 : 0;
  return static_cast<double>(invalid) / static_cast<double>(window_.size());
}

void runtime_monitor::reset() {
  window_.clear();
  alarmed_ = false;
  consecutive_valid_ = 0;
  frames_seen_ = 0;
}

}  // namespace dv
