// Validation diagnosis: which layers raised the alarm and by how much.
//
// When the fail-safe flags an input, an operator needs more than a single
// joint number: the per-layer breakdown tells whether the input broke early
// (raw-feature mismatch — e.g. inverted sensor) or late (semantic-feature
// mismatch — e.g. an object the model cannot place). This mirrors the
// paper's per-layer analysis in §IV-D3.
#pragma once

#include <string>
#include <vector>

#include "core/deep_validator.h"

namespace dv {

struct layer_contribution {
  int probe_index{0};       // global probe index in network order (0-based)
  double discrepancy{0.0};  // d_i for this layer
  double share{0.0};        // |d_i| / sum_j |d_j| (0 when all are zero)
};

struct validation_report {
  std::int64_t prediction{-1};
  double joint_discrepancy{0.0};
  bool flagged{false};
  std::vector<layer_contribution> layers;  // network order

  /// Probe index of the largest-discrepancy layer (-1 if empty).
  int dominant_layer() const;
};

/// Runs Algorithm 2 on one [C,H,W] image and decomposes the verdict.
validation_report explain_validation(sequential& model,
                                     const deep_validator& validator,
                                     const tensor& image);

/// Multi-line human-readable rendering with a per-layer bar chart.
std::string format_report(const validation_report& report);

}  // namespace dv
