// The validator bank view: the read-only scoring half of Deep Validation
// (DESIGN.md §16, docs/SNAPSHOTS.md).
//
// A validator_bank_view is everything inference needs from a fitted
// deep_validator — per-layer validators, probe indices, the decision
// threshold, the batching knob, and (optionally) the weighted-joint
// combiner — borrowed either from a live deep_validator (via
// deep_validator::bank()) or zero-copy out of a mapped flat snapshot
// (util/flat_snapshot.h). Both construction paths run the SAME scoring
// code, so a snapshot-backed bank is bitwise identical to the fitted
// in-memory bank for any DV_THREADS / DV_SIMD / DV_CACHE setting.
//
// Banks are immutable after construction and cheap to copy (views +
// small owned vectors). The serving layer publishes them through
// serve/engine_handle.h for pause-free hot swap.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/activation_batch.h"
#include "core/batch_config.h"
#include "core/layer_validator.h"
#include "nn/model.h"
#include "util/flat_snapshot.h"

namespace dv {

/// Per-image outputs of one bank evaluation (formerly
/// deep_validator::scores, which is now an alias of this).
struct validation_scores {
  /// Per validated layer (outer) and per image (inner) discrepancy d_i.
  std::vector<std::vector<double>> per_layer;
  /// Joint discrepancy d = sum_i d_i per image (Equation 3).
  std::vector<double> joint;
  /// Model prediction per image.
  std::vector<std::int64_t> predictions;
};

/// Read-only weighted-joint combiner: the linear decision w^T x + b over
/// per-layer discrepancies, borrowed from a fitted
/// weighted_joint_validator or a snapshot. The decision loop here IS the
/// shared implementation — the builder delegates to it — so owned and
/// snapshot-backed weighted scores are bitwise identical.
class weighted_joint_view {
 public:
  weighted_joint_view() = default;
  weighted_joint_view(std::span<const double> weights, double bias);

  /// Reads the sections written by weighted_joint_validator::save_snapshot
  /// under `prefix` (zero copy).
  static weighted_joint_view from_snapshot(const snapshot_view& snap,
                                           const std::string& prefix);

  /// Linear score w^T x + b over one image's per-layer discrepancies —
  /// the same summation order as logistic_regression::decision.
  double decision(std::span<const double> per_layer_row) const;

  bool valid() const { return !weights_.empty(); }
  std::span<const double> weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::span<const double> weights_;
  double bias_{0.0};
};

/// Read-only scoring surface over one fitted validator bank; see the file
/// comment for the ownership model. Valid while the storage owner is
/// alive: for snapshot-backed banks the view keeps the mapping alive via
/// shared_ptr, for builder-backed banks the deep_validator must outlive
/// the view.
class validator_bank_view {
 public:
  validator_bank_view() = default;
  validator_bank_view(std::vector<layer_validator_view> layers,
                      std::vector<int> probe_indices, int spatial,
                      batch_config batch, double threshold,
                      weighted_joint_view weighted = {},
                      std::shared_ptr<const snapshot_view> snap = nullptr);

  /// Zero-copy bank over a validated snapshot: the support-vector
  /// matrices, scaler rows, and weights stay inside the mapping, which
  /// the returned bank keeps alive. Throws serialize_error on any
  /// missing or inconsistent section.
  static validator_bank_view from_snapshot(
      std::shared_ptr<const snapshot_view> snap);

  /// Algorithm 2 over pre-extracted activations — the batch-first entry
  /// point shared with the detectors and the serving layer.
  validation_scores evaluate(const activation_batch& acts) const;

  /// Algorithm 2 over raw images: chunks by the configured batch size,
  /// extracting activations once per chunk.
  validation_scores evaluate(sequential& model, const tensor& images) const;

  /// Scores `acts` into out.{per_layer,joint,predictions} rows
  /// [base, base + acts.size()).
  void score_into(const activation_batch& acts, validation_scores& out,
                  std::int64_t base) const;

  bool valid() const { return !layers_.empty(); }
  int validated_layers() const { return static_cast<int>(layers_.size()); }
  /// Global probe index (0-based, network order) of validated layer `i`.
  int probe_index(int i) const {
    return probe_indices_[static_cast<std::size_t>(i)];
  }
  int spatial() const { return spatial_; }
  const batch_config& batching() const { return batch_; }
  double threshold() const { return threshold_; }
  bool flags_invalid(double joint_d) const { return joint_d > threshold_; }
  const std::vector<layer_validator_view>& layers() const { return layers_; }
  /// The weighted combiner; weighted().valid() is false when the bank
  /// carries no weights.
  const weighted_joint_view& weighted() const { return weighted_; }
  /// The backing snapshot, or nullptr for builder-backed banks.
  const std::shared_ptr<const snapshot_view>& snapshot() const {
    return snap_;
  }

 private:
  std::vector<layer_validator_view> layers_;
  std::vector<int> probe_indices_;
  int spatial_{1};
  batch_config batch_{};
  double threshold_{0.0};
  weighted_joint_view weighted_;
  /// Keeps the mapped file alive for snapshot-backed banks.
  std::shared_ptr<const snapshot_view> snap_;
};

}  // namespace dv
