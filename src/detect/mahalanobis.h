// Mahalanobis-distance detector (Lee et al., NeurIPS 2018), an additional
// statistical baseline beyond the paper's Table VII.
//
// Fits class-conditional Gaussians with a tied covariance on the
// penultimate-layer (last probe) features of correctly classified training
// images. The anomaly score of a test input is the minimum squared
// Mahalanobis distance over classes (the basic, single-layer variant of Lee
// et al. without input preprocessing).
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_config.h"
#include "data/dataset.h"
#include "detect/detector.h"
#include "nn/model.h"

namespace dv {

struct mahalanobis_config {
  std::int64_t max_train_per_class{400};
  double ridge{1e-2};  // covariance shrinkage toward the identity
  std::uint64_t seed{19};
  batch_config batch{};
};

class mahalanobis_detector : public anomaly_detector {
 public:
  mahalanobis_detector(sequential& model, const dataset& train,
                       const mahalanobis_config& config);

  double score(const tensor& image) override;
  std::vector<double> do_score_batch(const tensor& images) override;
  std::vector<double> do_score_activations(
      const activation_batch& acts) override;
  std::string name() const override { return "mahalanobis"; }

  int num_classes() const { return static_cast<int>(means_.size()); }

 private:
  sequential& model_;
  batch_config batch_;
  std::vector<std::vector<double>> means_;  // per class
  std::vector<double> chol_;                // tied covariance factor [d, d]
  std::int64_t dim_{0};
};

}  // namespace dv
