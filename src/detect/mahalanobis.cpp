#include "detect/mahalanobis.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/activation_batch.h"
#include "tensor/linalg.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dv {

namespace {
tensor last_probe_features(sequential& model, const tensor& images) {
  (void)model.forward(images, false);
  const auto probes = model.probes();
  if (probes.empty()) {
    throw std::invalid_argument{"mahalanobis_detector: model has no probes"};
  }
  tensor feat = *probes.back();
  return feat.reshape({feat.extent(0), feat.numel() / feat.extent(0)});
}
}  // namespace

mahalanobis_detector::mahalanobis_detector(sequential& model,
                                           const dataset& train,
                                           const mahalanobis_config& config)
    : model_{model}, batch_{config.batch} {
  rng gen{config.seed};

  // Correctly classified training rows per class (Lee et al. fit on the
  // training set; we match the paper's Algorithm-1 filtering convention).
  std::vector<std::vector<std::int64_t>> per_class(
      static_cast<std::size_t>(train.num_classes));
  constexpr std::int64_t batch = 128;
  for (std::int64_t begin = 0; begin < train.size(); begin += batch) {
    const std::int64_t end = std::min(train.size(), begin + batch);
    const auto preds = model.predict(train.images.slice_rows(begin, end));
    for (std::int64_t i = begin; i < end; ++i) {
      const auto y = train.labels[static_cast<std::size_t>(i)];
      if (preds[static_cast<std::size_t>(i - begin)] == y) {
        per_class[static_cast<std::size_t>(y)].push_back(i);
      }
    }
  }

  means_.resize(per_class.size());
  tensor pooled_centered;  // all centered features for the tied covariance
  std::int64_t total_rows = 0;
  std::vector<tensor> class_feats(per_class.size());
  for (std::size_t k = 0; k < per_class.size(); ++k) {
    auto& rows = per_class[k];
    if (rows.size() < 2) {
      throw std::runtime_error{"mahalanobis_detector: class too small"};
    }
    gen.shuffle_indices(rows.size(), [&](std::size_t a, std::size_t b) {
      std::swap(rows[a], rows[b]);
    });
    if (config.max_train_per_class > 0 &&
        rows.size() > static_cast<std::size_t>(config.max_train_per_class)) {
      rows.resize(static_cast<std::size_t>(config.max_train_per_class));
    }
    const dataset sub = train.subset(rows);
    tensor feats;
    std::int64_t cursor = 0;
    for (std::int64_t begin = 0; begin < sub.size(); begin += batch) {
      const std::int64_t end = std::min(sub.size(), begin + batch);
      const tensor f =
          last_probe_features(model_, sub.images.slice_rows(begin, end));
      if (feats.empty()) feats = tensor{{sub.size(), f.extent(1)}};
      std::copy_n(f.data(), f.numel(), feats.data() + cursor * f.extent(1));
      cursor += f.extent(0);
    }
    means_[k] = column_means(feats);
    class_feats[k] = std::move(feats);
    total_rows += class_feats[k].extent(0);
  }
  dim_ = class_feats[0].extent(1);

  // Tied covariance: average of within-class scatter.
  pooled_centered = tensor{{total_rows, dim_}};
  std::int64_t cursor = 0;
  for (std::size_t k = 0; k < class_feats.size(); ++k) {
    const tensor& f = class_feats[k];
    for (std::int64_t i = 0; i < f.extent(0); ++i) {
      float* dst = pooled_centered.data() + (cursor + i) * dim_;
      const float* src = f.data() + i * dim_;
      for (std::int64_t j = 0; j < dim_; ++j) {
        dst[j] = src[j] -
                 static_cast<float>(means_[k][static_cast<std::size_t>(j)]);
      }
    }
    cursor += f.extent(0);
  }
  const std::vector<double> zeros(static_cast<std::size_t>(dim_), 0.0);
  chol_ = covariance(pooled_centered, zeros, config.ridge);
  cholesky_decompose(chol_, dim_);
  log_debug() << "mahalanobis: d=" << dim_ << " rows=" << total_rows;
}

double mahalanobis_detector::score(const tensor& image) {
  tensor batch = image.reshaped(
      {1, image.extent(0), image.extent(1), image.extent(2)});
  return score_batch(batch).front();
}

std::vector<double> mahalanobis_detector::do_score_batch(const tensor& images) {
  const std::int64_t n = images.extent(0);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t begin = 0; begin < n; begin += batch_.max_batch) {
    const std::int64_t end = std::min<std::int64_t>(n, begin + batch_.max_batch);
    const auto part = do_score_activations(
        extract_activations(model_, images.slice_rows(begin, end)));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<double> mahalanobis_detector::do_score_activations(
    const activation_batch& acts) {
  const std::int64_t n = acts.size();
  const tensor feat = acts.last_probe_features();
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    const std::span<const float> x{feat.data() + i * dim_,
                                   static_cast<std::size_t>(dim_)};
    for (const auto& mu : means_) {
      best = std::min(best, mahalanobis_squared(chol_, dim_, x, mu));
    }
    out.push_back(best);
  }
  return out;
}

}  // namespace dv
