#include "detect/feature_squeeze.h"

#include <algorithm>
#include <cmath>

#include "core/activation_batch.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace dv {

feature_squeezing_detector::feature_squeezing_detector(
    sequential& model, std::vector<std::unique_ptr<squeezer>> squeezers)
    : model_{model}, squeezers_{std::move(squeezers)} {}

std::vector<std::unique_ptr<squeezer>>
feature_squeezing_detector::standard_bank(bool greyscale) {
  std::vector<std::unique_ptr<squeezer>> out;
  if (greyscale) {
    out.push_back(std::make_unique<bit_depth_squeezer>(1));
    out.push_back(std::make_unique<median_squeezer>(2));
  } else {
    out.push_back(std::make_unique<bit_depth_squeezer>(5));
    out.push_back(std::make_unique<median_squeezer>(2));
    out.push_back(std::make_unique<mean_squeezer>(3));
  }
  return out;
}

double feature_squeezing_detector::score(const tensor& image) {
  tensor batch = image.reshaped(
      {1, image.extent(0), image.extent(1), image.extent(2)});
  return score_batch(batch).front();
}

std::vector<double> feature_squeezing_detector::do_score_activations(
    const activation_batch& acts) {
  // The base softmax comes for free from the shared logits; only the
  // squeezed variants need extra forward passes.
  tensor base = acts.logits;
  softmax_rows(base);
  return score_against_base(acts.images, base);
}

std::vector<double> feature_squeezing_detector::do_score_batch(
    const tensor& images) {
  return score_against_base(images, batched_probabilities(model_, images));
}

std::vector<double> feature_squeezing_detector::score_against_base(
    const tensor& images, const tensor& base) {
  const std::int64_t n = images.extent(0);
  const std::int64_t c = base.extent(1);
  std::vector<double> best(static_cast<std::size_t>(n), 0.0);
  for (const auto& sq : squeezers_) {
    tensor squeezed{images.shape()};
    for (std::int64_t i = 0; i < n; ++i) {
      squeezed.set_sample(i, sq->apply(images.sample(i)));
    }
    const tensor probs = batched_probabilities(model_, squeezed);
    for (std::int64_t i = 0; i < n; ++i) {
      const double l1 =
          l1_distance(base.data() + i * c, probs.data() + i * c, c);
      auto& slot = best[static_cast<std::size_t>(i)];
      slot = std::max(slot, l1);
    }
  }
  return best;
}

}  // namespace dv
