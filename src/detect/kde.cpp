#include "detect/kde.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/activation_batch.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dv {

namespace {
/// The penultimate hidden representation of a batch: the last probe output,
/// flattened to [N, d].
tensor last_probe_features(sequential& model, const tensor& images) {
  (void)model.forward(images, false);
  const auto probes = model.probes();
  if (probes.empty()) {
    throw std::invalid_argument{"kde_detector: model has no probes"};
  }
  tensor feat = *probes.back();
  return feat.reshape({feat.extent(0), feat.numel() / feat.extent(0)});
}

double median_pairwise_distance(const tensor& features, rng& gen) {
  const std::int64_t n = features.extent(0);
  const std::int64_t d = features.extent(1);
  std::vector<double> dist;
  const std::int64_t pairs = std::min<std::int64_t>(2000, n * (n - 1) / 2);
  dist.reserve(static_cast<std::size_t>(pairs));
  for (std::int64_t k = 0; k < pairs; ++k) {
    const auto i = static_cast<std::int64_t>(gen.uniform_int(0, static_cast<int>(n - 1)));
    auto j = static_cast<std::int64_t>(gen.uniform_int(0, static_cast<int>(n - 2)));
    if (j >= i) ++j;
    dist.push_back(std::sqrt(
        squared_distance(features.data() + i * d, features.data() + j * d, d)));
  }
  auto mid = dist.begin() + static_cast<std::ptrdiff_t>(dist.size() / 2);
  std::nth_element(dist.begin(), mid, dist.end());
  return std::max(*mid, 1e-6);
}
}  // namespace

kde_detector::kde_detector(sequential& model, const dataset& train,
                           const kde_config& config)
    : model_{model}, batch_{config.batch} {
  rng gen{config.seed};

  // Keep only correctly classified training images, grouped per class.
  std::vector<std::vector<std::int64_t>> per_class(
      static_cast<std::size_t>(train.num_classes));
  {
    constexpr std::int64_t batch = 128;
    for (std::int64_t begin = 0; begin < train.size(); begin += batch) {
      const std::int64_t end = std::min(train.size(), begin + batch);
      const auto preds = model.predict(train.images.slice_rows(begin, end));
      for (std::int64_t i = begin; i < end; ++i) {
        const auto y = train.labels[static_cast<std::size_t>(i)];
        if (preds[static_cast<std::size_t>(i - begin)] == y) {
          per_class[static_cast<std::size_t>(y)].push_back(i);
        }
      }
    }
  }

  class_features_.resize(per_class.size());
  bandwidth_.resize(per_class.size());
  for (std::size_t k = 0; k < per_class.size(); ++k) {
    auto& rows = per_class[k];
    if (rows.size() < 2) {
      throw std::runtime_error{"kde_detector: class with < 2 usable samples"};
    }
    gen.shuffle_indices(rows.size(), [&](std::size_t a, std::size_t b) {
      std::swap(rows[a], rows[b]);
    });
    if (config.max_train_per_class > 0 &&
        rows.size() > static_cast<std::size_t>(config.max_train_per_class)) {
      rows.resize(static_cast<std::size_t>(config.max_train_per_class));
    }
    // Extract features in batches.
    tensor feats;
    std::int64_t cursor = 0;
    constexpr std::int64_t batch = 128;
    const dataset sub = train.subset(rows);
    for (std::int64_t begin = 0; begin < sub.size(); begin += batch) {
      const std::int64_t end = std::min(sub.size(), begin + batch);
      const tensor f =
          last_probe_features(model_, sub.images.slice_rows(begin, end));
      if (feats.empty()) feats = tensor{{sub.size(), f.extent(1)}};
      std::copy_n(f.data(), f.numel(), feats.data() + cursor * f.extent(1));
      cursor += f.extent(0);
    }
    bandwidth_[k] = config.bandwidth > 0.0
                        ? config.bandwidth
                        : median_pairwise_distance(feats, gen);
    class_features_[k] = std::move(feats);
    log_debug() << "kde: class " << k << " n=" << rows.size() << " sigma="
                << bandwidth_[k];
  }
}

double kde_detector::score(const tensor& image) {
  tensor batch = image.reshaped(
      {1, image.extent(0), image.extent(1), image.extent(2)});
  return score_batch(batch).front();
}

std::vector<double> kde_detector::do_score_batch(const tensor& images) {
  const std::int64_t n = images.extent(0);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t begin = 0; begin < n; begin += batch_.max_batch) {
    const std::int64_t end = std::min<std::int64_t>(n, begin + batch_.max_batch);
    const auto part =
        do_score_activations(extract_activations(model_, images.slice_rows(begin, end)));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<double> kde_detector::do_score_activations(
    const activation_batch& acts) {
  const std::int64_t n = acts.size();
  const auto& preds = acts.predictions;
  const tensor feat = acts.last_probe_features();
  const std::int64_t d = feat.extent(1);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::size_t>(preds[static_cast<std::size_t>(i)]);
    const tensor& ref = class_features_[cls];
    const double inv_two_sigma2 =
        1.0 / (2.0 * bandwidth_[cls] * bandwidth_[cls]);
    const std::int64_t m = ref.extent(0);
    // log-sum-exp of -||x - x_i||^2 / (2 sigma^2), numerically stable.
    // All m squared distances batch through the SIMD row kernel (bitwise
    // identical to per-row squared_distance calls).
    std::vector<double> exps(static_cast<std::size_t>(m));
    squared_distance_row(feat.data() + i * d, ref.data(), m, d, exps.data());
    double max_e = -1e300;
    for (std::int64_t t = 0; t < m; ++t) {
      const double e = -exps[static_cast<std::size_t>(t)] * inv_two_sigma2;
      exps[static_cast<std::size_t>(t)] = e;
      max_e = std::max(max_e, e);
    }
    double acc = 0.0;
    for (const double e : exps) acc += std::exp(e - max_e);
    const double log_density =
        max_e + std::log(acc / static_cast<double>(m));
    out.push_back(-log_density);  // higher = less dense = more anomalous
  }
  return out;
}

}  // namespace dv
