// Feature squeezing detector (Xu, Evans, Qi — NDSS 2018), the paper's main
// prediction-inconsistency baseline (Table VII and VIII).
//
// The detector compares the model's softmax output on the original input
// with its outputs on squeezed variants; the score is the maximum L1
// distance over squeezers. Legitimate inputs are insensitive to squeezing;
// adversarial inputs (and, as the paper shows, far fewer real-world corner
// cases than expected) move significantly.
#pragma once

#include <memory>

#include "detect/detector.h"
#include "detect/squeezers.h"
#include "nn/model.h"

namespace dv {

class feature_squeezing_detector : public anomaly_detector {
 public:
  /// `model` must outlive the detector.
  feature_squeezing_detector(sequential& model,
                             std::vector<std::unique_ptr<squeezer>> squeezers);

  /// The per-dataset squeezer banks used in the original paper:
  /// greyscale (MNIST-like): 1-bit depth + 2x2 median;
  /// color: 5-bit depth + 2x2 median + 3x3 mean (for non-local means).
  static std::vector<std::unique_ptr<squeezer>> standard_bank(bool greyscale);

  double score(const tensor& image) override;
  std::vector<double> do_score_batch(const tensor& images) override;
  std::vector<double> do_score_activations(
      const activation_batch& acts) override;
  std::string name() const override { return "feature_squeezing"; }

 private:
  /// Max-L1 scores of `images` against precomputed base softmax `base`.
  std::vector<double> score_against_base(const tensor& images,
                                         const tensor& base);

  sequential& model_;
  std::vector<std::unique_ptr<squeezer>> squeezers_;
};

}  // namespace dv
