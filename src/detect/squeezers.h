// Input squeezers for the feature-squeezing baseline (Xu et al., NDSS'18).
//
// A squeezer is a cheap "hard-coded" input filter that collapses needless
// input resolution. bit-depth reduction quantizes the color depth; median
// smoothing removes pixel-level noise; mean smoothing stands in for the
// non-local-means spatial smoother used on color datasets (a substitution
// recorded in DESIGN.md §3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace dv {

class squeezer {
 public:
  virtual ~squeezer() = default;
  squeezer() = default;
  squeezer(const squeezer&) = delete;
  squeezer& operator=(const squeezer&) = delete;

  /// Applies the squeezer to a [C,H,W] image in [0,1].
  virtual tensor apply(const tensor& image) const = 0;
  virtual std::string name() const = 0;
};

/// Quantizes pixel values to `bits` bits of depth.
class bit_depth_squeezer : public squeezer {
 public:
  explicit bit_depth_squeezer(int bits);
  tensor apply(const tensor& image) const override;
  std::string name() const override;

 private:
  int bits_;
  float levels_;
};

/// k x k median filter with edge-replicate padding, per channel.
class median_squeezer : public squeezer {
 public:
  explicit median_squeezer(int window);
  tensor apply(const tensor& image) const override;
  std::string name() const override;

 private:
  int window_;
};

/// k x k mean (box) filter with edge-replicate padding; stands in for the
/// non-local means smoother of the original paper.
class mean_squeezer : public squeezer {
 public:
  explicit mean_squeezer(int window);
  tensor apply(const tensor& image) const override;
  std::string name() const override;

 private:
  int window_;
};

}  // namespace dv
