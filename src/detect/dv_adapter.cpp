#include "detect/dv_adapter.h"

namespace dv {

double deep_validation_detector::score(const tensor& image) {
  return validator_.joint_discrepancy(model_, image);
}

std::vector<double> deep_validation_detector::do_score_batch(
    const tensor& images) {
  return validator_.evaluate(model_, images).joint;
}

std::vector<double> deep_validation_detector::do_score_activations(
    const activation_batch& acts) {
  return validator_.evaluate(acts).joint;
}

}  // namespace dv
