// Kernel density estimation detector (Feinman et al., 2017), the paper's
// statistical-detection baseline (Table VII).
//
// Gaussian KDE is fit on the penultimate-layer (last hidden probe) features
// of correctly classified training images, conditioned on the class. The
// anomaly score of a test image is the negative log kernel density under
// the KDE of its *predicted* class.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_config.h"
#include "data/dataset.h"
#include "detect/detector.h"
#include "nn/model.h"

namespace dv {

struct kde_config {
  /// Gaussian bandwidth sigma; <= 0 selects the median-heuristic bandwidth
  /// (median pairwise distance within each class).
  double bandwidth{0.0};
  /// Per-class cap on stored training features.
  std::int64_t max_train_per_class{400};
  std::uint64_t seed{13};
  batch_config batch{};
};

class kde_detector : public anomaly_detector {
 public:
  /// Fits on the training set; `model` must outlive the detector.
  kde_detector(sequential& model, const dataset& train,
               const kde_config& config);

  double score(const tensor& image) override;
  std::vector<double> do_score_batch(const tensor& images) override;
  std::vector<double> do_score_activations(
      const activation_batch& acts) override;
  std::string name() const override { return "kernel_density"; }

  double bandwidth(int cls) const {
    return bandwidth_[static_cast<std::size_t>(cls)];
  }

 private:
  sequential& model_;
  batch_config batch_;
  std::vector<tensor> class_features_;  // per class [n_k, d]
  std::vector<double> bandwidth_;       // per class sigma
};

}  // namespace dv
