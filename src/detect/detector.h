// Common interface for runtime anomaly detectors.
//
// A detector maps an input image to a real-valued anomaly score — higher
// means more likely to be an error-inducing input. Thresholding the score
// yields the binary valid/invalid decision; the evaluation toolkit computes
// ROC-AUC directly from the scores.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace dv {

class anomaly_detector {
 public:
  virtual ~anomaly_detector() = default;
  anomaly_detector() = default;
  anomaly_detector(const anomaly_detector&) = delete;
  anomaly_detector& operator=(const anomaly_detector&) = delete;

  /// Anomaly score of one [C,H,W] image (higher = more anomalous).
  virtual double score(const tensor& image) = 0;

  /// Scores a batch [N,C,H,W]; the default loops over score(). Detectors
  /// with cheaper batched paths override this.
  virtual std::vector<double> score_batch(const tensor& images);

  virtual std::string name() const = 0;
};

}  // namespace dv
