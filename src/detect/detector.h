// Common interface for runtime anomaly detectors.
//
// A detector maps an input image to a real-valued anomaly score — higher
// means more likely to be an error-inducing input. Thresholding the score
// yields the binary valid/invalid decision; the evaluation toolkit computes
// ROC-AUC directly from the scores.
#pragma once

#include <string>
#include <vector>

#include "core/activation_batch.h"
#include "tensor/tensor.h"

namespace dv {

class anomaly_detector {
 public:
  virtual ~anomaly_detector() = default;
  anomaly_detector() = default;
  anomaly_detector(const anomaly_detector&) = delete;
  anomaly_detector& operator=(const anomaly_detector&) = delete;

  /// Anomaly score of one [C,H,W] image (higher = more anomalous).
  virtual double score(const tensor& image) = 0;

  /// Scores a batch [N,C,H,W]. Non-virtual: records per-detector batch
  /// timing and image counts into the metrics registry (when DV_METRICS
  /// is on), then delegates to do_score_batch().
  std::vector<double> score_batch(const tensor& images);

  /// Scores a batch from pre-extracted activations so one probe forward
  /// pass is shared across the validator and N detectors (the serving
  /// layer's batch path, docs/SERVING.md). Non-virtual metrics wrapper
  /// around do_score_activations(); records into the same per-detector
  /// series as score_batch().
  std::vector<double> score_activations(const activation_batch& acts);

  virtual std::string name() const = 0;

 protected:
  /// Batch implementation; the default loops over score(). Detectors with
  /// cheaper batched paths override this.
  virtual std::vector<double> do_score_batch(const tensor& images);

  /// Activation-batch implementation; the default re-runs the model on
  /// acts.images via do_score_batch(). Detectors that only need probe
  /// features or logits override this to skip the forward pass.
  virtual std::vector<double> do_score_activations(
      const activation_batch& acts);
};

/// Records per-detector confusion counters into the metrics registry
/// (dv_detector_{true,false}_{positives,negatives}_total{detector="..."},
/// plus the derived dv_detector_tpr / dv_detector_fpr gauges) from scored
/// anomalous / clean populations and a decision threshold (score >=
/// threshold flags the input). No-op when metrics are disabled.
void record_detection_counts(const std::string& detector,
                             const std::vector<double>& anomalous_scores,
                             const std::vector<double>& clean_scores,
                             double threshold);

}  // namespace dv
