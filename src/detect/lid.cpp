#include "detect/lid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/activation_batch.h"
#include "core/probe_reducer.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dv {

namespace {

/// Reduced probe features of a batch for every probe layer.
std::vector<tensor> reduced_probes(sequential& model, const tensor& images,
                                   int spatial) {
  (void)model.forward(images, false);
  const auto probes = model.probes();
  std::vector<tensor> out;
  out.reserve(probes.size());
  for (const tensor* p : probes) out.push_back(reduce_probe(*p, spatial));
  return out;
}

/// Maximum-likelihood LID estimate from k nearest-neighbor distances.
double lid_estimate(const float* x, const tensor& reference, int k) {
  const std::int64_t m = reference.extent(0);
  const std::int64_t d = reference.extent(1);
  std::vector<double> dist(static_cast<std::size_t>(m));
  squared_distance_row(x, reference.data(), m, d, dist.data());
  const auto kk = static_cast<std::size_t>(
      std::min<std::int64_t>(k, m - 1));
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(kk),
                    dist.end());
  const double rk = std::sqrt(std::max(dist[kk - 1], 1e-24));
  double acc = 0.0;
  for (std::size_t i = 0; i < kk; ++i) {
    const double ri = std::sqrt(std::max(dist[i], 1e-24));
    acc += std::log(std::max(ri / rk, 1e-12));
  }
  if (acc >= -1e-12) return 1e6;  // all neighbors coincide: degenerate
  return -static_cast<double>(kk) / acc;
}

}  // namespace

lid_detector::lid_detector(sequential& model, const dataset& train,
                           const tensor& positives, const tensor& negatives,
                           const lid_config& config)
    : model_{model}, config_{config} {
  // Reference batch: random clean training images.
  rng gen{config.seed};
  const auto ref_rows = sample_indices(
      train.size(), std::min(config.reference_size, train.size()), gen);
  const dataset ref = train.subset(ref_rows);
  // Extract reduced reference features layer by layer (single pass).
  constexpr std::int64_t batch = 128;
  for (std::int64_t begin = 0; begin < ref.size(); begin += batch) {
    const std::int64_t end = std::min(ref.size(), begin + batch);
    auto feats = reduced_probes(model_, ref.images.slice_rows(begin, end),
                                config.spatial);
    if (reference_.empty()) {
      reference_.resize(feats.size());
      for (std::size_t l = 0; l < feats.size(); ++l) {
        reference_[l] = tensor{{ref.size(), feats[l].extent(1)}};
      }
    }
    for (std::size_t l = 0; l < feats.size(); ++l) {
      std::copy_n(feats[l].data(), feats[l].numel(),
                  reference_[l].data() + begin * feats[l].extent(1));
    }
  }

  // Train the logistic combiner on LID features of knowns.
  auto pos_feats = lid_features(positives);
  auto neg_feats = lid_features(negatives);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (auto& f : pos_feats) {
    x.push_back(std::move(f));
    y.push_back(1);
  }
  for (auto& f : neg_feats) {
    x.push_back(std::move(f));
    y.push_back(0);
  }
  combiner_.fit(x, y);
  log_debug() << "lid: " << reference_.size() << " layers, combiner fitted on "
              << x.size() << " examples";
}

std::vector<std::vector<double>> lid_detector::lid_features(
    const tensor& images) {
  const std::int64_t n = images.extent(0);
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t begin = 0; begin < n; begin += config_.batch.max_batch) {
    const std::int64_t end =
        std::min<std::int64_t>(n, begin + config_.batch.max_batch);
    auto rows = lid_rows(
        extract_activations(model_, images.slice_rows(begin, end)));
    for (auto& row : rows) out.push_back(std::move(row));
  }
  return out;
}

std::vector<std::vector<double>> lid_detector::lid_rows(
    const activation_batch& acts) {
  const std::int64_t n = acts.size();
  std::vector<std::vector<double>> out(static_cast<std::size_t>(n));
  for (int l = 0; l < acts.probe_count(); ++l) {
    const tensor feat = acts.probe_features(l, config_.spatial);
    const std::int64_t d = feat.extent(1);
    for (std::int64_t i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)].push_back(
          lid_estimate(feat.data() + i * d,
                       reference_[static_cast<std::size_t>(l)],
                       config_.neighbors));
    }
  }
  return out;
}

double lid_detector::score(const tensor& image) {
  tensor batch = image.reshaped(
      {1, image.extent(0), image.extent(1), image.extent(2)});
  return score_batch(batch).front();
}

std::vector<double> lid_detector::do_score_batch(const tensor& images) {
  const auto feats = lid_features(images);
  std::vector<double> out;
  out.reserve(feats.size());
  for (const auto& row : feats) out.push_back(combiner_.decision(row));
  return out;
}

std::vector<double> lid_detector::do_score_activations(
    const activation_batch& acts) {
  const auto feats = lid_rows(acts);
  std::vector<double> out;
  out.reserve(feats.size());
  for (const auto& row : feats) out.push_back(combiner_.decision(row));
  return out;
}

}  // namespace dv
