#include "detect/detector.h"

namespace dv {

std::vector<double> anomaly_detector::score_batch(const tensor& images) {
  const std::int64_t n = images.extent(0);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    out.push_back(score(images.sample(i)));
  }
  return out;
}

}  // namespace dv
