#include "detect/detector.h"

#include "util/metrics.h"
#include "util/trace.h"

namespace dv {

namespace {
std::string labeled(const char* base, const std::string& detector) {
  return std::string{base} + "{detector=\"" + detector + "\"}";
}
}  // namespace

std::vector<double> anomaly_detector::score_batch(const tensor& images) {
  if (!metrics::enabled()) return do_score_batch(images);
  trace_span span{"detect.score_batch"};
  metrics::histogram* batch_seconds =
      metrics::get_histogram(labeled("dv_detector_score_batch_seconds", name()),
                       metrics::histogram_options::latency());
  const std::int64_t start_ns = metrics::now_ns();
  std::vector<double> out = do_score_batch(images);
  batch_seconds->observe(
      static_cast<double>(metrics::now_ns() - start_ns) * 1e-9);
  metrics::count(labeled("dv_detector_images_scored_total", name()),
               static_cast<std::uint64_t>(images.extent(0)));
  return out;
}

std::vector<double> anomaly_detector::score_activations(
    const activation_batch& acts) {
  if (!metrics::enabled()) return do_score_activations(acts);
  trace_span span{"detect.score_activations"};
  metrics::histogram* batch_seconds =
      metrics::get_histogram(labeled("dv_detector_score_batch_seconds", name()),
                       metrics::histogram_options::latency());
  const std::int64_t start_ns = metrics::now_ns();
  std::vector<double> out = do_score_activations(acts);
  batch_seconds->observe(
      static_cast<double>(metrics::now_ns() - start_ns) * 1e-9);
  metrics::count(labeled("dv_detector_images_scored_total", name()),
               static_cast<std::uint64_t>(acts.size()));
  return out;
}

std::vector<double> anomaly_detector::do_score_activations(
    const activation_batch& acts) {
  return do_score_batch(acts.images);
}

std::vector<double> anomaly_detector::do_score_batch(const tensor& images) {
  const std::int64_t n = images.extent(0);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    out.push_back(score(images.sample(i)));
  }
  return out;
}

void record_detection_counts(const std::string& detector,
                             const std::vector<double>& anomalous_scores,
                             const std::vector<double>& clean_scores,
                             double threshold) {
  if (!metrics::enabled()) return;
  std::uint64_t tp = 0, fn = 0, fp = 0, tn = 0;
  for (const double s : anomalous_scores) (s >= threshold ? tp : fn) += 1;
  for (const double s : clean_scores) (s >= threshold ? fp : tn) += 1;
  metrics::count(labeled("dv_detector_true_positives_total", detector), tp);
  metrics::count(labeled("dv_detector_false_negatives_total", detector), fn);
  metrics::count(labeled("dv_detector_false_positives_total", detector), fp);
  metrics::count(labeled("dv_detector_true_negatives_total", detector), tn);
  if (tp + fn > 0) {
    metrics::set(labeled("dv_detector_tpr", detector),
               static_cast<double>(tp) / static_cast<double>(tp + fn));
  }
  if (fp + tn > 0) {
    metrics::set(labeled("dv_detector_fpr", detector),
               static_cast<double>(fp) / static_cast<double>(fp + tn));
  }
}

}  // namespace dv
