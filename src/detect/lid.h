// Local Intrinsic Dimensionality detector (Ma et al., ICLR 2018), a second
// statistical baseline beyond the paper's Table VII.
//
// For every probe layer, the LID of a test input is estimated from its k
// nearest neighbors within a reference batch of clean training features:
//   LID(x) = -( (1/k) * sum_i log( r_i(x) / r_k(x) ) )^{-1}.
// A logistic regression over the per-layer LID vector is trained to
// separate clean inputs from *known* anomalies (FGSM adversarials in Ma et
// al.). The paper (§II-C) points out that detectors of this family need
// anomalous training data and generalize poorly to unseen anomaly types —
// this implementation lets the Table VII bench demonstrate exactly that
// generalization gap on real-world corner cases.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_config.h"
#include "data/dataset.h"
#include "detect/detector.h"
#include "nn/logistic.h"
#include "nn/model.h"

namespace dv {

struct lid_config {
  int neighbors{20};
  /// Size of the clean reference batch per layer.
  std::int64_t reference_size{256};
  /// Probe reducer resolution for convolutional layers (as in core).
  int spatial{1};
  std::uint64_t seed{29};
  batch_config batch{};
};

class lid_detector : public anomaly_detector {
 public:
  /// `train` provides the reference features; `positives` are the known
  /// anomalous images the combiner is trained on (e.g. FGSM adversarials);
  /// `negatives` are clean images for the combiner.
  lid_detector(sequential& model, const dataset& train, const tensor& positives,
               const tensor& negatives, const lid_config& config);

  double score(const tensor& image) override;
  std::vector<double> do_score_batch(const tensor& images) override;
  std::vector<double> do_score_activations(
      const activation_batch& acts) override;
  std::string name() const override { return "lid"; }

  int layers() const { return static_cast<int>(reference_.size()); }

  /// Per-layer LID estimates of a batch (rows: images, cols: layers).
  std::vector<std::vector<double>> lid_features(const tensor& images);

 private:
  /// LID rows of one already-extracted activation batch.
  std::vector<std::vector<double>> lid_rows(const activation_batch& acts);

  sequential& model_;
  lid_config config_;
  std::vector<tensor> reference_;  // per layer [m, d] reduced clean features
  logistic_regression combiner_;
};

}  // namespace dv
