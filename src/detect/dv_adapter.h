// Adapts the Deep Validation joint validator to the anomaly_detector
// interface so all detectors share one evaluation path.
#pragma once

#include "core/deep_validator.h"
#include "detect/detector.h"

namespace dv {

class deep_validation_detector : public anomaly_detector {
 public:
  /// Both references must outlive the detector.
  deep_validation_detector(sequential& model, const deep_validator& validator)
      : model_{model}, validator_{validator} {}

  double score(const tensor& image) override;
  std::vector<double> do_score_batch(const tensor& images) override;
  std::vector<double> do_score_activations(
      const activation_batch& acts) override;
  std::string name() const override { return "deep_validation"; }

 private:
  sequential& model_;
  const deep_validator& validator_;
};

}  // namespace dv
