#include "detect/squeezers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dv {

namespace {
/// Clamped read with edge replication.
float read_clamped(const float* plane, std::int64_t h, std::int64_t w,
                   std::int64_t y, std::int64_t x) {
  y = std::clamp<std::int64_t>(y, 0, h - 1);
  x = std::clamp<std::int64_t>(x, 0, w - 1);
  return plane[y * w + x];
}
}  // namespace

bit_depth_squeezer::bit_depth_squeezer(int bits) : bits_{bits} {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument{"bit_depth_squeezer: bits in [1,16]"};
  }
  levels_ = static_cast<float>((1 << bits) - 1);
}

tensor bit_depth_squeezer::apply(const tensor& image) const {
  tensor out = image;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] = std::round(out[i] * levels_) / levels_;
  }
  return out;
}

std::string bit_depth_squeezer::name() const {
  return "bit_depth_" + std::to_string(bits_);
}

median_squeezer::median_squeezer(int window) : window_{window} {
  if (window < 2 || window > 9) {
    throw std::invalid_argument{"median_squeezer: window in [2,9]"};
  }
}

tensor median_squeezer::apply(const tensor& image) const {
  if (image.dim() != 3) {
    throw std::invalid_argument{"median_squeezer: expected [C,H,W]"};
  }
  const std::int64_t c = image.extent(0), h = image.extent(1),
                     w = image.extent(2);
  tensor out{image.shape()};
  std::vector<float> values(static_cast<std::size_t>(window_ * window_));
  // Window anchored like scipy's median_filter: offset floor((k-1)/2).
  const int lo = -(window_ - 1) / 2;
  const int hi = window_ / 2;
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const float* plane = image.data() + ch * h * w;
    float* oplane = out.data() + ch * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        std::size_t k = 0;
        for (int dy = lo; dy <= hi; ++dy) {
          for (int dx = lo; dx <= hi; ++dx) {
            values[k++] = read_clamped(plane, h, w, y + dy, x + dx);
          }
        }
        auto mid = values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2);
        std::nth_element(values.begin(), mid, values.end());
        float median = *mid;
        if (values.size() % 2 == 0) {
          // Even windows average the two central order statistics.
          const float upper = median;
          auto mid2 = values.begin() +
                      static_cast<std::ptrdiff_t>(values.size() / 2 - 1);
          std::nth_element(values.begin(), mid2, values.end());
          median = 0.5f * (upper + *mid2);
        }
        oplane[y * w + x] = median;
      }
    }
  }
  return out;
}

std::string median_squeezer::name() const {
  return "median_" + std::to_string(window_) + "x" + std::to_string(window_);
}

mean_squeezer::mean_squeezer(int window) : window_{window} {
  if (window < 2 || window > 9) {
    throw std::invalid_argument{"mean_squeezer: window in [2,9]"};
  }
}

tensor mean_squeezer::apply(const tensor& image) const {
  if (image.dim() != 3) {
    throw std::invalid_argument{"mean_squeezer: expected [C,H,W]"};
  }
  const std::int64_t c = image.extent(0), h = image.extent(1),
                     w = image.extent(2);
  tensor out{image.shape()};
  const int lo = -(window_ - 1) / 2;
  const int hi = window_ / 2;
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const float* plane = image.data() + ch * h * w;
    float* oplane = out.data() + ch * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        float acc = 0.0f;
        for (int dy = lo; dy <= hi; ++dy) {
          for (int dx = lo; dx <= hi; ++dx) {
            acc += read_clamped(plane, h, w, y + dy, x + dx);
          }
        }
        oplane[y * w + x] = acc * inv;
      }
    }
  }
  return out;
}

std::string mean_squeezer::name() const {
  return "mean_" + std::to_string(window_) + "x" + std::to_string(window_);
}

}  // namespace dv
