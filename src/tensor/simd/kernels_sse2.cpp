// SSE2 dispatch table. SSE2 is part of the x86-64 baseline, so this TU
// needs no extra compiler flags; on non-x86 targets it degrades to the
// generic implementations (and the level is never selected, because the
// cpuid probe reports sse2=false there).
//
// Reductions run the canonical 8-lane order as four 2-wide double
// accumulators; the micro-kernel processes the 4x16 tile in four 4-column
// passes. No FMA anywhere (see DESIGN.md §12).
#include "tensor/simd/kernels_generic.h"
#include "tensor/simd/simd.h"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace dv {
namespace {

/// Low / high float pairs widened to double: lanes {0,1} and {2,3}.
__m128d lo_pd(__m128 v) { return _mm_cvtps_pd(v); }
__m128d hi_pd(__m128 v) { return _mm_cvtps_pd(_mm_movehl_ps(v, v)); }

/// l0 + l1 of one 2-wide accumulator.
double pair_sum(__m128d v) {
  return _mm_cvtsd_f64(v) + _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
}

/// Canonical fold: (((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))) + tail.
double fold8(const __m128d* acc, double tail) {
  return ((pair_sum(acc[0]) + pair_sum(acc[1])) +
          (pair_sum(acc[2]) + pair_sum(acc[3]))) +
         tail;
}

void gemm_micro_sse2(std::int64_t kc, const float* ap, const float* bp,
                     float* acc) {
  // Four passes over the K panel, one per 4-column quarter: keeps the
  // live register set at 4 accumulators + a + b (the panels are L1
  // resident, so the re-reads are cheap).
  for (std::int64_t q = 0; q < 4; ++q) {
    float* acc0 = acc + 0 * simd_gemm_nr + q * 4;
    float* acc1 = acc + 1 * simd_gemm_nr + q * 4;
    float* acc2 = acc + 2 * simd_gemm_nr + q * 4;
    float* acc3 = acc + 3 * simd_gemm_nr + q * 4;
    __m128 c0 = _mm_loadu_ps(acc0);
    __m128 c1 = _mm_loadu_ps(acc1);
    __m128 c2 = _mm_loadu_ps(acc2);
    __m128 c3 = _mm_loadu_ps(acc3);
    const float* b = bp + q * 4;
    for (std::int64_t p = 0; p < kc; ++p) {
      const __m128 bv = _mm_loadu_ps(b + p * simd_gemm_nr);
      const float* a = ap + p * simd_gemm_mr;
      c0 = _mm_add_ps(c0, _mm_mul_ps(_mm_set1_ps(a[0]), bv));
      c1 = _mm_add_ps(c1, _mm_mul_ps(_mm_set1_ps(a[1]), bv));
      c2 = _mm_add_ps(c2, _mm_mul_ps(_mm_set1_ps(a[2]), bv));
      c3 = _mm_add_ps(c3, _mm_mul_ps(_mm_set1_ps(a[3]), bv));
    }
    _mm_storeu_ps(acc0, c0);
    _mm_storeu_ps(acc1, c1);
    _mm_storeu_ps(acc2, c2);
    _mm_storeu_ps(acc3, c3);
  }
}

double squared_distance_sse2(const float* a, const float* b, std::int64_t n) {
  __m128d acc[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd()};
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    const __m128 af0 = _mm_loadu_ps(a + i);
    const __m128 af1 = _mm_loadu_ps(a + i + 4);
    const __m128 bf0 = _mm_loadu_ps(b + i);
    const __m128 bf1 = _mm_loadu_ps(b + i + 4);
    const __m128d d0 = _mm_sub_pd(lo_pd(af0), lo_pd(bf0));
    const __m128d d1 = _mm_sub_pd(hi_pd(af0), hi_pd(bf0));
    const __m128d d2 = _mm_sub_pd(lo_pd(af1), lo_pd(bf1));
    const __m128d d3 = _mm_sub_pd(hi_pd(af1), hi_pd(bf1));
    acc[0] = _mm_add_pd(acc[0], _mm_mul_pd(d0, d0));
    acc[1] = _mm_add_pd(acc[1], _mm_mul_pd(d1, d1));
    acc[2] = _mm_add_pd(acc[2], _mm_mul_pd(d2, d2));
    acc[3] = _mm_add_pd(acc[3], _mm_mul_pd(d3, d3));
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    tail += d * d;
  }
  return fold8(acc, tail);
}

void squared_distance_row_sse2(const float* x, const float* rows,
                               std::int64_t m, std::int64_t d, double* out) {
  for (std::int64_t j = 0; j < m; ++j) {
    out[j] = squared_distance_sse2(x, rows + j * d, d);
  }
}

double dot_sse2(const float* a, const float* b, std::int64_t n) {
  __m128d acc[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd()};
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    const __m128 af0 = _mm_loadu_ps(a + i);
    const __m128 af1 = _mm_loadu_ps(a + i + 4);
    const __m128 bf0 = _mm_loadu_ps(b + i);
    const __m128 bf1 = _mm_loadu_ps(b + i + 4);
    acc[0] = _mm_add_pd(acc[0], _mm_mul_pd(lo_pd(af0), lo_pd(bf0)));
    acc[1] = _mm_add_pd(acc[1], _mm_mul_pd(hi_pd(af0), hi_pd(bf0)));
    acc[2] = _mm_add_pd(acc[2], _mm_mul_pd(lo_pd(af1), lo_pd(bf1)));
    acc[3] = _mm_add_pd(acc[3], _mm_mul_pd(hi_pd(af1), hi_pd(bf1)));
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) {
    tail += static_cast<double>(a[i]) * b[i];
  }
  return fold8(acc, tail);
}

double dot_f64_sse2(const double* a, const double* b, std::int64_t n) {
  __m128d acc[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd()};
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    acc[0] = _mm_add_pd(acc[0], _mm_mul_pd(_mm_loadu_pd(a + i),
                                           _mm_loadu_pd(b + i)));
    acc[1] = _mm_add_pd(acc[1], _mm_mul_pd(_mm_loadu_pd(a + i + 2),
                                           _mm_loadu_pd(b + i + 2)));
    acc[2] = _mm_add_pd(acc[2], _mm_mul_pd(_mm_loadu_pd(a + i + 4),
                                           _mm_loadu_pd(b + i + 4)));
    acc[3] = _mm_add_pd(acc[3], _mm_mul_pd(_mm_loadu_pd(a + i + 6),
                                           _mm_loadu_pd(b + i + 6)));
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) tail += a[i] * b[i];
  return fold8(acc, tail);
}

double l1_distance_sse2(const float* a, const float* b, std::int64_t n) {
  const __m128d sign = _mm_set1_pd(-0.0);
  __m128d acc[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd()};
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    const __m128 af0 = _mm_loadu_ps(a + i);
    const __m128 af1 = _mm_loadu_ps(a + i + 4);
    const __m128 bf0 = _mm_loadu_ps(b + i);
    const __m128 bf1 = _mm_loadu_ps(b + i + 4);
    const __m128d d0 = _mm_sub_pd(lo_pd(af0), lo_pd(bf0));
    const __m128d d1 = _mm_sub_pd(hi_pd(af0), hi_pd(bf0));
    const __m128d d2 = _mm_sub_pd(lo_pd(af1), lo_pd(bf1));
    const __m128d d3 = _mm_sub_pd(hi_pd(af1), hi_pd(bf1));
    acc[0] = _mm_add_pd(acc[0], _mm_andnot_pd(sign, d0));
    acc[1] = _mm_add_pd(acc[1], _mm_andnot_pd(sign, d1));
    acc[2] = _mm_add_pd(acc[2], _mm_andnot_pd(sign, d2));
    acc[3] = _mm_add_pd(acc[3], _mm_andnot_pd(sign, d3));
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) {
    tail += std::fabs(static_cast<double>(a[i]) - b[i]);
  }
  return fold8(acc, tail);
}

double array_sum_sse2(const float* x, std::int64_t n) {
  __m128d acc[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd()};
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    const __m128 xf0 = _mm_loadu_ps(x + i);
    const __m128 xf1 = _mm_loadu_ps(x + i + 4);
    acc[0] = _mm_add_pd(acc[0], lo_pd(xf0));
    acc[1] = _mm_add_pd(acc[1], hi_pd(xf0));
    acc[2] = _mm_add_pd(acc[2], lo_pd(xf1));
    acc[3] = _mm_add_pd(acc[3], hi_pd(xf1));
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) tail += static_cast<double>(x[i]);
  return fold8(acc, tail);
}

void add_scalar_sse2(float* x, std::int64_t n, float c) {
  const __m128 cv = _mm_set1_ps(c);
  const std::int64_t n4 = n - n % 4;
  for (std::int64_t i = 0; i < n4; i += 4) {
    _mm_storeu_ps(x + i, _mm_add_ps(_mm_loadu_ps(x + i), cv));
  }
  for (std::int64_t i = n4; i < n; ++i) x[i] += c;
}

void add_rows_sse2(float* dst, const float* src, std::int64_t n) {
  const std::int64_t n4 = n - n % 4;
  for (std::int64_t i = 0; i < n4; i += 4) {
    _mm_storeu_ps(dst + i,
                  _mm_add_ps(_mm_loadu_ps(dst + i), _mm_loadu_ps(src + i)));
  }
  for (std::int64_t i = n4; i < n; ++i) dst[i] += src[i];
}

void col2im_sse2(const float* col, const conv_geometry& g, float* image) {
  simd_detail::col2im_impl(col, g, image, add_rows_sse2);
}

}  // namespace
}  // namespace dv

#endif  // __SSE2__

namespace dv {

extern const simd_kernel_table k_simd_table_sse2;

const simd_kernel_table k_simd_table_sse2 = {
    simd_level::sse2,
#if defined(__SSE2__)
    gemm_micro_sse2,
    simd_detail::im2col_shared,
    col2im_sse2,
    add_scalar_sse2,
    array_sum_sse2,
    squared_distance_sse2,
    squared_distance_row_sse2,
    dot_sse2,
    dot_f64_sse2,
    l1_distance_sse2,
#else
    simd_detail::gemm_micro_generic,
    simd_detail::im2col_shared,
    simd_detail::col2im_generic,
    simd_detail::add_scalar_generic,
    simd_detail::array_sum_generic,
    simd_detail::squared_distance_generic,
    simd_detail::squared_distance_row_generic,
    simd_detail::dot_generic,
    simd_detail::dot_f64_generic,
    simd_detail::l1_distance_generic,
#endif
};

}  // namespace dv
