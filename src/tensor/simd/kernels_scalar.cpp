// Scalar dispatch table: the canonical reference implementations. Always
// built, selected on hosts without SSE2/AVX2 or via DV_SIMD=scalar.
#include "tensor/simd/kernels_generic.h"
#include "tensor/simd/simd.h"

namespace dv {

extern const simd_kernel_table k_simd_table_scalar;

const simd_kernel_table k_simd_table_scalar = {
    simd_level::scalar,
    simd_detail::gemm_micro_generic,
    simd_detail::im2col_shared,
    simd_detail::col2im_generic,
    simd_detail::add_scalar_generic,
    simd_detail::array_sum_generic,
    simd_detail::squared_distance_generic,
    simd_detail::squared_distance_row_generic,
    simd_detail::dot_generic,
    simd_detail::dot_f64_generic,
    simd_detail::l1_distance_generic,
};

}  // namespace dv
