// Dispatch-table selection: cpuid probe + DV_SIMD env knob, resolved once
// on first kernel use and stored behind an atomic pointer. set_simd_level
// lets tests and benches sweep levels in-process (mirroring
// set_thread_count on the DV_THREADS axis).
#include "tensor/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/cpuid.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace dv {

extern const simd_kernel_table k_simd_table_scalar;
extern const simd_kernel_table k_simd_table_sse2;
#if defined(DV_SIMD_HAVE_AVX2)
extern const simd_kernel_table k_simd_table_avx2;
#endif

namespace {

const simd_kernel_table* table_for(simd_level level) {
  switch (level) {
    case simd_level::sse2:
      return &k_simd_table_sse2;
    case simd_level::avx2:
#if defined(DV_SIMD_HAVE_AVX2)
      return &k_simd_table_avx2;
#else
      return &k_simd_table_scalar;  // unreachable: supported() gates avx2
#endif
    case simd_level::scalar:
    default:
      return &k_simd_table_scalar;
  }
}

/// Widest supported level at or below `cap`.
simd_level widest_supported(simd_level cap) {
  if (cap >= simd_level::avx2 && simd_level_supported(simd_level::avx2)) {
    return simd_level::avx2;
  }
  if (cap >= simd_level::sse2 && simd_level_supported(simd_level::sse2)) {
    return simd_level::sse2;
  }
  return simd_level::scalar;
}

/// Info gauge: the active level's label reads 1, the others 0, so a
/// scrape shows which code path the process is running.
void publish_dispatch_gauge(simd_level active) {
  if (!metrics::enabled()) return;
  for (simd_level l :
       {simd_level::scalar, simd_level::sse2, simd_level::avx2}) {
    std::string name{"dv_simd_dispatch_level{level=\""};
    name += simd_level_name(l);
    name += "\"}";
    metrics::set(name, l == active ? 1.0 : 0.0);
  }
}

/// Startup selection: widest supported level, optionally capped or pinned
/// by DV_SIMD (scalar|sse2|avx2|auto). An unsupported request falls back
/// to the widest supported level below it (with a warning) instead of
/// failing, so one DV_SIMD value can drive a heterogeneous test fleet.
// dv:init(DV_SIMD is latched once by table_slot's static initializer)
const simd_kernel_table* resolve_startup() {
  simd_level choice = widest_supported(simd_level::avx2);
  if (const char* env = std::getenv("DV_SIMD")) {
    const std::string value{env};
    simd_level requested = choice;
    bool known = true;
    if (value == "scalar") {
      requested = simd_level::scalar;
    } else if (value == "sse2") {
      requested = simd_level::sse2;
    } else if (value == "avx2") {
      requested = simd_level::avx2;
    } else if (value != "auto" && !value.empty()) {
      known = false;
      log_warn() << "DV_SIMD=" << value
                 << " not recognized (want scalar|sse2|avx2|auto); using "
                 << simd_level_name(choice);
    }
    if (known && !simd_level_supported(requested)) {
      const simd_level fallback = widest_supported(requested);
      log_warn() << "DV_SIMD=" << value
                 << " not supported on this host; falling back to "
                 << simd_level_name(fallback);
      requested = fallback;
    }
    if (known) choice = requested;
  }
  publish_dispatch_gauge(choice);
  return table_for(choice);
}

std::atomic<const simd_kernel_table*>& table_slot() {
  static std::atomic<const simd_kernel_table*> slot{resolve_startup()};
  return slot;
}

}  // namespace

const simd_kernel_table& simd_kernels() {
  return *table_slot().load(std::memory_order_acquire);
}

simd_level active_simd_level() { return simd_kernels().level; }

bool simd_level_supported(simd_level level) {
  switch (level) {
    case simd_level::scalar:
      return true;
    case simd_level::sse2:
      return cpu_features_probe().sse2;
    case simd_level::avx2:
#if defined(DV_SIMD_HAVE_AVX2)
      return cpu_features_probe().avx2 && cpu_features_probe().fma;
#else
      return false;
#endif
  }
  return false;
}

void set_simd_level(simd_level level) {
  if (!simd_level_supported(level)) {
    std::string msg{"set_simd_level: level "};
    msg += simd_level_name(level);
    msg += " is not supported on this host";
    throw std::invalid_argument{msg};
  }
  table_slot().store(table_for(level), std::memory_order_release);
  publish_dispatch_gauge(level);
}

void reset_simd_level() {
  table_slot().store(resolve_startup(), std::memory_order_release);
}

std::string_view simd_level_name(simd_level level) {
  switch (level) {
    case simd_level::sse2:
      return "sse2";
    case simd_level::avx2:
      return "avx2";
    case simd_level::scalar:
    default:
      return "scalar";
  }
}

}  // namespace dv
