// SIMD kernel layer: runtime-dispatched vector variants of the hot loops
// (GEMM micro-kernel, im2col/col2im, distance/dot/sum reductions).
//
// A one-time cpuid probe (util/cpuid.h) selects the widest supported table
// at startup; `DV_SIMD` (`scalar|sse2|avx2|auto`) overrides the choice, and
// falls back to the widest supported level at or below the request when the
// host cannot run it. Every variant of every kernel computes *bitwise
// identical* results: element-wise kernels perform the same scalar
// operations per element, and horizontal reductions all use the fixed
// 8-lane accumulation order documented at `simd_reduce_lanes`. Fused
// multiply-add is never used (the AVX2 TU is built with -mfma per the
// build contract, but kernels stick to separate mul+add and all kernel TUs
// compile with -ffp-contract=off) because fusing would round once where
// the scalar path rounds twice. See DESIGN.md §12.
//
// Intrinsics are confined to src/tensor/simd/ (enforced by the dv_lint
// `simd` check); everything else calls the table through the wrappers in
// tensor/ops.h.
#pragma once

#include <cstdint>
#include <string_view>

namespace dv {

struct conv_geometry;  // tensor/ops.h

/// Dispatch levels, ordered by vector width. `set_simd_level` accepts any
/// supported level; `auto` (the default) picks the widest supported one.
enum class simd_level : int { scalar = 0, sse2 = 1, avx2 = 2 };

/// GEMM micro-kernel tile shape shared by the packing code in
/// tensor/ops.cpp and every micro-kernel variant.
inline constexpr std::int64_t simd_gemm_mr = 4;
inline constexpr std::int64_t simd_gemm_nr = 16;

/// Fixed lane count for horizontal reductions. Lane l accumulates
/// elements l, l+8, l+16, ... in index order; the remaining (n mod 8)
/// elements accumulate sequentially into a scalar tail; the total is
/// (((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))) + tail. Every ISA implements
/// exactly this chain (scalar: 8 named accumulators; SSE2: 4 x 2 doubles;
/// AVX2: 2 x 4 doubles), which is what makes results bitwise identical
/// across dispatch levels.
inline constexpr std::int64_t simd_reduce_lanes = 8;

/// One ISA's implementations of the hot kernels. All pointers are
/// non-null in every table.
struct simd_kernel_table {
  simd_level level{simd_level::scalar};

  /// acc[mr][nr] += sum_p ap[p*mr + i] * bp[p*nr + j] over one packed K
  /// panel (see pack_a/pack_b in tensor/ops.cpp). Panels are zero-padded
  /// to the full tile, so the kernel always computes all mr x nr elements.
  void (*gemm_micro_kernel)(std::int64_t kc, const float* ap, const float* bp,
                            float* acc){nullptr};

  /// Unfolds one CHW image into the [col_rows, col_cols] im2col matrix.
  void (*im2col)(const float* image, const conv_geometry& g,
                 float* col){nullptr};

  /// Adjoint of im2col: accumulates a col matrix into a CHW image.
  void (*col2im)(const float* col, const conv_geometry& g,
                 float* image){nullptr};

  /// x[i] += c for i in [0, n).
  void (*add_scalar)(float* x, std::int64_t n, float c){nullptr};

  /// sum_i x[i] in the 8-lane canonical order.
  double (*array_sum)(const float* x, std::int64_t n){nullptr};

  /// sum_i (a[i]-b[i])^2 in the 8-lane canonical order.
  double (*squared_distance)(const float* a, const float* b,
                             std::int64_t n){nullptr};

  /// out[j] = squared_distance(x, rows + j*d, d) for j in [0, m).
  void (*squared_distance_row)(const float* x, const float* rows,
                               std::int64_t m, std::int64_t d,
                               double* out){nullptr};

  /// sum_i a[i]*b[i] in the 8-lane canonical order.
  double (*dot)(const float* a, const float* b, std::int64_t n){nullptr};

  /// Double-precision dot product in the 8-lane canonical order.
  double (*dot_f64)(const double* a, const double* b,
                    std::int64_t n){nullptr};

  /// sum_i |a[i]-b[i]| in the 8-lane canonical order.
  double (*l1_distance)(const float* a, const float* b,
                        std::int64_t n){nullptr};
};

/// The active dispatch table (atomic load; resolved from cpuid + DV_SIMD
/// on first use).
const simd_kernel_table& simd_kernels();

/// Level of the active table.
simd_level active_simd_level();

/// True when `level` can run on this host *and* was compiled in.
bool simd_level_supported(simd_level level);

/// Forces the active table (tests and benches use this to sweep the
/// identity matrix in-process). Throws std::invalid_argument when the
/// level is not supported on this host.
void set_simd_level(simd_level level);

/// Restores the startup selection (DV_SIMD or auto).
void reset_simd_level();

/// "scalar", "sse2", or "avx2".
std::string_view simd_level_name(simd_level level);

}  // namespace dv
