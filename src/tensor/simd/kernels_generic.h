// Canonical portable implementations of every dispatch-table kernel.
// These define the reference bit patterns: the scalar table points
// straight at them, and the SSE2/AVX2 TUs fall back to them on targets
// where the intrinsics are unavailable (and reuse the shared data-movement
// kernels, which are ISA-independent).
//
// Horizontal reductions follow the fixed 8-lane order documented at
// `simd_reduce_lanes` (tensor/simd/simd.h): lane l accumulates elements
// l, l+8, ..., the (n mod 8) trailing elements accumulate sequentially
// into `tail`, and the total folds as
// (((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))) + tail. Vector variants must
// reproduce exactly this chain per lane — and must not fuse the mul+add
// (no FMA; all kernel TUs build with -ffp-contract=off).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/ops.h"
#include "tensor/simd/simd.h"

namespace dv::simd_detail {

/// Folds the 8 lane accumulators and the scalar tail in the canonical
/// order shared by every ISA.
inline double reduce_lanes(const double* lane, double tail) {
  return (((lane[0] + lane[1]) + (lane[2] + lane[3])) +
          ((lane[4] + lane[5]) + (lane[6] + lane[7]))) +
         tail;
}

inline void gemm_micro_generic(std::int64_t kc, const float* ap,
                               const float* bp, float* acc) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * simd_gemm_mr;
    const float* b = bp + p * simd_gemm_nr;
    for (std::int64_t i = 0; i < simd_gemm_mr; ++i) {
      const float av = a[i];
      float* row = acc + i * simd_gemm_nr;
      for (std::int64_t j = 0; j < simd_gemm_nr; ++j) row[j] += av * b[j];
    }
  }
}

inline double squared_distance_generic(const float* a, const float* b,
                                       std::int64_t n) {
  double lane[simd_reduce_lanes] = {};
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    for (std::int64_t l = 0; l < simd_reduce_lanes; ++l) {
      const double d = static_cast<double>(a[i + l]) - b[i + l];
      lane[l] += d * d;
    }
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    tail += d * d;
  }
  return reduce_lanes(lane, tail);
}

inline void squared_distance_row_generic(const float* x, const float* rows,
                                         std::int64_t m, std::int64_t d,
                                         double* out) {
  for (std::int64_t j = 0; j < m; ++j) {
    out[j] = squared_distance_generic(x, rows + j * d, d);
  }
}

inline double dot_generic(const float* a, const float* b, std::int64_t n) {
  double lane[simd_reduce_lanes] = {};
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    for (std::int64_t l = 0; l < simd_reduce_lanes; ++l) {
      lane[l] += static_cast<double>(a[i + l]) * b[i + l];
    }
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) {
    tail += static_cast<double>(a[i]) * b[i];
  }
  return reduce_lanes(lane, tail);
}

inline double dot_f64_generic(const double* a, const double* b,
                              std::int64_t n) {
  double lane[simd_reduce_lanes] = {};
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    for (std::int64_t l = 0; l < simd_reduce_lanes; ++l) {
      lane[l] += a[i + l] * b[i + l];
    }
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) tail += a[i] * b[i];
  return reduce_lanes(lane, tail);
}

inline double l1_distance_generic(const float* a, const float* b,
                                  std::int64_t n) {
  double lane[simd_reduce_lanes] = {};
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    for (std::int64_t l = 0; l < simd_reduce_lanes; ++l) {
      lane[l] += std::fabs(static_cast<double>(a[i + l]) - b[i + l]);
    }
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) {
    tail += std::fabs(static_cast<double>(a[i]) - b[i]);
  }
  return reduce_lanes(lane, tail);
}

inline double array_sum_generic(const float* x, std::int64_t n) {
  double lane[simd_reduce_lanes] = {};
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    for (std::int64_t l = 0; l < simd_reduce_lanes; ++l) {
      lane[l] += static_cast<double>(x[i + l]);
    }
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) tail += static_cast<double>(x[i]);
  return reduce_lanes(lane, tail);
}

inline void add_scalar_generic(float* x, std::int64_t n, float c) {
  for (std::int64_t i = 0; i < n; ++i) x[i] += c;
}

/// im2col is pure data movement (copies and zero fills), so one shared
/// implementation serves every dispatch level; the win over the original
/// per-element loop is the contiguous memcpy of the stride-1 interior.
inline void im2col_shared(const float* image, const conv_geometry& g,
                          float* col) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out = col + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride + ky - g.pad;
          float* dst = out + oy * ow;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(dst, 0, static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src = plane + iy * g.in_w;
          if (g.stride == 1) {
            // ix = ox + kx - pad: zeros where ix < 0 or ix >= in_w, one
            // contiguous copy in between.
            const std::int64_t ix0 = kx - g.pad;
            const std::int64_t lo =
                std::min(ow, ix0 < 0 ? -ix0 : std::int64_t{0});
            const std::int64_t hi = std::max(lo, std::min(ow, g.in_w - ix0));
            if (lo > 0) {
              std::memset(dst, 0,
                          static_cast<std::size_t>(lo) * sizeof(float));
            }
            if (hi > lo) {
              std::memcpy(dst + lo, src + ix0 + lo,
                          static_cast<std::size_t>(hi - lo) * sizeof(float));
            }
            if (ow > hi) {
              std::memset(dst + hi, 0,
                          static_cast<std::size_t>(ow - hi) * sizeof(float));
            }
          } else {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              const std::int64_t ix = ox * g.stride + kx - g.pad;
              dst[ox] = (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
            }
          }
        }
      }
    }
  }
}

/// col2im with the contiguous stride-1 interior routed through `add_rows`
/// (dst[i] += src[i] for i in [0, n)), which each ISA vectorizes. Every
/// destination element receives its additions in the same fixed
/// (c, ky, kx, oy) order regardless of ISA, so results stay bitwise
/// identical.
template <typename AddRows>
inline void col2im_impl(const float* col, const conv_geometry& g,
                        float* image, AddRows add_rows) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* src = col + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst = plane + iy * g.in_w;
          if (g.stride == 1) {
            const std::int64_t ix0 = kx - g.pad;
            const std::int64_t lo =
                std::min(ow, ix0 < 0 ? -ix0 : std::int64_t{0});
            const std::int64_t hi = std::max(lo, std::min(ow, g.in_w - ix0));
            if (hi > lo) {
              add_rows(dst + ix0 + lo, src + oy * ow + lo, hi - lo);
            }
          } else {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              const std::int64_t ix = ox * g.stride + kx - g.pad;
              if (ix >= 0 && ix < g.in_w) dst[ix] += src[oy * ow + ox];
            }
          }
        }
      }
    }
  }
}

inline void add_rows_generic(float* dst, const float* src, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

inline void col2im_generic(const float* col, const conv_geometry& g,
                           float* image) {
  col2im_impl(col, g, image, add_rows_generic);
}

}  // namespace dv::simd_detail
