// AVX2 dispatch table. Compiled with -mavx2 -mfma -ffp-contract=off in its
// own TU (src/tensor/CMakeLists.txt) so the rest of the binary stays
// runnable on non-AVX hosts; the cpuid probe gates selection at runtime.
//
// Reductions run the canonical 8-lane order as two 4-wide double
// accumulators; the micro-kernel holds the whole 4x16 tile in eight ymm
// registers. Although -mfma is on per the build contract, the kernels use
// separate mul+add on purpose: fusing rounds once where the scalar
// reference rounds twice, which would break the DV_SIMD bitwise-identity
// contract (DESIGN.md §12).
#include "tensor/simd/kernels_generic.h"
#include "tensor/simd/simd.h"

#if !defined(__AVX2__)
#error "kernels_avx2.cpp must be compiled with -mavx2 (see src/tensor/CMakeLists.txt)"
#endif

#include <immintrin.h>

namespace dv {
namespace {

/// Low / high float quads widened to double: lanes {0..3} and {4..7}.
__m256d lo_pd(const float* p) { return _mm256_cvtps_pd(_mm_loadu_ps(p)); }
__m256d hi_pd(const float* p) { return _mm256_cvtps_pd(_mm_loadu_ps(p + 4)); }

/// ((l0+l1)+(l2+l3)) of one 4-wide accumulator.
double quad_sum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const double l0 = _mm_cvtsd_f64(lo);
  const double l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double l2 = _mm_cvtsd_f64(hi);
  const double l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  return (l0 + l1) + (l2 + l3);
}

/// Canonical fold: (((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))) + tail.
double fold8(__m256d acc0, __m256d acc1, double tail) {
  return (quad_sum(acc0) + quad_sum(acc1)) + tail;
}

void gemm_micro_avx2(std::int64_t kc, const float* ap, const float* bp,
                     float* acc) {
  __m256 c00 = _mm256_loadu_ps(acc + 0);
  __m256 c01 = _mm256_loadu_ps(acc + 8);
  __m256 c10 = _mm256_loadu_ps(acc + 16);
  __m256 c11 = _mm256_loadu_ps(acc + 24);
  __m256 c20 = _mm256_loadu_ps(acc + 32);
  __m256 c21 = _mm256_loadu_ps(acc + 40);
  __m256 c30 = _mm256_loadu_ps(acc + 48);
  __m256 c31 = _mm256_loadu_ps(acc + 56);
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * simd_gemm_mr;
    const float* b = bp + p * simd_gemm_nr;
    const __m256 b0 = _mm256_loadu_ps(b);
    const __m256 b1 = _mm256_loadu_ps(b + 8);
    __m256 av = _mm256_set1_ps(a[0]);
    c00 = _mm256_add_ps(c00, _mm256_mul_ps(av, b0));
    c01 = _mm256_add_ps(c01, _mm256_mul_ps(av, b1));
    av = _mm256_set1_ps(a[1]);
    c10 = _mm256_add_ps(c10, _mm256_mul_ps(av, b0));
    c11 = _mm256_add_ps(c11, _mm256_mul_ps(av, b1));
    av = _mm256_set1_ps(a[2]);
    c20 = _mm256_add_ps(c20, _mm256_mul_ps(av, b0));
    c21 = _mm256_add_ps(c21, _mm256_mul_ps(av, b1));
    av = _mm256_set1_ps(a[3]);
    c30 = _mm256_add_ps(c30, _mm256_mul_ps(av, b0));
    c31 = _mm256_add_ps(c31, _mm256_mul_ps(av, b1));
  }
  _mm256_storeu_ps(acc + 0, c00);
  _mm256_storeu_ps(acc + 8, c01);
  _mm256_storeu_ps(acc + 16, c10);
  _mm256_storeu_ps(acc + 24, c11);
  _mm256_storeu_ps(acc + 32, c20);
  _mm256_storeu_ps(acc + 40, c21);
  _mm256_storeu_ps(acc + 48, c30);
  _mm256_storeu_ps(acc + 56, c31);
}

double squared_distance_avx2(const float* a, const float* b, std::int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    const __m256d d0 = _mm256_sub_pd(lo_pd(a + i), lo_pd(b + i));
    const __m256d d1 = _mm256_sub_pd(hi_pd(a + i), hi_pd(b + i));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    tail += d * d;
  }
  return fold8(acc0, acc1, tail);
}

void squared_distance_row_avx2(const float* x, const float* rows,
                               std::int64_t m, std::int64_t d, double* out) {
  for (std::int64_t j = 0; j < m; ++j) {
    out[j] = squared_distance_avx2(x, rows + j * d, d);
  }
}

double dot_avx2(const float* a, const float* b, std::int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(lo_pd(a + i), lo_pd(b + i)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(hi_pd(a + i), hi_pd(b + i)));
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) {
    tail += static_cast<double>(a[i]) * b[i];
  }
  return fold8(acc0, acc1, tail);
}

double dot_f64_avx2(const double* a, const double* b, std::int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                             _mm256_loadu_pd(b + i)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                                             _mm256_loadu_pd(b + i + 4)));
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) tail += a[i] * b[i];
  return fold8(acc0, acc1, tail);
}

double l1_distance_avx2(const float* a, const float* b, std::int64_t n) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    const __m256d d0 = _mm256_sub_pd(lo_pd(a + i), lo_pd(b + i));
    const __m256d d1 = _mm256_sub_pd(hi_pd(a + i), hi_pd(b + i));
    acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_andnot_pd(sign, d1));
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) {
    tail += std::fabs(static_cast<double>(a[i]) - b[i]);
  }
  return fold8(acc0, acc1, tail);
}

double array_sum_avx2(const float* x, std::int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::int64_t n8 = n - n % simd_reduce_lanes;
  for (std::int64_t i = 0; i < n8; i += simd_reduce_lanes) {
    acc0 = _mm256_add_pd(acc0, lo_pd(x + i));
    acc1 = _mm256_add_pd(acc1, hi_pd(x + i));
  }
  double tail = 0.0;
  for (std::int64_t i = n8; i < n; ++i) tail += static_cast<double>(x[i]);
  return fold8(acc0, acc1, tail);
}

void add_scalar_avx2(float* x, std::int64_t n, float c) {
  const __m256 cv = _mm256_set1_ps(c);
  const std::int64_t n8 = n - n % 8;
  for (std::int64_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_add_ps(_mm256_loadu_ps(x + i), cv));
  }
  for (std::int64_t i = n8; i < n; ++i) x[i] += c;
}

void add_rows_avx2(float* dst, const float* src, std::int64_t n) {
  const std::int64_t n8 = n - n % 8;
  for (std::int64_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                               _mm256_loadu_ps(src + i)));
  }
  for (std::int64_t i = n8; i < n; ++i) dst[i] += src[i];
}

void col2im_avx2(const float* col, const conv_geometry& g, float* image) {
  simd_detail::col2im_impl(col, g, image, add_rows_avx2);
}

}  // namespace

extern const simd_kernel_table k_simd_table_avx2;

const simd_kernel_table k_simd_table_avx2 = {
    simd_level::avx2,
    gemm_micro_avx2,
    simd_detail::im2col_shared,
    col2im_avx2,
    add_scalar_avx2,
    array_sum_avx2,
    squared_distance_avx2,
    squared_distance_row_avx2,
    dot_avx2,
    dot_f64_avx2,
    l1_distance_avx2,
};

}  // namespace dv
