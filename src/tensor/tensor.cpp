#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/serialize.h"

namespace dv {

namespace {
std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (const auto e : shape) {
    if (e <= 0) throw std::invalid_argument{"tensor: nonpositive extent"};
    n *= e;
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

tensor::tensor(std::vector<std::int64_t> shape)
    : shape_{std::move(shape)},
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

tensor tensor::zeros(std::vector<std::int64_t> shape) {
  return tensor{std::move(shape)};
}

tensor tensor::full(std::vector<std::int64_t> shape, float value) {
  tensor t{std::move(shape)};
  t.fill(value);
  return t;
}

tensor tensor::from_data(std::vector<std::int64_t> shape,
                         std::vector<float> data) {
  tensor t;
  const auto n = shape_numel(shape);
  if (static_cast<std::size_t>(n) != data.size()) {
    throw std::invalid_argument{"tensor::from_data: size mismatch"};
  }
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

tensor tensor::randn(std::vector<std::int64_t> shape, rng& gen, float stddev) {
  tensor t{std::move(shape)};
  for (auto& v : t.data_) v = static_cast<float>(gen.normal()) * stddev;
  return t;
}

tensor tensor::uniform(std::vector<std::int64_t> shape, rng& gen, float lo,
                       float hi) {
  tensor t{std::move(shape)};
  for (auto& v : t.data_) v = static_cast<float>(gen.uniform(lo, hi));
  return t;
}

tensor& tensor::reshape(std::vector<std::int64_t> shape) {
  std::int64_t known = 1;
  int infer = -1;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      if (infer >= 0) throw std::invalid_argument{"reshape: two -1 extents"};
      infer = static_cast<int>(i);
    } else if (shape[i] <= 0) {
      throw std::invalid_argument{"reshape: nonpositive extent"};
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    if (known == 0 || numel() % known != 0) {
      throw std::invalid_argument{"reshape: cannot infer extent"};
    }
    shape[static_cast<std::size_t>(infer)] = numel() / known;
    known *= shape[static_cast<std::size_t>(infer)];
  }
  if (known != numel()) throw std::invalid_argument{"reshape: numel mismatch"};
  shape_ = std::move(shape);
  return *this;
}

tensor tensor::reshaped(std::vector<std::int64_t> shape) const {
  tensor t = *this;
  t.reshape(std::move(shape));
  return t;
}

tensor tensor::sample(std::int64_t n) const {
  if (dim() != 4) throw std::invalid_argument{"sample: tensor is not 4-D"};
  if (n < 0 || n >= shape_[0]) throw std::out_of_range{"sample: bad index"};
  const std::int64_t stride = shape_[1] * shape_[2] * shape_[3];
  tensor out{{shape_[1], shape_[2], shape_[3]}};
  std::copy_n(data_.data() + n * stride, stride, out.data());
  return out;
}

void tensor::set_sample(std::int64_t n, const tensor& s) {
  if (dim() != 4) throw std::invalid_argument{"set_sample: tensor is not 4-D"};
  const std::int64_t stride = shape_[1] * shape_[2] * shape_[3];
  if (s.numel() != stride) throw std::invalid_argument{"set_sample: size"};
  if (n < 0 || n >= shape_[0]) throw std::out_of_range{"set_sample: index"};
  std::copy_n(s.data(), stride, data_.data() + n * stride);
}

tensor tensor::slice_rows(std::int64_t begin, std::int64_t end) const {
  if (dim() < 1) throw std::invalid_argument{"slice_rows: empty tensor"};
  if (begin < 0 || end > shape_[0] || begin >= end) {
    throw std::out_of_range{"slice_rows: bad range"};
  }
  std::int64_t stride = 1;
  for (int a = 1; a < dim(); ++a) stride *= shape_[static_cast<std::size_t>(a)];
  std::vector<std::int64_t> out_shape = shape_;
  out_shape[0] = end - begin;
  tensor out{out_shape};
  std::copy_n(data_.data() + begin * stride, (end - begin) * stride,
              out.data());
  return out;
}

void tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

tensor& tensor::operator+=(const tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

tensor& tensor::operator-=(const tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

tensor& tensor::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

void tensor::add_scaled(const tensor& other, float alpha) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void tensor::mul_elem(const tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void tensor::clamp(float lo, float hi) {
  for (auto& v : data_) v = std::clamp(v, lo, hi);
}

float tensor::sum() const {
  double acc = 0.0;
  for (const auto v : data_) acc += v;
  return static_cast<float>(acc);
}

float tensor::max() const {
  if (data_.empty()) throw std::logic_error{"max of empty tensor"};
  return *std::max_element(data_.begin(), data_.end());
}

float tensor::min() const {
  if (data_.empty()) throw std::logic_error{"min of empty tensor"};
  return *std::min_element(data_.begin(), data_.end());
}

float tensor::mean() const {
  if (data_.empty()) throw std::logic_error{"mean of empty tensor"};
  return sum() / static_cast<float>(data_.size());
}

std::int64_t tensor::argmax() const {
  if (data_.empty()) throw std::logic_error{"argmax of empty tensor"};
  return static_cast<std::int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float tensor::norm2() const {
  double acc = 0.0;
  for (const auto v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float tensor::norm1() const {
  double acc = 0.0;
  for (const auto v : data_) acc += std::abs(static_cast<double>(v));
  return static_cast<float>(acc);
}

void tensor::save(binary_writer& w) const {
  w.write_i64_vector(shape_);
  w.write_f32_vector(data_);
}

tensor tensor::load(binary_reader& r) {
  tensor t;
  t.shape_ = r.read_i64_vector();
  t.data_ = r.read_f32_vector();
  if (static_cast<std::size_t>(shape_numel(t.shape_)) != t.data_.size()) {
    throw serialize_error{"tensor::load: shape/data mismatch"};
  }
  return t;
}

std::string tensor::shape_string() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << "]";
  return out.str();
}

tensor operator+(tensor lhs, const tensor& rhs) {
  lhs += rhs;
  return lhs;
}

tensor operator-(tensor lhs, const tensor& rhs) {
  lhs -= rhs;
  return lhs;
}

tensor operator*(tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

}  // namespace dv
