#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "tensor/simd/simd.h"
#include "util/thread_pool.h"

namespace dv {

namespace {

// Cache-tiled, register-blocked GEMM (GotoBLAS-style). All three public
// variants funnel into one core that multiplies A'[M,K] * B'[K,N] where A'
// and B' are read through packing routines that absorb the transpositions.
//
// Blocking: K is split into KC panels, N into NC panels. Per (NC, KC)
// panel, B is packed once into NR-wide column strips; the M dimension is
// then processed in MR-row strips, parallelized over row-block chunks.
// Each thread packs the A rows of its chunk and runs the MR x NR
// micro-kernel, which keeps the full accumulator tile in registers.
//
// Determinism: the k-accumulation order for every C element is fixed by
// the (pc, p) loop structure and row blocks write disjoint C rows, so the
// result is bit-identical for any thread count. The micro-kernel comes
// from the SIMD dispatch table (tensor/simd/simd.h); every variant keeps
// each element's accumulation chain sequential in p and never fuses
// mul+add, so the result is also bit-identical for any DV_SIMD level.
constexpr std::int64_t MR = simd_gemm_mr;  // micro-kernel rows
constexpr std::int64_t NR = simd_gemm_nr;  // micro-kernel columns
constexpr std::int64_t KC = 256;  // k panel
constexpr std::int64_t NC = 512;  // n panel
// Row-blocks per parallel chunk (32 rows): big enough to amortize
// dispatch, small enough to load-balance mid-sized matrices.
constexpr std::int64_t ROW_BLOCK_GRAIN = 8;
// Below this per-row flop count the packing overhead dominates; use the
// simple kernels. The cutoff deliberately ignores the row count m: the
// row dimension is the batch axis in the dense/conv GEMMs, and keying the
// path on n*k alone keeps each row's summation order — and therefore each
// sample's bit pattern — independent of how many samples share the batch.
constexpr std::int64_t TILED_MIN_ROW_FLOPS = 2 * 24 * 24;

/// C = beta * C, handling beta == 0 without reading C (it may hold NaNs).
void scale_c(std::int64_t m, std::int64_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    return;
  }
  for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
}

/// Packs B[pc:pc+kc, jc:jc+nc] (logical [K, N] view; transposed reads b
/// stored [N, K]) into NR-wide strips, zero-padding the last strip:
/// panel[((j0 / NR) * kc + p) * NR + jr] = B[pc + p, jc + j0 + jr].
void pack_b(const float* b, bool b_trans, std::int64_t ldb, std::int64_t pc,
            std::int64_t jc, std::int64_t kc, std::int64_t nc, float* panel) {
  for (std::int64_t j0 = 0; j0 < nc; j0 += NR) {
    const std::int64_t w = std::min(NR, nc - j0);
    float* dst = panel + (j0 / NR) * kc * NR;
    for (std::int64_t p = 0; p < kc; ++p, dst += NR) {
      if (b_trans) {
        const float* src = b + (jc + j0) * ldb + (pc + p);
        for (std::int64_t jr = 0; jr < w; ++jr) dst[jr] = src[jr * ldb];
      } else {
        const float* src = b + (pc + p) * ldb + (jc + j0);
        for (std::int64_t jr = 0; jr < w; ++jr) dst[jr] = src[jr];
      }
      for (std::int64_t jr = w; jr < NR; ++jr) dst[jr] = 0.0f;
    }
  }
}

/// Packs A[ic:ic+mc, pc:pc+kc] (logical [M, K] view; transposed reads a
/// stored [K, M]) into MR-row strips, zero-padding the last strip:
/// panel[((i0 / MR) * kc + p) * MR + ir] = A[ic + i0 + ir, pc + p].
void pack_a(const float* a, bool a_trans, std::int64_t lda, std::int64_t ic,
            std::int64_t pc, std::int64_t mc, std::int64_t kc, float* panel) {
  for (std::int64_t i0 = 0; i0 < mc; i0 += MR) {
    const std::int64_t h = std::min(MR, mc - i0);
    float* dst = panel + (i0 / MR) * kc * MR;
    for (std::int64_t p = 0; p < kc; ++p, dst += MR) {
      if (a_trans) {
        const float* src = a + (pc + p) * lda + (ic + i0);
        for (std::int64_t ir = 0; ir < h; ++ir) dst[ir] = src[ir];
      } else {
        const float* src = a + (ic + i0) * lda + (pc + p);
        for (std::int64_t ir = 0; ir < h; ++ir) dst[ir] = src[ir * lda];
      }
      for (std::int64_t ir = h; ir < MR; ++ir) dst[ir] = 0.0f;
    }
  }
}

void gemm_tiled(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                const float* a, bool a_trans, const float* b, bool b_trans,
                float beta, float* c) {
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || k == 0) return;
  const std::int64_t lda = a_trans ? m : k;
  const std::int64_t ldb = b_trans ? k : n;
  // One table fetch per GEMM: the micro-kernel variant cannot change
  // mid-call even if another thread flips the dispatch level.
  const auto micro_kernel = simd_kernels().gemm_micro_kernel;
  std::vector<float> b_panel;
  for (std::int64_t jc = 0; jc < n; jc += NC) {
    const std::int64_t nc = std::min(NC, n - jc);
    const std::int64_t nc_strips = (nc + NR - 1) / NR;
    for (std::int64_t pc = 0; pc < k; pc += KC) {
      const std::int64_t kc = std::min(KC, k - pc);
      b_panel.resize(static_cast<std::size_t>(nc_strips * kc * NR));
      pack_b(b, b_trans, ldb, pc, jc, kc, nc, b_panel.data());
      const std::int64_t row_blocks = (m + MR - 1) / MR;
      // The thread_local A-panel grows to steady-state size once per
      // thread, then stays warm across row blocks.
      // dv:parallel-safe(disjoint C tiles) dv-lint: allow(effect:may_allocate)
      parallel_for(0, row_blocks, ROW_BLOCK_GRAIN, [&](std::int64_t rb_begin,
                                                       std::int64_t rb_end) {
        thread_local std::vector<float> a_panel;
        const std::int64_t ic = rb_begin * MR;
        const std::int64_t mc = std::min(m, rb_end * MR) - ic;
        const std::int64_t mc_strips = (mc + MR - 1) / MR;
        a_panel.resize(static_cast<std::size_t>(mc_strips * kc * MR));
        pack_a(a, a_trans, lda, ic, pc, mc, kc, a_panel.data());
        alignas(64) float acc[MR * NR];
        for (std::int64_t i0 = 0; i0 < mc; i0 += MR) {
          const std::int64_t h = std::min(MR, mc - i0);
          const float* ap = a_panel.data() + (i0 / MR) * kc * MR;
          for (std::int64_t j0 = 0; j0 < nc; j0 += NR) {
            const std::int64_t w = std::min(NR, nc - j0);
            std::memset(acc, 0, sizeof(acc));
            micro_kernel(kc, ap, b_panel.data() + (j0 / NR) * kc * NR, acc);
            for (std::int64_t ir = 0; ir < h; ++ir) {
              float* crow = c + (ic + i0 + ir) * n + jc + j0;
              for (std::int64_t jr = 0; jr < w; ++jr) {
                crow[jr] += alpha * acc[ir * NR + jr];
              }
            }
          }
        }
      });
    }
  }
}

/// Simple kernels for problems too small to amortize packing.
void gemm_small(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                const float* a, bool a_trans, const float* b, bool b_trans,
                float beta, float* c) {
  scale_c(m, n, beta, c);
  if (alpha == 0.0f || k == 0) return;
  // Rows are independent (disjoint writes, fixed inner order), so the
  // row loop parallelizes bit-identically for any thread count.
  // dv:parallel-safe(disjoint C rows, fixed inner order)
  parallel_for(0, m, 64, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      float* crow = c + i * n;
      if (b_trans) {
        for (std::int64_t j = 0; j < n; ++j) {
          const float* brow = b + j * k;
          float acc = 0.0f;
          for (std::int64_t p = 0; p < k; ++p) {
            acc += (a_trans ? a[p * m + i] : a[i * k + p]) * brow[p];
          }
          crow[j] += alpha * acc;
        }
      } else {
        for (std::int64_t p = 0; p < k; ++p) {
          const float av = alpha * (a_trans ? a[p * m + i] : a[i * k + p]);
          const float* brow = b + p * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
}

void gemm_dispatch(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                   const float* a, bool a_trans, const float* b, bool b_trans,
                   float beta, float* c) {
  if (m <= 0 || n <= 0) return;
  if (2 * n * k < TILED_MIN_ROW_FLOPS) {
    gemm_small(m, n, k, alpha, a, a_trans, b, b_trans, beta, c);
  } else {
    gemm_tiled(m, n, k, alpha, a, a_trans, b, b_trans, beta, c);
  }
}

}  // namespace

void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  gemm_dispatch(m, n, k, alpha, a, false, b, false, beta, c);
}

void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  gemm_dispatch(m, n, k, alpha, a, false, b, true, beta, c);
}

void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  gemm_dispatch(m, n, k, alpha, a, true, b, false, beta, c);
}

void im2col(const float* image, const conv_geometry& g, float* col) {
  simd_kernels().im2col(image, g, col);
}

void col2im(const float* col, const conv_geometry& g, float* image) {
  simd_kernels().col2im(col, g, image);
}

void softmax_rows(tensor& logits) {
  if (logits.dim() != 2) throw std::invalid_argument{"softmax_rows: not 2-D"};
  const std::int64_t rows = logits.extent(0);
  const std::int64_t cols = logits.extent(1);
  float* data = logits.data();
  for (std::int64_t i = 0; i < rows; ++i) {
    float* row = data + i * cols;
    const float m = *std::max_element(row, row + cols);
    double sum = 0.0;
    for (std::int64_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - m);
      sum += row[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

std::vector<std::int64_t> argmax_rows(const tensor& t) {
  if (t.dim() != 2) throw std::invalid_argument{"argmax_rows: not 2-D"};
  const std::int64_t rows = t.extent(0);
  const std::int64_t cols = t.extent(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* row = t.data() + i * cols;
    out[static_cast<std::size_t>(i)] =
        std::max_element(row, row + cols) - row;
  }
  return out;
}

double squared_distance(const float* a, const float* b, std::int64_t n) {
  return simd_kernels().squared_distance(a, b, n);
}

void squared_distance_row(const float* x, const float* rows, std::int64_t m,
                          std::int64_t d, double* out) {
  simd_kernels().squared_distance_row(x, rows, m, d, out);
}

double dot(const float* a, const float* b, std::int64_t n) {
  return simd_kernels().dot(a, b, n);
}

double dot_f64(const double* a, const double* b, std::int64_t n) {
  return simd_kernels().dot_f64(a, b, n);
}

double l1_distance(const float* a, const float* b, std::int64_t n) {
  return simd_kernels().l1_distance(a, b, n);
}

double array_sum(const float* x, std::int64_t n) {
  return simd_kernels().array_sum(x, n);
}

void add_scalar(float* x, std::int64_t n, float c) {
  simd_kernels().add_scalar(x, n, c);
}

}  // namespace dv
