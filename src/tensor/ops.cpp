#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace dv {

void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * crow[j]);
    }
  }
}

void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;  // A is [K, M]
    const float* brow = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void im2col(const float* image, const conv_geometry& g, float* col) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out = col + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(out + oy * ow, 0,
                        static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src = plane + iy * g.in_w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * g.stride + kx - g.pad;
            out[oy * ow + ox] =
                (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, const conv_geometry& g, float* image) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* plane = image + c * g.in_h * g.in_w;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* src = col + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst = plane + iy * g.in_w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * g.stride + kx - g.pad;
            if (ix >= 0 && ix < g.in_w) dst[ix] += src[oy * ow + ox];
          }
        }
      }
    }
  }
}

void softmax_rows(tensor& logits) {
  if (logits.dim() != 2) throw std::invalid_argument{"softmax_rows: not 2-D"};
  const std::int64_t rows = logits.extent(0);
  const std::int64_t cols = logits.extent(1);
  float* data = logits.data();
  for (std::int64_t i = 0; i < rows; ++i) {
    float* row = data + i * cols;
    const float m = *std::max_element(row, row + cols);
    double sum = 0.0;
    for (std::int64_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - m);
      sum += row[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

std::vector<std::int64_t> argmax_rows(const tensor& t) {
  if (t.dim() != 2) throw std::invalid_argument{"argmax_rows: not 2-D"};
  const std::int64_t rows = t.extent(0);
  const std::int64_t cols = t.extent(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* row = t.data() + i * cols;
    out[static_cast<std::size_t>(i)] =
        std::max_element(row, row + cols) - row;
  }
  return out;
}

double squared_distance(const float* a, const float* b, std::int64_t n) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double dot(const float* a, const float* b, std::int64_t n) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;
}

}  // namespace dv
