#include "tensor/linalg.h"

#include <cmath>
#include <stdexcept>

namespace dv {

std::vector<double> column_means(const tensor& samples) {
  if (samples.dim() != 2 || samples.extent(0) < 1) {
    throw std::invalid_argument{"column_means: need [n>=1, d]"};
  }
  const std::int64_t n = samples.extent(0);
  const std::int64_t d = samples.extent(1);
  std::vector<double> out(static_cast<std::size_t>(d), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = samples.data() + i * d;
    for (std::int64_t j = 0; j < d; ++j) out[static_cast<std::size_t>(j)] += row[j];
  }
  for (auto& v : out) v /= static_cast<double>(n);
  return out;
}

std::vector<double> covariance(const tensor& samples,
                               const std::vector<double>& means,
                               double ridge) {
  const std::int64_t n = samples.extent(0);
  const std::int64_t d = samples.extent(1);
  if (static_cast<std::int64_t>(means.size()) != d) {
    throw std::invalid_argument{"covariance: mean dimension mismatch"};
  }
  std::vector<double> cov(static_cast<std::size_t>(d * d), 0.0);
  std::vector<double> centered(static_cast<std::size_t>(d));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = samples.data() + i * d;
    for (std::int64_t j = 0; j < d; ++j) {
      centered[static_cast<std::size_t>(j)] =
          row[j] - means[static_cast<std::size_t>(j)];
    }
    for (std::int64_t a = 0; a < d; ++a) {
      const double ca = centered[static_cast<std::size_t>(a)];
      double* crow = cov.data() + a * d;
      for (std::int64_t b = 0; b < d; ++b) {
        crow[b] += ca * centered[static_cast<std::size_t>(b)];
      }
    }
  }
  for (auto& v : cov) v /= static_cast<double>(n);
  for (std::int64_t j = 0; j < d; ++j) cov[static_cast<std::size_t>(j * d + j)] += ridge;
  return cov;
}

void cholesky_decompose(std::vector<double>& a, std::int64_t d) {
  if (static_cast<std::int64_t>(a.size()) != d * d) {
    throw std::invalid_argument{"cholesky_decompose: size mismatch"};
  }
  for (std::int64_t j = 0; j < d; ++j) {
    double diag = a[static_cast<std::size_t>(j * d + j)];
    for (std::int64_t k = 0; k < j; ++k) {
      const double l = a[static_cast<std::size_t>(j * d + k)];
      diag -= l * l;
    }
    if (diag <= 0.0) {
      throw std::domain_error{"cholesky_decompose: not positive definite"};
    }
    const double ljj = std::sqrt(diag);
    a[static_cast<std::size_t>(j * d + j)] = ljj;
    for (std::int64_t i = j + 1; i < d; ++i) {
      double acc = a[static_cast<std::size_t>(i * d + j)];
      for (std::int64_t k = 0; k < j; ++k) {
        acc -= a[static_cast<std::size_t>(i * d + k)] *
               a[static_cast<std::size_t>(j * d + k)];
      }
      a[static_cast<std::size_t>(i * d + j)] = acc / ljj;
    }
    // Zero the upper triangle for cleanliness.
    for (std::int64_t k = j + 1; k < d; ++k) {
      a[static_cast<std::size_t>(j * d + k)] = 0.0;
    }
  }
}

std::vector<double> cholesky_solve(const std::vector<double>& l,
                                   std::int64_t d,
                                   const std::vector<double>& b) {
  if (static_cast<std::int64_t>(b.size()) != d) {
    throw std::invalid_argument{"cholesky_solve: rhs size mismatch"};
  }
  std::vector<double> y(static_cast<std::size_t>(d));
  // Forward solve L y = b.
  for (std::int64_t i = 0; i < d; ++i) {
    double acc = b[static_cast<std::size_t>(i)];
    for (std::int64_t k = 0; k < i; ++k) {
      acc -= l[static_cast<std::size_t>(i * d + k)] *
             y[static_cast<std::size_t>(k)];
    }
    y[static_cast<std::size_t>(i)] = acc / l[static_cast<std::size_t>(i * d + i)];
  }
  // Backward solve L^T x = y.
  std::vector<double> x(static_cast<std::size_t>(d));
  for (std::int64_t i = d - 1; i >= 0; --i) {
    double acc = y[static_cast<std::size_t>(i)];
    for (std::int64_t k = i + 1; k < d; ++k) {
      acc -= l[static_cast<std::size_t>(k * d + i)] *
             x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = acc / l[static_cast<std::size_t>(i * d + i)];
  }
  return x;
}

double mahalanobis_squared(const std::vector<double>& l, std::int64_t d,
                           std::span<const float> x,
                           const std::vector<double>& mu) {
  if (static_cast<std::int64_t>(x.size()) != d ||
      static_cast<std::int64_t>(mu.size()) != d) {
    throw std::invalid_argument{"mahalanobis_squared: dimension mismatch"};
  }
  std::vector<double> diff(static_cast<std::size_t>(d));
  for (std::int64_t j = 0; j < d; ++j) {
    diff[static_cast<std::size_t>(j)] = x[static_cast<std::size_t>(j)] -
                                        mu[static_cast<std::size_t>(j)];
  }
  const std::vector<double> solved = cholesky_solve(l, d, diff);
  double acc = 0.0;
  for (std::int64_t j = 0; j < d; ++j) {
    acc += diff[static_cast<std::size_t>(j)] * solved[static_cast<std::size_t>(j)];
  }
  return acc;
}

}  // namespace dv
