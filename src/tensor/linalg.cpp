#include "tensor/linalg.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace dv {

std::vector<double> column_means(const tensor& samples) {
  if (samples.dim() != 2 || samples.extent(0) < 1) {
    throw std::invalid_argument{"column_means: need [n>=1, d]"};
  }
  const std::int64_t n = samples.extent(0);
  const std::int64_t d = samples.extent(1);
  std::vector<double> out(static_cast<std::size_t>(d), 0.0);
  // Parallel over columns: each out[j] sums its own column in ascending
  // row order, so the result is bit-identical to the sequential loop for
  // any thread count.
  // dv:parallel-safe(each column sums into its own slot in fixed order)
  parallel_for(0, d, 16, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t j = begin; j < end; ++j) {
      double acc = 0.0;
      const float* col = samples.data() + j;
      for (std::int64_t i = 0; i < n; ++i) acc += col[i * d];
      out[static_cast<std::size_t>(j)] = acc / static_cast<double>(n);
    }
  });
  return out;
}

std::vector<double> covariance(const tensor& samples,
                               const std::vector<double>& means,
                               double ridge) {
  const std::int64_t n = samples.extent(0);
  const std::int64_t d = samples.extent(1);
  if (static_cast<std::int64_t>(means.size()) != d) {
    throw std::invalid_argument{"covariance: mean dimension mismatch"};
  }
  // Center once (rows are independent), then parallelize over output rows:
  // cov[a][:] accumulates over samples in ascending row order, identical
  // to the sequential rank-1-update formulation bit for bit.
  std::vector<double> centered(static_cast<std::size_t>(n * d));
  // dv:parallel-safe(centering writes disjoint rows, no reduction)
  parallel_for(0, n, 32, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const float* row = samples.data() + i * d;
      double* dst = centered.data() + i * d;
      for (std::int64_t j = 0; j < d; ++j) {
        dst[j] = row[j] - means[static_cast<std::size_t>(j)];
      }
    }
  });
  std::vector<double> cov(static_cast<std::size_t>(d * d), 0.0);
  // dv:parallel-safe(each cov row accumulates alone in ascending order)
  parallel_for(0, d, 8, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t a = begin; a < end; ++a) {
      double* crow = cov.data() + a * d;
      for (std::int64_t i = 0; i < n; ++i) {
        const double* crow_i = centered.data() + i * d;
        const double ca = crow_i[a];
        for (std::int64_t b = 0; b < d; ++b) crow[b] += ca * crow_i[b];
      }
      for (std::int64_t b = 0; b < d; ++b) crow[b] /= static_cast<double>(n);
      crow[a] += ridge;
    }
  });
  return cov;
}

void cholesky_decompose(std::vector<double>& a, std::int64_t d) {
  if (static_cast<std::int64_t>(a.size()) != d * d) {
    throw std::invalid_argument{"cholesky_decompose: size mismatch"};
  }
  for (std::int64_t j = 0; j < d; ++j) {
    double diag = a[static_cast<std::size_t>(j * d + j)];
    for (std::int64_t k = 0; k < j; ++k) {
      const double l = a[static_cast<std::size_t>(j * d + k)];
      diag -= l * l;
    }
    if (diag <= 0.0) {
      throw std::domain_error{"cholesky_decompose: not positive definite"};
    }
    const double ljj = std::sqrt(diag);
    a[static_cast<std::size_t>(j * d + j)] = ljj;
    for (std::int64_t i = j + 1; i < d; ++i) {
      double acc = a[static_cast<std::size_t>(i * d + j)];
      for (std::int64_t k = 0; k < j; ++k) {
        acc -= a[static_cast<std::size_t>(i * d + k)] *
               a[static_cast<std::size_t>(j * d + k)];
      }
      a[static_cast<std::size_t>(i * d + j)] = acc / ljj;
    }
    // Zero the upper triangle for cleanliness.
    for (std::int64_t k = j + 1; k < d; ++k) {
      a[static_cast<std::size_t>(j * d + k)] = 0.0;
    }
  }
}

std::vector<double> cholesky_solve(const std::vector<double>& l,
                                   std::int64_t d,
                                   const std::vector<double>& b) {
  if (static_cast<std::int64_t>(b.size()) != d) {
    throw std::invalid_argument{"cholesky_solve: rhs size mismatch"};
  }
  std::vector<double> y(static_cast<std::size_t>(d));
  // Forward solve L y = b.
  for (std::int64_t i = 0; i < d; ++i) {
    double acc = b[static_cast<std::size_t>(i)];
    for (std::int64_t k = 0; k < i; ++k) {
      acc -= l[static_cast<std::size_t>(i * d + k)] *
             y[static_cast<std::size_t>(k)];
    }
    y[static_cast<std::size_t>(i)] = acc / l[static_cast<std::size_t>(i * d + i)];
  }
  // Backward solve L^T x = y.
  std::vector<double> x(static_cast<std::size_t>(d));
  for (std::int64_t i = d - 1; i >= 0; --i) {
    double acc = y[static_cast<std::size_t>(i)];
    for (std::int64_t k = i + 1; k < d; ++k) {
      acc -= l[static_cast<std::size_t>(k * d + i)] *
             x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = acc / l[static_cast<std::size_t>(i * d + i)];
  }
  return x;
}

double mahalanobis_squared(const std::vector<double>& l, std::int64_t d,
                           std::span<const float> x,
                           const std::vector<double>& mu) {
  if (static_cast<std::int64_t>(x.size()) != d ||
      static_cast<std::int64_t>(mu.size()) != d) {
    throw std::invalid_argument{"mahalanobis_squared: dimension mismatch"};
  }
  std::vector<double> diff(static_cast<std::size_t>(d));
  for (std::int64_t j = 0; j < d; ++j) {
    diff[static_cast<std::size_t>(j)] = x[static_cast<std::size_t>(j)] -
                                        mu[static_cast<std::size_t>(j)];
  }
  const std::vector<double> solved = cholesky_solve(l, d, diff);
  return dot_f64(diff.data(), solved.data(), d);
}

}  // namespace dv
