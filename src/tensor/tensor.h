// Dense float32 tensor with value semantics.
//
// The tensor is always contiguous in row-major order with up to four
// dimensions used by this library (N, C, H, W for image batches; M, N for
// matrices; flat for vectors). It owns its storage; copies are deep and
// moves are cheap. All indexing is bounds-checked in debug builds via
// assertions and unchecked in release builds for speed.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dv {

class binary_reader;
class binary_writer;

class tensor {
 public:
  /// Empty tensor (numel() == 0, dim() == 0).
  tensor() = default;

  /// Zero-filled tensor of the given shape. All extents must be positive.
  explicit tensor(std::vector<std::int64_t> shape);

  /// Convenience constructors.
  static tensor zeros(std::vector<std::int64_t> shape);
  static tensor full(std::vector<std::int64_t> shape, float value);
  static tensor from_data(std::vector<std::int64_t> shape,
                          std::vector<float> data);
  /// I.i.d. normal entries with the given stddev.
  static tensor randn(std::vector<std::int64_t> shape, rng& gen,
                      float stddev = 1.0f);
  /// I.i.d. uniform entries in [lo, hi).
  static tensor uniform(std::vector<std::int64_t> shape, rng& gen, float lo,
                        float hi);

  // -- Shape ----------------------------------------------------------------

  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  int dim() const { return static_cast<int>(shape_.size()); }
  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t extent(int axis) const {
    assert(axis >= 0 && axis < dim());
    return shape_[static_cast<std::size_t>(axis)];
  }
  bool same_shape(const tensor& other) const { return shape_ == other.shape_; }
  bool empty() const { return data_.empty(); }

  /// Reinterprets the tensor with a new shape of identical numel.
  /// A single -1 extent is inferred. Returns *this for chaining.
  tensor& reshape(std::vector<std::int64_t> shape);
  /// Copy with a different shape; the source is untouched.
  tensor reshaped(std::vector<std::int64_t> shape) const;

  // -- Element access ---------------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::int64_t i) {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  float& at2(std::int64_t i, std::int64_t j) {
    assert(dim() == 2);
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }
  float at2(std::int64_t i, std::int64_t j) const {
    assert(dim() == 2);
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }

  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    assert(dim() == 4);
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float at4(std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w) const {
    assert(dim() == 4);
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  float& at3(std::int64_t c, std::int64_t h, std::int64_t w) {
    assert(dim() == 3);
    return data_[static_cast<std::size_t>((c * shape_[1] + h) * shape_[2] + w)];
  }
  float at3(std::int64_t c, std::int64_t h, std::int64_t w) const {
    assert(dim() == 3);
    return data_[static_cast<std::size_t>((c * shape_[1] + h) * shape_[2] + w)];
  }

  // -- Batch helpers ----------------------------------------------------------

  /// Copies sample `n` of a 4-D batch into a fresh [C,H,W] tensor.
  tensor sample(std::int64_t n) const;
  /// Overwrites sample `n` of a 4-D batch from a [C,H,W] tensor.
  void set_sample(std::int64_t n, const tensor& s);
  /// Copies rows [begin, end) of the leading axis into a fresh tensor.
  tensor slice_rows(std::int64_t begin, std::int64_t end) const;

  // -- Arithmetic (elementwise, in place) --------------------------------------

  void fill(float value);
  tensor& operator+=(const tensor& other);
  tensor& operator-=(const tensor& other);
  tensor& operator*=(float scalar);
  /// this += alpha * other (axpy).
  void add_scaled(const tensor& other, float alpha);
  /// Hadamard product in place.
  void mul_elem(const tensor& other);
  /// Clamps every element to [lo, hi].
  void clamp(float lo, float hi);

  // -- Reductions ---------------------------------------------------------------

  float sum() const;
  float max() const;
  float min() const;
  float mean() const;
  /// Index of the maximum element (first on ties).
  std::int64_t argmax() const;
  /// Euclidean norm of the flattened tensor.
  float norm2() const;
  /// L1 norm of the flattened tensor.
  float norm1() const;

  // -- Serialization --------------------------------------------------------------

  void save(binary_writer& w) const;
  static tensor load(binary_reader& r);

  /// Human-readable shape like "[64, 3, 32, 32]".
  std::string shape_string() const;

 private:
  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

/// Out-of-place helpers.
tensor operator+(tensor lhs, const tensor& rhs);
tensor operator-(tensor lhs, const tensor& rhs);
tensor operator*(tensor lhs, float scalar);

}  // namespace dv
