// Numerical kernels on raw tensors: GEMM, im2col/col2im, softmax, and the
// distance/dot/sum reductions shared by the SVM and detector layers.
//
// These are the hot loops behind the neural-network substrate. All matrices
// are row-major. The GEMM variants are cache-tiled and register-blocked
// (packed A/B panels, MR x NR micro-kernel) and parallelized over row
// blocks through the shared thread pool (util/thread_pool.h). Results are
// bit-identical for any DV_THREADS setting: row blocks write disjoint rows
// of C and the k-accumulation order is fixed by the panel loop structure.
//
// The inner loops (micro-kernel, im2col/col2im, reductions) route through
// the runtime-dispatched SIMD table in tensor/simd/simd.h; results are
// additionally bit-identical for any DV_SIMD level because every variant
// runs the same per-element operations and the same fixed 8-lane
// reduction order (see `simd_reduce_lanes`).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace dv {

/// C[M,N] = alpha * A[M,K] * B[K,N] + beta * C.
void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c);

/// C[M,N] = alpha * A[M,K] * B[N,K]^T + beta * C (B stored row-major [N,K]).
void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c);

/// C[M,N] = alpha * A[K,M]^T * B[K,N] + beta * C (A stored row-major [K,M]).
void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c);

/// Geometry of a 2-D convolution / pooling window.
struct conv_geometry {
  std::int64_t in_c{}, in_h{}, in_w{};
  std::int64_t kernel{};   // square kernel size
  std::int64_t stride{1};
  std::int64_t pad{0};

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the im2col matrix: one per (channel, ky, kx).
  std::int64_t col_rows() const { return in_c * kernel * kernel; }
  /// Columns of the im2col matrix: one per output pixel.
  std::int64_t col_cols() const { return out_h() * out_w(); }
};

/// Unfolds one CHW image into the [col_rows, col_cols] im2col matrix.
/// `col` must hold col_rows()*col_cols() floats.
void im2col(const float* image, const conv_geometry& g, float* col);

/// Accumulates a col matrix back into a CHW image gradient (adjoint of
/// im2col). `image` must be zeroed by the caller if accumulation from zero is
/// desired.
void col2im(const float* col, const conv_geometry& g, float* image);

/// In-place numerically stable softmax over the last axis of a 2-D tensor.
void softmax_rows(tensor& logits);

/// Row-wise argmax of a 2-D tensor.
std::vector<std::int64_t> argmax_rows(const tensor& t);

/// Squared Euclidean distance between two equal-length float arrays
/// (double accumulators, fixed 8-lane order).
double squared_distance(const float* a, const float* b, std::int64_t n);

/// out[j] = squared_distance(x, rows + j*d, d) for j in [0, m): one query
/// against every row of a row-major [m, d] matrix. Bitwise identical to m
/// separate squared_distance calls.
void squared_distance_row(const float* x, const float* rows, std::int64_t m,
                          std::int64_t d, double* out);

/// Dot product of two equal-length float arrays (double accumulators,
/// fixed 8-lane order).
double dot(const float* a, const float* b, std::int64_t n);

/// Dot product of two equal-length double arrays (fixed 8-lane order).
double dot_f64(const double* a, const double* b, std::int64_t n);

/// L1 distance sum_i |a[i]-b[i]| (double accumulators, fixed 8-lane order).
double l1_distance(const float* a, const float* b, std::int64_t n);

/// Sum of a float array (double accumulators, fixed 8-lane order).
double array_sum(const float* x, std::int64_t n);

/// x[i] += c for i in [0, n).
void add_scalar(float* x, std::int64_t n, float c);

}  // namespace dv
