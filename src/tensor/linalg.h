// Small dense linear-algebra helpers for the statistical detectors:
// covariance estimation and Cholesky factorization/solves for Mahalanobis
// distances. Sized for feature dimensions in the tens-to-hundreds.
#pragma once

#include "tensor/tensor.h"

namespace dv {

/// Column means of [n, d] -> [d].
std::vector<double> column_means(const tensor& samples);

/// Sample covariance (divides by n) of [n, d] about the provided means,
/// with `ridge` added to the diagonal for conditioning. Returns [d, d]
/// row-major doubles.
std::vector<double> covariance(const tensor& samples,
                               const std::vector<double>& means,
                               double ridge = 1e-3);

/// In-place Cholesky factorization A = L L^T of a symmetric positive
/// definite row-major [d, d] matrix; the lower triangle of `a` becomes L.
/// Throws std::domain_error if the matrix is not positive definite.
void cholesky_decompose(std::vector<double>& a, std::int64_t d);

/// Solves L L^T x = b given the factor from cholesky_decompose.
std::vector<double> cholesky_solve(const std::vector<double>& l,
                                   std::int64_t d,
                                   const std::vector<double>& b);

/// Squared Mahalanobis distance (x - mu)^T Sigma^{-1} (x - mu) using the
/// Cholesky factor of Sigma.
double mahalanobis_squared(const std::vector<double>& l, std::int64_t d,
                           std::span<const float> x,
                           const std::vector<double>& mu);

}  // namespace dv
