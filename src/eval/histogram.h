// Histograms and terminal plots for Figure 3 / Figure 4 style output.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dv {

struct histogram {
  double lo{0.0};
  double hi{1.0};
  std::vector<double> density;  // normalized so the bin masses sum to 1

  double bin_width() const {
    return (hi - lo) / static_cast<double>(density.size());
  }
};

/// Builds a `bins`-bin histogram over [lo, hi]; out-of-range values clamp to
/// the edge bins (the paper's Figure 3 uses 200 bins).
histogram build_histogram(std::span<const double> values, double lo, double hi,
                          int bins);

/// Min-max normalizes values into [-1, 1] jointly over both sets (used to
/// plot "normalized discrepancy" like Figure 3). Scales in place.
void normalize_jointly(std::vector<double>& a, std::vector<double>& b);

/// Renders two overlaid histograms as rows of a fixed-height ASCII chart;
/// `label_a` uses '#' marks, `label_b` uses 'o', overlap uses '@'.
std::string ascii_overlay(const histogram& a, const histogram& b,
                          const std::string& label_a,
                          const std::string& label_b, int height = 12);

/// CSV dump (bin_center, density_a, density_b) for external plotting.
std::string histogram_csv(const histogram& a, const histogram& b);

}  // namespace dv
