#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dv {

double roc_auc(std::span<const double> positive_scores,
               std::span<const double> negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) {
    throw std::invalid_argument{"roc_auc: empty score set"};
  }
  // Rank-based computation over the pooled, sorted scores with midranks for
  // ties: AUC = (R_pos - n_pos (n_pos + 1) / 2) / (n_pos * n_neg).
  struct entry {
    double score;
    bool positive;
  };
  std::vector<entry> pooled;
  pooled.reserve(positive_scores.size() + negative_scores.size());
  for (const double s : positive_scores) pooled.push_back({s, true});
  for (const double s : negative_scores) pooled.push_back({s, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const entry& a, const entry& b) { return a.score < b.score; });

  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j + 1 < pooled.size() && pooled[j + 1].score == pooled[i].score) {
      ++j;
    }
    // Midrank of the tie group [i, j] (1-based ranks).
    const double midrank = 0.5 * (static_cast<double>(i + 1) +
                                  static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) {
      if (pooled[k].positive) rank_sum_pos += midrank;
    }
    i = j + 1;
  }
  const auto np = static_cast<double>(positive_scores.size());
  const auto nn = static_cast<double>(negative_scores.size());
  return (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn);
}

double tpr_at_threshold(std::span<const double> positive_scores,
                        double threshold) {
  if (positive_scores.empty()) {
    throw std::invalid_argument{"tpr_at_threshold: empty scores"};
  }
  std::size_t hits = 0;
  for (const double s : positive_scores) hits += s > threshold ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(positive_scores.size());
}

double fpr_at_threshold(std::span<const double> negative_scores,
                        double threshold) {
  if (negative_scores.empty()) {
    throw std::invalid_argument{"fpr_at_threshold: empty scores"};
  }
  std::size_t hits = 0;
  for (const double s : negative_scores) hits += s > threshold ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(negative_scores.size());
}

double centroid_threshold(std::span<const double> positive_scores,
                          std::span<const double> negative_scores) {
  return 0.5 * (mean(positive_scores) + mean(negative_scores));
}

double threshold_for_fpr(std::span<const double> negative_scores,
                         double target_fpr) {
  if (negative_scores.empty()) {
    throw std::invalid_argument{"threshold_for_fpr: empty scores"};
  }
  if (target_fpr < 0.0 || target_fpr > 1.0) {
    throw std::invalid_argument{"threshold_for_fpr: fpr in [0,1]"};
  }
  std::vector<double> sorted{negative_scores.begin(), negative_scores.end()};
  std::sort(sorted.begin(), sorted.end());
  // Flag anything strictly above the (1 - fpr) quantile.
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       std::ceil((1.0 - target_fpr) *
                                 static_cast<double>(sorted.size())) -
                           1.0));
  return sorted[std::max<std::size_t>(idx, 0)];
}

double mean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument{"mean: empty"};
  double acc = 0.0;
  for (const double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

std::vector<roc_point> roc_curve(std::span<const double> positive_scores,
                                 std::span<const double> negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) {
    throw std::invalid_argument{"roc_curve: empty score set"};
  }
  struct entry {
    double score;
    bool positive;
  };
  std::vector<entry> pooled;
  pooled.reserve(positive_scores.size() + negative_scores.size());
  for (const double s : positive_scores) pooled.push_back({s, true});
  for (const double s : negative_scores) pooled.push_back({s, false});
  // Descending scores: sweeping the threshold downward admits more flags.
  std::sort(pooled.begin(), pooled.end(),
            [](const entry& a, const entry& b) { return a.score > b.score; });

  std::vector<roc_point> curve;
  curve.push_back({pooled.front().score + 1.0, 0.0, 0.0});
  const auto np = static_cast<double>(positive_scores.size());
  const auto nn = static_cast<double>(negative_scores.size());
  std::size_t tp = 0, fp = 0;
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j < pooled.size() && pooled[j].score == pooled[i].score) {
      tp += pooled[j].positive ? 1 : 0;
      fp += pooled[j].positive ? 0 : 1;
      ++j;
    }
    curve.push_back({pooled[i].score, static_cast<double>(fp) / nn,
                     static_cast<double>(tp) / np});
    i = j;
  }
  return curve;
}

double auc_from_curve(const std::vector<roc_point>& curve) {
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    area += (curve[i].fpr - curve[i - 1].fpr) *
            0.5 * (curve[i].tpr + curve[i - 1].tpr);
  }
  return area;
}

std::vector<pr_point> pr_curve(std::span<const double> positive_scores,
                               std::span<const double> negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) {
    throw std::invalid_argument{"pr_curve: empty score set"};
  }
  struct entry {
    double score;
    bool positive;
  };
  std::vector<entry> pooled;
  pooled.reserve(positive_scores.size() + negative_scores.size());
  for (const double s : positive_scores) pooled.push_back({s, true});
  for (const double s : negative_scores) pooled.push_back({s, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const entry& a, const entry& b) { return a.score > b.score; });

  std::vector<pr_point> curve;
  const auto np = static_cast<double>(positive_scores.size());
  std::size_t tp = 0, fp = 0;
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j < pooled.size() && pooled[j].score == pooled[i].score) {
      tp += pooled[j].positive ? 1 : 0;
      fp += pooled[j].positive ? 0 : 1;
      ++j;
    }
    curve.push_back({pooled[i].score, static_cast<double>(tp) / np,
                     static_cast<double>(tp) / static_cast<double>(tp + fp)});
    i = j;
  }
  return curve;
}

double average_precision(std::span<const double> positive_scores,
                         std::span<const double> negative_scores) {
  const auto curve = pr_curve(positive_scores, negative_scores);
  double ap = 0.0;
  double prev_recall = 0.0;
  for (const auto& p : curve) {
    ap += (p.recall - prev_recall) * p.precision;
    prev_recall = p.recall;
  }
  return ap;
}

}  // namespace dv
