// Aligned plain-text table printer for the bench binaries.
#pragma once

#include <string>
#include <vector>

namespace dv {

class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Adds a horizontal separator line.
  void add_separator();

  /// Renders with column alignment and '|' separators.
  std::string render() const;

  /// Formats a double with fixed precision ("-" for NaN sentinels).
  static std::string fmt(double value, int precision = 4);
  /// The dash cell used for inapplicable entries (paper's "-").
  static std::string dash() { return "-"; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
};

}  // namespace dv
