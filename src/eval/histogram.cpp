#include "eval/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dv {

histogram build_histogram(std::span<const double> values, double lo, double hi,
                          int bins) {
  if (bins < 1 || hi <= lo) {
    throw std::invalid_argument{"build_histogram: bad parameters"};
  }
  histogram out;
  out.lo = lo;
  out.hi = hi;
  out.density.assign(static_cast<std::size_t>(bins), 0.0);
  if (values.empty()) return out;
  const double width = (hi - lo) / bins;
  for (const double v : values) {
    auto b = static_cast<std::int64_t>((v - lo) / width);
    b = std::clamp<std::int64_t>(b, 0, bins - 1);
    out.density[static_cast<std::size_t>(b)] += 1.0;
  }
  for (auto& d : out.density) d /= static_cast<double>(values.size());
  return out;
}

void normalize_jointly(std::vector<double>& a, std::vector<double>& b) {
  if (a.empty() && b.empty()) return;
  double lo = 1e300, hi = -1e300;
  for (const double v : a) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (const double v : b) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  if (span <= 0.0) return;
  auto rescale = [&](double v) { return 2.0 * (v - lo) / span - 1.0; };
  for (auto& v : a) v = rescale(v);
  for (auto& v : b) v = rescale(v);
}

std::string ascii_overlay(const histogram& a, const histogram& b,
                          const std::string& label_a,
                          const std::string& label_b, int height) {
  if (a.density.size() != b.density.size()) {
    throw std::invalid_argument{"ascii_overlay: bin count mismatch"};
  }
  const std::size_t bins = a.density.size();
  double peak = 1e-12;
  for (std::size_t i = 0; i < bins; ++i) {
    peak = std::max({peak, a.density[i], b.density[i]});
  }
  std::ostringstream out;
  for (int row = height; row >= 1; --row) {
    const double level = peak * row / height;
    out << "  |";
    for (std::size_t i = 0; i < bins; ++i) {
      const bool in_a = a.density[i] >= level;
      const bool in_b = b.density[i] >= level;
      out << (in_a && in_b ? '@' : in_a ? '#' : in_b ? 'o' : ' ');
    }
    out << "\n";
  }
  out << "  +";
  for (std::size_t i = 0; i < bins; ++i) out << '-';
  out << "\n   " << a.lo << " ... " << a.hi << "   ('#' = " << label_a
      << ", 'o' = " << label_b << ", '@' = both)\n";
  return out.str();
}

std::string histogram_csv(const histogram& a, const histogram& b) {
  if (a.density.size() != b.density.size()) {
    throw std::invalid_argument{"histogram_csv: bin count mismatch"};
  }
  std::ostringstream out;
  out << "bin_center,density_a,density_b\n";
  const double width = a.bin_width();
  for (std::size_t i = 0; i < a.density.size(); ++i) {
    out << (a.lo + (static_cast<double>(i) + 0.5) * width) << ","
        << a.density[i] << "," << b.density[i] << "\n";
  }
  return out.str();
}

}  // namespace dv
