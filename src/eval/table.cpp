#include "eval/table.h"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dv {

text_table::text_table(std::vector<std::string> header)
    : header_{std::move(header)} {
  if (header_.empty()) throw std::invalid_argument{"text_table: empty header"};
}

void text_table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument{"text_table: row arity mismatch"};
  }
  rows_.push_back(std::move(row));
}

void text_table::add_separator() { rows_.emplace_back(); }

std::string text_table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    std::ostringstream out;
    out << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      out << " " << std::left << std::setw(static_cast<int>(widths[c])) << cell
          << " |";
    }
    return out.str();
  };
  auto separator = [&] {
    std::ostringstream out;
    out << "+";
    for (const auto w : widths) {
      out << std::string(w + 2, '-') << "+";
    }
    return out.str();
  };
  std::ostringstream out;
  out << separator() << "\n" << line(header_) << "\n" << separator() << "\n";
  for (const auto& row : rows_) {
    out << (row.empty() ? separator() : line(row)) << "\n";
  }
  out << separator() << "\n";
  return out.str();
}

std::string text_table::fmt(double value, int precision) {
  if (std::isnan(value)) return dash();
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace dv
