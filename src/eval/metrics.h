// Detection metrics (paper §IV-D2).
//
// Positives are anomalies (SCCs / SAEs); negatives are legitimate images.
// Scores are anomaly scores: higher means the detector believes the input is
// more anomalous.
#pragma once

#include <span>
#include <vector>

namespace dv {

/// ROC-AUC via the rank statistic (equivalent to the Mann-Whitney U).
/// Ties contribute 1/2. Requires both spans non-empty.
double roc_auc(std::span<const double> positive_scores,
               std::span<const double> negative_scores);

/// True positive rate at a fixed threshold (score > threshold => flagged).
double tpr_at_threshold(std::span<const double> positive_scores,
                        double threshold);

/// False positive rate at a fixed threshold.
double fpr_at_threshold(std::span<const double> negative_scores,
                        double threshold);

/// The paper's epsilon heuristic: the midpoint of the two score centroids.
double centroid_threshold(std::span<const double> positive_scores,
                          std::span<const double> negative_scores);

/// Threshold achieving (at most) the requested FPR on the negatives:
/// the (1 - fpr) quantile of negative scores.
double threshold_for_fpr(std::span<const double> negative_scores,
                         double target_fpr);

/// Simple mean.
double mean(std::span<const double> values);

/// One operating point of a detector.
struct roc_point {
  double threshold;
  double fpr;
  double tpr;
};

/// The full ROC curve: one point per distinct threshold between samples,
/// ordered by increasing FPR. Endpoints (0,0) and (1,1) included.
std::vector<roc_point> roc_curve(std::span<const double> positive_scores,
                                 std::span<const double> negative_scores);

/// Area under a curve returned by roc_curve (trapezoidal); equals roc_auc
/// up to floating-point error and is used to cross-check it in tests.
double auc_from_curve(const std::vector<roc_point>& curve);

/// One precision/recall operating point.
struct pr_point {
  double threshold;
  double recall;
  double precision;
};

/// Precision-recall curve, ordered by increasing recall (threshold sweep
/// from high to low).
std::vector<pr_point> pr_curve(std::span<const double> positive_scores,
                               std::span<const double> negative_scores);

/// Average precision: precision integrated over recall steps (the step-wise
/// definition used by scikit-learn's average_precision_score).
double average_precision(std::span<const double> positive_scores,
                         std::span<const double> negative_scores);

}  // namespace dv
