// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, with per-thread sharded collection and JSON / Prometheus
// text exporters. Everything lives in namespace dv::metrics (the
// unrelated dv::histogram in eval/histogram.h is the paper's density
// histogram).
//
// Determinism contract (mirrors the thread-pool contract in
// thread_pool.h): every accumulation is integral — counters are u64,
// histogram buckets are u64, and histogram sums are fixed-point i64
// "ticks" (value * options.scale, rounded). Integer addition is
// associative and commutative, so folding the per-thread shards yields
// the same totals no matter how many threads recorded or in which order
// the shards merge. A snapshot of deterministic instrumentation (counts,
// discrepancies, losses) is therefore bitwise identical for any
// DV_THREADS. Wall-clock durations are inherently non-deterministic;
// setting DV_METRICS_DETERMINISTIC=1 freezes the observability clock at
// zero so full snapshots can be diffed bitwise across thread counts.
// Gauges are last-write-wins and must only be set from deterministic
// (single-threaded) program points.
//
// The whole subsystem is gated behind the DV_METRICS environment
// variable (off by default). When disabled, the lookup helpers return
// nullptr and the record helpers return immediately without touching —
// or even creating — any registry state, so instrumented hot paths pay
// one predicted branch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dv::metrics {

namespace detail {
struct registry_access;  // constructs metric instances inside the registry
}

/// True when metric collection is on (DV_METRICS=1 in the environment,
/// or set_enabled(true)).
bool enabled();

/// Overrides the DV_METRICS environment switch (used by tests and tools).
void set_enabled(bool enabled);

/// Nanosecond timestamp from the observability clock: a steady clock
/// normally, constant 0 when DV_METRICS_DETERMINISTIC=1 (or after
/// set_clock_frozen(true)). Spans and latency histograms read time
/// through this so deterministic runs export bitwise-stable snapshots.
std::int64_t now_ns();
void set_clock_frozen(bool frozen);
bool clock_frozen();

// ---------------------------------------------------------------------------
// Metric types. Instances live in the global registry and are never
// moved; pointers returned by the lookup helpers stay valid until
// reset() drops the registry (tests/bench teardown only).

/// Monotonic counter, sharded per thread.
class counter {
 public:
  ~counter();
  void add(std::uint64_t delta = 1);
  /// Sum over all shards.
  std::uint64_t value() const;

 private:
  friend struct detail::registry_access;
  counter();
  counter(const counter&) = delete;
  counter& operator=(const counter&) = delete;
  struct impl;
  impl* impl_;
};

/// Last-write-wins double. Set only from deterministic program points.
class gauge {
 public:
  ~gauge();
  void set(double value);
  double value() const;

 private:
  friend struct detail::registry_access;
  gauge();
  gauge(const gauge&) = delete;
  gauge& operator=(const gauge&) = delete;
  struct impl;
  impl* impl_;
};

/// Fixed-bucket histogram configuration. `bounds` are inclusive upper
/// bounds in ascending order; one overflow bucket (+Inf) is implicit.
/// `scale` is the fixed-point resolution of the sum: ticks per unit
/// (1e9 == nanosecond resolution for values measured in seconds).
struct histogram_options {
  std::vector<double> bounds;
  double scale{1e6};

  /// `count` bounds starting at `start`, each `factor` times the last.
  static histogram_options exponential(double start, double factor,
                                       int count, double scale = 1e6);
  /// `count` bounds evenly spaced over [lo, hi].
  static histogram_options linear(double lo, double hi, int count,
                                  double scale = 1e6);
  /// Latency buckets: 1 µs .. ~16 s, factor 4, nanosecond-resolution sum.
  static histogram_options latency();
};

class histogram {
 public:
  ~histogram();
  void observe(double value);
  /// Total observations (sum over buckets, including overflow).
  std::uint64_t count() const;
  /// Sum of observed values at fixed-point resolution (ticks / scale).
  double sum() const;
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  const std::vector<double>& bounds() const;
  double scale() const;

 private:
  friend struct detail::registry_access;
  explicit histogram(histogram_options options);
  histogram(const histogram&) = delete;
  histogram& operator=(const histogram&) = delete;
  struct impl;
  impl* impl_;
};

// ---------------------------------------------------------------------------
// Registry access. Names follow the Prometheus convention
// (`dv_<subsystem>_<what>_<unit>`, counters end in `_total`) and may
// carry a label block: `dv_detector_score_seconds{detector="kde"}`.
// Each helper registers the series on first use and returns the same
// instance afterwards; a name registered as one kind cannot be fetched
// as another (throws std::logic_error). All helpers return nullptr when
// metrics are disabled, so disabled runs leave the registry empty.

counter* get_counter(std::string_view name);
gauge* get_gauge(std::string_view name);
/// `options` applies on first registration; later lookups ignore it.
histogram* get_histogram(std::string_view name,
                         const histogram_options& options);

/// One-shot record helpers for cold paths (lookup each call).
void count(std::string_view name, std::uint64_t delta = 1);
void set(std::string_view name, double value);
void observe(std::string_view name, const histogram_options& options,
             double value);

// ---------------------------------------------------------------------------
// Snapshots and exporters.

enum class kind { counter, gauge, histogram };

struct sample {
  std::string name;
  metrics::kind kind{kind::counter};
  /// counter (integral) or gauge value; histograms use the fields below.
  double value{0.0};
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
  std::uint64_t count{0};
  double sum{0.0};
};

struct snapshot {
  std::vector<sample> samples;  // sorted by name

  /// {"version":1,"metrics":[...]} with %.17g doubles (lossless and
  /// deterministic, so equal registries serialize bitwise identically).
  std::string to_json() const;
  /// Prometheus text exposition format (# TYPE lines, _bucket/_sum/_count
  /// expansion for histograms, labels merged with le="...").
  std::string to_prometheus() const;
};

/// Deterministically ordered snapshot of every registered series.
snapshot collect();

/// Number of registered series (0 after reset or when nothing recorded).
std::size_t series_count();

/// Drops every registered series. Only for tests/tools; never call while
/// instrumented code may be running on other threads.
void reset();

/// Writes <dir>/metrics.json and <dir>/metrics.prom (creating <dir> if
/// needed) from a fresh snapshot. Returns false when metrics are
/// disabled or the files cannot be written.
bool write_artifacts(const std::string& dir);

}  // namespace dv::metrics
