// Image export helpers for the figure/example binaries.
//
// Operates on raw float planes in CHW order with values in [0, 1] so it does
// not depend on the tensor library. Supports binary PGM (1 channel), PPM
// (3 channels), and a coarse ASCII rendering for terminal output.
#pragma once

#include <span>
#include <string>

namespace dv {

/// Writes a greyscale image (`h*w` floats, row-major, values clamped to
/// [0,1]) as a binary PGM file.
void write_pgm(const std::string& path, std::span<const float> pixels, int h,
               int w);

/// Writes an RGB image (CHW planes, `3*h*w` floats) as a binary PPM file.
void write_ppm(const std::string& path, std::span<const float> chw, int h,
               int w);

/// Writes either PGM or PPM depending on `channels` (1 or 3).
void write_image(const std::string& path, std::span<const float> chw,
                 int channels, int h, int w);

/// Renders a greyscale or RGB (luma-converted) image as ASCII art, one
/// character per pixel, dark-to-light ramp. Useful in terminal demos.
std::string ascii_art(std::span<const float> chw, int channels, int h, int w);

}  // namespace dv
