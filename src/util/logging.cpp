#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace dv {

namespace {
std::atomic<log_level> g_level{log_level::info};

const char* level_tag(log_level level) {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO ";
    case log_level::warn: return "WARN ";
    case log_level::error: return "ERROR";
    default: return "?????";
  }
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}
}  // namespace

void set_log_level(log_level level) {
  g_level.store(level, std::memory_order_relaxed);
}
log_level get_log_level() {
  return g_level.load(std::memory_order_relaxed);
}

void log_message(log_level level, const std::string& text) {
  if (level < get_log_level()) return;
  std::fprintf(stderr, "[%8.2fs] %s %s\n", elapsed_seconds(), level_tag(level),
               text.c_str());
}

}  // namespace dv
