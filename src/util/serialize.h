// Binary (de)serialization streams for model and detector artifacts.
//
// The format is a simple little-endian byte stream with length-prefixed
// containers. Each artifact file starts with a caller-chosen magic string so
// that loading a mismatched artifact fails loudly instead of misparsing.
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace dv {

/// Thrown when an artifact cannot be read or has an unexpected layout.
class serialize_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class binary_writer {
 public:
  /// Opens `path` for writing and emits the magic header.
  binary_writer(const std::string& path, const std::string& magic);

  void write_u8(std::uint8_t v);
  void write_i32(std::int32_t v);
  void write_i64(std::int64_t v);
  void write_u64(std::uint64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vector(const std::vector<float>& v);
  void write_f64_vector(const std::vector<double>& v);
  void write_i64_vector(const std::vector<std::int64_t>& v);
  void write_i32_vector(const std::vector<int>& v);

  /// Flushes and closes; throws on I/O failure.
  void finish();

 private:
  void write_raw(const void* data, std::size_t bytes);
  std::ofstream out_;
  std::string path_;
};

class binary_reader {
 public:
  /// Opens `path` and validates the magic header.
  binary_reader(const std::string& path, const std::string& magic);

  std::uint8_t read_u8();
  std::int32_t read_i32();
  std::int64_t read_i64();
  std::uint64_t read_u64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<double> read_f64_vector();
  std::vector<std::int64_t> read_i64_vector();
  std::vector<int> read_i32_vector();

 private:
  void read_raw(void* data, std::size_t bytes);
  std::ifstream in_;
  std::string path_;
};

/// True if a regular file exists at `path`.
bool file_exists(const std::string& path);

/// Creates `path` (and parents) if missing; throws serialize_error on failure.
void ensure_directory(const std::string& path);

}  // namespace dv
