#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dv {

namespace {

/// True while the current thread is executing chunks of a parallel region;
/// nested regions then run sequentially instead of deadlocking the pool.
thread_local bool t_in_parallel_region = false;

struct parallel_job {
  std::int64_t begin{0};
  std::int64_t grain{1};
  std::int64_t num_chunks{0};
  std::int64_t end{0};
  const std::function<void(std::int64_t, std::int64_t, std::int64_t, int)>*
      fn{nullptr};
  std::atomic<std::int64_t> next_chunk{0};
  std::mutex error_mutex;
  std::exception_ptr error;  // dv:guarded-by(error_mutex)
};

// Oversized pools only add overhead (results never depend on the count),
// and asking for thousands of threads can abort on rlimits.
constexpr int k_max_threads = 256;

int default_thread_count() {
  if (const char* env = std::getenv("DV_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n > 0) {
      return static_cast<int>(std::min<long>(n, k_max_threads));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

class thread_pool {
 public:
  thread_pool() { spawn(default_thread_count()); }

  ~thread_pool() {
    {
      std::unique_lock<std::mutex> lock{mutex_};
      stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int threads() const { return threads_; }

  void resize(int n) {
    if (n <= 0) n = default_thread_count();
    n = std::min(n, k_max_threads);
    if (n == threads_) return;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
    // Every worker has joined: no other thread can observe this write.
    stop_ = false;  // dv-lint: allow(race)
    spawn(n);
  }

  void run(parallel_job& job) {
    {
      std::unique_lock<std::mutex> lock{mutex_};
      job_ = &job;
      active_workers_ = static_cast<int>(workers_.size());
      ++generation_;
    }
    start_cv_.notify_all();
    // The caller participates as rank 0.
    t_in_parallel_region = true;
    drain(job, /*rank=*/0);
    t_in_parallel_region = false;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      done_cv_.wait(lock, [&] { return active_workers_ == 0; });
      job_ = nullptr;
    }
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  void spawn(int n) {
    threads_ = n;
    workers_.reserve(static_cast<std::size_t>(n - 1));
    for (int rank = 1; rank < n; ++rank) {
      workers_.emplace_back([this, rank] { worker_loop(rank); });
    }
  }

  // dv:thread-entry(pool worker thread spawned by spawn())
  void worker_loop(int rank) {
    std::uint64_t seen_generation = 0;
    for (;;) {
      parallel_job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock{mutex_};
        start_cv_.wait(lock, [&] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
        job = job_;
      }
      if (job != nullptr) {
        t_in_parallel_region = true;
        drain(*job, rank);
        t_in_parallel_region = false;
      }
      {
        std::unique_lock<std::mutex> lock{mutex_};
        if (--active_workers_ == 0) done_cv_.notify_all();
      }
    }
  }

  /// Executes chunks until the job runs out of them.
  static void drain(parallel_job& job, int rank) {
    for (;;) {
      const std::int64_t chunk =
          job.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job.num_chunks) return;
      const std::int64_t b = job.begin + chunk * job.grain;
      const std::int64_t e = std::min(job.end, b + job.grain);
      try {
        (*job.fn)(chunk, b, e, rank);
      } catch (...) {
        std::lock_guard<std::mutex> lock{job.error_mutex};
        if (!job.error) job.error = std::current_exception();
        // Stop handing out further chunks after a failure.
        job.next_chunk.store(job.num_chunks, std::memory_order_relaxed);
        return;
      }
    }
  }

  /// Written only while the pool is quiescent (ctor / resize after the
  /// join): callers must not resize concurrently with parallel_for, per
  /// the header contract. dv-lint: allow(race)
  int threads_{1};
  /// Same quiescence contract as threads_: mutated only in spawn/resize
  /// after every worker has joined. dv-lint: allow(race)
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_{0};       // dv:guarded-by(mutex_)
  int active_workers_{0};             // dv:guarded-by(mutex_)
  parallel_job* job_{nullptr};        // dv:guarded-by(mutex_)
  bool stop_{false};                  // dv:guarded-by(mutex_)
};

thread_pool& pool() {
  // The process-wide worker pool itself; construction is thread-safe
  // (magic static) and all state is mutex-guarded.
  // dv-lint: allow(thread-safety) mutex-guarded pool singleton
  static thread_pool instance;
  return instance;
}

void run_region(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t, int)>&
        fn) {
  if (grain <= 0) throw std::invalid_argument{"parallel_for: grain <= 0"};
  const std::int64_t num_chunks = parallel_chunk_count(begin, end, grain);
  if (num_chunks <= 0) return;
  // Sequential execution preserves the exact chunk decomposition, so the
  // deterministic-chunking contract holds on every path.
  if (num_chunks == 1 || t_in_parallel_region || pool().threads() == 1) {
    for (std::int64_t chunk = 0; chunk < num_chunks; ++chunk) {
      const std::int64_t b = begin + chunk * grain;
      const std::int64_t e = std::min(end, b + grain);
      fn(chunk, b, e, 0);
    }
    return;
  }
  parallel_job job;
  job.begin = begin;
  job.grain = grain;
  job.num_chunks = num_chunks;
  job.end = end;
  job.fn = &fn;
  pool().run(job);
}

}  // namespace

int thread_count() { return pool().threads(); }

void set_thread_count(int n) { pool().resize(n); }

std::int64_t parallel_chunk_count(std::int64_t begin, std::int64_t end,
                                  std::int64_t grain) {
  if (end <= begin || grain <= 0) return 0;
  return (end - begin + grain - 1) / grain;
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  run_region(begin, end, grain,
             [&fn](std::int64_t, std::int64_t b, std::int64_t e, int) {
               fn(b, e);
             });
}

void parallel_for_chunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t, int)>&
        fn) {
  run_region(begin, end, grain, fn);
}

}  // namespace dv
